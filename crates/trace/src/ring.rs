//! Compact binary ring-buffer tracing: bounded memory on unbounded runs.
//!
//! Every [`TraceEvent`](crate::TraceEvent) is compacted to one fixed
//! 32-byte entry — `[tag, id, time, aux]` as four little-endian `u64`
//! words — and written into a circular buffer that overwrites its oldest
//! entry once full. The compaction is deliberately lossy (one timestamp
//! and one packed auxiliary word per event); the point is a last-N flight
//! recorder whose cost per event is a few stores, not a faithful replay
//! log — [`crate::TraceRecorder`] is that.

use std::cell::RefCell;

use nowlab_sim::SimTime;

use crate::{TraceEvent, TraceSink};

/// `u64` words per ring entry.
pub const ENTRY_WORDS: usize = 4;

/// Discriminant of a compacted event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventTag {
    /// Injection at the source NIC (`aux` packs `src«48 | dst«32 | bytes`).
    Send,
    /// Visibility at the destination (`aux` = receive-queue depth).
    Visible,
    /// Receive overhead paid (`aux` = `o_recv` nanoseconds).
    Recv,
    /// Handler ran.
    Handler,
    /// Dropped on the wire.
    Drop,
    /// Duplicate delivery scheduled.
    Dup,
    /// Retransmission timer fired (`aux` = attempt number).
    Retransmit,
    /// Request→reply pairing (`id` = request, `aux` = reply id).
    Pair,
    /// Compute segment ended (`id` = proc, `aux` = duration nanoseconds).
    Compute,
    /// Idle wait ended (`id` = proc, `aux` = wait nanoseconds).
    Idle,
    /// Barrier/collective wave crossed (`id` = proc, `aux` = kind code).
    Wave,
    /// Measured-region boundary (`id` = proc, `aux` = 1 begin / 0 end).
    Region,
    /// Phase mark (`id` = proc, `aux` = first 8 label bytes, LE).
    Phase,
}

impl EventTag {
    fn code(self) -> u64 {
        match self {
            EventTag::Send => 0,
            EventTag::Visible => 1,
            EventTag::Recv => 2,
            EventTag::Handler => 3,
            EventTag::Drop => 4,
            EventTag::Dup => 5,
            EventTag::Retransmit => 6,
            EventTag::Pair => 7,
            EventTag::Compute => 8,
            EventTag::Idle => 9,
            EventTag::Wave => 10,
            EventTag::Region => 11,
            EventTag::Phase => 12,
        }
    }

    fn from_code(c: u64) -> Option<Self> {
        Some(match c {
            0 => EventTag::Send,
            1 => EventTag::Visible,
            2 => EventTag::Recv,
            3 => EventTag::Handler,
            4 => EventTag::Drop,
            5 => EventTag::Dup,
            6 => EventTag::Retransmit,
            7 => EventTag::Pair,
            8 => EventTag::Compute,
            9 => EventTag::Idle,
            10 => EventTag::Wave,
            11 => EventTag::Region,
            12 => EventTag::Phase,
            _ => return None,
        })
    }
}

/// One decoded ring entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingEntry {
    /// What happened.
    pub tag: EventTag,
    /// Trace correlation id.
    pub id: u64,
    /// When (virtual nanoseconds).
    pub at: SimTime,
    /// Tag-specific packed word (see [`EventTag`]).
    pub aux: u64,
}

fn encode(ev: &TraceEvent) -> [u64; ENTRY_WORDS] {
    let (tag, id, at, aux) = match *ev {
        TraceEvent::Send(ref e) => (
            EventTag::Send,
            e.id,
            e.inject,
            ((e.src as u64) << 48) | ((e.dst as u64) << 32) | u64::from(e.bytes),
        ),
        TraceEvent::Visible(ref e) => (EventTag::Visible, e.id, e.at, u64::from(e.rx_depth)),
        TraceEvent::Recv(ref e) => (EventTag::Recv, e.id, e.done, e.o_recv.as_nanos()),
        TraceEvent::Handler { id, at } => (EventTag::Handler, id, at, 0),
        TraceEvent::Drop { id, at } => (EventTag::Drop, id, at, 0),
        TraceEvent::DupDelivery { id, arrival } => (EventTag::Dup, id, arrival, 0),
        TraceEvent::Retransmit {
            id, attempt, at, ..
        } => (EventTag::Retransmit, id, at, u64::from(attempt)),
        TraceEvent::Pair { request, reply, at } => (EventTag::Pair, request, at, reply),
        TraceEvent::Compute { proc, start, dur } => {
            (EventTag::Compute, proc as u64, start, dur.as_nanos())
        }
        TraceEvent::Idle {
            proc, enter, exit, ..
        } => (
            EventTag::Idle,
            proc as u64,
            enter,
            exit.saturating_since(enter).as_nanos(),
        ),
        TraceEvent::Wave { proc, kind, at } => {
            (EventTag::Wave, proc as u64, at, kind.index() as u64)
        }
        TraceEvent::Region { proc, begin, at } => {
            (EventTag::Region, proc as u64, at, u64::from(begin))
        }
        TraceEvent::Phase { proc, label, at } => {
            let mut word = [0u8; 8];
            let bytes = label.as_str().as_bytes();
            let n = bytes.len().min(8);
            word[..n].copy_from_slice(&bytes[..n]);
            (EventTag::Phase, proc as u64, at, u64::from_le_bytes(word))
        }
    };
    [tag.code(), id, at.as_nanos(), aux]
}

struct RingState {
    slots: Vec<[u64; ENTRY_WORDS]>,
    next: usize,
    total: u64,
}

/// A [`TraceSink`] that keeps only the most recent `capacity` events in a
/// fixed binary buffer.
pub struct RingSink {
    capacity: usize,
    state: RefCell<RingState>,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            capacity,
            state: RefCell::new(RingState {
                slots: Vec::new(),
                next: 0,
                total: 0,
            }),
        }
    }

    /// Total events ever recorded (≥ what the ring still holds).
    pub fn total(&self) -> u64 {
        self.state.borrow().total
    }

    /// Decodes the retained entries, oldest first.
    pub fn entries(&self) -> Vec<RingEntry> {
        let st = self.state.borrow();
        let n = st.slots.len();
        let start = if (st.total as usize) > n { st.next } else { 0 };
        (0..n)
            .map(|i| st.slots[(start + i) % n])
            .filter_map(|w| {
                Some(RingEntry {
                    tag: EventTag::from_code(w[0])?,
                    id: w[1],
                    at: SimTime::from_nanos(w[2]),
                    aux: w[3],
                })
            })
            .collect()
    }

    /// The raw buffer, oldest entry first, as little-endian bytes —
    /// `32·min(total, capacity)` of them.
    pub fn to_bytes(&self) -> Vec<u8> {
        let st = self.state.borrow();
        let n = st.slots.len();
        let start = if (st.total as usize) > n { st.next } else { 0 };
        let mut out = Vec::with_capacity(n * ENTRY_WORDS * 8);
        for i in 0..n {
            for word in st.slots[(start + i) % n] {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        out
    }
}

impl TraceSink for RingSink {
    fn record(&self, ev: &TraceEvent) {
        let mut st = self.state.borrow_mut();
        let entry = encode(ev);
        if st.slots.len() < self.capacity {
            st.slots.push(entry);
        } else {
            let at = st.next;
            st.slots[at] = entry;
        }
        st.next = (st.next + 1) % self.capacity;
        st.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VisibleEvent;
    use nowlab_sim::SimDelta;

    fn visible(id: u64, at_ns: u64) -> TraceEvent {
        TraceEvent::Visible(VisibleEvent {
            id,
            at: SimTime::from_nanos(at_ns),
            rx_depth: id as u32,
        })
    }

    #[test]
    fn ring_overwrites_oldest_and_stays_ordered() {
        let ring = RingSink::new(3);
        for id in 1..=5 {
            ring.record(&visible(id, id * 100));
        }
        assert_eq!(ring.total(), 5);
        let got = ring.entries();
        assert_eq!(got.len(), 3);
        assert_eq!(
            got.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "oldest two must have been overwritten"
        );
        assert!(got.iter().all(|e| e.tag == EventTag::Visible));
        assert_eq!(got[0].at, SimTime::from_nanos(300));
        assert_eq!(got[2].aux, 5);
    }

    #[test]
    fn encode_round_trips_through_bytes() {
        let ring = RingSink::new(8);
        ring.record(&TraceEvent::Recv(crate::RecvEvent {
            id: 42,
            o_recv: SimDelta::from_micros(4.0),
            done: SimTime::from_nanos(10_800),
        }));
        ring.record(&TraceEvent::Retransmit {
            id: 7,
            attempt: 3,
            o_send: SimDelta::from_micros(1.8),
            at: SimTime::from_nanos(500_000),
        });
        let bytes = ring.to_bytes();
        assert_eq!(bytes.len(), 2 * ENTRY_WORDS * 8);
        // Decode the first entry by hand from the little-endian words.
        let word = |i: usize| u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        assert_eq!(word(0), EventTag::Recv.code());
        assert_eq!(word(1), 42);
        assert_eq!(word(2), 10_800);
        assert_eq!(word(3), 4_000);
        let entries = ring.entries();
        assert_eq!(entries[1].tag, EventTag::Retransmit);
        assert_eq!(entries[1].aux, 3);
    }

    #[test]
    fn partial_fill_keeps_insertion_order() {
        let ring = RingSink::new(10);
        ring.record(&visible(1, 10));
        ring.record(&visible(2, 20));
        let got = ring.entries();
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].id, got[1].id), (1, 2));
    }
}
