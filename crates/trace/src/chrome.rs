//! Chrome-trace (`about:tracing` / Perfetto "JSON object format") export.
//!
//! Each completed [`MsgRecord`] becomes a train of complete (`"ph":"X"`)
//! slices laid out on four lanes per processor — `cpu`, `nic-tx`, `wire`,
//! `nic-rx` — plus a flow arrow from the send slice to the receive slice,
//! so a message's whole LogGP decomposition reads left-to-right in the
//! viewer. Timestamps are virtual microseconds (the viewer's native
//! unit); nothing host-side leaks into the file, so two runs of the same
//! (program, seed) export byte-identical traces.
//!
//! The JSON is hand-rolled: every emitted value is a number or a fixed
//! ASCII label, so no escaping is required and no serializer dependency
//! is taken.

use std::io::{self, Write};

use nowlab_sim::{SimDelta, SimTime};

use crate::MsgRecord;

/// Thread-id lanes within each processor's track.
const LANE_CPU: u32 = 0;
const LANE_NIC_TX: u32 = 1;
const LANE_WIRE: u32 = 2;
const LANE_NIC_RX: u32 = 3;

fn ts(t: SimTime) -> f64 {
    t.as_nanos() as f64 / 1_000.0
}

fn dur(d: SimDelta) -> f64 {
    d.as_nanos() as f64 / 1_000.0
}

struct Emitter<'a, W: Write> {
    w: &'a mut W,
    first: bool,
    /// Whether the record currently being drawn is on the critical path.
    crit: bool,
}

impl<W: Write> Emitter<'_, W> {
    fn sep(&mut self) -> io::Result<()> {
        if self.first {
            self.first = false;
            write!(self.w, "\n  ")
        } else {
            write!(self.w, ",\n  ")
        }
    }

    fn meta(&mut self, pid: usize, tid: Option<u32>, what: &str, name: &str) -> io::Result<()> {
        self.sep()?;
        match tid {
            Some(tid) => write!(
                self.w,
                r#"{{"ph":"M","pid":{pid},"tid":{tid},"name":"{what}","args":{{"name":"{name}"}}}}"#
            ),
            None => write!(
                self.w,
                r#"{{"ph":"M","pid":{pid},"name":"{what}","args":{{"name":"{name}"}}}}"#
            ),
        }
    }

    fn slice(
        &mut self,
        rec: &MsgRecord,
        pid: usize,
        tid: u32,
        name: &str,
        start: SimTime,
        span: SimDelta,
    ) -> io::Result<()> {
        if span.is_zero() {
            return Ok(()); // keep files small: empty spans draw nothing
        }
        self.sep()?;
        // Categories are comma-separated in the trace format; critical-path
        // messages get an extra `critical` category so the viewer can
        // filter or color them.
        let extra = if self.crit { ",critical" } else { "" };
        write!(
            self.w,
            r#"{{"ph":"X","pid":{pid},"tid":{tid},"ts":{:.3},"dur":{:.3},"name":"{name}","cat":"{}{extra}","args":{{"id":{},"bytes":{}}}}}"#,
            ts(start),
            dur(span),
            rec.kind.as_str(),
            rec.id,
            rec.bytes,
        )
    }

    fn flow(&mut self, rec: &MsgRecord) -> io::Result<()> {
        let cat = if self.crit { "flow,critical" } else { "flow" };
        self.sep()?;
        write!(
            self.w,
            r#"{{"ph":"s","pid":{},"tid":{LANE_CPU},"ts":{:.3},"id":{},"name":"msg","cat":"{cat}"}}"#,
            rec.src,
            ts(rec.send_begin),
            rec.id,
        )?;
        self.sep()?;
        write!(
            self.w,
            r#"{{"ph":"f","bp":"e","pid":{},"tid":{LANE_CPU},"ts":{:.3},"id":{},"name":"msg","cat":"{cat}"}}"#,
            rec.dst,
            ts(rec.done),
            rec.id,
        )
    }
}

/// Writes the records as a Chrome-trace JSON object (`{"traceEvents":
/// [...]}`). Only completed records are drawn; returns how many were.
pub fn write_chrome_trace<W: Write>(records: &[MsgRecord], w: &mut W) -> io::Result<usize> {
    write_chrome_trace_highlighted(records, &[], w)
}

/// Like [`write_chrome_trace`], with the messages whose trace ids appear
/// in `critical` (sorted ascending) tagged with an extra `critical`
/// category on every slice and flow arrow — the viewer's category filter
/// then isolates the predicted critical path.
pub fn write_chrome_trace_highlighted<W: Write>(
    records: &[MsgRecord],
    critical: &[u64],
    w: &mut W,
) -> io::Result<usize> {
    debug_assert!(critical.windows(2).all(|w| w[0] < w[1]), "sorted ids");
    write!(w, r#"{{"displayTimeUnit":"ms","traceEvents":["#)?;
    let mut em = Emitter {
        w,
        first: true,
        crit: false,
    };
    let procs = records
        .iter()
        .map(|r| r.src.max(r.dst) + 1)
        .max()
        .unwrap_or(0);
    for pid in 0..procs {
        em.meta(pid, None, "process_name", &format!("proc {pid}"))?;
        em.meta(pid, Some(LANE_CPU), "thread_name", "cpu")?;
        em.meta(pid, Some(LANE_NIC_TX), "thread_name", "nic-tx")?;
        em.meta(pid, Some(LANE_WIRE), "thread_name", "wire")?;
        em.meta(pid, Some(LANE_NIC_RX), "thread_name", "nic-rx")?;
    }
    let mut drawn = 0;
    for rec in records.iter().filter(|r| r.completed) {
        drawn += 1;
        em.crit = critical.binary_search(&rec.id).is_ok();
        em.slice(rec, rec.src, LANE_CPU, "o_send", rec.send_begin, rec.o_send)?;
        em.slice(
            rec,
            rec.src,
            LANE_NIC_TX,
            "tx_wait",
            rec.inject,
            rec.tx_wait,
        )?;
        em.slice(rec, rec.src, LANE_NIC_TX, "dma", rec.tx_start, rec.dma)?;
        em.slice(rec, rec.src, LANE_WIRE, "wire", rec.wire_done, rec.wire)?;
        em.slice(
            rec,
            rec.dst,
            LANE_NIC_RX,
            "rx_hold",
            rec.arrival,
            rec.rx_hold,
        )?;
        em.slice(
            rec,
            rec.dst,
            LANE_NIC_RX,
            "rx_queue",
            rec.visible,
            rec.rx_queue,
        )?;
        em.slice(rec, rec.dst, LANE_CPU, "o_recv", rec.pop, rec.o_recv)?;
        em.flow(rec)?;
    }
    writeln!(em.w, "\n]}}")?;
    Ok(drawn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        MsgKind, RecvEvent, SendEvent, TraceEvent, TraceRecorder, TraceSink, VisibleEvent,
    };

    fn us(x: f64) -> SimTime {
        SimTime::ZERO + SimDelta::from_micros(x)
    }

    fn sample_records() -> Vec<MsgRecord> {
        let rec = TraceRecorder::new(true);
        rec.record(&TraceEvent::Send(SendEvent {
            id: 1,
            src: 0,
            dst: 1,
            reply: false,
            kind: MsgKind::Read,
            bytes: 0,
            o_send: SimDelta::from_micros(1.8),
            inject: us(1.8),
            tx_start: us(2.0),
            wire_done: us(2.0),
            arrival: us(7.0),
            in_flight: 1,
            timer_depth: 1,
        }));
        rec.record(&TraceEvent::Visible(VisibleEvent {
            id: 1,
            at: us(7.0),
            rx_depth: 1,
        }));
        rec.record(&TraceEvent::Recv(RecvEvent {
            id: 1,
            o_recv: SimDelta::from_micros(4.0),
            done: us(12.0),
        }));
        // An open lifecycle: must not be drawn.
        rec.record(&TraceEvent::Send(SendEvent {
            id: 2,
            src: 1,
            dst: 0,
            reply: false,
            kind: MsgKind::Write,
            bytes: 0,
            o_send: SimDelta::from_micros(1.8),
            inject: us(20.0),
            tx_start: us(20.0),
            wire_done: us(20.0),
            arrival: us(25.0),
            in_flight: 1,
            timer_depth: 1,
        }));
        rec.finish().records
    }

    #[test]
    fn export_shape_and_content() {
        let mut buf = Vec::new();
        let drawn = write_chrome_trace(&sample_records(), &mut buf).unwrap();
        assert_eq!(drawn, 1);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with(r#"{"displayTimeUnit":"ms","traceEvents":["#));
        assert!(text.trim_end().ends_with("]}"));
        for name in ["o_send", "tx_wait", "wire", "rx_queue", "o_recv", "proc 1"] {
            assert!(text.contains(name), "missing {name}");
        }
        // Balanced braces — a cheap structural check without a parser.
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close);
        // Slices carry the virtual-microsecond timestamps.
        assert!(text.contains(r#""ts":0.000,"dur":1.800,"name":"o_send""#));
        assert!(text.contains(r#""ts":2.000,"dur":5.000,"name":"wire""#));
    }

    #[test]
    fn critical_ids_gain_the_extra_category() {
        let records = sample_records();
        let mut plain = Vec::new();
        let mut hl = Vec::new();
        write_chrome_trace_highlighted(&records, &[], &mut plain).unwrap();
        write_chrome_trace_highlighted(&records, &[1], &mut hl).unwrap();
        let plain = String::from_utf8(plain).unwrap();
        let hl = String::from_utf8(hl).unwrap();
        assert!(!plain.contains("critical"));
        assert!(hl.contains(r#""cat":"read,critical""#));
        assert!(hl.contains(r#""cat":"flow,critical""#));
        // The no-highlight path is byte-identical to the original export.
        let mut old = Vec::new();
        write_chrome_trace(&records, &mut old).unwrap();
        assert_eq!(plain, String::from_utf8(old).unwrap());
    }

    #[test]
    fn empty_input_is_valid_and_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        assert_eq!(write_chrome_trace(&[], &mut a).unwrap(), 0);
        assert_eq!(write_chrome_trace(&[], &mut b).unwrap(), 0);
        assert_eq!(a, b);
        assert!(String::from_utf8(a).unwrap().contains("traceEvents"));
    }
}
