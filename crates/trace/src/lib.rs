//! # nowlab-trace — per-message LogGP cost tracing
//!
//! The paper's entire method is attributing per-message time to the LogGP
//! components (`o`, `g`, `L`, `G`). The simulator's end-of-run counters
//! say *how much* communication happened; this crate says *where each
//! simulated microsecond went* inside every message:
//!
//! ```text
//! o_send → tx NIC wait → DMA occupancy → wire L → rx serialization
//!        → rx queue wait → o_recv → handler
//! ```
//!
//! Because the simulator is discrete-event, every boundary above is an
//! exact integer-nanosecond timestamp — attribution is *exact by
//! construction* (the seven component spans telescope to the message's
//! end-to-end time), not a sampling estimate.
//!
//! The layer is **zero-cost when disabled**: producers hold an
//! `Option<Rc<dyn TraceSink>>` and skip event construction entirely when
//! no sink is installed. Recording must never schedule events or advance
//! virtual time, so a traced run is event-count- and result-identical to
//! an untraced run.
//!
//! Three consumers are provided:
//!
//! * [`TraceRecorder`] — assembles [`MsgRecord`] lifecycles and histogram
//!   metrics into a [`TraceReport`].
//! * [`chrome::write_chrome_trace`] — `about:tracing` / Perfetto JSON.
//! * [`ring::RingSink`] — a compact fixed-size binary ring buffer that
//!   keeps memory bounded on arbitrarily long runs.
//!
//! # Examples
//!
//! Feeding a recorder by hand (the AM layer does this for real runs):
//!
//! ```
//! use nowlab_sim::{SimDelta, SimTime};
//! use nowlab_trace::{MsgKind, RecvEvent, SendEvent, TraceEvent, TraceRecorder, TraceSink, VisibleEvent};
//!
//! let us = |x| SimTime::ZERO + SimDelta::from_micros(x);
//! let rec = TraceRecorder::new(true);
//! rec.record(&TraceEvent::Send(SendEvent {
//!     id: 1, src: 0, dst: 1, reply: false, kind: MsgKind::Write, bytes: 0,
//!     o_send: SimDelta::from_micros(1.8), inject: us(1.8), tx_start: us(1.8),
//!     wire_done: us(1.8), arrival: us(6.8), in_flight: 1, timer_depth: 1,
//! }));
//! rec.record(&TraceEvent::Visible(VisibleEvent { id: 1, at: us(6.8), rx_depth: 1 }));
//! rec.record(&TraceEvent::Recv(RecvEvent { id: 1, o_recv: SimDelta::from_micros(4.0), done: us(10.8) }));
//! let report = rec.finish();
//! let m = &report.records[0];
//! assert!(m.completed);
//! assert_eq!(m.component_sum(), m.end_to_end()); // exact, always
//! assert_eq!(m.end_to_end(), SimDelta::from_micros(10.8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod ring;

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use nowlab_sim::{SimDelta, SimTime};

/// How much tracing a run performs. `Copy` so run specifications that
/// embed it stay `Copy`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// No sink installed; the hot path pays a single pointer check.
    #[default]
    Off,
    /// Aggregate metrics only: completed lifecycles fold into totals and
    /// histograms immediately, keeping memory independent of run length.
    Summary,
    /// Keep every per-message [`MsgRecord`] (required for Chrome export
    /// and the per-message property tests).
    Full,
}

/// Message category, mirroring the AM layer's payload marks without
/// depending on it (this crate sits below the AM layer in the dependency
/// graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgKind {
    /// Remote read request/reply.
    Read,
    /// Remote write.
    Write,
    /// Read-modify-write (fetch-add, compare-swap).
    Rmw,
    /// Bulk transfer fragment train.
    Bulk,
    /// Barrier protocol message.
    Barrier,
    /// Application-defined.
    User,
}

impl MsgKind {
    /// Short lowercase label (Chrome-trace category).
    pub fn as_str(self) -> &'static str {
        match self {
            MsgKind::Read => "read",
            MsgKind::Write => "write",
            MsgKind::Rmw => "rmw",
            MsgKind::Bulk => "bulk",
            MsgKind::Barrier => "barrier",
            MsgKind::User => "user",
        }
    }
}

/// A message handed to the source NIC: all sender-side timestamps are
/// known the moment injection is computed, so one event carries them all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendEvent {
    /// Trace correlation id (unique per logical message within a run).
    pub id: u64,
    /// Source processor.
    pub src: usize,
    /// Destination processor.
    pub dst: usize,
    /// True for replies (which bypass flow control).
    pub reply: bool,
    /// Message category.
    pub kind: MsgKind,
    /// Payload wire bytes (0 for short messages).
    pub bytes: u32,
    /// Send overhead the host processor paid immediately before this
    /// injection (zero for timer-driven retransmissions, whose overhead
    /// is charged interrupt-style and reported via [`TraceEvent::Retransmit`]).
    pub o_send: SimDelta,
    /// Instant the message reached the NIC (end of `o_send`).
    pub inject: SimTime,
    /// Instant the transmit context picked it up (`≥ inject` when the NIC
    /// is still busy with a predecessor).
    pub tx_start: SimTime,
    /// Instant the last fragment left the NIC (equals `tx_start` for
    /// short messages; DMA occupancy for bulk).
    pub wire_done: SimTime,
    /// Scheduled arrival at the destination NIC (`wire_done + L`, plus
    /// fault-plan jitter if any).
    pub arrival: SimTime,
    /// Flow-control window occupancy at the source when this message was
    /// sent (requests in flight, including this one).
    pub in_flight: u32,
    /// Scheduler pending-timer depth at injection (an executor probe —
    /// how much future the event queue is holding).
    pub timer_depth: u32,
}

/// The message became visible in the destination's receive queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VisibleEvent {
    /// Trace correlation id.
    pub id: u64,
    /// Instant of visibility (after rx-NIC serialization).
    pub at: SimTime,
    /// Receive-queue depth right after this push (this message included).
    pub rx_depth: u32,
}

/// The destination processor finished paying `o_recv` for the message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvEvent {
    /// Trace correlation id.
    pub id: u64,
    /// Receive overhead just paid.
    pub o_recv: SimDelta,
    /// Instant the overhead finished (handler-eligible from here).
    pub done: SimTime,
}

/// Which synchronization construct a [`TraceEvent::Wave`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaveKind {
    /// Dissemination barrier completion.
    Barrier,
    /// Broadcast participation.
    Broadcast,
    /// Reduction participation.
    Reduce,
    /// All-gather participation.
    Allgather,
    /// All-to-all participation.
    AllToAll,
}

impl WaveKind {
    /// Short lowercase label.
    pub fn as_str(self) -> &'static str {
        match self {
            WaveKind::Barrier => "barrier",
            WaveKind::Broadcast => "bcast",
            WaveKind::Reduce => "reduce",
            WaveKind::Allgather => "allgather",
            WaveKind::AllToAll => "alltoall",
        }
    }

    /// Dense discriminant, for per-kind indexing.
    pub fn index(self) -> usize {
        match self {
            WaveKind::Barrier => 0,
            WaveKind::Broadcast => 1,
            WaveKind::Reduce => 2,
            WaveKind::Allgather => 3,
            WaveKind::AllToAll => 4,
        }
    }
}

/// A fixed-capacity ASCII phase label. Sixteen bytes inline (longer names
/// truncate, non-ASCII bytes drop) so [`TraceEvent`] stays `Copy` and event
/// construction allocates nothing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PhaseLabel([u8; 16]);

impl PhaseLabel {
    /// Builds a label from a phase name.
    pub fn new(name: &str) -> Self {
        let mut bytes = [0u8; 16];
        let mut n = 0;
        for &b in name.as_bytes() {
            if n == bytes.len() {
                break;
            }
            if b.is_ascii() && b != 0 {
                bytes[n] = b;
                n += 1;
            }
        }
        PhaseLabel(bytes)
    }

    /// The label text (without padding).
    pub fn as_str(&self) -> &str {
        let len = self.0.iter().position(|&b| b == 0).unwrap_or(self.0.len());
        std::str::from_utf8(&self.0[..len]).unwrap_or("")
    }
}

impl std::fmt::Debug for PhaseLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PhaseLabel({:?})", self.as_str())
    }
}

/// One observation from the message lifecycle. Producers construct events
/// only when a sink is installed; sinks must not mutate simulation state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Sender-side injection with full NIC/wire timing.
    Send(SendEvent),
    /// Visibility in the destination receive queue.
    Visible(VisibleEvent),
    /// Receive overhead paid at the destination processor.
    Recv(RecvEvent),
    /// The request handler ran.
    Handler {
        /// Trace correlation id.
        id: u64,
        /// Instant the handler ran.
        at: SimTime,
    },
    /// The fault plan dropped the message on the wire.
    Drop {
        /// Trace correlation id.
        id: u64,
        /// Instant of the (failed) injection.
        at: SimTime,
    },
    /// The fault plan scheduled a duplicate delivery.
    DupDelivery {
        /// Trace correlation id.
        id: u64,
        /// Scheduled arrival of the duplicate.
        arrival: SimTime,
    },
    /// A retransmission timer fired and re-injected the message.
    Retransmit {
        /// Trace correlation id.
        id: u64,
        /// Attempt number now being transmitted (2 = first retry).
        attempt: u32,
        /// Interrupt-style send overhead charged for the retry.
        o_send: SimDelta,
        /// Instant the timer fired.
        at: SimTime,
    },
    /// A request→reply happens-before edge: the reply message was issued
    /// by the handler that served the request.
    Pair {
        /// Trace correlation id of the request message.
        request: u64,
        /// Trace correlation id of the reply message.
        reply: u64,
        /// Instant the reply was injected.
        at: SimTime,
    },
    /// A host compute segment the application charged between messages —
    /// the processor was busy with local work, not communication.
    Compute {
        /// Processor that computed.
        proc: usize,
        /// Instant the segment started.
        start: SimTime,
        /// Segment length.
        dur: SimDelta,
    },
    /// A deadline-bounded idle wait: the processor slept until `deadline`
    /// (servicing incoming messages along the way) and resumed at `exit`.
    Idle {
        /// Processor that waited.
        proc: usize,
        /// Instant the wait began.
        enter: SimTime,
        /// Virtual-time deadline of the wait.
        deadline: SimTime,
        /// Instant the wait ended (`≥ deadline`).
        exit: SimTime,
    },
    /// Participation in a synchronization wave: this processor completed a
    /// barrier or a collective operation. Same-index waves of the same
    /// kind on different processors belong to the same logical wave.
    Wave {
        /// Participating processor.
        proc: usize,
        /// Which construct.
        kind: WaveKind,
        /// Instant the wave completed on this processor.
        at: SimTime,
    },
    /// A measured-region boundary: the statistics epoch was reset (`begin`)
    /// or frozen (`!begin`) on this processor.
    Region {
        /// Processor that issued the mark (the measuring root).
        proc: usize,
        /// True for region start (reset), false for region end (freeze).
        begin: bool,
        /// Instant of the mark.
        at: SimTime,
    },
    /// An application phase marker.
    Phase {
        /// Processor that entered the phase.
        proc: usize,
        /// Phase name (truncated to 16 ASCII bytes).
        label: PhaseLabel,
        /// Instant the phase began on this processor.
        at: SimTime,
    },
}

impl TraceEvent {
    /// The trace correlation id this event refers to, for message-lifecycle
    /// events. Edge and segment events ([`TraceEvent::Pair`] onward) carry
    /// their own identifiers and return `None`.
    pub fn id(&self) -> Option<u64> {
        match *self {
            TraceEvent::Send(SendEvent { id, .. }) => Some(id),
            TraceEvent::Visible(VisibleEvent { id, .. }) => Some(id),
            TraceEvent::Recv(RecvEvent { id, .. }) => Some(id),
            TraceEvent::Handler { id, .. }
            | TraceEvent::Drop { id, .. }
            | TraceEvent::DupDelivery { id, .. }
            | TraceEvent::Retransmit { id, .. } => Some(id),
            TraceEvent::Pair { .. }
            | TraceEvent::Compute { .. }
            | TraceEvent::Idle { .. }
            | TraceEvent::Wave { .. }
            | TraceEvent::Region { .. }
            | TraceEvent::Phase { .. } => None,
        }
    }
}

/// Receives lifecycle events from the simulation layers.
///
/// Contract: a sink is a pure observer. It must not schedule simulation
/// events, advance virtual time, or otherwise influence anything
/// simulation-visible — traced and untraced runs must be event-count- and
/// result-identical.
pub trait TraceSink {
    /// Observes one lifecycle event.
    fn record(&self, ev: &TraceEvent);
}

/// A sink that discards everything — for measuring the cost of event
/// construction alone.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _ev: &TraceEvent) {}
}

/// Exact per-component cost attribution for one message, all integer
/// nanoseconds. For a completed, non-[tangled](MsgRecord::tangled) record
/// the seven spans telescope:
///
/// ```text
/// o_send + tx_wait + dma + wire + rx_hold + rx_queue + o_recv
///   == done − send_begin
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgRecord {
    /// Trace correlation id.
    pub id: u64,
    /// Source processor.
    pub src: usize,
    /// Destination processor.
    pub dst: usize,
    /// True for replies.
    pub reply: bool,
    /// Message category.
    pub kind: MsgKind,
    /// Payload wire bytes.
    pub bytes: u32,
    /// Physical transmissions (1 = no retransmit).
    pub attempts: u32,
    /// Attempts the fault plan dropped on the wire.
    pub dropped_attempts: u32,
    /// Instant the sender started paying `o_send`.
    pub send_begin: SimTime,
    /// Instant the message reached the NIC.
    pub inject: SimTime,
    /// Instant the transmit context picked it up.
    pub tx_start: SimTime,
    /// Instant the last fragment left the NIC.
    pub wire_done: SimTime,
    /// Instant it arrived at the destination NIC.
    pub arrival: SimTime,
    /// Instant it became visible in the receive queue.
    pub visible: SimTime,
    /// Instant the destination processor popped it.
    pub pop: SimTime,
    /// Instant `o_recv` finished.
    pub done: SimTime,
    /// Instant the request handler ran, if it did.
    pub handler_at: Option<SimTime>,
    /// The other half of this message's request→reply pair, when one was
    /// observed: for a request, the id of the reply its handler issued;
    /// for a reply, the id of the request it answers.
    pub pair: Option<u64>,
    /// True once `o_recv` completed at the destination.
    pub completed: bool,
    /// True if fault-path races (a duplicate outrunning a retransmitted
    /// original) made one attribution span ambiguous; such spans are
    /// clamped to zero and excluded from exactness claims.
    pub tangled: bool,
    /// Send overhead (host processor, source).
    pub o_send: SimDelta,
    /// Wait for the transmit NIC context.
    pub tx_wait: SimDelta,
    /// DMA occupancy of the fragment train (zero for short messages).
    pub dma: SimDelta,
    /// Wire transit (`L`, plus fault jitter).
    pub wire: SimDelta,
    /// Receive-NIC serialization before visibility.
    pub rx_hold: SimDelta,
    /// Wait in the receive queue for the processor's poll.
    pub rx_queue: SimDelta,
    /// Receive overhead (host processor, destination).
    pub o_recv: SimDelta,
}

impl MsgRecord {
    /// Sum of the seven component spans.
    pub fn component_sum(&self) -> SimDelta {
        self.o_send
            + self.tx_wait
            + self.dma
            + self.wire
            + self.rx_hold
            + self.rx_queue
            + self.o_recv
    }

    /// End-to-end time: start of `o_send` to end of `o_recv`.
    pub fn end_to_end(&self) -> SimDelta {
        self.done.saturating_since(self.send_begin)
    }
}

/// Whole-run sums of the seven component spans over completed messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComponentTotals {
    /// Total send overhead.
    pub o_send: SimDelta,
    /// Total transmit-NIC wait.
    pub tx_wait: SimDelta,
    /// Total DMA occupancy.
    pub dma: SimDelta,
    /// Total wire transit.
    pub wire: SimDelta,
    /// Total receive-NIC serialization.
    pub rx_hold: SimDelta,
    /// Total receive-queue wait.
    pub rx_queue: SimDelta,
    /// Total receive overhead.
    pub o_recv: SimDelta,
}

impl ComponentTotals {
    /// Sum of all seven totals.
    pub fn sum(&self) -> SimDelta {
        self.o_send
            + self.tx_wait
            + self.dma
            + self.wire
            + self.rx_hold
            + self.rx_queue
            + self.o_recv
    }

    fn accumulate(&mut self, r: &MsgRecord) {
        self.o_send += r.o_send;
        self.tx_wait += r.tx_wait;
        self.dma += r.dma;
        self.wire += r.wire;
        self.rx_hold += r.rx_hold;
        self.rx_queue += r.rx_queue;
        self.o_recv += r.o_recv;
    }
}

/// A power-of-two (log₂ nanosecond / log₂ count) histogram: cheap to
/// update, deterministic, and order-independent to merge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

/// Bucket index for a value: 0 holds zero, bucket `i ≥ 1` holds
/// `[2^(i−1), 2^i)`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest observation (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (exact).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate quantile: the inclusive upper bound of the first bucket
    /// whose cumulative count reaches `q·total` (`0.0 < q ≤ 1.0`). Exact
    /// for the max, within 2× below it.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return match b {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << b) - 1,
                };
            }
        }
        self.max
    }
}

/// A host compute segment ([`TraceEvent::Compute`]), as recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ComputeSeg {
    /// Processor that computed.
    pub proc: usize,
    /// Instant the segment started.
    pub start: SimTime,
    /// Segment length.
    pub dur: SimDelta,
}

/// A deadline-bounded idle wait ([`TraceEvent::Idle`]), as recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdleSeg {
    /// Processor that waited.
    pub proc: usize,
    /// Instant the wait began.
    pub enter: SimTime,
    /// Virtual-time deadline of the wait.
    pub deadline: SimTime,
    /// Instant the wait ended.
    pub exit: SimTime,
}

/// A synchronization-wave participation ([`TraceEvent::Wave`]) with its
/// per-(processor, kind) sequence index: the `index`-th wave of `kind` on
/// `proc`. Equal indices of the same kind across processors identify the
/// same logical wave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaveMark {
    /// Participating processor.
    pub proc: usize,
    /// Which construct.
    pub kind: WaveKind,
    /// Per-(processor, kind) sequence number, from zero.
    pub index: u64,
    /// Instant the wave completed on this processor.
    pub at: SimTime,
}

/// A measured-region boundary ([`TraceEvent::Region`]), as recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionMark {
    /// Processor that issued the mark.
    pub proc: usize,
    /// True for region start (reset), false for region end (freeze).
    pub begin: bool,
    /// Instant of the mark.
    pub at: SimTime,
}

/// An application phase marker ([`TraceEvent::Phase`]), as recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseMark {
    /// Processor that entered the phase.
    pub proc: usize,
    /// Phase name.
    pub label: PhaseLabel,
    /// Instant the phase began on this processor.
    pub at: SimTime,
}

/// Aggregate run metrics: plain data (`Clone + PartialEq + Send`), safe to
/// carry across the parallel-sweep boundary and compare bit-for-bit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Logical messages observed (first injections).
    pub msgs: u64,
    /// Messages whose `o_recv` completed.
    pub completed: u64,
    /// Wire drops (fault plan).
    pub drops: u64,
    /// Duplicate deliveries the fault plan scheduled.
    pub dup_deliveries: u64,
    /// Deliveries/receives observed after a record had already completed
    /// (duplicates and stale retransmissions doing redundant work).
    pub extra_deliveries: u64,
    /// Retransmission-timer firings that re-injected a message.
    pub retransmits: u64,
    /// Events that referenced no known record (raw injections, id 0).
    pub orphan_events: u64,
    /// Records whose attribution was clamped (see [`MsgRecord::tangled`]).
    pub tangled: u64,
    /// Request→reply pairing edges observed ([`TraceEvent::Pair`]).
    /// Accumulated identically in Summary and Full mode, so a consumer can
    /// tell a run recorded without per-record edges (`pairs > 0`, records
    /// empty) from a run that genuinely had none.
    pub pairs: u64,
    /// Send events for an already-completed lifecycle (stale
    /// retransmissions doing redundant work). Full mode also bumps the
    /// finished record's attempt count; Summary mode used to drop these on
    /// the evicted-record path — this counter keeps both modes honest.
    pub late_attempts: u64,
    /// Host compute segments observed ([`TraceEvent::Compute`]).
    pub compute_segs: u64,
    /// Total compute time across those segments.
    pub compute_total: SimDelta,
    /// Deadline-bounded idle waits observed ([`TraceEvent::Idle`]).
    pub idle_segs: u64,
    /// Total enter→exit idle time across those waits.
    pub idle_total: SimDelta,
    /// Synchronization-wave participations observed ([`TraceEvent::Wave`]).
    pub waves: u64,
    /// Application phase markers observed ([`TraceEvent::Phase`]).
    pub phase_marks: u64,
    /// Measured-region boundary marks observed ([`TraceEvent::Region`]).
    pub region_marks: u64,
    /// Component totals over completed messages.
    pub totals: ComponentTotals,
    /// Total end-to-end time over completed messages.
    pub e2e_total: SimDelta,
    /// Interrupt-style send overhead charged by retransmission timers
    /// (outside the per-message attribution).
    pub retransmit_o_total: SimDelta,
    /// Per-source gaps between consecutive injections, ns.
    pub interval_hist: Histogram,
    /// Receive-queue depth observed at each visibility.
    pub queue_hist: Histogram,
    /// Flow-control window occupancy observed at each send.
    pub occupancy_hist: Histogram,
    /// Scheduler pending-timer depth observed at each send.
    pub timer_hist: Histogram,
    /// Per-message end-to-end time, ns.
    pub e2e_hist: Histogram,
    /// Unique messages per (source row, destination column).
    pub matrix: Vec<Vec<u64>>,
}

impl TraceSummary {
    /// Fraction of completed-message end-to-end time spent in host
    /// overhead (`o_send + o_recv`).
    pub fn share_overhead(&self) -> f64 {
        self.share(self.totals.o_send + self.totals.o_recv)
    }

    /// Fraction spent in the NIC (`tx_wait + dma + rx_hold`).
    pub fn share_nic(&self) -> f64 {
        self.share(self.totals.tx_wait + self.totals.dma + self.totals.rx_hold)
    }

    /// Fraction spent on the wire (`L` + jitter).
    pub fn share_wire(&self) -> f64 {
        self.share(self.totals.wire)
    }

    /// Fraction spent waiting in the receive queue for the destination
    /// processor's poll.
    pub fn share_rx_queue(&self) -> f64 {
        self.share(self.totals.rx_queue)
    }

    fn share(&self, part: SimDelta) -> f64 {
        let total = self.e2e_total.as_nanos();
        if total == 0 {
            0.0
        } else {
            part.as_nanos() as f64 / total as f64
        }
    }

    /// Human-readable report: component table, distribution quantiles, and
    /// the communication-balance shade matrix (shared with the AM layer's
    /// Figure-4 rendering).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace summary: {} msgs, {} completed, {} drops, {} retransmits, {} dup deliveries",
            self.msgs, self.completed, self.drops, self.retransmits, self.dup_deliveries
        );
        let _ = writeln!(
            out,
            "  edges: {} req-reply pairs, {} compute segs, {} idle waits, {} waves",
            self.pairs, self.compute_segs, self.idle_segs, self.waves
        );
        let per_msg = |d: SimDelta| {
            if self.completed == 0 {
                0.0
            } else {
                d.as_micros_f64() / self.completed as f64
            }
        };
        let row = |out: &mut String, name: &str, d: SimDelta, total: SimDelta| {
            let pct = if total.is_zero() {
                0.0
            } else {
                100.0 * d.as_nanos() as f64 / total.as_nanos() as f64
            };
            let _ = writeln!(
                out,
                "  {name:<14} {:>14.3}us {:>6.1}% {:>10.3}us/msg",
                d.as_micros_f64(),
                pct,
                per_msg(d)
            );
        };
        let t = &self.totals;
        let e2e = self.e2e_total;
        row(&mut out, "o_send", t.o_send, e2e);
        row(&mut out, "tx_wait", t.tx_wait, e2e);
        row(&mut out, "dma", t.dma, e2e);
        row(&mut out, "wire", t.wire, e2e);
        row(&mut out, "rx_hold", t.rx_hold, e2e);
        row(&mut out, "rx_queue", t.rx_queue, e2e);
        row(&mut out, "o_recv", t.o_recv, e2e);
        row(&mut out, "end-to-end", e2e, e2e);
        let q = |h: &Histogram| {
            format!(
                "p50≤{} p99≤{} max={} (n={})",
                h.quantile(0.5),
                h.quantile(0.99),
                h.max(),
                h.count()
            )
        };
        let _ = writeln!(out, "  send interval ns   {}", q(&self.interval_hist));
        let _ = writeln!(out, "  rx queue depth     {}", q(&self.queue_hist));
        let _ = writeln!(out, "  window occupancy   {}", q(&self.occupancy_hist));
        let _ = writeln!(out, "  timer queue depth  {}", q(&self.timer_hist));
        let _ = writeln!(out, "  e2e per message ns {}", q(&self.e2e_hist));
        if !self.matrix.is_empty() {
            let _ = writeln!(out, "message balance matrix (rows=src, cols=dst):");
            out.push_str(&render_shade_matrix(&self.matrix));
        }
        out
    }
}

/// A finished trace: the aggregate summary plus (in [`TraceMode::Full`])
/// every per-message record in injection order, and the happens-before
/// side channels (compute/idle segments, waves, region and phase marks)
/// the DAG builder in `nowlab-predict` consumes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Aggregate metrics.
    pub summary: TraceSummary,
    /// Per-message lifecycle records (empty in [`TraceMode::Summary`]).
    pub records: Vec<MsgRecord>,
    /// Host compute segments, in emission order (Full mode only).
    pub computes: Vec<ComputeSeg>,
    /// Deadline-bounded idle waits, in emission order (Full mode only).
    pub idles: Vec<IdleSeg>,
    /// Synchronization waves, in emission order (Full mode only).
    pub waves: Vec<WaveMark>,
    /// Measured-region boundaries, in emission order (Full mode only).
    pub regions: Vec<RegionMark>,
    /// Application phase markers, in emission order (Full mode only).
    pub phases: Vec<PhaseMark>,
}

impl TraceReport {
    /// True when the run recorded the happens-before edges the message DAG
    /// needs: full per-message records, with reply pairing attached where
    /// the summary says pairing occurred.
    pub fn has_edges(&self) -> bool {
        !self.records.is_empty()
            && (self.summary.pairs == 0 || self.records.iter().any(|r| r.pair.is_some()))
    }
}

/// In-flight state for a message whose lifecycle is still open.
#[derive(Clone, Copy, Debug)]
struct Pending {
    src: usize,
    dst: usize,
    reply: bool,
    kind: MsgKind,
    bytes: u32,
    attempts: u32,
    dropped_attempts: u32,
    o_send: SimDelta,
    inject: SimTime,
    tx_start: SimTime,
    wire_done: SimTime,
    arrival: SimTime,
    visible: Option<SimTime>,
    handler_at: Option<SimTime>,
    pair: Option<u64>,
}

#[derive(Default)]
struct RecorderState {
    pending: BTreeMap<u64, Pending>,
    finished: BTreeMap<u64, MsgRecord>,
    done_ids: BTreeSet<u64>,
    last_send: BTreeMap<usize, SimTime>,
    wave_seq: BTreeMap<(usize, usize), u64>,
    computes: Vec<ComputeSeg>,
    idles: Vec<IdleSeg>,
    waves: Vec<WaveMark>,
    regions: Vec<RegionMark>,
    phases: Vec<PhaseMark>,
    summary: TraceSummary,
}

/// The standard [`TraceSink`]: pairs lifecycle events into [`MsgRecord`]s
/// and aggregates a [`TraceSummary`]. Deterministic (BTree collections
/// only) and purely observational.
pub struct TraceRecorder {
    keep_records: bool,
    state: RefCell<RecorderState>,
}

impl TraceRecorder {
    /// Creates a recorder. With `keep_records` the full per-message record
    /// set is retained ([`TraceMode::Full`]); without it, completed
    /// lifecycles fold into the summary and are evicted, so memory stays
    /// proportional to messages in flight.
    pub fn new(keep_records: bool) -> Self {
        TraceRecorder {
            keep_records,
            state: RefCell::new(RecorderState::default()),
        }
    }

    /// Produces the report for everything observed so far.
    pub fn finish(&self) -> TraceReport {
        let st = self.state.borrow();
        let mut records: Vec<MsgRecord> = Vec::new();
        if self.keep_records {
            records.extend(st.finished.values().copied());
            // Open lifecycles (in flight at the end of the run) are
            // reported too, flagged incomplete.
            for (&id, p) in &st.pending {
                records.push(incomplete_record(id, p));
            }
            records.sort_by_key(|r| r.id);
        }
        TraceReport {
            summary: st.summary.clone(),
            records,
            computes: st.computes.clone(),
            idles: st.idles.clone(),
            waves: st.waves.clone(),
            regions: st.regions.clone(),
            phases: st.phases.clone(),
        }
    }
}

fn incomplete_record(id: u64, p: &Pending) -> MsgRecord {
    MsgRecord {
        id,
        src: p.src,
        dst: p.dst,
        reply: p.reply,
        kind: p.kind,
        bytes: p.bytes,
        attempts: p.attempts,
        dropped_attempts: p.dropped_attempts,
        send_begin: begin_of(p),
        inject: p.inject,
        tx_start: p.tx_start,
        wire_done: p.wire_done,
        arrival: p.arrival,
        visible: p.visible.unwrap_or(p.arrival),
        pop: p.arrival,
        done: p.arrival,
        handler_at: p.handler_at,
        pair: p.pair,
        completed: false,
        tangled: false,
        o_send: p.o_send,
        tx_wait: SimDelta::ZERO,
        dma: SimDelta::ZERO,
        wire: SimDelta::ZERO,
        rx_hold: SimDelta::ZERO,
        rx_queue: SimDelta::ZERO,
        o_recv: SimDelta::ZERO,
    }
}

fn begin_of(p: &Pending) -> SimTime {
    SimTime::from_nanos(p.inject.as_nanos().saturating_sub(p.o_send.as_nanos()))
}

/// Closes a lifecycle: derives the seven spans from the recorded
/// timestamps. Every span is a difference of adjacent discrete-event
/// timestamps, so the spans telescope to `done − send_begin` exactly;
/// fault-path races that would make a span negative mark the record
/// tangled instead (the span clamps to zero).
fn finalize(id: u64, p: &Pending, ev: &RecvEvent) -> MsgRecord {
    let mut tangled = false;
    let visible = match p.visible {
        Some(v) => v,
        None => {
            tangled = true;
            p.arrival
        }
    };
    let pop = SimTime::from_nanos(ev.done.as_nanos().saturating_sub(ev.o_recv.as_nanos()));
    let mut span = |later: SimTime, earlier: SimTime| {
        if later < earlier {
            tangled = true;
            SimDelta::ZERO
        } else {
            later.since(earlier)
        }
    };
    let tx_wait = span(p.tx_start, p.inject);
    let dma = span(p.wire_done, p.tx_start);
    let wire = span(p.arrival, p.wire_done);
    let rx_hold = span(visible, p.arrival);
    let rx_queue = span(pop, visible);
    MsgRecord {
        id,
        src: p.src,
        dst: p.dst,
        reply: p.reply,
        kind: p.kind,
        bytes: p.bytes,
        attempts: p.attempts,
        dropped_attempts: p.dropped_attempts,
        send_begin: begin_of(p),
        inject: p.inject,
        tx_start: p.tx_start,
        wire_done: p.wire_done,
        arrival: p.arrival,
        visible,
        pop,
        done: ev.done,
        handler_at: p.handler_at,
        pair: p.pair,
        completed: true,
        tangled,
        o_send: p.o_send,
        tx_wait,
        dma,
        wire,
        rx_hold,
        rx_queue,
        o_recv: ev.o_recv,
    }
}

impl TraceSink for TraceRecorder {
    fn record(&self, ev: &TraceEvent) {
        let st = &mut *self.state.borrow_mut();
        match ev {
            TraceEvent::Send(e) => {
                if let Some(prev) = st.last_send.get(&e.src) {
                    st.summary
                        .interval_hist
                        .record(e.inject.saturating_since(*prev).as_nanos());
                }
                st.last_send.insert(e.src, e.inject);
                st.summary.occupancy_hist.record(u64::from(e.in_flight));
                st.summary.timer_hist.record(u64::from(e.timer_depth));
                if let Some(p) = st.pending.get_mut(&e.id) {
                    // Retransmission of an open lifecycle: restart the
                    // attempt's sender-side timestamps.
                    p.attempts += 1;
                    p.o_send = e.o_send;
                    p.inject = e.inject;
                    p.tx_start = e.tx_start;
                    p.wire_done = e.wire_done;
                    p.arrival = e.arrival;
                    p.visible = None;
                } else if let Some(r) = st.finished.get_mut(&e.id) {
                    r.attempts += 1; // stale retransmission after completion
                    st.summary.late_attempts += 1;
                } else if st.done_ids.contains(&e.id) {
                    // Summary mode already evicted the completed record;
                    // without this counter the stale attempt would vanish
                    // and Summary would disagree with Full.
                    st.summary.late_attempts += 1;
                } else {
                    st.summary.msgs += 1;
                    let m = &mut st.summary.matrix;
                    let dim = e.src.max(e.dst) + 1;
                    if m.len() < dim {
                        m.resize(dim, Vec::new());
                    }
                    for row in m.iter_mut() {
                        if row.len() < dim {
                            row.resize(dim, 0);
                        }
                    }
                    m[e.src][e.dst] += 1;
                    st.pending.insert(
                        e.id,
                        Pending {
                            src: e.src,
                            dst: e.dst,
                            reply: e.reply,
                            kind: e.kind,
                            bytes: e.bytes,
                            attempts: 1,
                            dropped_attempts: 0,
                            o_send: e.o_send,
                            inject: e.inject,
                            tx_start: e.tx_start,
                            wire_done: e.wire_done,
                            arrival: e.arrival,
                            visible: None,
                            handler_at: None,
                            pair: None,
                        },
                    );
                }
            }
            TraceEvent::Visible(e) => {
                st.summary.queue_hist.record(u64::from(e.rx_depth));
                if let Some(p) = st.pending.get_mut(&e.id) {
                    if p.visible.is_none() {
                        p.visible = Some(e.at);
                    } else {
                        st.summary.extra_deliveries += 1;
                    }
                } else if st.finished.contains_key(&e.id) || st.done_ids.contains(&e.id) {
                    st.summary.extra_deliveries += 1;
                } else {
                    st.summary.orphan_events += 1;
                }
            }
            TraceEvent::Recv(e) => {
                if let Some(p) = st.pending.remove(&e.id) {
                    let rec = finalize(e.id, &p, e);
                    st.summary.completed += 1;
                    if rec.tangled {
                        st.summary.tangled += 1;
                    }
                    st.summary.totals.accumulate(&rec);
                    let e2e = rec.end_to_end();
                    st.summary.e2e_total += e2e;
                    st.summary.e2e_hist.record(e2e.as_nanos());
                    if self.keep_records {
                        st.finished.insert(e.id, rec);
                    } else {
                        st.done_ids.insert(e.id);
                    }
                } else if st.finished.contains_key(&e.id) || st.done_ids.contains(&e.id) {
                    st.summary.extra_deliveries += 1;
                } else {
                    st.summary.orphan_events += 1;
                }
            }
            TraceEvent::Handler { id, at } => {
                if let Some(p) = st.pending.get_mut(id) {
                    if p.handler_at.is_none() {
                        p.handler_at = Some(*at);
                    }
                } else if let Some(r) = st.finished.get_mut(id) {
                    if r.handler_at.is_none() {
                        r.handler_at = Some(*at);
                    }
                }
            }
            TraceEvent::Drop { id, .. } => {
                st.summary.drops += 1;
                if let Some(p) = st.pending.get_mut(id) {
                    p.dropped_attempts += 1;
                }
            }
            TraceEvent::DupDelivery { .. } => {
                st.summary.dup_deliveries += 1;
            }
            TraceEvent::Retransmit { o_send, .. } => {
                st.summary.retransmits += 1;
                st.summary.retransmit_o_total += *o_send;
            }
            TraceEvent::Pair { request, reply, .. } => {
                st.summary.pairs += 1;
                // The request has usually completed (its o_recv preceded
                // the handler that sent the reply); the reply was just
                // injected and is pending. Cover both sides anyway.
                if let Some(r) = st.finished.get_mut(request) {
                    if r.pair.is_none() {
                        r.pair = Some(*reply);
                    }
                } else if let Some(p) = st.pending.get_mut(request) {
                    if p.pair.is_none() {
                        p.pair = Some(*reply);
                    }
                }
                if let Some(p) = st.pending.get_mut(reply) {
                    if p.pair.is_none() {
                        p.pair = Some(*request);
                    }
                } else if let Some(r) = st.finished.get_mut(reply) {
                    if r.pair.is_none() {
                        r.pair = Some(*request);
                    }
                }
            }
            TraceEvent::Compute { proc, start, dur } => {
                st.summary.compute_segs += 1;
                st.summary.compute_total += *dur;
                if self.keep_records {
                    st.computes.push(ComputeSeg {
                        proc: *proc,
                        start: *start,
                        dur: *dur,
                    });
                }
            }
            TraceEvent::Idle {
                proc,
                enter,
                deadline,
                exit,
            } => {
                st.summary.idle_segs += 1;
                st.summary.idle_total += exit.saturating_since(*enter);
                if self.keep_records {
                    st.idles.push(IdleSeg {
                        proc: *proc,
                        enter: *enter,
                        deadline: *deadline,
                        exit: *exit,
                    });
                }
            }
            TraceEvent::Wave { proc, kind, at } => {
                st.summary.waves += 1;
                if self.keep_records {
                    let seq = st.wave_seq.entry((*proc, kind.index())).or_insert(0);
                    let index = *seq;
                    *seq += 1;
                    st.waves.push(WaveMark {
                        proc: *proc,
                        kind: *kind,
                        index,
                        at: *at,
                    });
                }
            }
            TraceEvent::Region { proc, begin, at } => {
                st.summary.region_marks += 1;
                if self.keep_records {
                    st.regions.push(RegionMark {
                        proc: *proc,
                        begin: *begin,
                        at: *at,
                    });
                }
            }
            TraceEvent::Phase { proc, label, at } => {
                st.summary.phase_marks += 1;
                if self.keep_records {
                    st.phases.push(PhaseMark {
                        proc: *proc,
                        label: *label,
                        at: *at,
                    });
                }
            }
        }
    }
}

/// Renders a count matrix as ASCII art, one character per cell, scaled
/// from `' '` (zero) to `'@'` (the matrix maximum). The single formatting
/// path behind both the AM layer's Figure-4 balance matrix and
/// [`TraceSummary::render`].
pub fn render_shade_matrix(rows: &[Vec<u64>]) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let max = rows.iter().flatten().copied().max().unwrap_or(0);
    let mut out = String::new();
    for row in rows {
        for &v in row {
            let idx = if max == 0 {
                0
            } else {
                ((v as f64 / max as f64) * (SHADES.len() - 1) as f64).round() as usize
            };
            out.push(SHADES[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: f64) -> SimTime {
        SimTime::ZERO + SimDelta::from_micros(x)
    }

    fn send(id: u64, src: usize, dst: usize, begin_us: f64) -> TraceEvent {
        TraceEvent::Send(SendEvent {
            id,
            src,
            dst,
            reply: false,
            kind: MsgKind::Write,
            bytes: 0,
            o_send: SimDelta::from_micros(1.8),
            inject: us(begin_us + 1.8),
            tx_start: us(begin_us + 1.8),
            wire_done: us(begin_us + 1.8),
            arrival: us(begin_us + 6.8),
            in_flight: 1,
            timer_depth: 1,
        })
    }

    fn complete(rec: &TraceRecorder, id: u64, begin_us: f64) {
        rec.record(&send(id, 0, 1, begin_us));
        rec.record(&TraceEvent::Visible(VisibleEvent {
            id,
            at: us(begin_us + 6.8),
            rx_depth: 1,
        }));
        rec.record(&TraceEvent::Recv(RecvEvent {
            id,
            o_recv: SimDelta::from_micros(4.0),
            done: us(begin_us + 10.8),
        }));
    }

    #[test]
    fn lifecycle_components_sum_to_end_to_end() {
        let rec = TraceRecorder::new(true);
        complete(&rec, 1, 0.0);
        let rep = rec.finish();
        assert_eq!(rep.summary.msgs, 1);
        assert_eq!(rep.summary.completed, 1);
        let m = &rep.records[0];
        assert!(m.completed && !m.tangled);
        assert_eq!(m.component_sum(), m.end_to_end());
        assert_eq!(m.end_to_end(), SimDelta::from_micros(10.8));
        assert_eq!(m.o_send, SimDelta::from_micros(1.8));
        assert_eq!(m.wire, SimDelta::from_micros(5.0));
        assert_eq!(m.o_recv, SimDelta::from_micros(4.0));
        assert_eq!(m.tx_wait + m.dma + m.rx_hold + m.rx_queue, SimDelta::ZERO);
        assert_eq!(rep.summary.e2e_total, SimDelta::from_micros(10.8));
    }

    #[test]
    fn queue_and_nic_waits_are_attributed() {
        let rec = TraceRecorder::new(true);
        rec.record(&TraceEvent::Send(SendEvent {
            id: 7,
            src: 0,
            dst: 1,
            reply: false,
            kind: MsgKind::Read,
            bytes: 4096,
            o_send: SimDelta::from_micros(1.8),
            inject: us(1.8),
            tx_start: us(3.0),    // tx NIC busy 1.2us
            wire_done: us(110.0), // DMA 107us
            arrival: us(115.0),
            in_flight: 3,
            timer_depth: 2,
        }));
        rec.record(&TraceEvent::Visible(VisibleEvent {
            id: 7,
            at: us(118.0), // rx context held it 3us
            rx_depth: 2,
        }));
        rec.record(&TraceEvent::Recv(RecvEvent {
            id: 7,
            o_recv: SimDelta::from_micros(4.0),
            done: us(130.0), // popped at 126, queued 8us
        }));
        let m = rec.finish().records[0];
        assert_eq!(m.tx_wait, SimDelta::from_micros(1.2));
        assert_eq!(m.dma, SimDelta::from_micros(107.0));
        assert_eq!(m.wire, SimDelta::from_micros(5.0));
        assert_eq!(m.rx_hold, SimDelta::from_micros(3.0));
        assert_eq!(m.rx_queue, SimDelta::from_micros(8.0));
        assert_eq!(m.component_sum(), m.end_to_end());
        assert_eq!(m.end_to_end(), SimDelta::from_micros(130.0));
    }

    #[test]
    fn summary_mode_evicts_but_matches_full_mode_summary() {
        let full = TraceRecorder::new(true);
        let slim = TraceRecorder::new(false);
        for id in 1..=100 {
            complete(&full, id, id as f64 * 20.0);
            complete(&slim, id, id as f64 * 20.0);
        }
        let a = full.finish();
        let b = slim.finish();
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.records.len(), 100);
        assert!(b.records.is_empty());
        assert!(slim.state.borrow().pending.is_empty(), "eviction failed");
    }

    #[test]
    fn retransmit_restarts_the_attempt_and_counts() {
        let rec = TraceRecorder::new(true);
        rec.record(&send(1, 0, 1, 0.0)); // original, dropped on the wire
        rec.record(&TraceEvent::Drop { id: 1, at: us(1.8) });
        rec.record(&TraceEvent::Retransmit {
            id: 1,
            attempt: 2,
            o_send: SimDelta::from_micros(1.8),
            at: us(500.0),
        });
        // Retry injected at the timer instant, o_send charged out of band.
        rec.record(&TraceEvent::Send(SendEvent {
            id: 1,
            src: 0,
            dst: 1,
            reply: false,
            kind: MsgKind::Write,
            bytes: 0,
            o_send: SimDelta::ZERO,
            inject: us(500.0),
            tx_start: us(500.0),
            wire_done: us(500.0),
            arrival: us(505.0),
            in_flight: 1,
            timer_depth: 1,
        }));
        rec.record(&TraceEvent::Visible(VisibleEvent {
            id: 1,
            at: us(505.0),
            rx_depth: 1,
        }));
        rec.record(&TraceEvent::Recv(RecvEvent {
            id: 1,
            o_recv: SimDelta::from_micros(4.0),
            done: us(509.0),
        }));
        let rep = rec.finish();
        let m = &rep.records[0];
        assert_eq!(rep.summary.msgs, 1, "retransmit is not a new message");
        assert_eq!(m.attempts, 2);
        assert_eq!(m.dropped_attempts, 1);
        assert!(m.completed && !m.tangled);
        // Attribution describes the successful attempt.
        assert_eq!(m.send_begin, us(500.0));
        assert_eq!(m.component_sum(), m.end_to_end());
        assert_eq!(rep.summary.retransmits, 1);
        assert_eq!(rep.summary.drops, 1);
        assert_eq!(rep.summary.retransmit_o_total, SimDelta::from_micros(1.8));
    }

    #[test]
    fn duplicate_delivery_after_completion_is_extra() {
        let rec = TraceRecorder::new(true);
        complete(&rec, 1, 0.0);
        rec.record(&TraceEvent::Visible(VisibleEvent {
            id: 1,
            at: us(40.0),
            rx_depth: 1,
        }));
        rec.record(&TraceEvent::Recv(RecvEvent {
            id: 1,
            o_recv: SimDelta::from_micros(4.0),
            done: us(44.0),
        }));
        let rep = rec.finish();
        assert_eq!(rep.summary.completed, 1);
        assert_eq!(rep.summary.extra_deliveries, 2);
        // The completed attribution is untouched.
        assert_eq!(rep.records[0].done, us(10.8));
    }

    #[test]
    fn incomplete_messages_are_reported_open() {
        let rec = TraceRecorder::new(true);
        rec.record(&send(9, 1, 0, 0.0));
        let rep = rec.finish();
        assert_eq!(rep.summary.msgs, 1);
        assert_eq!(rep.summary.completed, 0);
        assert!(!rep.records[0].completed);
    }

    #[test]
    fn histograms_bucket_by_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1000, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1024);
        assert!((h.mean() - (0.0 + 1.0 + 2.0 + 3.0 + 1000.0 + 1024.0) / 6.0).abs() < 1e-9);
        assert_eq!(h.quantile(1.0), 2047);
        assert_eq!(h.quantile(0.1), 0);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn shade_matrix_renders_two_node_fixture() {
        // The satellite fixture: 2 nodes, each sending only to the other,
        // one link carrying 3x the traffic of the reverse link.
        let m = vec![vec![0, 300], vec![100, 0]];
        let s = render_shade_matrix(&m);
        assert_eq!(s, " @\n- \n");
        // All-zero matrices render blank, not NaN garbage.
        assert_eq!(render_shade_matrix(&[vec![0, 0]]), "  \n");
    }

    #[test]
    fn summary_render_mentions_all_components() {
        let rec = TraceRecorder::new(false);
        complete(&rec, 1, 0.0);
        complete(&rec, 2, 30.0);
        let text = rec.finish().summary.render();
        for part in [
            "o_send",
            "tx_wait",
            "dma",
            "wire",
            "rx_hold",
            "rx_queue",
            "o_recv",
            "end-to-end",
            "balance matrix",
        ] {
            assert!(text.contains(part), "missing {part} in:\n{text}");
        }
    }

    #[test]
    fn axis_shares_partition_end_to_end() {
        let rec = TraceRecorder::new(false);
        complete(&rec, 1, 0.0);
        let s = rec.finish().summary;
        let total = s.share_overhead() + s.share_nic() + s.share_wire() + s.share_rx_queue();
        assert!(
            (total - 1.0).abs() < 1e-12,
            "shares must partition: {total}"
        );
    }
}
