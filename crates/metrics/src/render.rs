//! ASCII rendering of saved report files (the `nowlab report`
//! subcommand and `--metrics-summary`). Works from the parsed JSON so a
//! report renders without re-running the simulation, and so the render
//! path exercises the exact bytes a consumer would read.

use std::fmt::Write as _;

use crate::json::{parse, Value};
use crate::{ProcState, N_STATES};

const MAX_COLS: usize = 64;

/// Sums `vals` into at most [`MAX_COLS`] columns for terminal display.
fn downsample(vals: &[u64]) -> Vec<u64> {
    if vals.len() <= MAX_COLS {
        return vals.to_vec();
    }
    let group = vals.len().div_ceil(MAX_COLS);
    vals.chunks(group).map(|c| c.iter().sum()).collect()
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn state_totals(v: &Value) -> Result<[u64; N_STATES], String> {
    let vals = v.as_u64s().ok_or("totals: expected an integer array")?;
    if vals.len() != N_STATES {
        return Err(format!("totals: expected {N_STATES} states"));
    }
    let mut out = [0u64; N_STATES];
    out.copy_from_slice(&vals);
    Ok(out)
}

fn shares_line(totals: &[u64; N_STATES]) -> String {
    let whole: u64 = totals.iter().sum();
    let mut line = String::new();
    for s in ProcState::ALL {
        let _ = write!(
            line,
            "{}{} {:.1}%",
            if line.is_empty() { "" } else { "  " },
            s.label(),
            pct(totals[s as usize], whole)
        );
    }
    line
}

fn req<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn phase_table(out: &mut String, phases: &[Value]) -> Result<(), String> {
    let _ = writeln!(
        out,
        "{:<14} {:>9}  {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "phase", "proc-ms", "cmp%", "osnd%", "orcv%", "d_o%", "txw%", "rxs%", "idle%"
    );
    for ph in phases {
        let name = req(ph, "name")?.as_str().ok_or("phase name")?;
        let totals = state_totals(req(ph, "totals")?)?;
        let whole: u64 = totals.iter().sum();
        let _ = write!(out, "{:<14} {:>9.3}", name, ms(whole));
        for s in ProcState::ALL {
            let _ = write!(out, " {:>6.1}", pct(totals[s as usize], whole));
        }
        out.push('\n');
    }
    Ok(())
}

fn am_line(summary: &Value) -> Result<String, String> {
    let am = req(summary, "am")?;
    Ok(format!(
        "am protocol: retransmits {}, send window depth mean {:.2} / max {}",
        req(am, "retransmits")?.as_u64().ok_or("retransmits")?,
        req(am, "win_depth_mean")?
            .as_f64()
            .ok_or("win_depth_mean")?,
        req(am, "win_depth_max")?.as_u64().ok_or("win_depth_max")?,
    ))
}

/// The failure-detector line (schema v2). Absent in v1 files, which
/// predate the node-failure model — render nothing rather than erroring.
fn detector_line(summary: &Value) -> Result<Option<String>, String> {
    let Some(d) = summary.get("detector") else {
        return Ok(None);
    };
    Ok(Some(format!(
        "failure detector: {} heartbeats, {} suspicions ({} false), {} deaths, max detect latency {:.1} µs",
        req(d, "heartbeats")?.as_u64().ok_or("heartbeats")?,
        req(d, "suspicions")?.as_u64().ok_or("suspicions")?,
        req(d, "false_suspicions")?
            .as_u64()
            .ok_or("false_suspicions")?,
        req(d, "peer_deaths")?.as_u64().ok_or("peer_deaths")?,
        req(d, "max_detect_latency_ns")?
            .as_u64()
            .ok_or("max_detect_latency_ns")? as f64
            / 1e3,
    )))
}

/// The collective-counters line (schema v3). Absent in v1/v2 files,
/// which predate the collectives layer — render nothing rather than
/// erroring.
fn coll_line(summary: &Value) -> Result<Option<String>, String> {
    let Some(c) = summary.get("coll") else {
        return Ok(None);
    };
    Ok(Some(format!(
        "collectives: {} broadcasts, {} reductions, {} all-gathers, {} all-to-alls",
        req(c, "bcasts")?.as_u64().ok_or("bcasts")?,
        req(c, "reduces")?.as_u64().ok_or("reduces")?,
        req(c, "allgathers")?.as_u64().ok_or("allgathers")?,
        req(c, "alltoalls")?.as_u64().ok_or("alltoalls")?,
    )))
}

fn render_run(v: &Value) -> Result<String, String> {
    let mut out = String::new();
    let app = req(v, "app")?.as_str().ok_or("app")?;
    let procs = req(v, "procs")?.as_u64().ok_or("procs")? as usize;
    let seed = req(v, "seed")?.as_u64().ok_or("seed")?;
    let window_ns = req(v, "window_ns")?.as_u64().ok_or("window_ns")?;
    let end_ns = req(v, "end_ns")?.as_u64().ok_or("end_ns")?;
    let summary = req(v, "summary")?;
    let _ = writeln!(
        out,
        "metrics: {app} on {procs} processors (seed {seed}, window {:.1} µs, {:.3} ms simulated)",
        window_ns as f64 / 1e3,
        ms(end_ns),
    );
    let totals = state_totals(req(summary, "totals")?)?;
    let _ = writeln!(
        out,
        "\nstate shares (all processors):\n  {}",
        shares_line(&totals)
    );

    // Per-processor compute-utilization shade timeline.
    let proc_rows = req(v, "proc")?.as_arr().ok_or("proc: expected array")?;
    let mut rows: Vec<Vec<u64>> = Vec::new();
    let mut nic_tx_total = 0u64;
    let mut nic_rx_total = 0u64;
    for p in proc_rows {
        let timeline = req(p, "timeline")?.as_arr().ok_or("timeline")?;
        let compute: Vec<u64> = timeline
            .iter()
            .map(|row| Ok::<u64, String>(state_totals(row)?[ProcState::Compute as usize]))
            .collect::<Result<_, _>>()?;
        rows.push(downsample(&compute));
        nic_tx_total += req(p, "nic_tx_total")?.as_u64().ok_or("nic_tx_total")?;
        nic_rx_total += req(p, "nic_rx_total")?.as_u64().ok_or("nic_rx_total")?;
    }
    if !rows.is_empty() {
        let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
        let group_us = window_ns as f64 / 1e3
            * (req(v, "proc")?.as_arr().unwrap()[0]
                .get("timeline")
                .and_then(Value::as_arr)
                .map(|t| t.len().div_ceil(cols.max(1)))
                .unwrap_or(1)) as f64;
        let _ = writeln!(
            out,
            "\ncompute utilization, one cell per {group_us:.1} µs (shade ' '..'@' = none..max):"
        );
        for (i, line) in nowlab_trace::render_shade_matrix(&rows).lines().enumerate() {
            let _ = writeln!(out, "  p{i:<3}|{line}|");
        }
    }

    let _ = writeln!(out, "\nphase table:");
    phase_table(&mut out, req(summary, "phases")?.as_arr().ok_or("phases")?)?;

    let wires = req(v, "wire")?.as_arr().ok_or("wire")?;
    let busiest = wires
        .iter()
        .map(|l| {
            Ok::<_, String>((
                req(l, "busy_ns")?.as_u64().ok_or("busy_ns")?,
                req(l, "src")?.as_u64().ok_or("src")?,
                req(l, "dst")?.as_u64().ok_or("dst")?,
            ))
        })
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .max();
    let per_proc_end = end_ns * procs.max(1) as u64;
    let _ = write!(
        out,
        "\nnic occupancy: tx {:.1}%  rx {:.1}%    links: {}",
        pct(nic_tx_total, per_proc_end),
        pct(nic_rx_total, per_proc_end),
        wires.len()
    );
    if let Some((busy, src, dst)) = busiest {
        let _ = write!(
            out,
            ", busiest {src}->{dst} ({:.1}% of elapsed)",
            pct(busy, end_ns)
        );
    }
    out.push('\n');
    let _ = writeln!(out, "{}", am_line(summary)?);
    if let Some(line) = detector_line(summary)? {
        let _ = writeln!(out, "{line}");
    }
    if let Some(line) = coll_line(summary)? {
        let _ = writeln!(out, "{line}");
    }
    let events = req(v, "events_per_window")?
        .as_u64s()
        .ok_or("events_per_window")?;
    if !events.is_empty() {
        let _ = writeln!(
            out,
            "events per window: min {} / max {} over {} windows",
            events.iter().min().unwrap(),
            events.iter().max().unwrap(),
            events.len()
        );
    }
    Ok(out)
}

fn render_sweep(v: &Value) -> Result<String, String> {
    let mut out = String::new();
    let app = req(v, "app")?.as_str().ok_or("app")?;
    let axis = req(v, "axis")?.as_str().ok_or("axis")?;
    let procs = req(v, "procs")?.as_u64().ok_or("procs")?;
    let _ = writeln!(
        out,
        "metrics sweep: {app} on {procs} processors, axis {axis}"
    );
    let points = req(v, "points")?.as_arr().ok_or("points")?;
    // Columns: per phase (taken from the first point), compute share.
    let mut phase_names: Vec<String> = Vec::new();
    if let Some(p0) = points.first() {
        for ph in req(req(p0, "summary")?, "phases")?
            .as_arr()
            .ok_or("phases")?
        {
            phase_names.push(req(ph, "name")?.as_str().ok_or("name")?.to_string());
        }
    }
    let _ = write!(out, "{:>9} {:>9}  {:>6}", axis, "slowdown", "cmp%");
    for n in &phase_names {
        let _ = write!(out, " {:>10}", format!("cmp%:{n}"));
    }
    out.push('\n');
    for p in points {
        let summary = req(p, "summary")?;
        let totals = state_totals(req(summary, "totals")?)?;
        let _ = write!(
            out,
            "{:>9.2} {:>9.3}  {:>6.1}",
            req(p, "x")?.as_f64().ok_or("x")?,
            req(p, "slowdown")?.as_f64().ok_or("slowdown")?,
            pct(
                totals[ProcState::Compute as usize],
                totals.iter().sum::<u64>()
            ),
        );
        for name in &phase_names {
            let share = req(summary, "phases")?
                .as_arr()
                .ok_or("phases")?
                .iter()
                .find(|ph| ph.get("name").and_then(Value::as_str) == Some(name))
                .map(|ph| {
                    let t = state_totals(req(ph, "totals")?)?;
                    Ok::<f64, String>(pct(t[ProcState::Compute as usize], t.iter().sum::<u64>()))
                })
                .transpose()?
                .unwrap_or(0.0);
            let _ = write!(out, " {share:>10.1}");
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "(cmp% = compute share of all processor time; per-phase columns show the\n compute-bound -> overhead-bound crossover as the knob grows)"
    );
    Ok(out)
}

/// Renders a saved `nowlab-metrics-report` JSON document (either kind)
/// as ASCII. Returns a message describing the first malformation found.
pub fn render_report(text: &str) -> Result<String, String> {
    let v = parse(text)?;
    let schema = req(&v, "schema")?.as_str().ok_or("schema")?;
    if schema != crate::report::SCHEMA_NAME {
        return Err(format!("not a metrics report (schema '{schema}')"));
    }
    let version = req(&v, "version")?.as_u64().ok_or("version")?;
    if version > crate::report::SCHEMA_VERSION {
        return Err(format!(
            "report version {version} is newer than this binary understands ({})",
            crate::report::SCHEMA_VERSION
        ));
    }
    match req(&v, "kind")?.as_str() {
        Some("run") => render_run(&v),
        Some("sweep") => render_sweep(&v),
        k => Err(format!("unknown report kind {k:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRecorder, MetricsSink, RunMeta, WaitKind};
    use nowlab_sim::{SimDelta, SimTime};

    #[test]
    fn run_report_round_trips_through_json_and_renders() {
        let rec = MetricsRecorder::new(2, SimDelta::from_nanos(1_000));
        rec.busy(
            0,
            ProcState::Compute,
            SimTime::ZERO,
            SimTime::from_nanos(700),
        );
        rec.phase(0, "work", SimTime::from_nanos(700));
        rec.wait_enter(0, WaitKind::Rx, SimTime::from_nanos(700));
        rec.wait_exit(0, SimTime::from_nanos(1_500));
        rec.nic_tx(0, SimTime::from_nanos(10), SimTime::from_nanos(40));
        rec.wire(0, 1, SimTime::from_nanos(40), SimTime::from_nanos(90));
        rec.window_depth(0, 2, SimTime::from_nanos(10));
        let mut report = rec.finish(SimTime::from_nanos(2_000));
        report.events_per_window = vec![3, 9];
        let mut buf = Vec::new();
        report
            .write_json(
                &RunMeta {
                    app: "TestApp",
                    procs: 2,
                    seed: 7,
                },
                &mut buf,
            )
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let rendered = render_report(&text).expect("render");
        assert!(rendered.contains("TestApp on 2 processors"), "{rendered}");
        assert!(rendered.contains("phase table"), "{rendered}");
        assert!(rendered.contains("work"), "{rendered}");
        assert!(rendered.contains("retransmits 0"), "{rendered}");
        assert!(
            rendered.contains("failure detector: 0 heartbeats"),
            "{rendered}"
        );
        assert!(rendered.contains("collectives: 0 broadcasts"), "{rendered}");
        assert!(rendered.contains("events per window"), "{rendered}");
    }

    #[test]
    fn sweep_report_renders_per_phase_columns() {
        let rec = MetricsRecorder::new(1, SimDelta::from_nanos(1_000));
        rec.busy(
            0,
            ProcState::Compute,
            SimTime::ZERO,
            SimTime::from_nanos(500),
        );
        rec.phase(0, "permute", SimTime::from_nanos(500));
        rec.busy(
            0,
            ProcState::OSend,
            SimTime::from_nanos(500),
            SimTime::from_nanos(900),
        );
        let report = rec.finish(SimTime::from_nanos(1_000));
        let mut buf = Vec::new();
        crate::write_sweep_json(
            "TestApp",
            "overhead",
            1,
            &[
                crate::SweepPointMeta {
                    x: 2.9,
                    runtime_ns: 1_000,
                    slowdown: 1.0,
                    summary: &report.summary,
                },
                crate::SweepPointMeta {
                    x: 10.0,
                    runtime_ns: 2_000,
                    slowdown: 2.0,
                    summary: &report.summary,
                },
            ],
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let rendered = render_report(&text).expect("render");
        assert!(rendered.contains("axis overhead"), "{rendered}");
        assert!(rendered.contains("cmp%:permute"), "{rendered}");
        assert!(rendered.contains("cmp%:init"), "{rendered}");
    }

    #[test]
    fn version_and_schema_are_checked() {
        assert!(render_report("{\"schema\":\"other\",\"version\":1}").is_err());
        let newer = format!(
            "{{\"schema\":\"{}\",\"version\":{},\"kind\":\"run\"}}",
            crate::report::SCHEMA_NAME,
            crate::report::SCHEMA_VERSION + 1
        );
        assert!(render_report(&newer).unwrap_err().contains("newer"));
    }
}
