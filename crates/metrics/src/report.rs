//! Report data model and the versioned machine-readable JSON schema.
//!
//! The JSON is hand-rolled in the same style as the trace crate's
//! Chrome exporter: every value is an integer, a fixed-precision float,
//! or an ASCII app/phase label, so no escaping machinery is needed and
//! no serializer dependency is taken. Two runs of the same (program,
//! seed, window) produce byte-identical files.

use std::io::{self, Write};

use crate::{ProcState, N_STATES};

/// Name of the schema emitted in every report file.
pub const SCHEMA_NAME: &str = "nowlab-metrics-report";
/// Version of the schema emitted in every report file. Bump on any
/// field removal or meaning change; additions are backward compatible
/// (see DESIGN.md §10).
pub const SCHEMA_VERSION: u64 = 3;

/// Per-state nanosecond totals for one application phase, summed over
/// all processors.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseSlice {
    /// Phase name as passed to `Ctx::phase` (or [`crate::INIT_PHASE`]).
    pub name: String,
    /// Nanoseconds per [`ProcState`], in `ProcState::ALL` order.
    pub totals: [u64; N_STATES],
}

impl PhaseSlice {
    /// Total processor-nanoseconds spent in this phase.
    pub fn elapsed(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Share of this phase spent in `state` (0 when the phase is empty).
    pub fn share(&self, state: ProcState) -> f64 {
        let total = self.elapsed();
        if total == 0 {
            0.0
        } else {
            self.totals[state as usize] as f64 / total as f64
        }
    }
}

/// Compact cross-run digest carried on every sweep point.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSummary {
    /// Final simulated time of the run, nanoseconds.
    pub end_ns: u64,
    /// Number of processors.
    pub procs: usize,
    /// Nanoseconds per [`ProcState`] summed over all processors.
    pub totals: [u64; N_STATES],
    /// Per-phase breakdown (first entry is always the init phase).
    pub phases: Vec<PhaseSlice>,
    /// Transport retransmissions during the run.
    pub retransmits: u64,
    /// Deepest observed send window occupancy.
    pub depth_max: u64,
    /// Mean send window occupancy over all injections.
    pub depth_mean: f64,
    /// Failure-detector counters (schema v2; all zero on a healthy run).
    pub detector: DetectorSummary,
    /// Collective-operation counters (schema v3; all zero when the run
    /// uses no collectives).
    pub coll: CollSummary,
}

/// Failure-detector counters for the run, summed over all observers
/// (schema v2). All zero when the node-fault plan is inert — the
/// detector never runs and the report is byte-identical modulo the
/// constant zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectorSummary {
    /// Heartbeats received across all processors.
    pub heartbeats: u64,
    /// Suspicions raised (silence exceeded the suspect threshold).
    pub suspicions: u64,
    /// Suspicions retracted after the peer's heartbeat resumed.
    pub false_suspicions: u64,
    /// Peers confirmed dead across all observers.
    pub peer_deaths: u64,
    /// Worst crash-to-confirmation latency observed, nanoseconds.
    pub max_detect_latency_ns: u64,
}

/// Collective-operation counters for the run, summed over all
/// processors (schema v3). Every processor participating in one
/// collective counts once, so a broadcast on `p` processors adds `p`
/// to `bcasts`. All zero when the program never calls the collective
/// layer — the report is byte-identical modulo the constant zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollSummary {
    /// Broadcast participations.
    pub bcasts: u64,
    /// Reduction participations.
    pub reduces: u64,
    /// All-gather participations.
    pub allgathers: u64,
    /// All-to-all participations.
    pub alltoalls: u64,
}

impl MetricsSummary {
    /// Share of all processor time spent in `state`.
    pub fn share(&self, state: ProcState) -> f64 {
        let total: u64 = self.totals.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.totals[state as usize] as f64 / total as f64
        }
    }
}

/// One processor's sampled series.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcSeries {
    /// Nanoseconds per [`ProcState`] over the whole run.
    pub totals: [u64; N_STATES],
    /// Per window, nanoseconds per [`ProcState`]; each row sums exactly
    /// to the window length (last row: to the residual).
    pub timeline: Vec<[u64; N_STATES]>,
    /// NIC send-context busy nanoseconds per window.
    pub nic_tx: Vec<u64>,
    /// NIC receive-context busy nanoseconds per window.
    pub nic_rx: Vec<u64>,
    /// NIC send-context busy nanoseconds, whole run.
    pub nic_tx_total: u64,
    /// NIC receive-context busy nanoseconds, whole run.
    pub nic_rx_total: u64,
}

/// Busy time of one directed link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireBusy {
    /// Sending processor.
    pub src: usize,
    /// Receiving processor.
    pub dst: usize,
    /// Nanoseconds the link carried bits (fragments may pipeline, so
    /// this can exceed elapsed time on a hot link).
    pub busy_ns: u64,
}

/// The full per-run metrics report.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsReport {
    /// Sampling window, nanoseconds.
    pub window_ns: u64,
    /// Final simulated time, nanoseconds.
    pub end_ns: u64,
    /// One entry per processor.
    pub procs: Vec<ProcSeries>,
    /// Busy time per directed link, sorted by (src, dst).
    pub wire: Vec<WireBusy>,
    /// Simulator events fired per window (executor event-density
    /// sampling; empty when the harness did not enable it).
    pub events_per_window: Vec<u64>,
    /// The compact digest (also what sweeps carry per point).
    pub summary: MetricsSummary,
}

/// Run identification stamped into a report file.
#[derive(Clone, Copy, Debug)]
pub struct RunMeta<'a> {
    /// Application name (e.g. `Radix`).
    pub app: &'a str,
    /// Processor count.
    pub procs: usize,
    /// Seed of the run.
    pub seed: u64,
}

fn write_u64s<W: Write>(w: &mut W, vals: &[u64]) -> io::Result<()> {
    write!(w, "[")?;
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, "{v}")?;
    }
    write!(w, "]")
}

fn write_states<W: Write>(w: &mut W) -> io::Result<()> {
    write!(w, r#""states":["#)?;
    for (i, s) in ProcState::ALL.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, r#""{}""#, s.label())?;
    }
    write!(w, "]")
}

fn write_summary<W: Write>(w: &mut W, s: &MetricsSummary) -> io::Result<()> {
    write!(
        w,
        r#"{{"end_ns":{},"procs":{},"totals":"#,
        s.end_ns, s.procs
    )?;
    write_u64s(w, &s.totals)?;
    write!(w, r#","phases":["#)?;
    for (i, ph) in s.phases.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, r#"{{"name":"{}","totals":"#, ph.name)?;
        write_u64s(w, &ph.totals)?;
        write!(w, "}}")?;
    }
    write!(
        w,
        r#"],"am":{{"retransmits":{},"win_depth_max":{},"win_depth_mean":{:.3}}},"#,
        s.retransmits, s.depth_max, s.depth_mean
    )?;
    let d = &s.detector;
    write!(
        w,
        r#""detector":{{"heartbeats":{},"suspicions":{},"false_suspicions":{},"peer_deaths":{},"max_detect_latency_ns":{}}},"#,
        d.heartbeats, d.suspicions, d.false_suspicions, d.peer_deaths, d.max_detect_latency_ns
    )?;
    let c = &s.coll;
    write!(
        w,
        r#""coll":{{"bcasts":{},"reduces":{},"allgathers":{},"alltoalls":{}}}}}"#,
        c.bcasts, c.reduces, c.allgathers, c.alltoalls
    )
}

impl MetricsReport {
    /// Writes the versioned `"kind":"run"` report.
    pub fn write_json<W: Write>(&self, meta: &RunMeta<'_>, w: &mut W) -> io::Result<()> {
        write!(
            w,
            r#"{{"schema":"{SCHEMA_NAME}","version":{SCHEMA_VERSION},"kind":"run","app":"{}","procs":{},"seed":{},"window_ns":{},"end_ns":{},"#,
            meta.app, meta.procs, meta.seed, self.window_ns, self.end_ns
        )?;
        write_states(w)?;
        write!(w, r#","proc":["#)?;
        for (i, p) in self.procs.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(w, "\n  {{\"id\":{i},\"totals\":")?;
            write_u64s(w, &p.totals)?;
            write!(w, r#","timeline":["#)?;
            for (j, row) in p.timeline.iter().enumerate() {
                if j > 0 {
                    write!(w, ",")?;
                }
                write_u64s(w, row)?;
            }
            write!(w, r#"],"nic_tx":"#)?;
            write_u64s(w, &p.nic_tx)?;
            write!(w, r#","nic_rx":"#)?;
            write_u64s(w, &p.nic_rx)?;
            write!(
                w,
                r#","nic_tx_total":{},"nic_rx_total":{}}}"#,
                p.nic_tx_total, p.nic_rx_total
            )?;
        }
        write!(w, "],\n\"wire\":[")?;
        for (i, l) in self.wire.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(
                w,
                r#"{{"src":{},"dst":{},"busy_ns":{}}}"#,
                l.src, l.dst, l.busy_ns
            )?;
        }
        write!(w, r#"],"events_per_window":"#)?;
        write_u64s(w, &self.events_per_window)?;
        write!(w, r#","summary":"#)?;
        write_summary(w, &self.summary)?;
        writeln!(w, "}}")
    }
}

/// One sweep point's metadata for [`write_sweep_json`].
#[derive(Clone, Copy, Debug)]
pub struct SweepPointMeta<'a> {
    /// Swept parameter value in paper units (µs or MB/s).
    pub x: f64,
    /// Measured runtime, nanoseconds.
    pub runtime_ns: u64,
    /// Slowdown relative to the baseline point.
    pub slowdown: f64,
    /// The point's metrics digest.
    pub summary: &'a MetricsSummary,
}

/// Writes the versioned `"kind":"sweep"` report: one summary per swept
/// point, enough to plot per-phase utilization against the knob.
pub fn write_sweep_json<W: Write>(
    app: &str,
    axis: &str,
    procs: usize,
    points: &[SweepPointMeta<'_>],
    w: &mut W,
) -> io::Result<()> {
    write!(
        w,
        r#"{{"schema":"{SCHEMA_NAME}","version":{SCHEMA_VERSION},"kind":"sweep","app":"{app}","axis":"{axis}","procs":{procs},"#,
    )?;
    write_states(w)?;
    write!(w, r#","points":["#)?;
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(
            w,
            "\n  {{\"x\":{:.3},\"runtime_ns\":{},\"slowdown\":{:.4},\"summary\":",
            p.x, p.runtime_ns, p.slowdown
        )?;
        write_summary(w, p.summary)?;
        write!(w, "}}")?;
    }
    writeln!(w, "]}}")
}
