//! A minimal recursive-descent JSON parser, just enough to read back
//! the report files this crate writes (`nowlab report` renders saved
//! reports without re-running the simulation). No external dependency;
//! objects preserve key order in a `Vec` so rendering is deterministic.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (no fraction or exponent).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// String (escape sequences `\" \\ \/ \n \t \r` supported).
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as a float (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// An array of non-negative integers, if that is what this is.
    pub fn as_u64s(&self) -> Option<Vec<u64>> {
        self.as_arr()?.iter().map(Value::as_u64).collect()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.pos, self.bytes[self.pos] as char
            ))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.lit("true", Value::Bool(true)),
            b'f' => self.lit("false", Value::Bool(false)),
            b'n' => self.lit("null", Value::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut kv = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            kv.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(kv));
                }
                c => return Err(format!("expected ',' or '}}', found '{}'", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut vals = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(vals));
        }
        loop {
            vals.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(vals));
                }
                c => return Err(format!("expected ',' or ']', found '{}'", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    out.push(match e {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        _ => return Err(format!("unsupported escape '\\{}'", e as char)),
                    });
                }
                _ => out.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        if text.is_empty() {
            return Err(format!("expected a value at byte {start}"));
        }
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number '{text}': {e}"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad number '{text}': {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":-3}"#).unwrap();
        assert_eq!(v.get("e"), Some(&Value::Int(-3)));
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("tru").is_err());
    }
}
