//! Simulated-time metrics registry for the nowlab cluster laboratory.
//!
//! Where `nowlab-trace` attributes cost *per message*, this crate
//! aggregates *per processor-nanosecond*: every instant of every
//! processor's virtual time is attributed to exactly one of seven states
//! (compute, send overhead, receive overhead, Δo busy-loop, send-window
//! wait, receive stall, idle), bucketed into fixed simulated-time windows
//! and segmented by application phase markers. The accounting is
//! *conserving by construction*: a per-processor cursor walks virtual
//! time monotonically and every `[from, to)` span is deposited exactly
//! once, so the components of each window sum exactly to the window
//! length (the aggregate twin of the trace crate's telescoping
//! invariant).
//!
//! Like tracing, the subsystem is zero-cost when disabled: the AM layer
//! holds an `OnceCell<Rc<dyn MetricsSink>>` and the hot path pays one
//! pointer check. Hooks are *passive* — they piggyback on state
//! transitions the simulation already performs and schedule no events of
//! their own, so enabling metrics cannot perturb virtual time, event
//! counts, or any simulation result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;

use nowlab_sim::{SimDelta, SimTime};

pub mod json;
mod render;
mod report;

pub use render::render_report;
pub use report::{
    write_sweep_json, CollSummary, DetectorSummary, MetricsReport, MetricsSummary, PhaseSlice,
    ProcSeries, RunMeta, SweepPointMeta, WireBusy,
};

/// Whether the metrics registry records anything for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MetricsMode {
    /// No recording; the simulation pays one pointer check per hook.
    #[default]
    Off,
    /// Record utilization timelines, phase tables, and AM counters.
    On,
}

/// Number of processor states tracked ([`ProcState`] variants).
pub const N_STATES: usize = 7;

/// The exhaustive, mutually exclusive classification of a processor's
/// virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcState {
    /// Application compute (`Ctx::compute` spans).
    Compute = 0,
    /// Baseline send overhead `o_send` (processor busy injecting).
    OSend = 1,
    /// Baseline receive overhead `o_recv` (processor busy extracting).
    ORecv = 2,
    /// The Δo busy-loop added by the overhead knob (paper §3).
    DeltaO = 3,
    /// Stalled for a send-window credit (flow control back-pressure).
    TxWait = 4,
    /// Stalled polling for an awaited message or deadline.
    RxStall = 5,
    /// None of the above (local bookkeeping between spans).
    Idle = 6,
}

impl ProcState {
    /// All states, in report column order.
    pub const ALL: [ProcState; N_STATES] = [
        ProcState::Compute,
        ProcState::OSend,
        ProcState::ORecv,
        ProcState::DeltaO,
        ProcState::TxWait,
        ProcState::RxStall,
        ProcState::Idle,
    ];

    /// Stable machine-readable label (also the JSON schema order).
    pub fn label(self) -> &'static str {
        match self {
            ProcState::Compute => "compute",
            ProcState::OSend => "o_send",
            ProcState::ORecv => "o_recv",
            ProcState::DeltaO => "delta_o",
            ProcState::TxWait => "tx_wait",
            ProcState::RxStall => "rx_stall",
            ProcState::Idle => "idle",
        }
    }
}

/// What a processor is waiting *for* while it services the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitKind {
    /// Blocked acquiring a send-window credit ([`ProcState::TxWait`]).
    Tx,
    /// Blocked on a condition or deadline ([`ProcState::RxStall`]).
    Rx,
}

/// Passive observer of simulation state transitions.
///
/// Implementations must not schedule events, mutate simulation state, or
/// read host time — the analyzer's MET001/DET lints enforce this for the
/// in-tree recorder. All hooks are invoked at the *end* of the span they
/// describe (spans never overlap per processor; see [`MetricsRecorder`]).
pub trait MetricsSink {
    /// Processor `proc` occupied `state` over `[from, to)`.
    fn busy(&self, proc: usize, state: ProcState, from: SimTime, to: SimTime);
    /// Processor `proc` entered its outermost wait of kind `kind` at `at`.
    fn wait_enter(&self, proc: usize, kind: WaitKind, at: SimTime);
    /// Processor `proc` left its outermost wait at `at`.
    fn wait_exit(&self, proc: usize, at: SimTime);
    /// `proc`'s NIC send context was occupied over `[from, to)`.
    fn nic_tx(&self, proc: usize, from: SimTime, to: SimTime);
    /// `proc`'s NIC receive context was occupied over `[from, to)`.
    fn nic_rx(&self, proc: usize, from: SimTime, to: SimTime);
    /// The directed link `src -> dst` carried bits over `[from, to)`.
    fn wire(&self, src: usize, dst: usize, from: SimTime, to: SimTime);
    /// At injection time `at`, `proc` had `depth` unacked sends in flight.
    fn window_depth(&self, proc: usize, depth: usize, at: SimTime);
    /// `proc`'s transport retransmitted a message at `at`.
    fn retransmit(&self, proc: usize, at: SimTime);
    /// `proc` crossed into application phase `name` at `at`.
    fn phase(&self, proc: usize, name: &str, at: SimTime);
}

/// A sink that ignores everything (useful for tests and benchmarks).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {
    fn busy(&self, _: usize, _: ProcState, _: SimTime, _: SimTime) {}
    fn wait_enter(&self, _: usize, _: WaitKind, _: SimTime) {}
    fn wait_exit(&self, _: usize, _: SimTime) {}
    fn nic_tx(&self, _: usize, _: SimTime, _: SimTime) {}
    fn nic_rx(&self, _: usize, _: SimTime, _: SimTime) {}
    fn wire(&self, _: usize, _: usize, _: SimTime, _: SimTime) {}
    fn window_depth(&self, _: usize, _: usize, _: SimTime) {}
    fn retransmit(&self, _: usize, _: SimTime) {}
    fn phase(&self, _: usize, _: &str, _: SimTime) {}
}

/// Default sampling window: 100 µs of simulated time (the suite's
/// test-scale runs last a few ms; benchmark runs hundreds).
pub const DEFAULT_WINDOW: SimDelta = SimDelta::from_micros_int(100);

/// Name attributed to time before the first explicit phase marker.
pub const INIT_PHASE: &str = "init";

#[derive(Clone, Default)]
struct ProcRec {
    /// Virtual nanosecond up to which this processor is fully attributed.
    cursor: u64,
    /// The outermost wait the processor is currently inside, if any.
    waiting: Option<WaitKind>,
    /// Interned id of the current application phase.
    phase: usize,
    totals: [u64; N_STATES],
    timeline: Vec<[u64; N_STATES]>,
    nic_tx: Vec<u64>,
    nic_rx: Vec<u64>,
    nic_tx_total: u64,
    nic_rx_total: u64,
}

struct RecState {
    window: u64,
    procs: Vec<ProcRec>,
    wire: BTreeMap<(usize, usize), u64>,
    phase_names: Vec<String>,
    phase_ids: BTreeMap<String, usize>,
    /// Per phase, per state, nanoseconds summed over all processors.
    phase_totals: Vec<[u64; N_STATES]>,
    retransmits: u64,
    depth_max: u64,
    depth_sum: u128,
    depth_n: u64,
}

/// The in-tree [`MetricsSink`]: cursor-based exact attribution into
/// fixed simulated-time windows.
///
/// Per processor, a cursor tracks the last attributed nanosecond. Leaf
/// busy spans (`busy`) first flush the gap `[cursor, from)` to the
/// *background* state — the enclosing wait kind if the processor is
/// inside `wait_until`/`idle_until`, otherwise [`ProcState::Idle`] —
/// then deposit the span itself. Because every nanosecond is deposited
/// exactly once, each window's components sum exactly to the window
/// length (exact `u64` arithmetic, no float accumulation).
pub struct MetricsRecorder {
    state: RefCell<RecState>,
}

/// Splits `[from, to)` across fixed windows, adding each chunk to
/// `bump(window_index, chunk_ns)`.
fn deposit(window: u64, mut from: u64, to: u64, mut bump: impl FnMut(usize, u64)) {
    while from < to {
        let w = from / window;
        let wend = (w + 1) * window;
        let chunk = to.min(wend) - from;
        bump(w as usize, chunk);
        from += chunk;
    }
}

impl RecState {
    fn account(&mut self, proc: usize, state: ProcState, from: u64, to: u64) {
        if to <= from {
            return;
        }
        let s = state as usize;
        let phase = self.procs[proc].phase;
        self.phase_totals[phase][s] += to - from;
        let p = &mut self.procs[proc];
        p.totals[s] += to - from;
        let timeline = &mut p.timeline;
        deposit(self.window, from, to, |w, chunk| {
            if timeline.len() <= w {
                timeline.resize(w + 1, [0; N_STATES]);
            }
            timeline[w][s] += chunk;
        });
    }

    /// Flushes `[cursor, to)` to the background state and advances the
    /// cursor.
    fn advance(&mut self, proc: usize, to: u64) {
        let p = &self.procs[proc];
        let (cursor, waiting) = (p.cursor, p.waiting);
        if to > cursor {
            let bg = match waiting {
                Some(WaitKind::Tx) => ProcState::TxWait,
                Some(WaitKind::Rx) => ProcState::RxStall,
                None => ProcState::Idle,
            };
            self.account(proc, bg, cursor, to);
            self.procs[proc].cursor = to;
        }
    }

    fn intern(&mut self, name: &str) -> usize {
        if let Some(&id) = self.phase_ids.get(name) {
            return id;
        }
        let id = self.phase_names.len();
        self.phase_names.push(name.to_string());
        self.phase_ids.insert(name.to_string(), id);
        self.phase_totals.push([0; N_STATES]);
        id
    }
}

impl MetricsRecorder {
    /// Creates a recorder for `procs` processors with the given sampling
    /// window (see [`DEFAULT_WINDOW`]).
    pub fn new(procs: usize, window: SimDelta) -> Self {
        let mut state = RecState {
            window: window.as_nanos().max(1),
            procs: vec![ProcRec::default(); procs],
            wire: BTreeMap::new(),
            phase_names: Vec::new(),
            phase_ids: BTreeMap::new(),
            phase_totals: Vec::new(),
            retransmits: 0,
            depth_max: 0,
            depth_sum: 0,
            depth_n: 0,
        };
        state.intern(INIT_PHASE);
        MetricsRecorder {
            state: RefCell::new(state),
        }
    }

    /// Closes the books at simulated time `end` (flushing every
    /// processor's residual span as background time) and produces the
    /// report. `end` is normally the run's final virtual time.
    pub fn finish(&self, end: SimTime) -> MetricsReport {
        let mut st = self.state.borrow_mut();
        let end_ns = end.as_nanos();
        for proc in 0..st.procs.len() {
            st.advance(proc, end_ns);
        }
        let window = st.window;
        let windows = (end_ns as usize).div_ceil(window as usize).max(1);
        let procs: Vec<ProcSeries> = st
            .procs
            .iter()
            .map(|p| {
                let mut timeline = p.timeline.clone();
                timeline.resize(windows, [0; N_STATES]);
                let mut nic_tx = p.nic_tx.clone();
                let mut nic_rx = p.nic_rx.clone();
                nic_tx.resize(windows, 0);
                nic_rx.resize(windows, 0);
                ProcSeries {
                    totals: p.totals,
                    timeline,
                    nic_tx,
                    nic_rx,
                    nic_tx_total: p.nic_tx_total,
                    nic_rx_total: p.nic_rx_total,
                }
            })
            .collect();
        let phase_totals = st.phase_totals.clone();
        let mut totals = [0u64; N_STATES];
        for p in &procs {
            for (t, v) in totals.iter_mut().zip(p.totals.iter()) {
                *t += v;
            }
        }
        let phases: Vec<PhaseSlice> = st
            .phase_names
            .iter()
            .zip(phase_totals.iter())
            .map(|(name, tot)| PhaseSlice {
                name: name.clone(),
                totals: *tot,
            })
            .collect();
        let summary = MetricsSummary {
            end_ns,
            procs: procs.len(),
            totals,
            phases,
            retransmits: st.retransmits,
            depth_max: st.depth_max,
            depth_mean: if st.depth_n == 0 {
                0.0
            } else {
                st.depth_sum as f64 / st.depth_n as f64
            },
            // The recorder never sees detector traffic (heartbeats are
            // out-of-band) and cannot tell a collective apart from its
            // constituent messages; the harness stamps both from the
            // run's cluster statistics after `finish`.
            detector: DetectorSummary::default(),
            coll: CollSummary::default(),
        };
        MetricsReport {
            window_ns: window,
            end_ns,
            procs,
            wire: st
                .wire
                .iter()
                .map(|(&(src, dst), &busy_ns)| WireBusy { src, dst, busy_ns })
                .collect(),
            events_per_window: Vec::new(),
            summary,
        }
    }
}

impl MetricsSink for MetricsRecorder {
    fn busy(&self, proc: usize, state: ProcState, from: SimTime, to: SimTime) {
        let mut st = self.state.borrow_mut();
        if proc >= st.procs.len() {
            return;
        }
        let (mut a, b) = (from.as_nanos(), to.as_nanos());
        debug_assert!(
            a >= st.procs[proc].cursor,
            "overlapping busy span for proc {proc}: [{a}, {b}) vs cursor {}",
            st.procs[proc].cursor
        );
        st.advance(proc, a);
        // Release-mode safety: never let a malformed span rewind the
        // cursor (attribution stays conserving, the span is truncated).
        a = a.max(st.procs[proc].cursor);
        st.account(proc, state, a, b);
        let p = &mut st.procs[proc];
        p.cursor = p.cursor.max(b);
    }

    fn wait_enter(&self, proc: usize, kind: WaitKind, at: SimTime) {
        let mut st = self.state.borrow_mut();
        if proc >= st.procs.len() {
            return;
        }
        st.advance(proc, at.as_nanos());
        st.procs[proc].waiting = Some(kind);
    }

    fn wait_exit(&self, proc: usize, at: SimTime) {
        let mut st = self.state.borrow_mut();
        if proc >= st.procs.len() {
            return;
        }
        st.advance(proc, at.as_nanos());
        st.procs[proc].waiting = None;
    }

    fn nic_tx(&self, proc: usize, from: SimTime, to: SimTime) {
        let mut st = self.state.borrow_mut();
        if proc >= st.procs.len() || to <= from {
            return;
        }
        let window = st.window;
        let p = &mut st.procs[proc];
        p.nic_tx_total += to.since(from).as_nanos();
        let tl = &mut p.nic_tx;
        deposit(window, from.as_nanos(), to.as_nanos(), |w, chunk| {
            if tl.len() <= w {
                tl.resize(w + 1, 0);
            }
            tl[w] += chunk;
        });
    }

    fn nic_rx(&self, proc: usize, from: SimTime, to: SimTime) {
        let mut st = self.state.borrow_mut();
        if proc >= st.procs.len() || to <= from {
            return;
        }
        let window = st.window;
        let p = &mut st.procs[proc];
        p.nic_rx_total += to.since(from).as_nanos();
        let tl = &mut p.nic_rx;
        deposit(window, from.as_nanos(), to.as_nanos(), |w, chunk| {
            if tl.len() <= w {
                tl.resize(w + 1, 0);
            }
            tl[w] += chunk;
        });
    }

    fn wire(&self, src: usize, dst: usize, from: SimTime, to: SimTime) {
        if to <= from {
            return;
        }
        let mut st = self.state.borrow_mut();
        *st.wire.entry((src, dst)).or_insert(0) += to.since(from).as_nanos();
    }

    fn window_depth(&self, _proc: usize, depth: usize, _at: SimTime) {
        let mut st = self.state.borrow_mut();
        st.depth_max = st.depth_max.max(depth as u64);
        st.depth_sum += depth as u128;
        st.depth_n += 1;
    }

    fn retransmit(&self, _proc: usize, _at: SimTime) {
        self.state.borrow_mut().retransmits += 1;
    }

    fn phase(&self, proc: usize, name: &str, at: SimTime) {
        let mut st = self.state.borrow_mut();
        if proc >= st.procs.len() {
            return;
        }
        st.advance(proc, at.as_nanos());
        let id = st.intern(name);
        st.procs[proc].phase = id;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn every_window_sums_exactly_to_its_length() {
        // Pseudo-random event stream (deterministic LCG) over 3 procs.
        let procs = 3;
        let rec = MetricsRecorder::new(procs, SimDelta::from_nanos(1_000));
        let mut seed = 0x9E37_79B9u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed >> 33
        };
        let mut cursors = vec![0u64; procs];
        for i in 0..5_000 {
            let p = (rng() % procs as u64) as usize;
            let gap = rng() % 700;
            let span = rng() % 900;
            let a = cursors[p] + gap;
            let b = a + span;
            match rng() % 6 {
                0 => rec.wait_enter(p, WaitKind::Tx, t(a)),
                1 => rec.wait_enter(p, WaitKind::Rx, t(a)),
                2 => rec.wait_exit(p, t(a)),
                3 => rec.phase(p, if i % 2 == 0 { "alpha" } else { "beta" }, t(a)),
                _ => {
                    let s = ProcState::ALL[(rng() % 4) as usize];
                    rec.busy(p, s, t(a), t(b));
                    cursors[p] = b;
                    continue;
                }
            }
            cursors[p] = a;
        }
        let end = cursors.iter().copied().max().unwrap() + 137;
        let report = rec.finish(t(end));
        let window = report.window_ns;
        for (pi, p) in report.procs.iter().enumerate() {
            assert_eq!(p.timeline.len(), (end as usize).div_ceil(window as usize));
            for (w, row) in p.timeline.iter().enumerate() {
                let expected = window.min(end - (w as u64) * window);
                let got: u64 = row.iter().sum();
                assert_eq!(got, expected, "proc {pi} window {w}");
            }
            assert_eq!(p.totals.iter().sum::<u64>(), end, "proc {pi} totals");
        }
        // Phase totals also conserve: summed over phases and states they
        // cover every processor-nanosecond.
        let phase_sum: u64 = report
            .summary
            .phases
            .iter()
            .map(|ph| ph.totals.iter().sum::<u64>())
            .sum();
        assert_eq!(phase_sum, end * procs as u64);
    }

    #[test]
    fn background_time_is_attributed_to_the_enclosing_wait() {
        let rec = MetricsRecorder::new(1, SimDelta::from_nanos(1_000));
        rec.busy(0, ProcState::Compute, t(0), t(100));
        rec.wait_enter(0, WaitKind::Tx, t(100));
        rec.busy(0, ProcState::ORecv, t(300), t(350)); // polled during wait
        rec.wait_exit(0, t(500));
        let report = rec.finish(t(600));
        let p = &report.procs[0];
        assert_eq!(p.totals[ProcState::Compute as usize], 100);
        assert_eq!(p.totals[ProcState::TxWait as usize], 200 + 150);
        assert_eq!(p.totals[ProcState::ORecv as usize], 50);
        assert_eq!(p.totals[ProcState::Idle as usize], 100);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overlapping busy span")]
    fn overlapping_spans_trip_the_debug_assert() {
        let rec = MetricsRecorder::new(1, SimDelta::from_nanos(1_000));
        rec.busy(0, ProcState::Compute, t(0), t(100));
        rec.busy(0, ProcState::Compute, t(50), t(150));
    }

    #[test]
    fn phase_markers_segment_time_exactly() {
        let rec = MetricsRecorder::new(2, SimDelta::from_nanos(500));
        rec.busy(0, ProcState::Compute, t(0), t(400));
        rec.phase(0, "work", t(400));
        rec.busy(0, ProcState::Compute, t(400), t(900));
        rec.phase(1, "work", t(100));
        let report = rec.finish(t(1_000));
        let by_name = |n: &str| {
            report
                .summary
                .phases
                .iter()
                .find(|p| p.name == n)
                .unwrap()
                .totals
        };
        let init = by_name(INIT_PHASE);
        let work = by_name("work");
        // Proc 0: 400ns compute init, 500 compute + 100 idle work.
        // Proc 1: 100ns idle init, 900 idle work.
        assert_eq!(init[ProcState::Compute as usize], 400);
        assert_eq!(init[ProcState::Idle as usize], 100);
        assert_eq!(work[ProcState::Compute as usize], 500);
        assert_eq!(work[ProcState::Idle as usize], 100 + 900);
        assert_eq!(
            init.iter().sum::<u64>() + work.iter().sum::<u64>(),
            2 * 1_000
        );
    }

    #[test]
    fn nic_and_wire_occupancy_accumulate() {
        let rec = MetricsRecorder::new(2, SimDelta::from_nanos(1_000));
        rec.nic_tx(0, t(0), t(600));
        rec.nic_tx(0, t(600), t(1_200));
        rec.nic_rx(1, t(500), t(700));
        rec.wire(0, 1, t(100), t(400));
        rec.wire(0, 1, t(400), t(450));
        rec.window_depth(0, 3, t(0));
        rec.window_depth(0, 5, t(10));
        rec.retransmit(0, t(20));
        let report = rec.finish(t(2_000));
        assert_eq!(report.procs[0].nic_tx_total, 1_200);
        assert_eq!(report.procs[0].nic_tx, vec![1_000, 200]);
        assert_eq!(report.procs[1].nic_rx_total, 200);
        assert_eq!(report.wire.len(), 1);
        assert_eq!(report.wire[0].busy_ns, 350);
        assert_eq!(report.summary.retransmits, 1);
        assert_eq!(report.summary.depth_max, 5);
        assert!((report.summary.depth_mean - 4.0).abs() < 1e-9);
    }
}
