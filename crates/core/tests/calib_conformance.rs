//! Paper-conformance calibration suite (Martin et al., ISCA'97 §3.3).
//!
//! Runs the LogP signature microbenchmarks against the simulated apparatus
//! at the Berkeley NOW baseline and at swept points, and asserts the
//! *extracted* parameters land within 5% of the configured/published
//! values — Table 1, Table 2, and the bulk-bandwidth calibration.
//!
//! These tests deliberately go through the public measurement path (the
//! same microbenchmarks the paper used), not the configuration structs:
//! they verify that the NIC/flow-control machinery *emerges* with the
//! right LogGP characteristics, which the parameters alone do not state.

use nowlab_core::calib::{calibrate, calibrate_bulk, round_trip_us};
use nowlab_core::{Knobs, NetConfig, SimDelta};

/// Relative-error helper: |measured − expected| / expected.
fn rel(measured: f64, expected: f64) -> f64 {
    (measured - expected).abs() / expected
}

/// Paper baseline (Table 1): o_send = 1.8, o_recv = 4.0 (o = 2.9),
/// g = 5.8, L = 5.0 — each recovered by measurement within 5%.
#[test]
fn baseline_signature_recovers_paper_parameters_within_5pct() {
    let c = calibrate(NetConfig::berkeley_now());
    assert!(rel(c.o_send_us, 1.8) < 0.05, "o_send = {}", c.o_send_us);
    assert!(rel(c.o_recv_us, 4.0) < 0.05, "o_recv = {}", c.o_recv_us);
    assert!(rel(c.o_mean_us(), 2.9) < 0.05, "o = {}", c.o_mean_us());
    assert!(rel(c.gap_us, 5.8) < 0.05, "g = {}", c.gap_us);
    assert!(rel(c.latency_us, 5.0) < 0.05, "L = {}", c.latency_us);
}

/// Baseline round trip: 2L + 2o_send + 2o_recv = 21.6µs.
#[test]
fn baseline_round_trip_is_21_6_us() {
    let rtt = round_trip_us(NetConfig::berkeley_now());
    assert!(rel(rtt, 21.6) < 0.05, "rtt = {rtt}");
}

/// Swept point 1 — overhead dialed to the paper's o = 13 row. The knob
/// charges the full Δo on each side (the paper's apparatus stalls both
/// the send and the receive path), so the measured o_send/o_recv each
/// rise by Δo and the mean rises by Δo.
#[test]
fn swept_overhead_point_o13_calibrates_within_5pct() {
    let knobs = Knobs::with_overhead(SimDelta::from_micros(10.1)); // o: 2.9 → 13
    let c = calibrate(NetConfig::berkeley_now().with_knobs(knobs));
    assert!(rel(c.o_mean_us(), 13.0) < 0.05, "o = {}", c.o_mean_us());
    assert!(
        rel(c.o_send_us, 1.8 + 10.1) < 0.05,
        "o_send = {}",
        c.o_send_us
    );
    assert!(
        rel(c.o_recv_us, 4.0 + 10.1) < 0.05,
        "o_recv = {}",
        c.o_recv_us
    );
    // Latency is untouched by the overhead knob.
    assert!(rel(c.latency_us, 5.0) < 0.05, "L = {}", c.latency_us);
}

/// Swept point 2 — gap dialed to the paper's g = 30 row. Only the
/// steady-state interval moves; overheads and latency stay at baseline.
#[test]
fn swept_gap_point_g30_calibrates_within_5pct() {
    let knobs = Knobs::with_gap(SimDelta::from_micros(24.2)); // g: 5.8 → 30
    let c = calibrate(NetConfig::berkeley_now().with_knobs(knobs));
    assert!(rel(c.gap_us, 30.0) < 0.05, "g = {}", c.gap_us);
    assert!(rel(c.o_mean_us(), 2.9) < 0.05, "o = {}", c.o_mean_us());
    assert!(rel(c.latency_us, 5.0) < 0.05, "L = {}", c.latency_us);
}

/// Swept point 3 — latency dialed to the paper's L = 30 row. The wire
/// delay moves; overheads stay put, and at this L the 8-deep window still
/// covers the pipe, so the configured gap also survives.
#[test]
fn swept_latency_point_l30_calibrates_within_5pct() {
    let knobs = Knobs::with_latency(SimDelta::from_micros(25.0)); // L: 5 → 30
    let c = calibrate(NetConfig::berkeley_now().with_knobs(knobs));
    assert!(rel(c.latency_us, 30.0) < 0.05, "L = {}", c.latency_us);
    assert!(rel(c.o_mean_us(), 2.9) < 0.05, "o = {}", c.o_mean_us());
    // RTT = 2·30 + 11.6 = 71.6; window 8 sustains one message per
    // 71.6/8 = 8.95µs > 5.8µs: the Table-2 artifact has already begun.
    assert!(rel(c.gap_us, 71.6 / 8.0) < 0.05, "g = {}", c.gap_us);
}

/// Table 2's calibration artifact: at desired L = 105 the constant window
/// of 8 cannot fill the pipe, so the *effective* gap measured by the
/// signature rises to RTT/window = (2·105 + 11.6)/8 ≈ 27.7µs — the paper
/// reports exactly 27.7 in the L = 105 row.
#[test]
fn table2_effective_gap_at_l105_is_27_7_us() {
    let knobs = Knobs::with_latency(SimDelta::from_micros(100.0)); // L: 5 → 105
    let c = calibrate(NetConfig::berkeley_now().with_knobs(knobs));
    assert!(rel(c.latency_us, 105.0) < 0.05, "L = {}", c.latency_us);
    assert!(rel(c.gap_us, 27.7) < 0.05, "effective g = {}", c.gap_us);
}

/// Bulk-bandwidth calibration (§3.3): the saturated stream rate recovers
/// the paper's 38 MB/s baseline within 5%.
#[test]
fn bulk_bandwidth_calibrates_to_38_mb_per_s() {
    let bw = calibrate_bulk(NetConfig::berkeley_now());
    assert!(rel(bw, 38.0) < 0.05, "bulk bandwidth = {bw}");
}

/// A swept bulk point: dialing 1/G down to the paper's 15 MB/s row is
/// observed by the same calibration within 5%.
#[test]
fn swept_bulk_point_15_mb_per_s_calibrates_within_5pct() {
    let base = NetConfig::berkeley_now();
    let knobs = Knobs::with_bulk_bandwidth(&base.machine, 15.0).expect("below baseline");
    let bw = calibrate_bulk(base.with_knobs(knobs));
    assert!(rel(bw, 15.0) < 0.05, "bulk bandwidth = {bw}");
}
