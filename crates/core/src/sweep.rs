//! The sensitivity-sweep driver (paper §5).
//!
//! A sweep runs one application repeatedly while one LogGP parameter is
//! dialed from its baseline to a LAN-like value, recording runtime and
//! slowdown at each point — the data behind Figures 5–8 and Tables 5–6.

use std::fmt;

use nowlab_am::{CommStats, Knobs, LoggpParams, NetConfig};
use nowlab_sim::SimDelta;

use crate::models::{fit_linear, LinFit};

/// Everything an application needs to execute one measured run.
#[derive(Clone, Copy, Debug)]
pub struct RunSpec {
    /// Number of processors.
    pub procs: usize,
    /// Network configuration (baseline machine + knobs).
    pub net: NetConfig,
    /// Livelock guard: abort after this many simulator events.
    pub event_limit: Option<u64>,
    /// Abort after this much virtual time.
    pub time_limit: Option<SimDelta>,
    /// Seed for the application's workload generator.
    pub seed: u64,
}

impl RunSpec {
    /// A run of `procs` processors on the Berkeley NOW baseline, seed 1.
    pub fn new(procs: usize) -> Self {
        RunSpec {
            procs,
            net: NetConfig::berkeley_now(),
            event_limit: None,
            time_limit: None,
            seed: 1,
        }
    }

    /// Replaces the network configuration.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Sets the livelock event budget.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = Some(limit);
        self
    }

    /// Sets the virtual-time deadline. Runs on faulty networks should set
    /// one: a permanent outage otherwise retries (with capped backoff)
    /// forever, and only a limit turns that into an "N/A" row.
    pub fn with_time_limit(mut self, limit: SimDelta) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Sets the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The result of one measured application run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Virtual runtime of the measured region.
    pub runtime: SimDelta,
    /// Communication statistics of the measured region.
    pub stats: CommStats,
    /// False if the run hit a limit (the paper's "N/A" entries).
    pub completed: bool,
    /// Application-defined correctness checksum (same inputs ⇒ same value,
    /// independent of LogGP parameters).
    pub check: u64,
}

/// An application that can be run under the sweep driver.
pub trait SweepableApp {
    /// Short name (paper's program column).
    fn name(&self) -> &str;
    /// Executes one run under `spec`.
    fn run(&self, spec: &RunSpec) -> RunOutcome;
}

/// Which LogGP parameter a sweep varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Per-message overhead `o` (µs).
    Overhead,
    /// Per-message gap `g` (µs).
    Gap,
    /// Latency `L` (µs).
    Latency,
    /// Bulk bandwidth `1/G` (MB/s) — swept *downward*.
    BulkBandwidth,
}

impl Axis {
    /// Human-readable axis label with unit.
    pub fn label(self) -> &'static str {
        match self {
            Axis::Overhead => "overhead (us)",
            Axis::Gap => "gap (us)",
            Axis::Latency => "latency (us)",
            Axis::BulkBandwidth => "bulk bandwidth (MB/s)",
        }
    }

    /// The sweep values used in the paper's figures for this axis
    /// (desired *absolute* parameter values, baseline first).
    pub fn paper_values(self) -> Vec<f64> {
        match self {
            Axis::Overhead => vec![2.9, 3.9, 4.9, 6.9, 7.9, 13.0, 23.0, 53.0, 103.0],
            Axis::Gap => vec![5.8, 8.0, 10.0, 15.0, 30.0, 55.0, 80.0, 105.0],
            Axis::Latency => vec![5.0, 7.5, 10.0, 15.0, 30.0, 55.0, 80.0, 105.0],
            Axis::BulkBandwidth => vec![38.0, 30.0, 25.0, 20.0, 15.0, 10.0, 5.5, 5.0, 2.0, 1.0],
        }
    }

    /// Converts a desired absolute value into knobs on `base`.
    ///
    /// Returns `None` if the desired value is more aggressive than the
    /// baseline (the apparatus can only slow the machine down).
    pub fn knobs_for(self, base: &LoggpParams, desired: f64) -> Option<Knobs> {
        let delta_us = |base_us: f64| {
            let d = desired - base_us;
            // Tolerate tiny negative deltas from decimal rounding.
            if d < -1e-9 {
                None
            } else {
                Some(SimDelta::from_micros(d.max(0.0)))
            }
        };
        match self {
            Axis::Overhead => Some(Knobs::with_overhead(delta_us(
                base.o_mean().as_micros_f64(),
            )?)),
            Axis::Gap => Some(Knobs::with_gap(delta_us(base.gap.as_micros_f64())?)),
            Axis::Latency => Some(Knobs::with_latency(delta_us(base.latency.as_micros_f64())?)),
            Axis::BulkBandwidth => Knobs::with_bulk_bandwidth(base, desired),
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One point of a sensitivity sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Desired absolute parameter value (µs, or MB/s for bulk bandwidth).
    pub desired: f64,
    /// Measured runtime.
    pub runtime: SimDelta,
    /// Runtime ÷ baseline runtime.
    pub slowdown: f64,
    /// False if the run hit its limit (reported as N/A).
    pub completed: bool,
    /// Max messages per processor at this point.
    pub max_msgs: u64,
    /// Messages the fault model swallowed on the wire.
    pub drops: u64,
    /// Retransmissions the reliability protocol issued.
    pub retransmits: u64,
    /// Retransmit timers that matured.
    pub timeouts: u64,
}

/// A full sweep of one application along one axis.
#[derive(Clone, Debug)]
pub struct AxisSweep {
    /// Application name.
    pub app: String,
    /// Swept parameter.
    pub axis: Axis,
    /// Processor count.
    pub procs: usize,
    /// The baseline run (first sweep value).
    pub baseline: RunOutcome,
    /// Measured points, baseline included.
    pub points: Vec<SweepPoint>,
}

impl AxisSweep {
    /// Slowdowns of all completed points, paired with their desired values.
    pub fn completed_series(&self) -> (Vec<f64>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for p in &self.points {
            if p.completed {
                xs.push(p.desired);
                ys.push(p.slowdown);
            }
        }
        (xs, ys)
    }

    /// Linear fit of slowdown vs desired value over completed points
    /// (§5.5: "applications display a linear dependence to both overhead
    /// and gap").
    ///
    /// Returns `None` when fewer than two points completed.
    pub fn linearity(&self) -> Option<LinFit> {
        let (xs, ys) = self.completed_series();
        if xs.len() < 2 {
            return None;
        }
        Some(fit_linear(&xs, &ys))
    }

    /// The largest completed slowdown.
    pub fn max_slowdown(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.completed)
            .map(|p| p.slowdown)
            .fold(1.0, f64::max)
    }
}

/// Sweeps `app` along `axis` through `desired` absolute parameter values.
///
/// The first value should be the baseline (it defines slowdown = 1). Values
/// more aggressive than the baseline are skipped.
///
/// # Panics
///
/// Panics if the baseline run does not complete — sensitivity is undefined
/// without a baseline.
pub fn sweep(app: &dyn SweepableApp, template: &RunSpec, axis: Axis, desired: &[f64]) -> AxisSweep {
    assert!(!desired.is_empty(), "sweep needs at least one value");
    let base_machine = template.net.machine;
    let mut points = Vec::with_capacity(desired.len());
    let mut baseline: Option<RunOutcome> = None;
    for &value in desired {
        let Some(knobs) = axis.knobs_for(&base_machine, value) else {
            continue;
        };
        let spec = template.with_net(template.net.with_knobs(knobs));
        let outcome = app.run(&spec);
        if baseline.is_none() {
            assert!(
                outcome.completed,
                "{}: baseline run did not complete",
                app.name()
            );
            baseline = Some(outcome.clone());
        }
        let base_rt = baseline.as_ref().unwrap().runtime.as_secs_f64();
        points.push(SweepPoint {
            desired: value,
            runtime: outcome.runtime,
            slowdown: if base_rt > 0.0 {
                outcome.runtime.as_secs_f64() / base_rt
            } else {
                1.0
            },
            completed: outcome.completed,
            max_msgs: outcome.stats.max_msgs_per_proc(),
            drops: outcome.stats.total_drops(),
            retransmits: outcome.stats.total_retransmits(),
            timeouts: outcome.stats.total_timeouts(),
        });
    }
    AxisSweep {
        app: app.name().to_string(),
        axis,
        procs: template.procs,
        baseline: baseline.expect("no sweep point at or below baseline"),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic "application" with a closed-form LogGP response, used to
    /// test the driver without the real benchmark suite.
    struct FakeApp {
        msgs: u64,
    }

    impl SweepableApp for FakeApp {
        fn name(&self) -> &str {
            "fake"
        }
        fn run(&self, spec: &RunSpec) -> RunOutcome {
            // Runtime = 1ms + 2·m·Δo + m·Δg.
            let rt = SimDelta::from_millis(1.0)
                + 2 * self.msgs * spec.net.knobs.d_o
                + self.msgs * spec.net.knobs.d_g;
            let mut stats = CommStats {
                per_proc: vec![nowlab_am::ProcCounters::new(spec.procs)],
                elapsed: rt,
            };
            stats.per_proc[0].sends = self.msgs;
            RunOutcome {
                runtime: rt,
                stats,
                completed: true,
                check: 42,
            }
        }
    }

    #[test]
    fn axis_values_start_at_baseline() {
        let base = LoggpParams::berkeley_now();
        for axis in [
            Axis::Overhead,
            Axis::Gap,
            Axis::Latency,
            Axis::BulkBandwidth,
        ] {
            let first = axis.paper_values()[0];
            let knobs = axis.knobs_for(&base, first).unwrap();
            assert_eq!(knobs, Knobs::baseline(), "axis {axis} first value");
        }
    }

    #[test]
    fn knob_conversion_matches_desired() {
        let base = LoggpParams::berkeley_now();
        let k = Axis::Overhead.knobs_for(&base, 103.0).unwrap();
        assert!((k.d_o.as_micros_f64() - 100.1).abs() < 1e-9);
        let k = Axis::Gap.knobs_for(&base, 105.0).unwrap();
        assert!((k.d_g.as_micros_f64() - 99.2).abs() < 1e-9);
        let k = Axis::Latency.knobs_for(&base, 30.0).unwrap();
        assert!((k.d_lat.as_micros_f64() - 25.0).abs() < 1e-9);
        assert!(Axis::Latency.knobs_for(&base, 1.0).is_none());
    }

    #[test]
    fn sweep_computes_slowdowns_and_linearity() {
        let app = FakeApp { msgs: 1000 };
        let template = RunSpec::new(4);
        let result = sweep(
            &app,
            &template,
            Axis::Overhead,
            &Axis::Overhead.paper_values(),
        );
        assert_eq!(result.points.len(), 9);
        assert!((result.points[0].slowdown - 1.0).abs() < 1e-12);
        // At o=103 (Δo=100.1): rt = 1ms + 2·1000·100.1µs = 201.2ms ⇒ 201.2x.
        let last = result.points.last().unwrap();
        assert!((last.slowdown - 201.2).abs() < 0.01, "{}", last.slowdown);
        let fit = result.linearity().unwrap();
        assert!(fit.r2 > 0.999999, "exact linear app must fit: {}", fit.r2);
        assert!((result.max_slowdown() - last.slowdown).abs() < 1e-9);
        // A lossless fake app leaves the fault counters at zero.
        assert!(result
            .points
            .iter()
            .all(|p| p.drops == 0 && p.retransmits == 0 && p.timeouts == 0));
    }

    #[test]
    fn run_spec_builders_set_limits() {
        let spec = RunSpec::new(4)
            .with_event_limit(1_000)
            .with_time_limit(SimDelta::from_millis(5.0));
        assert_eq!(spec.event_limit, Some(1_000));
        assert_eq!(spec.time_limit, Some(SimDelta::from_millis(5.0)));
    }

    #[test]
    fn gap_axis_uses_burst_cost_in_fake_app() {
        let app = FakeApp { msgs: 1000 };
        let template = RunSpec::new(4);
        let result = sweep(&app, &template, Axis::Gap, &Axis::Gap.paper_values());
        // At g=105 (Δg=99.2): rt = 1ms + 1000·99.2µs = 100.2ms.
        let last = result.points.last().unwrap();
        assert!((last.runtime.as_millis_f64() - 100.2).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "baseline run did not complete")]
    fn incomplete_baseline_panics() {
        struct Dud;
        impl SweepableApp for Dud {
            fn name(&self) -> &str {
                "dud"
            }
            fn run(&self, _spec: &RunSpec) -> RunOutcome {
                RunOutcome {
                    runtime: SimDelta::ZERO,
                    stats: CommStats::default(),
                    completed: false,
                    check: 0,
                }
            }
        }
        let _ = sweep(&Dud, &RunSpec::new(2), Axis::Overhead, &[2.9, 10.0]);
    }
}
