//! The sensitivity-sweep driver (paper §5).
//!
//! A sweep runs one application repeatedly while one LogGP parameter is
//! dialed from its baseline to a LAN-like value, recording runtime and
//! slowdown at each point — the data behind Figures 5–8 and Tables 5–6.
//!
//! Sweep points are independent simulations, so the driver can fan them
//! out across worker threads ([`sweep_jobs`], [`sweep_many`], [`par`])
//! with **byte-identical** results to the sequential path: each point's
//! seed and fault plan derive from its [`RunSpec`], never from execution
//! order, and results are collected by point index.

use std::fmt;

use nowlab_am::{CommStats, Knobs, LoggpParams, NetConfig, RunAbort};
use nowlab_metrics::{MetricsMode, MetricsReport, MetricsSummary};
use nowlab_sim::SimDelta;
use nowlab_splitc::CollConfig;
use nowlab_trace::{TraceMode, TraceReport, TraceSummary};

use crate::models::{fit_linear, LinFit};

pub mod par;

use par::parallel_map;

/// Everything an application needs to execute one measured run.
#[derive(Clone, Copy, Debug)]
pub struct RunSpec {
    /// Number of processors.
    pub procs: usize,
    /// Network configuration (baseline machine + knobs).
    pub net: NetConfig,
    /// Livelock guard: abort after this many simulator events.
    pub event_limit: Option<u64>,
    /// Abort after this much virtual time.
    pub time_limit: Option<SimDelta>,
    /// Seed for the application's workload generator.
    pub seed: u64,
    /// Per-message LogGP cost tracing mode (off by default; tracing never
    /// alters simulation behaviour, only observes it).
    pub trace: TraceMode,
    /// Simulated-time metrics mode (off by default; like tracing, metrics
    /// observe the run without altering it).
    pub metrics: MetricsMode,
    /// Collective-algorithm policy (model-driven selection by default; a
    /// forced variant overrides the LogGP selector on every call site).
    pub coll: CollConfig,
}

impl RunSpec {
    /// A run of `procs` processors on the Berkeley NOW baseline, seed 1.
    pub fn new(procs: usize) -> Self {
        RunSpec {
            procs,
            net: NetConfig::berkeley_now(),
            event_limit: None,
            time_limit: None,
            seed: 1,
            trace: TraceMode::Off,
            metrics: MetricsMode::Off,
            coll: CollConfig::default(),
        }
    }

    /// Replaces the network configuration.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Sets the livelock event budget.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = Some(limit);
        self
    }

    /// Sets the virtual-time deadline. Runs on faulty networks should set
    /// one: a permanent outage otherwise retries (with capped backoff)
    /// forever, and only a limit turns that into an "N/A" row.
    pub fn with_time_limit(mut self, limit: SimDelta) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// Sets the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the tracing mode.
    pub fn with_trace(mut self, trace: TraceMode) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the metrics mode.
    pub fn with_metrics(mut self, metrics: MetricsMode) -> Self {
        self.metrics = metrics;
        self
    }

    /// Sets the collective-algorithm policy.
    pub fn with_coll(mut self, coll: CollConfig) -> Self {
        self.coll = coll;
        self
    }
}

/// The result of one measured application run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Virtual runtime of the measured region.
    pub runtime: SimDelta,
    /// Communication statistics of the measured region.
    pub stats: CommStats,
    /// False if the run hit a limit (the paper's "N/A" entries) or a
    /// node failure kept a processor from finishing.
    pub completed: bool,
    /// Number of processors that finished their SPMD body — equals
    /// [`RunSpec::procs`] on a complete run; smaller on a degraded one
    /// (the completeness a `DegradePolicy::Continue` app reports).
    pub completers: usize,
    /// The confirmed peer death that aborted the run under
    /// `DegradePolicy::Abort` (`None` otherwise).
    pub abort: Option<RunAbort>,
    /// Application-defined correctness checksum (same inputs ⇒ same value,
    /// independent of LogGP parameters).
    pub check: u64,
    /// Simulator events fired during the run (the benchmark harness's
    /// throughput numerator).
    pub events: u64,
    /// Per-message LogGP cost trace, when [`RunSpec::trace`] requested one
    /// (`None` under [`TraceMode::Off`]).
    pub trace: Option<TraceReport>,
    /// Simulated-time utilization metrics, when [`RunSpec::metrics`]
    /// requested them (`None` under [`MetricsMode::Off`]).
    pub metrics: Option<MetricsReport>,
}

/// An application that can be run under the sweep driver.
///
/// `Send + Sync` because the parallel sweep engine shares the app across
/// worker threads; the app itself is parameters-only — each `run` builds
/// its (single-threaded, `Rc`-internal) simulation from scratch.
pub trait SweepableApp: Send + Sync {
    /// Short name (paper's program column).
    fn name(&self) -> &str;
    /// Executes one run under `spec`.
    fn run(&self, spec: &RunSpec) -> RunOutcome;
}

/// Which LogGP parameter a sweep varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Per-message overhead `o` (µs).
    Overhead,
    /// Per-message gap `g` (µs).
    Gap,
    /// Latency `L` (µs).
    Latency,
    /// Bulk bandwidth `1/G` (MB/s) — swept *downward*.
    BulkBandwidth,
    /// Per-message overhead `o` (µs), swept to expose the collective
    /// selector's crossover points: as `o` grows, message-count-minimizing
    /// variants (binomial, tree) overtake pipeline-friendly ones (chain,
    /// ring). Knob-wise identical to [`Axis::Overhead`]; it exists as a
    /// separate axis so collective-focused sweeps are labeled as such and
    /// can report per-point selector decisions.
    Coll,
}

impl Axis {
    /// Human-readable axis label with unit.
    pub fn label(self) -> &'static str {
        match self {
            Axis::Overhead => "overhead (us)",
            Axis::Gap => "gap (us)",
            Axis::Latency => "latency (us)",
            Axis::BulkBandwidth => "bulk bandwidth (MB/s)",
            Axis::Coll => "coll overhead (us)",
        }
    }

    /// The sweep values used in the paper's figures for this axis
    /// (desired *absolute* parameter values, baseline first).
    pub fn paper_values(self) -> Vec<f64> {
        match self {
            Axis::Overhead | Axis::Coll => vec![2.9, 3.9, 4.9, 6.9, 7.9, 13.0, 23.0, 53.0, 103.0],
            Axis::Gap => vec![5.8, 8.0, 10.0, 15.0, 30.0, 55.0, 80.0, 105.0],
            Axis::Latency => vec![5.0, 7.5, 10.0, 15.0, 30.0, 55.0, 80.0, 105.0],
            Axis::BulkBandwidth => vec![38.0, 30.0, 25.0, 20.0, 15.0, 10.0, 5.5, 5.0, 2.0, 1.0],
        }
    }

    /// Converts a desired absolute value into knobs on `base`.
    ///
    /// Returns `None` if the desired value is more aggressive than the
    /// baseline (the apparatus can only slow the machine down).
    pub fn knobs_for(self, base: &LoggpParams, desired: f64) -> Option<Knobs> {
        let delta_us = |base_us: f64| {
            let d = desired - base_us;
            // Tolerate tiny negative deltas from decimal rounding.
            if d < -1e-9 {
                None
            } else {
                Some(SimDelta::from_micros(d.max(0.0)))
            }
        };
        match self {
            Axis::Overhead | Axis::Coll => Some(Knobs::with_overhead(delta_us(
                base.o_mean().as_micros_f64(),
            )?)),
            Axis::Gap => Some(Knobs::with_gap(delta_us(base.gap.as_micros_f64())?)),
            Axis::Latency => Some(Knobs::with_latency(delta_us(base.latency.as_micros_f64())?)),
            Axis::BulkBandwidth => Knobs::with_bulk_bandwidth(base, desired),
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One point of a sensitivity sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepPoint {
    /// Desired absolute parameter value (µs, or MB/s for bulk bandwidth).
    pub desired: f64,
    /// Measured runtime.
    pub runtime: SimDelta,
    /// Runtime ÷ baseline runtime.
    pub slowdown: f64,
    /// False if the run hit its limit (reported as N/A).
    pub completed: bool,
    /// Max messages per processor at this point.
    pub max_msgs: u64,
    /// Messages the fault model swallowed on the wire.
    pub drops: u64,
    /// Retransmissions the reliability protocol issued.
    pub retransmits: u64,
    /// Retransmit timers that matured.
    pub timeouts: u64,
    /// Simulator events fired at this point.
    pub events: u64,
    /// Per-component cost attribution at this point, when the sweep ran
    /// with tracing enabled.
    pub trace: Option<TraceSummary>,
    /// Per-phase utilization summary at this point, when the sweep ran
    /// with metrics enabled.
    pub metrics: Option<MetricsSummary>,
}

/// A full sweep of one application along one axis.
#[derive(Clone, Debug, PartialEq)]
pub struct AxisSweep {
    /// Application name.
    pub app: String,
    /// Swept parameter.
    pub axis: Axis,
    /// Processor count.
    pub procs: usize,
    /// The baseline run (first sweep value).
    pub baseline: RunOutcome,
    /// Measured points, baseline included.
    pub points: Vec<SweepPoint>,
}

impl AxisSweep {
    /// Slowdowns of all completed points, paired with their desired values.
    pub fn completed_series(&self) -> (Vec<f64>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for p in &self.points {
            if p.completed {
                xs.push(p.desired);
                ys.push(p.slowdown);
            }
        }
        (xs, ys)
    }

    /// Linear fit of slowdown vs desired value over completed points
    /// (§5.5: "applications display a linear dependence to both overhead
    /// and gap").
    ///
    /// Returns `None` when fewer than two points completed.
    pub fn linearity(&self) -> Option<LinFit> {
        let (xs, ys) = self.completed_series();
        if xs.len() < 2 {
            return None;
        }
        Some(fit_linear(&xs, &ys))
    }

    /// The largest completed slowdown.
    pub fn max_slowdown(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.completed)
            .map(|p| p.slowdown)
            .fold(1.0, f64::max)
    }

    /// Simulator events fired across all points of this sweep.
    pub fn total_events(&self) -> u64 {
        self.points.iter().map(|p| p.events).sum()
    }
}

/// Why a sweep could not produce slowdown data (the paper's "N/A" column,
/// reported structurally instead of by panicking).
#[derive(Clone, Debug, PartialEq)]
pub enum SweepError {
    /// `desired` was empty, or every requested value was more aggressive
    /// than the baseline machine (the apparatus can only slow it down).
    NoBaselinePoint {
        /// Application name.
        app: String,
        /// Swept parameter.
        axis: Axis,
    },
    /// The baseline run hit its event or time budget, so slowdown = 1 is
    /// undefined. Carries the outcome so callers can report the
    /// graceful-degradation counters (drops/retransmits/timeouts) behind
    /// the failure.
    IncompleteBaseline {
        /// Application name.
        app: String,
        /// Swept parameter.
        axis: Axis,
        /// The truncated baseline run (boxed: a `RunOutcome` carries full
        /// per-processor statistics and an optional trace, far bigger
        /// than the `Ok` path should pay for on every return).
        outcome: Box<RunOutcome>,
    },
}

impl SweepError {
    /// Application name the sweep was attempted for.
    pub fn app(&self) -> &str {
        match self {
            SweepError::NoBaselinePoint { app, .. } => app,
            SweepError::IncompleteBaseline { app, .. } => app,
        }
    }

    /// Axis the sweep was attempted along.
    pub fn axis(&self) -> Axis {
        match self {
            SweepError::NoBaselinePoint { axis, .. } => *axis,
            SweepError::IncompleteBaseline { axis, .. } => *axis,
        }
    }
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::NoBaselinePoint { app, axis } => write!(
                f,
                "{app}: no sweep point at or below the {axis} baseline \
                 (the apparatus can only slow the machine down)"
            ),
            SweepError::IncompleteBaseline { app, axis, outcome } => write!(
                f,
                "{app}: baseline run did not complete along {axis} \
                 (N/A; ran {} of virtual time, {} drops, {} retransmits, \
                 {} timeouts)",
                outcome.runtime,
                outcome.stats.total_drops(),
                outcome.stats.total_retransmits(),
                outcome.stats.total_timeouts(),
            ),
        }
    }
}

impl std::error::Error for SweepError {}

/// Builds an [`AxisSweep`] from point outcomes already collected in
/// `desired` order. Shared by the sequential and parallel drivers so both
/// assemble byte-identical results.
fn assemble(
    app: &str,
    template: &RunSpec,
    axis: Axis,
    pairs: Vec<(f64, RunOutcome)>,
) -> Result<AxisSweep, SweepError> {
    let Some((_, baseline)) = pairs.first() else {
        return Err(SweepError::NoBaselinePoint {
            app: app.to_string(),
            axis,
        });
    };
    if !baseline.completed {
        return Err(SweepError::IncompleteBaseline {
            app: app.to_string(),
            axis,
            outcome: Box::new(baseline.clone()),
        });
    }
    let baseline = baseline.clone();
    let base_rt = baseline.runtime.as_secs_f64();
    let points = pairs
        .into_iter()
        .map(|(value, outcome)| SweepPoint {
            desired: value,
            runtime: outcome.runtime,
            slowdown: if base_rt > 0.0 {
                outcome.runtime.as_secs_f64() / base_rt
            } else {
                1.0
            },
            completed: outcome.completed,
            max_msgs: outcome.stats.max_msgs_per_proc(),
            drops: outcome.stats.total_drops(),
            retransmits: outcome.stats.total_retransmits(),
            timeouts: outcome.stats.total_timeouts(),
            events: outcome.events,
            trace: outcome.trace.map(|r| r.summary),
            metrics: outcome.metrics.map(|r| r.summary),
        })
        .collect();
    Ok(AxisSweep {
        app: app.to_string(),
        axis,
        procs: template.procs,
        baseline,
        points,
    })
}

/// The `(value, spec)` list a sweep will execute: one entry per desired
/// value at or below the baseline, in `desired` order.
fn point_specs(template: &RunSpec, axis: Axis, desired: &[f64]) -> Vec<(f64, RunSpec)> {
    let base_machine = template.net.machine;
    desired
        .iter()
        .filter_map(|&value| {
            let knobs = axis.knobs_for(&base_machine, value)?;
            Some((value, template.with_net(template.net.with_knobs(knobs))))
        })
        .collect()
}

/// Sweeps `app` along `axis` through `desired` absolute parameter values,
/// sequentially on the calling thread.
///
/// The first value should be the baseline (it defines slowdown = 1). Values
/// more aggressive than the baseline are skipped. Returns a [`SweepError`]
/// if no value survives the skip or the baseline run does not complete —
/// sensitivity is undefined without a baseline.
pub fn sweep(
    app: &dyn SweepableApp,
    template: &RunSpec,
    axis: Axis,
    desired: &[f64],
) -> Result<AxisSweep, SweepError> {
    sweep_jobs(app, template, axis, desired, 1)
}

/// [`sweep`], fanning the points across up to `jobs` worker threads.
///
/// The baseline point always runs first (on the calling thread) so an
/// incomplete baseline is reported before any fan-out; the remaining
/// points run in parallel and are collected by index, making the result
/// byte-identical to `jobs = 1`.
pub fn sweep_jobs(
    app: &dyn SweepableApp,
    template: &RunSpec,
    axis: Axis,
    desired: &[f64],
    jobs: usize,
) -> Result<AxisSweep, SweepError> {
    let specs = point_specs(template, axis, desired);
    let Some((first_value, first_spec)) = specs.first() else {
        return Err(SweepError::NoBaselinePoint {
            app: app.name().to_string(),
            axis,
        });
    };
    let first = app.run(first_spec);
    if !first.completed {
        return Err(SweepError::IncompleteBaseline {
            app: app.name().to_string(),
            axis,
            outcome: Box::new(first),
        });
    }
    let rest = parallel_map(jobs, &specs[1..], |_, (_, spec)| app.run(spec));
    let pairs = std::iter::once((*first_value, first))
        .chain(specs[1..].iter().map(|(v, _)| *v).zip(rest))
        .collect();
    assemble(app.name(), template, axis, pairs)
}

/// Sweeps every app in `apps` along `axis`, flattening all `(app, value)`
/// points into one work queue shared by up to `jobs` worker threads —
/// suite-level parallelism that keeps workers busy across app boundaries.
///
/// Results come back in `apps` order and are byte-identical to calling
/// [`sweep`] per app; a failed sweep yields its `Err` without disturbing
/// the other apps' results.
pub fn sweep_many(
    apps: &[Box<dyn SweepableApp>],
    template: &RunSpec,
    axis: Axis,
    desired: &[f64],
    jobs: usize,
) -> Vec<Result<AxisSweep, SweepError>> {
    // Flat job list: (app index, value, spec), app-major so `jobs = 1`
    // executes in exactly per-app sequential order.
    let per_app: Vec<Vec<(f64, RunSpec)>> = apps
        .iter()
        .map(|_| point_specs(template, axis, desired))
        .collect();
    let flat: Vec<(usize, f64, RunSpec)> = per_app
        .iter()
        .enumerate()
        .flat_map(|(ai, specs)| specs.iter().map(move |(v, s)| (ai, *v, *s)))
        .collect();
    let outcomes = parallel_map(jobs, &flat, |_, (ai, _, spec)| apps[*ai].run(spec));
    let mut grouped: Vec<Vec<(f64, RunOutcome)>> = apps.iter().map(|_| Vec::new()).collect();
    for ((ai, value, _), outcome) in flat.into_iter().zip(outcomes) {
        grouped[ai].push((value, outcome));
    }
    apps.iter()
        .zip(grouped)
        .map(|(app, pairs)| assemble(app.name(), template, axis, pairs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic "application" with a closed-form LogGP response, used to
    /// test the driver without the real benchmark suite.
    struct FakeApp {
        msgs: u64,
    }

    impl SweepableApp for FakeApp {
        fn name(&self) -> &str {
            "fake"
        }
        fn run(&self, spec: &RunSpec) -> RunOutcome {
            // Runtime = 1ms + 2·m·Δo + m·Δg.
            let rt = SimDelta::from_millis(1.0)
                + 2 * self.msgs * spec.net.knobs.d_o
                + self.msgs * spec.net.knobs.d_g;
            let mut stats = CommStats {
                per_proc: vec![nowlab_am::ProcCounters::new(spec.procs)],
                elapsed: rt,
            };
            stats.per_proc[0].sends = self.msgs;
            RunOutcome {
                runtime: rt,
                stats,
                completed: true,
                completers: spec.procs,
                abort: None,
                check: 42,
                events: 3 * self.msgs,
                trace: None,
                metrics: None,
            }
        }
    }

    #[test]
    fn axis_values_start_at_baseline() {
        let base = LoggpParams::berkeley_now();
        for axis in [
            Axis::Overhead,
            Axis::Gap,
            Axis::Latency,
            Axis::BulkBandwidth,
            Axis::Coll,
        ] {
            let first = axis.paper_values()[0];
            let knobs = axis.knobs_for(&base, first).unwrap();
            assert_eq!(knobs, Knobs::baseline(), "axis {axis} first value");
        }
    }

    #[test]
    fn knob_conversion_matches_desired() {
        let base = LoggpParams::berkeley_now();
        let k = Axis::Overhead.knobs_for(&base, 103.0).unwrap();
        assert!((k.d_o.as_micros_f64() - 100.1).abs() < 1e-9);
        let k = Axis::Gap.knobs_for(&base, 105.0).unwrap();
        assert!((k.d_g.as_micros_f64() - 99.2).abs() < 1e-9);
        let k = Axis::Latency.knobs_for(&base, 30.0).unwrap();
        assert!((k.d_lat.as_micros_f64() - 25.0).abs() < 1e-9);
        assert!(Axis::Latency.knobs_for(&base, 1.0).is_none());
    }

    #[test]
    fn sweep_computes_slowdowns_and_linearity() {
        let app = FakeApp { msgs: 1000 };
        let template = RunSpec::new(4);
        let result = sweep(
            &app,
            &template,
            Axis::Overhead,
            &Axis::Overhead.paper_values(),
        )
        .expect("fake app always completes");
        assert_eq!(result.points.len(), 9);
        assert!((result.points[0].slowdown - 1.0).abs() < 1e-12);
        // At o=103 (Δo=100.1): rt = 1ms + 2·1000·100.1µs = 201.2ms ⇒ 201.2x.
        let last = result.points.last().unwrap();
        assert!((last.slowdown - 201.2).abs() < 0.01, "{}", last.slowdown);
        let fit = result.linearity().unwrap();
        assert!(fit.r2 > 0.999999, "exact linear app must fit: {}", fit.r2);
        assert!((result.max_slowdown() - last.slowdown).abs() < 1e-9);
        // A lossless fake app leaves the fault counters at zero.
        assert!(result
            .points
            .iter()
            .all(|p| p.drops == 0 && p.retransmits == 0 && p.timeouts == 0));
    }

    #[test]
    fn run_spec_builders_set_limits() {
        let spec = RunSpec::new(4)
            .with_event_limit(1_000)
            .with_time_limit(SimDelta::from_millis(5.0));
        assert_eq!(spec.event_limit, Some(1_000));
        assert_eq!(spec.time_limit, Some(SimDelta::from_millis(5.0)));
    }

    #[test]
    fn gap_axis_uses_burst_cost_in_fake_app() {
        let app = FakeApp { msgs: 1000 };
        let template = RunSpec::new(4);
        let result = sweep(&app, &template, Axis::Gap, &Axis::Gap.paper_values())
            .expect("fake app always completes");
        // At g=105 (Δg=99.2): rt = 1ms + 1000·99.2µs = 100.2ms.
        let last = result.points.last().unwrap();
        assert!((last.runtime.as_millis_f64() - 100.2).abs() < 0.01);
    }

    struct Dud;
    impl SweepableApp for Dud {
        fn name(&self) -> &str {
            "dud"
        }
        fn run(&self, _spec: &RunSpec) -> RunOutcome {
            RunOutcome {
                runtime: SimDelta::ZERO,
                stats: CommStats::default(),
                completed: false,
                completers: 0,
                abort: None,
                check: 0,
                events: 0,
                trace: None,
                metrics: None,
            }
        }
    }

    #[test]
    fn incomplete_baseline_is_a_structured_error() {
        let err = sweep(&Dud, &RunSpec::new(2), Axis::Overhead, &[2.9, 10.0])
            .expect_err("dud baseline never completes");
        assert_eq!(err.app(), "dud");
        assert_eq!(err.axis(), Axis::Overhead);
        match &err {
            SweepError::IncompleteBaseline { outcome, .. } => assert!(!outcome.completed),
            other => panic!("wrong error variant: {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("did not complete"), "{msg}");
        assert!(msg.contains("N/A"), "{msg}");
    }

    #[test]
    fn empty_or_all_aggressive_values_yield_no_baseline() {
        let err = sweep(&FakeApp { msgs: 1 }, &RunSpec::new(2), Axis::Latency, &[])
            .expect_err("empty value list");
        assert!(matches!(err, SweepError::NoBaselinePoint { .. }));
        // Latency below the NOW baseline is unreachable for every value.
        let err = sweep(
            &FakeApp { msgs: 1 },
            &RunSpec::new(2),
            Axis::Latency,
            &[1.0, 2.0],
        )
        .expect_err("all values more aggressive than baseline");
        assert!(matches!(err, SweepError::NoBaselinePoint { .. }));
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        let app = FakeApp { msgs: 1000 };
        let template = RunSpec::new(4);
        let values = Axis::Overhead.paper_values();
        let seq = sweep_jobs(&app, &template, Axis::Overhead, &values, 1).unwrap();
        for jobs in [2, 4, 8] {
            let par = sweep_jobs(&app, &template, Axis::Overhead, &values, jobs).unwrap();
            assert_eq!(par, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn sweep_many_matches_per_app_sweeps_and_isolates_failures() {
        let apps: Vec<Box<dyn SweepableApp>> = vec![
            Box::new(FakeApp { msgs: 100 }),
            Box::new(Dud),
            Box::new(FakeApp { msgs: 2000 }),
        ];
        let template = RunSpec::new(4);
        let values = Axis::Gap.paper_values();
        for jobs in [1, 3] {
            let results = sweep_many(&apps, &template, Axis::Gap, &values, jobs);
            assert_eq!(results.len(), 3);
            let solo0 = sweep(apps[0].as_ref(), &template, Axis::Gap, &values).unwrap();
            let solo2 = sweep(apps[2].as_ref(), &template, Axis::Gap, &values).unwrap();
            assert_eq!(results[0].as_ref().unwrap(), &solo0, "jobs={jobs}");
            assert_eq!(results[2].as_ref().unwrap(), &solo2, "jobs={jobs}");
            assert!(matches!(
                results[1],
                Err(SweepError::IncompleteBaseline { .. })
            ));
        }
    }
}
