//! Analytic sensitivity models (paper §5) and linear-fit utilities.
//!
//! The paper builds three simple predictors and checks them against
//! measured runtimes:
//!
//! * **Overhead** (§5.1): `r_pred = r_orig + 2·m·Δo` — every message sent
//!   by the busiest processor (`m`, the max messages per processor) pairs a
//!   send with a receive on the same processor, each slowed by `Δo`.
//! * **Gap, burst model** (§5.2): `r_pred = r_base + m·Δg` — communication
//!   is bursty, so every message eats the full added gap.
//! * **Gap, uniform model** (§5.2): `r_pred = r_base + m·(g − I)` when the
//!   total gap `g` exceeds the application's average message interval `I`,
//!   else no slowdown.
//! * **Latency** (§5.3): only read round trips stall the issuing processor,
//!   so `r_pred = r_base + m_rt·ΔL` with `m_rt` the blocking round trips —
//!   accurate only for EM3D(read), as in the paper.

use nowlab_sim::{ordered_sum, ordered_sum_by, SimDelta};

/// Overhead model: `r_orig + 2·m·Δo`.
pub fn predict_overhead(r_orig: SimDelta, max_msgs: u64, d_o: SimDelta) -> SimDelta {
    r_orig + 2 * max_msgs * d_o
}

/// Burst gap model: `r_base + m·Δg`.
pub fn predict_gap_burst(r_base: SimDelta, max_msgs: u64, d_g: SimDelta) -> SimDelta {
    r_base + max_msgs * d_g
}

/// Uniform gap model: `r_base + m·(g − I)` if `g > I`, else `r_base`.
///
/// `total_gap` is the *effective* gap (base + added) and `interval` the
/// application's average message interval at baseline.
pub fn predict_gap_uniform(
    r_base: SimDelta,
    max_msgs: u64,
    total_gap: SimDelta,
    interval: SimDelta,
) -> SimDelta {
    if total_gap > interval {
        r_base + max_msgs * (total_gap - interval)
    } else {
        r_base
    }
}

/// Latency model for blocking-read applications: `r_base + m_rt·ΔL` where
/// `m_rt` counts round trips the processor waits on.
pub fn predict_latency(r_base: SimDelta, round_trips: u64, d_lat: SimDelta) -> SimDelta {
    r_base + round_trips * d_lat
}

/// A compound LogGP sensitivity model — an *extension* of the paper's
/// per-axis predictors (§5) to arbitrary knob vectors.
///
/// From one baseline run's statistics it predicts runtime under any
/// combination of added overhead, gap, latency, and bulk Gap:
///
/// ```text
/// r(Δo, Δg, ΔL, ΔG) = r_base + 2·m·Δo + m·Δg + m_rt·ΔL + B·ΔG
/// ```
///
/// where `m` is the maximum messages per processor, `m_rt` the estimated
/// blocking round trips (read requests) of the busiest reader, and `B` the
/// maximum bulk bytes sent by any processor. The paper's individual models
/// are the axis restrictions of this surface; the `model_crossval` bench
/// checks how well the composition holds when several knobs move at once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SensitivityModel {
    /// Baseline runtime.
    pub base: SimDelta,
    /// Max messages sent by any processor (the paper's `m`).
    pub max_msgs: u64,
    /// Estimated blocking round trips of the busiest reader.
    pub read_round_trips: u64,
    /// Max bulk payload bytes sent by any processor.
    pub bulk_bytes: u64,
}

impl SensitivityModel {
    /// Builds the model from a baseline run.
    ///
    /// Read round trips are estimated as half the busiest processor's
    /// read-marked sends (each blocking read contributes one request sent
    /// and, on the responder, one reply sent).
    pub fn from_baseline(outcome: &crate::RunOutcome) -> Self {
        let max_msgs = outcome.stats.max_msgs_per_proc();
        let read_round_trips = outcome
            .stats
            .per_proc
            .iter()
            .map(|c| c.sends_read)
            .max()
            .unwrap_or(0)
            / 2;
        let bulk_bytes = outcome
            .stats
            .per_proc
            .iter()
            .map(|c| c.bytes_bulk)
            .max()
            .unwrap_or(0);
        SensitivityModel {
            base: outcome.runtime,
            max_msgs,
            read_round_trips,
            bulk_bytes,
        }
    }

    /// Predicts runtime under a knob vector.
    pub fn predict(&self, knobs: &nowlab_am::Knobs) -> SimDelta {
        self.base
            + 2 * self.max_msgs * knobs.d_o
            + self.max_msgs * knobs.d_g
            + self.read_round_trips * knobs.d_lat
            + self.bulk_bytes * knobs.d_gap_per_byte
    }

    /// Predicted slowdown under a knob vector.
    pub fn predict_slowdown(&self, knobs: &nowlab_am::Knobs) -> f64 {
        self.predict(knobs).as_secs_f64() / self.base.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Extrapolates *backward* from the baseline toward a hypothetical
    /// more aggressive design (the paper's §1: "extrapolate back from the
    /// initial design point"): predicted runtime if per-message overhead
    /// were *reduced* by `d_o_less` on both send and receive paths.
    ///
    /// Returns `None` if the reduction exceeds what the model attributes
    /// to overhead in the baseline.
    pub fn extrapolate_overhead_reduction(&self, d_o_less: SimDelta) -> Option<SimDelta> {
        let saving = 2 * self.max_msgs * d_o_less;
        if saving > self.base {
            return None;
        }
        Some(self.base - saving)
    }
}

/// Least-squares line fit with coefficient of determination.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination (1.0 = perfectly linear).
    pub r2: f64,
}

impl LinFit {
    /// Evaluates the fitted line at `x`.
    pub fn at(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Fits `y = a + b·x` by least squares.
///
/// # Panics
///
/// Panics if the slices differ in length or hold fewer than two points,
/// or if all `x` are identical.
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> LinFit {
    assert_eq!(xs.len(), ys.len(), "mismatched fit inputs");
    assert!(xs.len() >= 2, "need at least two points to fit a line");
    let n = xs.len() as f64;
    // All reductions go through `ordered_sum`/`ordered_sum_by` (strict
    // left-to-right over the caller's slice) so the fitted coefficients are
    // bit-stable regardless of iterator internals (FLT001).
    let mx = ordered_sum(xs) / n;
    let my = ordered_sum(ys) / n;
    let sxx = ordered_sum_by(xs, |x| (x - mx) * (x - mx));
    assert!(sxx > 0.0, "all x values identical");
    let pairs: Vec<(f64, f64)> = xs.iter().copied().zip(ys.iter().copied()).collect();
    let sxy = ordered_sum_by(&pairs, |&(x, y)| (x - mx) * (y - my));
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot = ordered_sum_by(ys, |y| (y - my) * (y - my));
    let ss_res = ordered_sum_by(&pairs, |&(x, y)| {
        let e = y - (intercept + slope * x);
        e * e
    });
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LinFit {
        slope,
        intercept,
        r2,
    }
}

/// Relative error of a prediction, `|pred − meas| / meas`.
pub fn rel_error(pred: SimDelta, meas: SimDelta) -> f64 {
    let m = meas.as_secs_f64();
    if m == 0.0 {
        return 0.0;
    }
    (pred.as_secs_f64() - m).abs() / m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_model_matches_paper_example() {
        // Sample sort, Table 5: base 13.2 s, m = 1,294,967 msgs; at
        // o = 103 µs (Δo = 100.1 µs) the paper predicts 272.2 s.
        let base = SimDelta::from_secs(13.2);
        let pred = predict_overhead(base, 1_294_967, SimDelta::from_micros(100.1));
        assert!(
            (pred.as_secs_f64() - 272.4).abs() < 1.0,
            "pred={}",
            pred.as_secs_f64()
        );
    }

    #[test]
    fn burst_gap_model_matches_paper_example() {
        // Radix, Table 6: base 7.8 s, m = 1,279,018; at g = 105 µs
        // (Δg = 99.2) the paper predicts 135.7 s.
        let base = SimDelta::from_secs(7.8);
        let pred = predict_gap_burst(base, 1_279_018, SimDelta::from_micros(99.2));
        assert!(
            (pred.as_secs_f64() - 134.7).abs() < 2.0,
            "pred={}",
            pred.as_secs_f64()
        );
    }

    #[test]
    fn uniform_gap_model_has_threshold() {
        let base = SimDelta::from_secs(1.0);
        let interval = SimDelta::from_micros(50.0);
        // Below the threshold: unaffected.
        let p1 = predict_gap_uniform(base, 1000, SimDelta::from_micros(30.0), interval);
        assert_eq!(p1, base);
        // Above: linear in (g - I).
        let p2 = predict_gap_uniform(base, 1000, SimDelta::from_micros(60.0), interval);
        assert_eq!(p2, base + 1000 * SimDelta::from_micros(10.0));
    }

    #[test]
    fn latency_model_linear_in_round_trips() {
        let base = SimDelta::from_secs(2.0);
        let p = predict_latency(base, 500_000, SimDelta::from_micros(100.0));
        assert!((p.as_secs_f64() - 52.0).abs() < 1e-6);
    }

    #[test]
    fn fit_recovers_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let f = fit_linear(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.at(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn fit_detects_nonlinearity() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let f = fit_linear(&xs, &ys);
        assert!(f.r2 < 0.97, "quadratic should not fit perfectly: {}", f.r2);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn fit_rejects_mismatched_lengths() {
        let _ = fit_linear(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn compound_model_restricts_to_axis_models() {
        use nowlab_am::Knobs;
        let m = SensitivityModel {
            base: SimDelta::from_secs(10.0),
            max_msgs: 1_000_000,
            read_round_trips: 400_000,
            bulk_bytes: 50_000_000,
        };
        // Overhead restriction equals the §5.1 model.
        let k = Knobs::with_overhead(SimDelta::from_micros(50.0));
        assert_eq!(
            m.predict(&k),
            predict_overhead(m.base, m.max_msgs, SimDelta::from_micros(50.0))
        );
        // Gap restriction equals the burst model.
        let k = Knobs::with_gap(SimDelta::from_micros(20.0));
        assert_eq!(
            m.predict(&k),
            predict_gap_burst(m.base, m.max_msgs, SimDelta::from_micros(20.0))
        );
        // Latency restriction equals the read model.
        let k = Knobs::with_latency(SimDelta::from_micros(100.0));
        assert_eq!(
            m.predict(&k),
            predict_latency(m.base, m.read_round_trips, SimDelta::from_micros(100.0))
        );
        // Composition is additive.
        let k = Knobs {
            d_o: SimDelta::from_micros(50.0),
            d_g: SimDelta::from_micros(20.0),
            d_lat: SimDelta::from_micros(100.0),
            d_gap_per_byte: SimDelta::from_nanos(10),
        };
        let expect = SimDelta::from_secs(10.0)
            + 2 * 1_000_000 * SimDelta::from_micros(50.0)
            + 1_000_000 * SimDelta::from_micros(20.0)
            + 400_000 * SimDelta::from_micros(100.0)
            + 50_000_000 * SimDelta::from_nanos(10);
        assert_eq!(m.predict(&k), expect);
        assert!((m.predict_slowdown(&k) - expect.as_secs_f64() / 10.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolation_bounds() {
        let m = SensitivityModel {
            base: SimDelta::from_secs(1.0),
            max_msgs: 100_000,
            read_round_trips: 0,
            bulk_bytes: 0,
        };
        // Halving a 2.9us mean overhead saves 2·m·1.45us = 0.29s.
        let r = m
            .extrapolate_overhead_reduction(SimDelta::from_micros(1.45))
            .unwrap();
        assert!((r.as_secs_f64() - 0.71).abs() < 1e-9);
        // Cannot save more time than the program takes.
        assert!(m
            .extrapolate_overhead_reduction(SimDelta::from_micros(10.0))
            .is_none());
    }

    #[test]
    fn rel_error_basics() {
        assert!((rel_error(SimDelta::from_secs(1.1), SimDelta::from_secs(1.0)) - 0.1).abs() < 1e-9);
        assert_eq!(rel_error(SimDelta::from_secs(1.0), SimDelta::ZERO), 0.0);
    }
}
