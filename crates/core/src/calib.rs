//! Calibration microbenchmarks (paper §3.3, Figure 3, Table 2).
//!
//! The paper verifies its apparatus with Active Message microbenchmarks:
//! issue a burst of `m` messages with a fixed computational delay `Δ`
//! between them, and plot the average initiation interval against `m` for
//! each `Δ` (the *LogP signature*). From the signature one reads
//!
//! * `o_send` — the interval of a very short burst,
//! * `g` — the steady-state interval at `Δ = 0`,
//! * `o_recv` — steady-state interval minus `Δ` minus `o_send` for large
//!   `Δ` (processor-bound regime),
//! * `L` — half the round-trip time minus the two overheads.
//!
//! We run the same microbenchmarks against the simulated apparatus. This is
//! not circular: the calibration *measures* the emergent behavior of the
//! NIC/flow-control machinery (e.g. the effective `g` rises at large `L`
//! because the constant window cannot fill the pipe — Table 2's artifact),
//! which the configured parameters alone do not state.

use std::cell::Cell;
use std::rc::Rc;

use nowlab_am::{AmCluster, Mark, NetConfig, Payload, ReplyData};
use nowlab_sim::{Sim, SimDelta};

/// One point of a LogP signature: average initiation interval for a burst.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SigPoint {
    /// Messages in the burst.
    pub burst: usize,
    /// Computational delay between messages, in µs.
    pub delta_us: f64,
    /// Average initiation interval seen by the sender, in µs.
    pub interval_us: f64,
}

/// A LogP signature: intervals for a grid of burst sizes and deltas
/// (Figure 3).
#[derive(Clone, Debug, Default)]
pub struct Signature {
    /// Measured points, in row-major (delta, burst) order.
    pub points: Vec<SigPoint>,
}

impl Signature {
    /// The steady-state interval for a given `Δ` (largest burst measured).
    pub fn steady_interval(&self, delta_us: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| (p.delta_us - delta_us).abs() < 1e-9)
            .max_by_key(|p| p.burst)
            .map(|p| p.interval_us)
    }
}

/// Measures the average initiation interval of a burst of `m` short
/// messages with `delta` of compute between them, on a 2-processor cluster.
///
/// The clock stops when the last message is *issued* (paper §3.3),
/// regardless of in-flight requests or replies.
pub fn burst_interval_us(net: NetConfig, m: usize, delta: SimDelta) -> f64 {
    burst_total(net, m, delta).as_micros_f64() / m as f64
}

/// Total virtual time to issue a burst of `m` messages (see
/// [`burst_interval_us`]).
pub fn burst_total(net: NetConfig, m: usize, delta: SimDelta) -> SimDelta {
    assert!(m > 0, "burst must contain at least one message");
    let sim = Sim::new();
    let cluster = AmCluster::new(sim.clone(), net, 2);
    let h = cluster.register_handler(|_| ReplyData::ack());
    let server = cluster.port(1);
    sim.spawn(async move { server.wait_until(|| false).await });
    let port = cluster.port(0);
    let measured = Rc::new(Cell::new(None));
    let out = Rc::clone(&measured);
    sim.spawn(async move {
        let t0 = port.now();
        for i in 0..m {
            if i > 0 && !delta.is_zero() {
                port.compute(delta).await;
            }
            port.post(1, h, [i as u64, 0, 0, 0], Payload::None, Mark::Write)
                .await;
        }
        out.set(Some(port.now().since(t0)));
        // The clock has stopped, but the client must go on servicing the
        // network: under a faulty wire the unacknowledged tail of the
        // burst keeps retransmitting until its replies are processed, and
        // only then does the simulation idle out.
        port.wait_until(|| false).await;
    });
    sim.run();
    measured.get().expect("calibration burst did not complete")
}

/// Asymptotic (steady-state) initiation interval for a given `Δ`, in µs.
///
/// Differences two long bursts so the pipelined start-up transient cancels
/// exactly — the equivalent of reading the flat tail of the Figure 3
/// signature.
pub fn steady_interval_us(net: NetConfig, delta: SimDelta) -> f64 {
    const M1: usize = 256;
    const M2: usize = 512;
    let t1 = burst_total(net, M1, delta);
    let t2 = burst_total(net, M2, delta);
    (t2 - t1).as_micros_f64() / (M2 - M1) as f64
}

/// Produces the Figure 3 LogP signature over the given grids.
pub fn signature(net: NetConfig, bursts: &[usize], deltas_us: &[f64]) -> Signature {
    let mut points = Vec::with_capacity(bursts.len() * deltas_us.len());
    for &d in deltas_us {
        for &m in bursts {
            points.push(SigPoint {
                burst: m,
                delta_us: d,
                interval_us: burst_interval_us(net, m, SimDelta::from_micros(d)),
            });
        }
    }
    Signature { points }
}

/// Measures a single short-message round-trip time, in µs.
pub fn round_trip_us(net: NetConfig) -> f64 {
    let sim = Sim::new();
    let cluster = AmCluster::new(sim.clone(), net, 2);
    let h = cluster.register_handler(|_| ReplyData::ack());
    let server = cluster.port(1);
    sim.spawn(async move { server.wait_until(|| false).await });
    let port = cluster.port(0);
    let measured = Rc::new(Cell::new(None));
    let out = Rc::clone(&measured);
    sim.spawn(async move {
        let t0 = port.now();
        port.request(1, h, [0; 4], Payload::None, Mark::Read).await;
        out.set(Some(port.now().since(t0)));
        port.wait_until(|| false).await; // keep draining (see burst_total)
    });
    sim.run();
    measured
        .get()
        .expect("round-trip did not complete")
        .as_micros_f64()
}

/// The LogGP characteristics recovered by the microbenchmarks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Calibration {
    /// Measured send overhead, µs.
    pub o_send_us: f64,
    /// Measured receive overhead, µs.
    pub o_recv_us: f64,
    /// Measured gap (steady-state interval at `Δ=0`), µs.
    pub gap_us: f64,
    /// Measured latency (`RTT/2 − o_send − o_recv`), µs.
    pub latency_us: f64,
}

impl Calibration {
    /// The reported `o`: mean of send and receive overheads.
    pub fn o_mean_us(&self) -> f64 {
        (self.o_send_us + self.o_recv_us) / 2.0
    }
}

/// Runs the full §3.3 calibration on a configuration.
pub fn calibrate(net: NetConfig) -> Calibration {
    let o_send_us = burst_interval_us(net, 1, SimDelta::ZERO);
    let gap_us = steady_interval_us(net, SimDelta::ZERO);
    // Processor-bound regime: Δ far above every other bottleneck.
    let big_delta_us = 2.0 * gap_us + 20.0;
    let proc_bound_us = steady_interval_us(net, SimDelta::from_micros(big_delta_us));
    let o_recv_us = proc_bound_us - big_delta_us - o_send_us;
    let rtt_us = round_trip_us(net);
    let latency_us = rtt_us / 2.0 - o_send_us - o_recv_us;
    Calibration {
        o_send_us,
        o_recv_us,
        gap_us,
        latency_us,
    }
}

/// Measures sustained bulk bandwidth (MB/s) by streaming `m` bulk messages
/// of `bytes` each and dividing by the steady-state interval (§3.3's `G`
/// calibration).
pub fn bulk_bandwidth_mb_per_s(net: NetConfig, bytes: u32, m: usize) -> f64 {
    assert!(m > 1 && bytes > 0);
    let sim = Sim::new();
    let cluster = AmCluster::new(sim.clone(), net, 2);
    let h = cluster.register_handler(|_| ReplyData::ack());
    let server = cluster.port(1);
    sim.spawn(async move { server.wait_until(|| false).await });
    let port = cluster.port(0);
    let measured = Rc::new(Cell::new(None));
    let out = Rc::clone(&measured);
    sim.spawn(async move {
        let t0 = port.now();
        for _ in 0..m {
            port.post(1, h, [0; 4], Payload::Synthetic(bytes), Mark::Bulk)
                .await;
        }
        port.quiesce().await;
        out.set(Some(port.now().since(t0)));
        port.wait_until(|| false).await; // keep draining (see burst_total)
    });
    sim.run();
    let total = measured
        .get()
        .expect("bulk calibration did not complete")
        .as_secs_f64();
    (bytes as f64 * m as f64) / 1e6 / total
}

/// Finds the saturated bulk bandwidth: grows the message size until the
/// bandwidth stops improving (the paper saw saturation at 2KB).
pub fn calibrate_bulk(net: NetConfig) -> f64 {
    let mut best = 0.0f64;
    let mut size = 256u32;
    while size <= 16 * 1024 {
        let bw = bulk_bandwidth_mb_per_s(net, size, 32);
        if bw > best {
            best = bw;
        } else if bw < best * 0.99 {
            break;
        }
        size *= 2;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use nowlab_am::Knobs;

    #[test]
    fn baseline_calibration_recovers_table1() {
        let c = calibrate(NetConfig::berkeley_now());
        assert!((c.o_send_us - 1.8).abs() < 0.05, "o_send={}", c.o_send_us);
        assert!((c.o_recv_us - 4.0).abs() < 0.05, "o_recv={}", c.o_recv_us);
        assert!((c.o_mean_us() - 2.9).abs() < 0.05);
        assert!((c.gap_us - 5.8).abs() < 0.1, "g={}", c.gap_us);
        assert!((c.latency_us - 5.0).abs() < 0.1, "L={}", c.latency_us);
    }

    #[test]
    fn added_overhead_shows_up_in_o_and_g_but_not_l() {
        let net =
            NetConfig::berkeley_now().with_knobs(Knobs::with_overhead(SimDelta::from_micros(50.0)));
        let c = calibrate(net);
        assert!((c.o_mean_us() - 52.9).abs() < 0.2, "o={}", c.o_mean_us());
        // Effective gap becomes o_send' + o_recv' = 205.8-100=105.8... for
        // Δo=50: 51.8+54.0 = 105.8.
        assert!((c.gap_us - 105.8).abs() < 0.5, "g={}", c.gap_us);
        assert!((c.latency_us - 5.0).abs() < 0.2, "L={}", c.latency_us);
    }

    #[test]
    fn added_gap_leaves_o_and_l_alone() {
        let net =
            NetConfig::berkeley_now().with_knobs(Knobs::with_gap(SimDelta::from_micros(49.2)));
        let c = calibrate(net); // desired g = 55
        assert!((c.gap_us - 55.0).abs() < 0.5, "g={}", c.gap_us);
        assert!((c.o_mean_us() - 2.9).abs() < 0.1, "o={}", c.o_mean_us());
        assert!((c.latency_us - 5.0).abs() < 0.2, "L={}", c.latency_us);
    }

    #[test]
    fn large_latency_raises_effective_gap_table2_artifact() {
        let net =
            NetConfig::berkeley_now().with_knobs(Knobs::with_latency(SimDelta::from_micros(100.0)));
        let c = calibrate(net);
        assert!((c.latency_us - 105.0).abs() < 0.5, "L={}", c.latency_us);
        assert!((c.o_mean_us() - 2.9).abs() < 0.1);
        // Constant window of 8: effective g ≈ RTT/8 = (2·105 + 11.6)/8 ≈ 27.6,
        // matching the paper's observed 27.7 for desired L = 105.
        assert!(
            (c.gap_us - 27.7).abs() < 1.0,
            "effective gap {} should rise to ~27.7",
            c.gap_us
        );
    }

    #[test]
    fn bulk_calibration_near_38_mb_per_s() {
        let bw = calibrate_bulk(NetConfig::berkeley_now());
        assert!((bw - 38.0).abs() < 2.5, "bulk bandwidth {bw}");
    }

    #[test]
    fn reduced_bulk_bandwidth_is_observed() {
        let base = NetConfig::berkeley_now();
        let knobs = Knobs::with_bulk_bandwidth(&base.machine, 10.0).unwrap();
        let bw = calibrate_bulk(base.with_knobs(knobs));
        assert!((bw - 10.0).abs() < 1.0, "bulk bandwidth {bw}");
    }

    #[test]
    fn signature_is_monotone_in_burst_size_toward_steady_state() {
        let sig = signature(
            NetConfig::berkeley_now(),
            &[1, 2, 4, 8, 16, 64, 256],
            &[0.0, 10.0],
        );
        // At Δ=0 the interval grows from o_send toward g.
        let d0: Vec<f64> = sig
            .points
            .iter()
            .filter(|p| p.delta_us == 0.0)
            .map(|p| p.interval_us)
            .collect();
        assert!(d0.first().unwrap() < d0.last().unwrap());
        assert!((d0[0] - 1.8).abs() < 0.05);
        // Signature averages include the start-up transient, so allow a
        // wider band than the differenced estimator.
        let steady = sig.steady_interval(0.0).unwrap();
        assert!((steady - 5.8).abs() < 0.2, "steady={steady}");
        // At Δ=10 the steady state is o_send + o_recv + Δ = 15.8.
        let steady10 = sig.steady_interval(10.0).unwrap();
        assert!((steady10 - 15.8).abs() < 0.3, "steady10={steady10}");
    }

    #[test]
    fn round_trip_is_2l_plus_4o() {
        let rtt = round_trip_us(NetConfig::berkeley_now());
        assert!((rtt - 21.6).abs() < 0.05, "rtt={rtt}");
    }
}
