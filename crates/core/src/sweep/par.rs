//! The run-boundary worker pool behind the parallel sweep engine.
//!
//! Parallelism in `nowlab` stops at the boundary of a single simulation:
//! every [`crate::sweep::SweepableApp::run`] stays single-threaded and
//! `Rc`-internal, and whole *runs* — independent `(app, axis, value)`
//! points of a sensitivity sweep — fan out across OS threads. Because a
//! run is a pure function of its [`crate::sweep::RunSpec`], executing
//! points concurrently and collecting results **by point index** yields
//! byte-identical output to the sequential driver; seeds and fault plans
//! derive from the spec, never from submission order.
//!
//! The pool is dependency-free (`std::thread::scope` plus an atomic
//! work-claiming cursor); the analyzer's `PAR001` lint confines this kind
//! of code to the orchestration layer (`crates/core::sweep`,
//! `crates/bench`, `src/bin`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count used when the caller does not specify `--jobs`: the
/// host's available parallelism (1 if it cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item, using up to `jobs` worker threads, and
/// returns the results **in item order** — independent of which worker ran
/// which item and of completion order.
///
/// With `jobs <= 1` (or fewer than two items) this is a plain sequential
/// loop on the calling thread — exactly the pre-parallel code path. Worker
/// threads claim items through a shared atomic cursor (self-balancing: a
/// worker stuck on a slow simulation does not hold back the queue).
///
/// # Panics
///
/// Propagates the first panic raised by `f` (via `std::thread::scope`).
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let out = f(i, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                })
            })
            .collect();
        // Join explicitly so a worker's panic resumes with its original
        // payload (scope's implicit join replaces it with a generic one).
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_item_order_for_any_job_count() {
        let items: Vec<usize> = (0..37).collect();
        let expect: Vec<usize> = items.iter().map(|v| v * v).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = parallel_map(jobs, &items, |i, v| {
                assert_eq!(i, *v);
                v * v
            });
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &none, |_, v| *v).is_empty());
        assert_eq!(parallel_map(8, &[41u32], |_, v| v + 1), vec![42]);
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        let _ = parallel_map(2, &items, |_, v| {
            if *v == 5 {
                panic!("boom");
            }
            *v
        });
    }
}
