//! The `nowlab predict` engine: latency-tolerance analytics from **one**
//! traced run.
//!
//! [`predict_app`] runs the application once with full tracing, builds the
//! happens-before message DAG ([`nowlab_predict::analyze`]), then re-prices
//! the DAG symbolically at every grid point of the requested axes — no
//! re-simulation. The result carries predicted slowdown curves, a
//! λ-style tolerance threshold per axis (the parameter value where
//! slowdown first exceeds [`TOLERANCE`]), and the baseline critical-path
//! breakdown by LogGP cost bucket and application phase.
//!
//! The JSON schema follows the metrics-report conventions (hand-rolled
//! writer, `schema`/`version` preamble, byte-identical across runs and
//! `--jobs` settings); [`render_report_auto`] sniffs the `schema` field so
//! `nowlab report` renders either kind of file.

use std::io::{self, Write};

use nowlab_metrics::json;
use nowlab_predict::{analyze, tolerance_threshold, Bucket, PathBreakdown, BUCKETS};
use nowlab_sim::SimDelta;
use nowlab_trace::{TraceMode, TraceReport};

use crate::report::{fmt_f, fmt_time, sparkline, Table};
use crate::sweep::par::parallel_map;
use crate::sweep::{Axis, RunSpec, SweepableApp};

/// Name of the schema emitted in every predict-report file.
pub const SCHEMA_NAME: &str = "nowlab-predict-report";
/// Version of the schema. Bump on any field removal or meaning change;
/// additions are backward compatible (see DESIGN.md §10).
pub const SCHEMA_VERSION: u64 = 1;

/// Slowdown budget defining the tolerance threshold: the reported
/// threshold is the axis value where predicted slowdown first crosses
/// `1 + TOLERANCE`.
pub const TOLERANCE: f64 = 0.05;

/// One predicted sweep point.
#[derive(Clone, Copy, Debug)]
pub struct PredictPoint {
    /// Desired absolute parameter value (µs, or MB/s for bulk bandwidth).
    pub desired: f64,
    /// Predicted runtime at this point.
    pub runtime: SimDelta,
    /// Predicted runtime ÷ measured baseline runtime.
    pub slowdown: f64,
}

/// A predicted sensitivity curve along one axis.
#[derive(Clone, Debug)]
pub struct AxisPrediction {
    /// The swept axis.
    pub axis: Axis,
    /// Predicted points at the axis's paper grid values.
    pub points: Vec<PredictPoint>,
    /// First axis value whose predicted slowdown exceeds
    /// `1 +`[`TOLERANCE`] (linear interpolation between grid points);
    /// `None` when the whole sweep stays within budget.
    pub threshold: Option<f64>,
}

/// Everything `nowlab predict` learned from one traced run.
pub struct Prediction {
    /// Application name.
    pub app: String,
    /// Processor count of the analyzed run.
    pub procs: usize,
    /// RNG seed of the analyzed run.
    pub seed: u64,
    /// Measured baseline runtime (equals the DAG's baseline critical
    /// path exactly — `analyze` verifies this).
    pub baseline: SimDelta,
    /// Happens-before DAG size: instants.
    pub nodes: usize,
    /// Happens-before DAG size: precedence edges.
    pub edges: usize,
    /// Non-fatal analysis notes (missing pairings, fallbacks).
    pub warnings: Vec<String>,
    /// One predicted curve per requested axis.
    pub axes: Vec<AxisPrediction>,
    /// Baseline critical-path attribution (buckets, phases, messages).
    pub breakdown: PathBreakdown,
    /// The baseline run's full trace — kept so callers can export a
    /// Chrome trace with [`Prediction::breakdown`]'s critical messages
    /// highlighted without re-running.
    pub trace: TraceReport,
}

/// The CLI spelling of an axis (`--axis` vocabulary, also the JSON
/// `"axis"` field).
fn axis_slug(axis: Axis) -> &'static str {
    match axis {
        Axis::Overhead => "overhead",
        Axis::Gap => "gap",
        Axis::Latency => "latency",
        Axis::BulkBandwidth => "bulk",
        Axis::Coll => "coll",
    }
}

/// Runs `app` once under `spec` with full tracing and predicts its
/// sensitivity curves along `axes` by symbolic re-pricing.
///
/// `jobs` parallelizes the per-grid-point evaluations; results are
/// collected by index, so output is byte-identical across job counts.
///
/// # Errors
///
/// Propagates [`nowlab_predict::PredictError`] (summary-only trace,
/// faulty run, cyclic graph, baseline mismatch) as a rendered string,
/// and refuses baselines that hit their event/time limit.
pub fn predict_app(
    app: &dyn SweepableApp,
    spec: &RunSpec,
    axes: &[Axis],
    jobs: usize,
) -> Result<Prediction, String> {
    let traced = app.run(&(*spec).with_trace(TraceMode::Full));
    if !traced.completed {
        return Err(format!(
            "{}: baseline run hit its limit; prediction needs a completed baseline",
            app.name()
        ));
    }
    let baseline = traced.runtime;
    let report = traced.trace.ok_or("trace requested but not produced")?;
    let analysis = analyze(&report, &spec.net, spec.procs, baseline)
        .map_err(|e| format!("{}: {e}", app.name()))?;
    let mut warnings: Vec<String> = analysis.warnings().to_vec();

    // Flatten every axis's grid into one work list so a single
    // parallel_map covers all points regardless of how axes divide.
    let mut grid: Vec<(usize, f64, nowlab_am::NetConfig)> = Vec::new();
    for (i, &axis) in axes.iter().enumerate() {
        for desired in axis.paper_values() {
            match axis.knobs_for(&spec.net.machine, desired) {
                Some(knobs) => {
                    let mut cfg = spec.net;
                    cfg.knobs = knobs;
                    grid.push((i, desired, cfg));
                }
                None => warnings.push(format!(
                    "{}: {desired} is faster than the baseline; skipped",
                    axis.label()
                )),
            }
        }
    }
    let runtimes = parallel_map(jobs, &grid, |_, (_, _, cfg)| analysis.predict_runtime(cfg));

    let base_ns = baseline.as_nanos() as f64;
    let mut curves: Vec<AxisPrediction> = axes
        .iter()
        .map(|&axis| AxisPrediction {
            axis,
            points: Vec::new(),
            threshold: None,
        })
        .collect();
    for (&(i, desired, _), &runtime) in grid.iter().zip(&runtimes) {
        curves[i].points.push(PredictPoint {
            desired,
            runtime,
            slowdown: runtime.as_nanos() as f64 / base_ns,
        });
    }
    for curve in &mut curves {
        let pts: Vec<(f64, f64)> = curve
            .points
            .iter()
            .map(|p| (p.desired, p.slowdown))
            .collect();
        curve.threshold = tolerance_threshold(&pts, TOLERANCE);
    }

    let breakdown = analysis.breakdown(&spec.net);
    Ok(Prediction {
        app: app.name().to_string(),
        procs: spec.procs,
        seed: spec.seed,
        baseline,
        nodes: analysis.node_count(),
        edges: analysis.edge_count(),
        warnings,
        axes: curves,
        breakdown,
        trace: report,
    })
}

impl Prediction {
    /// Writes the versioned `"kind":"predict"` report.
    ///
    /// Same conventions as the metrics schema: hand-rolled JSON, every
    /// value an integer, fixed-precision float, or ASCII label; a given
    /// run writes byte-identical files at any `--jobs` setting.
    pub fn write_json<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            r#"{{"schema":"{SCHEMA_NAME}","version":{SCHEMA_VERSION},"kind":"predict","app":"{}","procs":{},"seed":{},"baseline_ns":{},"tolerance":{TOLERANCE},"#,
            self.app,
            self.procs,
            self.seed,
            self.baseline.as_nanos()
        )?;
        write!(
            w,
            r#""dag":{{"nodes":{},"edges":{}}},"warnings":["#,
            self.nodes, self.edges
        )?;
        for (i, warn) in self.warnings.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            // Warnings are generated in-crate from ASCII templates; strip
            // the two JSON-special characters defensively anyway.
            let clean: String = warn.chars().filter(|&c| c != '"' && c != '\\').collect();
            write!(w, r#""{clean}""#)?;
        }
        write!(w, r#"],"axes":["#)?;
        for (i, curve) in self.axes.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(
                w,
                "\n  {{\"axis\":\"{}\",\"label\":\"{}\",\"threshold\":",
                axis_slug(curve.axis),
                curve.axis.label()
            )?;
            match curve.threshold {
                Some(t) => write!(w, "{t:.3}")?,
                None => write!(w, "null")?,
            }
            write!(w, r#","points":["#)?;
            for (j, p) in curve.points.iter().enumerate() {
                if j > 0 {
                    write!(w, ",")?;
                }
                write!(
                    w,
                    r#"{{"x":{:.3},"runtime_ns":{},"slowdown":{:.4}}}"#,
                    p.desired,
                    p.runtime.as_nanos(),
                    p.slowdown
                )?;
            }
            write!(w, "]}}")?;
        }
        let b = &self.breakdown;
        write!(
            w,
            "],\n\"critical_path\":{{\"total_ns\":{},\"edges\":{},\"buckets\":[",
            b.total.as_nanos(),
            b.edges_on_path
        )?;
        for (i, bucket) in Bucket::all().iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(
                w,
                r#"{{"name":"{}","ns":{}}}"#,
                bucket.as_str(),
                b.buckets[bucket.index()].as_nanos()
            )?;
        }
        write!(w, r#"],"phases":["#)?;
        for (i, row) in b.phases.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(
                w,
                "\n  {{\"phase\":\"{}\",\"total_ns\":{},\"buckets\":[",
                row.label,
                row.total.as_nanos()
            )?;
            for (j, d) in row.buckets.iter().enumerate() {
                if j > 0 {
                    write!(w, ",")?;
                }
                write!(w, "{}", d.as_nanos())?;
            }
            write!(w, "]}}")?;
        }
        write!(w, r#"],"critical_msgs":["#)?;
        for (i, id) in b.critical_msgs.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(w, "{id}")?;
        }
        writeln!(w, "]}}}}")
    }

    /// Renders the prediction for the terminal — by round-tripping
    /// through the JSON writer and [`render_predict_report`], so the live
    /// `nowlab predict` output and a later `nowlab report FILE.json` are
    /// character-identical.
    pub fn render(&self) -> String {
        let mut buf = Vec::new();
        self.write_json(&mut buf)
            .expect("in-memory write cannot fail");
        let text = String::from_utf8(buf).expect("writer emits ASCII");
        render_predict_report(&text).expect("writer and renderer share a schema")
    }
}

fn req<'v>(v: &'v json::Value, key: &str) -> Result<&'v json::Value, String> {
    v.get(key).ok_or_else(|| format!("missing `{key}`"))
}

/// Renders a saved predict-report JSON file as the `nowlab predict`
/// terminal output (sweep tables, tolerance-threshold lines, and the
/// critical-path breakdown).
pub fn render_predict_report(text: &str) -> Result<String, String> {
    use std::fmt::Write as _;
    let v = json::parse(text)?;
    let schema = req(&v, "schema")?.as_str().unwrap_or("?");
    if schema != SCHEMA_NAME {
        return Err(format!("not a predict report (schema `{schema}`)"));
    }
    let version = req(&v, "version")?.as_u64().unwrap_or(0);
    if version > SCHEMA_VERSION {
        return Err(format!(
            "predict report version {version} is newer than this binary ({SCHEMA_VERSION})"
        ));
    }
    let app = req(&v, "app")?.as_str().unwrap_or("?").to_string();
    let procs = req(&v, "procs")?.as_u64().unwrap_or(0);
    let seed = req(&v, "seed")?.as_u64().unwrap_or(0);
    let baseline_ns = req(&v, "baseline_ns")?.as_u64().unwrap_or(0);
    let tolerance = req(&v, "tolerance")?.as_f64().unwrap_or(TOLERANCE);
    let dag = req(&v, "dag")?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "predicted from one traced run: {app} on {procs} processors (seed {seed})"
    );
    let _ = writeln!(
        out,
        "baseline runtime {} == DAG critical path ({} nodes, {} edges); no re-simulation",
        fmt_time(SimDelta::from_nanos(baseline_ns)),
        dag.get("nodes").and_then(|n| n.as_u64()).unwrap_or(0),
        dag.get("edges").and_then(|n| n.as_u64()).unwrap_or(0),
    );
    if let Some(warnings) = v.get("warnings").and_then(|w| w.as_arr()) {
        for warn in warnings {
            let _ = writeln!(out, "warning: {}", warn.as_str().unwrap_or("?"));
        }
    }
    let _ = writeln!(out);

    for curve in req(&v, "axes")?.as_arr().ok_or("`axes` not an array")? {
        let label = req(curve, "label")?.as_str().unwrap_or("?").to_string();
        let points = req(curve, "points")?
            .as_arr()
            .ok_or("`points` not an array")?;
        let mut t = Table::new(
            format!("{app}: predicted slowdown vs {label}"),
            &[label.as_str(), "runtime", "slowdown", ""],
        );
        let slowdowns: Vec<f64> = points
            .iter()
            .filter_map(|p| p.get("slowdown").and_then(|s| s.as_f64()))
            .collect();
        let spark = sparkline(&slowdowns);
        let glyphs: Vec<char> = spark.chars().collect();
        for (i, p) in points.iter().enumerate() {
            let x = req(p, "x")?.as_f64().unwrap_or(f64::NAN);
            let ns = req(p, "runtime_ns")?.as_u64().unwrap_or(0);
            let slow = req(p, "slowdown")?.as_f64().unwrap_or(f64::NAN);
            t.push_row([
                fmt_f(x, 1),
                fmt_time(SimDelta::from_nanos(ns)),
                fmt_f(slow, 2),
                glyphs.get(i).copied().unwrap_or(' ').to_string(),
            ]);
        }
        let _ = write!(out, "{t}");
        let axis = req(curve, "axis")?.as_str().unwrap_or("?");
        match req(curve, "threshold")?.as_f64() {
            Some(thr) => {
                let _ = writeln!(
                    out,
                    "tolerance threshold [{axis}]: {} — first {:.0}% predicted slowdown",
                    fmt_f(thr, 1),
                    tolerance * 100.0
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "tolerance threshold [{axis}]: beyond the sweep — \
                     predicted slowdown stays within {:.0}%",
                    tolerance * 100.0
                );
            }
        }
        let _ = writeln!(out);
    }

    let cp = req(&v, "critical_path")?;
    let total_ns = req(cp, "total_ns")?.as_u64().unwrap_or(0);
    let mut t = Table::new(
        format!(
            "baseline critical path: {} over {} edges",
            fmt_time(SimDelta::from_nanos(total_ns)),
            cp.get("edges").and_then(|n| n.as_u64()).unwrap_or(0)
        ),
        &["bucket", "time", "share"],
    );
    for bucket in req(cp, "buckets")?
        .as_arr()
        .ok_or("`buckets` not an array")?
    {
        let name = req(bucket, "name")?.as_str().unwrap_or("?").to_string();
        let ns = req(bucket, "ns")?.as_u64().unwrap_or(0);
        if ns == 0 {
            continue; // unused buckets add noise, not information
        }
        let share = if total_ns == 0 {
            0.0
        } else {
            100.0 * ns as f64 / total_ns as f64
        };
        t.push_row([
            name,
            fmt_time(SimDelta::from_nanos(ns)),
            format!("{}%", fmt_f(share, 1)),
        ]);
    }
    let _ = write!(out, "{t}");

    let phases = req(cp, "phases")?.as_arr().ok_or("`phases` not an array")?;
    if !phases.is_empty() {
        let names: Vec<&str> = Bucket::all().iter().map(|b| b.as_str()).collect();
        let mut headers: Vec<&str> = vec!["phase", "total"];
        headers.extend(names);
        let _ = writeln!(out);
        let mut t = Table::new("critical path by phase", &headers);
        for row in phases {
            let label = req(row, "phase")?.as_str().unwrap_or("?").to_string();
            let ns = req(row, "total_ns")?.as_u64().unwrap_or(0);
            let buckets = req(row, "buckets")?
                .as_u64s()
                .ok_or("`buckets` not an integer array")?;
            if buckets.len() != BUCKETS {
                return Err(format!("phase row has {} buckets", buckets.len()));
            }
            let mut cells = vec![label, fmt_time(SimDelta::from_nanos(ns))];
            cells.extend(buckets.iter().map(|&b| {
                if b == 0 {
                    "-".to_string()
                } else {
                    fmt_time(SimDelta::from_nanos(b))
                }
            }));
            t.push_row(cells);
        }
        let _ = write!(out, "{t}");
    }
    if let Some(ids) = cp.get("critical_msgs").and_then(|m| m.as_arr()) {
        let _ = writeln!(out, "\nmessages on the critical path: {}", ids.len());
    }
    Ok(out.trim_end().to_string())
}

/// Renders a saved report of either schema: predict reports go through
/// [`render_predict_report`], everything else through the metrics
/// renderer. This is what `nowlab report FILE.json` calls.
pub fn render_report_auto(text: &str) -> Result<String, String> {
    let schema = json::parse(text)
        .ok()
        .and_then(|v| v.get("schema").and_then(|s| s.as_str().map(String::from)));
    match schema.as_deref() {
        Some(SCHEMA_NAME) => render_predict_report(text),
        _ => nowlab_metrics::render_report(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nowlab_predict::PhaseRow;

    fn sample() -> Prediction {
        let d = SimDelta::from_nanos;
        let mut buckets = [SimDelta::ZERO; BUCKETS];
        buckets[Bucket::Compute.index()] = d(700);
        buckets[Bucket::Wire.index()] = d(300);
        Prediction {
            app: "Toy".into(),
            procs: 4,
            seed: 1,
            baseline: d(1_000),
            nodes: 12,
            edges: 20,
            warnings: vec!["no request/reply pairs".into()],
            axes: vec![AxisPrediction {
                axis: Axis::Latency,
                points: vec![
                    PredictPoint {
                        desired: 5.0,
                        runtime: d(1_000),
                        slowdown: 1.0,
                    },
                    PredictPoint {
                        desired: 15.0,
                        runtime: d(1_200),
                        slowdown: 1.2,
                    },
                ],
                threshold: Some(7.5),
            }],
            breakdown: PathBreakdown {
                total: d(1_000),
                buckets,
                phases: vec![PhaseRow {
                    label: "(startup)".into(),
                    buckets,
                    total: d(1_000),
                }],
                critical_msgs: vec![3, 9],
                edges_on_path: 7,
            },
            trace: TraceReport::default(),
        }
    }

    #[test]
    fn json_round_trips_through_the_renderer() {
        let p = sample();
        let text = p.render();
        assert!(text.contains("predicted from one traced run: Toy"));
        assert!(text.contains("tolerance threshold [latency]: 7.5"));
        assert!(text.contains("warning: no request/reply pairs"));
        assert!(text.contains("messages on the critical path: 2"));
        assert!(text.contains("compute"));
        // Unused buckets are suppressed in the share table (only the
        // 70% compute / 30% wire rows survive).
        assert!(text.contains("70.0%"));
        assert!(text.contains("30.0%"));
        assert!(!text.contains("0.0us"));
    }

    #[test]
    fn report_dispatch_sniffs_the_schema() {
        let p = sample();
        let mut buf = Vec::new();
        p.write_json(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(render_report_auto(&text).unwrap(), p.render());
        assert!(render_report_auto("{\"schema\":\"bogus\"}").is_err());
        assert!(render_report_auto("not json").is_err());
    }

    #[test]
    fn writer_is_deterministic_and_versioned() {
        let p = sample();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        p.write_json(&mut a).unwrap();
        p.write_json(&mut b).unwrap();
        assert_eq!(a, b);
        let v = json::parse(std::str::from_utf8(&a).unwrap()).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some(SCHEMA_NAME));
        assert_eq!(v.get("version").unwrap().as_u64(), Some(SCHEMA_VERSION));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("predict"));
        let axes = v.get("axes").unwrap().as_arr().unwrap();
        assert_eq!(axes[0].get("axis").unwrap().as_str(), Some("latency"));
        let cp = v.get("critical_path").unwrap();
        assert_eq!(cp.get("total_ns").unwrap().as_u64(), Some(1_000));
        assert_eq!(cp.get("critical_msgs").unwrap().as_u64s(), Some(vec![3, 9]));
    }
}
