//! Plain-text table and CSV rendering for the experiment harness.
//!
//! The benches print paper-style tables; this module keeps the formatting
//! in one place.

use std::fmt;

use nowlab_sim::SimDelta;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as comma-separated values (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Widths in characters (sparkline glyphs are multi-byte).
        let char_len = |s: &String| s.chars().count();
        let mut widths: Vec<usize> = self.headers.iter().map(char_len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(char_len(cell));
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            writeln!(f, "| {} |", line.join(" | "))
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Renders a compact sparkline of `values` with unicode block glyphs,
/// scaled from the minimum to the maximum value (a flat series renders as
/// all-low). Handy for eyeballing sweep shapes in terminal tables.
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || hi <= lo {
        return GLYPHS[0].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return ' ';
            }
            let t = (v - lo) / (hi - lo);
            GLYPHS[((t * (GLYPHS.len() - 1) as f64).round() as usize).min(GLYPHS.len() - 1)]
        })
        .collect()
}

/// Formats a float with `prec` decimals.
pub fn fmt_f(x: f64, prec: usize) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.prec$}")
    }
}

/// Formats a virtual duration with an auto-selected unit.
pub fn fmt_time(d: SimDelta) -> String {
    let us = d.as_micros_f64();
    if us < 1_000.0 {
        format!("{us:.1}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1_000.0)
    } else {
        format!("{:.3}s", us / 1_000_000.0)
    }
}

/// Formats an optional measurement, using the paper's "N/A" for runs that
/// hit their livelock limit.
pub fn fmt_or_na(value: Option<f64>, prec: usize) -> String {
    match value {
        Some(v) => fmt_f(v, prec),
        None => "N/A".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(["alpha", "1"]);
        t.push_row(["b", "22"]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| alpha |     1 |"));
        assert!(s.contains("|     b |    22 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▁▁▁");
        let s = sparkline(&[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        // Monotone input -> monotone glyphs.
        let glyphs: Vec<char> = s.chars().collect();
        assert!(glyphs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[f64::NAN, 1.0, 2.0]).chars().next(), Some(' '));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(f64::INFINITY, 2), "inf");
        assert_eq!(fmt_time(SimDelta::from_micros(12.34)), "12.3us");
        assert_eq!(fmt_time(SimDelta::from_millis(12.3)), "12.30ms");
        assert_eq!(fmt_time(SimDelta::from_secs(1.5)), "1.500s");
        assert_eq!(fmt_or_na(None, 1), "N/A");
        assert_eq!(fmt_or_na(Some(2.0), 1), "2.0");
    }
}
