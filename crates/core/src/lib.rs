//! # nowlab-core — the ISCA'97 sensitivity apparatus
//!
//! This crate is the reproduction's heart: the methodology of Martin,
//! Vahdat, Culler & Anderson, *"Effects of Communication Latency, Overhead,
//! and Bandwidth in a Cluster Architecture"* (ISCA 1997), as a library.
//!
//! * [`calib`] — the §3.3 microbenchmarks: LogP signatures (Figure 3),
//!   parameter calibration (Table 2), bulk-bandwidth calibration.
//! * [`models`] — the §5 analytic predictors (`r + 2mΔo`, burst/uniform gap
//!   models, read-latency model) and least-squares linearity checks.
//! * [`mod@sweep`] — the sensitivity-sweep driver behind Figures 5–8: run an
//!   application while one LogGP knob is dialed from the NOW baseline to
//!   LAN-like values.
//! * [`report`] — paper-style table and CSV rendering.
//!
//! Machine presets ([`nowlab_am::LoggpParams::berkeley_now`],
//! [`nowlab_am::LoggpParams::intel_paragon`],
//! [`nowlab_am::LoggpParams::meiko_cs2`]) live in `nowlab-am` and are
//! re-exported here.
//!
//! # Examples
//!
//! Calibrating the baseline apparatus recovers Table 1:
//!
//! ```
//! use nowlab_core::calib::calibrate;
//! use nowlab_core::NetConfig;
//!
//! let c = calibrate(NetConfig::berkeley_now());
//! assert!((c.o_mean_us() - 2.9).abs() < 0.1);
//! assert!((c.gap_us - 5.8).abs() < 0.1);
//! assert!((c.latency_us - 5.0).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
pub mod models;
pub mod predict;
pub mod report;
pub mod sweep;

pub use models::SensitivityModel;
pub use nowlab_am::{
    mb_per_s_from_per_byte, per_byte_from_mb_per_s, CommStats, FaultPlan, Knobs, LoggpParams,
    NetConfig, NodeFault, NodeFaultPlan, Outage, Reliability, RunAbort,
};
pub use nowlab_metrics::json;
pub use nowlab_metrics::{
    render_report, write_sweep_json, MetricsMode, MetricsRecorder, MetricsReport, MetricsSink,
    MetricsSummary, ProcState, RunMeta, SweepPointMeta, DEFAULT_WINDOW,
};
pub use nowlab_sim::{SimDelta, SimTime};
pub use nowlab_splitc::{
    allgather_us, alltoall_us, bcast_us, reduce_us, A2aAlgo, BcastAlgo, CollAlgo, CollConfig,
    GatherAlgo, ReduceAlgo, Selector,
};
pub use nowlab_trace::{TraceMode, TraceReport, TraceSummary};
pub use predict::{
    predict_app, render_predict_report, render_report_auto, AxisPrediction, PredictPoint,
    Prediction,
};
pub use sweep::par::{default_jobs, parallel_map};
pub use sweep::{
    sweep, sweep_jobs, sweep_many, Axis, AxisSweep, RunOutcome, RunSpec, SweepError, SweepPoint,
    SweepableApp,
};
