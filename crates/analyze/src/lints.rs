//! The two lint families, implemented over the token stream.
//!
//! **Family 1 — determinism (`DET…`).** Virtual time in `nowlab` must be a
//! pure function of (program, seed). Anything whose behavior depends on
//! hasher state, wall-clock time, or OS entropy can silently perturb event
//! order, so simulation-visible code may not use it.
//!
//! **Family 2 — AM protocol (`AMP…`).** The GAM rules the paper's
//! apparatus relies on: request/reply acyclicity in handlers, single named
//! constants for the flow-control window and fragment size, public
//! sim-facing APIs free of nondeterministic collection types, and
//! membership/failure-detector state confined to `crates/am`.
//!
//! `SAFE001` additionally checks that every scanned crate root carries
//! `#![forbid(unsafe_code)]`, so the analyzer may assume safe Rust (no
//! out-of-band entropy or clock access behind `unsafe`).

use crate::itemtree::FileModel;
use crate::lexer::{Tok, TokKind};
use crate::{Diagnostic, Scope, Severity};

/// Hash-based std collections whose iteration order is nondeterministic.
const HASH_COLLECTIONS: &[&str] = &["HashMap", "HashSet"];
/// Wall-clock types that must not appear in simulation-visible code.
const WALL_CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];
/// Entropy sources allowed only inside `crates/rng`.
const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "getrandom",
    "rand",
];
/// Wall-clock-to-duration conversions that feed virtual time (heuristic).
const WALL_FLOW_IDENTS: &[&str] = &["UNIX_EPOCH", "duration_since"];
/// Port calls a reply handler must never make (GAM request/reply
/// acyclicity: reply handlers run on the reply path and issuing a request
/// from one can deadlock the flow-control window).
const HANDLER_FORBIDDEN_CALLS: &[&str] = &["request", "post", "post_bulk", "inject"];
/// The failure detector's vocabulary: membership tables, the status enum,
/// the death-escalation transition, and the raw detector tuning fields.
/// All of it lives in `crates/am`; every other layer observes membership
/// only through the port accessors (`peer_dead`, `peers_alive`,
/// `alive_count`, `death_note`) and configures the detector only through
/// `NodeFaultPlan::with_detector`. A second copy of membership state
/// outside the AM layer could disagree with the authoritative one.
const MEMBERSHIP_IDENTS: &[&str] = &[
    "PeerStatus",
    "peer_status",
    "last_heard",
    "escalate_peer_death",
    "hb_period",
    "suspect_after",
    "confirm_after",
    "hb_jitter",
];
/// Thread/lock/atomic primitives reserved for the orchestration layer.
/// (`Arc` is absent: it is a legitimate shared-ownership type; what must
/// not leak below the run boundary is blocking/synchronizing machinery.)
const PAR_IDENTS: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "mpsc",
    "AtomicUsize",
    "AtomicU32",
    "AtomicU64",
    "AtomicBool",
    "AtomicI32",
    "AtomicI64",
    "available_parallelism",
];

/// Runs every token-level lint applicable under `scope` over `source`.
/// Convenience wrapper around [`lint_model`] for one-off sources; the
/// workspace scan parses each file once and shares the [`FileModel`] with
/// the [`families`](crate::families) pass.
pub fn lint_source(path: &str, source: &str, scope: &Scope) -> Vec<Diagnostic> {
    lint_model(path, &FileModel::parse(source), scope)
}

/// Runs every token-level lint applicable under `scope` over a parsed
/// [`FileModel`]. Test exemption comes from the item tree's exact
/// `#[cfg(test)]` attribute tracking.
pub fn lint_model(path: &str, model: &FileModel, scope: &Scope) -> Vec<Diagnostic> {
    let toks = &model.toks;
    let in_test = |i: usize| model.in_test(i);
    let mut diags = Vec::new();

    // AMP003 first: its signature ranges suppress duplicate DET001 hits.
    let mut sig_ranges: Vec<std::ops::Range<usize>> = Vec::new();
    if scope.sim_visible {
        let mut i = 0;
        while i + 1 < toks.len() {
            if toks[i].text == "pub" && toks[i + 1].text == "fn" && !in_test(i) {
                let sig_start = i + 1;
                let mut j = i + 2;
                while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                    j += 1;
                }
                if let Some(t) = toks[sig_start..j].iter().find(|t| {
                    t.kind == TokKind::Ident && HASH_COLLECTIONS.contains(&t.text.as_str())
                }) {
                    diags.push(Diagnostic {
                        path: path.to_string(),
                        line: t.line,
                        code: "AMP003",
                        severity: Severity::Error,
                        message: format!(
                            "public sim-facing API exposes `{}` — callers inherit \
                             nondeterministic iteration order; expose `BTree{}` or a sorted view",
                            t.text,
                            t.text.trim_start_matches("Hash"),
                        ),
                    });
                }
                sig_ranges.push(sig_start..j);
                i = j;
                continue;
            }
            i += 1;
        }
    }
    let in_sig = |i: usize| sig_ranges.iter().any(|r| r.contains(&i));

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_test(i) {
            continue;
        }
        let name = t.text.as_str();
        if scope.sim_visible && HASH_COLLECTIONS.contains(&name) && !in_sig(i) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: t.line,
                code: "DET001",
                severity: Severity::Error,
                message: format!(
                    "`{name}` in simulation-visible code — iteration order is \
                     nondeterministic; use `BTree{}` or index-sorted access",
                    name.trim_start_matches("Hash"),
                ),
            });
        }
        if scope.sim_visible && WALL_CLOCK_TYPES.contains(&name) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: t.line,
                code: "DET002",
                severity: Severity::Error,
                message: format!(
                    "`std::time::{name}` in simulation-visible code — wall-clock \
                     readings vary across runs; virtual time must come from `Sim::now`",
                ),
            });
        }
        if scope.sim_visible && !scope.entropy_exempt {
            let env_read = (name == "var" || name == "var_os")
                && i >= 3
                && toks[i - 1].text == ":"
                && toks[i - 2].text == ":"
                && toks[i - 3].text == "env";
            if ENTROPY_IDENTS.contains(&name) || env_read {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: t.line,
                    code: "DET003",
                    severity: Severity::Error,
                    message: format!(
                        "`{name}` draws OS/environment entropy — outside `crates/rng` \
                         all randomness must come from the seeded `nowlab_rng` streams",
                    ),
                });
            }
        }
        if !scope.parallel_ok {
            // `thread` as a path segment (`std::thread::spawn`, `thread::scope`)
            // or any lock/atomic type: parallelism below the run boundary
            // would let host scheduling perturb virtual time.
            let thread_path = name == "thread"
                && i + 2 < toks.len()
                && toks[i + 1].text == ":"
                && toks[i + 2].text == ":";
            if PAR_IDENTS.contains(&name) || thread_path {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: t.line,
                    code: "PAR001",
                    severity: Severity::Error,
                    message: format!(
                        "`{name}` outside the orchestration layer — simulations are \
                         single-threaded; threads/locks belong only in the run-boundary \
                         pool (crates/core::sweep, crates/bench, src/bin)",
                    ),
                });
            }
        }
        if scope.sim_visible && !scope.am_layer && MEMBERSHIP_IDENTS.contains(&name) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: t.line,
                code: "AMP004",
                severity: Severity::Error,
                message: format!(
                    "`{name}` outside `crates/am` — membership/detector state has a \
                     single home in the AM layer; observe it via the port accessors \
                     (`peer_dead`, `peers_alive`, `alive_count`, `death_note`) and \
                     tune it via `NodeFaultPlan::with_detector`",
                ),
            });
        }
        if scope.sim_visible && WALL_FLOW_IDENTS.contains(&name) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: t.line,
                code: "DET004",
                severity: Severity::Warning,
                message: format!(
                    "`{name}` suggests a wall-clock value flowing toward `SimTime`/\
                     `SimDelta` — virtual time must be derived only from simulated events",
                ),
            });
        }
    }

    // AMP001: handler closures passed to `register_handler` must not issue
    // requests (they run synchronously on the destination's reply path).
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].text == "register_handler" && toks[i + 1].text == "(" && !in_test(i) {
            let end = match_paren(toks, i + 1);
            for j in (i + 2)..end {
                if toks[j].kind == TokKind::Ident
                    && HANDLER_FORBIDDEN_CALLS.contains(&toks[j].text.as_str())
                    && j > 0
                    && toks[j - 1].text == "."
                {
                    diags.push(Diagnostic {
                        path: path.to_string(),
                        line: toks[j].line,
                        code: "AMP001",
                        severity: Severity::Error,
                        message: format!(
                            "handler issues `.{}(…)` — GAM reply handlers must not send \
                             requests (request/reply acyclicity; risks window deadlock)",
                            toks[j].text,
                        ),
                    });
                }
            }
            i = end;
            continue;
        }
        i += 1;
    }

    // AMP002: inside the AM layer the fragment size and flow-control window
    // must be spelled via the named constants, not re-hardcoded.
    if scope.am_layer {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Int || in_test(i) || near_const_definition(toks, i) {
                continue;
            }
            let val = t.int_value();
            if val == Some(4096) {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: t.line,
                    code: "AMP002",
                    severity: Severity::Error,
                    message: "re-hardcoded 4KB fragment size — reference `GAM_FRAG_BYTES` \
                              so the protocol constant has a single definition"
                        .to_string(),
                });
            }
            let window_literal = i >= 2
                && ((toks[i - 2].text == "window" && toks[i - 1].text == ":")
                    || (toks[i - 2].text == "with_window" && toks[i - 1].text == "("));
            if window_literal {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: t.line,
                    code: "AMP002",
                    severity: Severity::Error,
                    message: "re-hardcoded flow-control window depth — reference \
                              `GAM_WINDOW` so the protocol constant has a single definition"
                        .to_string(),
                });
            }
        }
    }

    // SAFE001: scanned crate roots must forbid unsafe code, so the
    // determinism lints can assume no entropy/clock access hides behind
    // raw pointers or FFI.
    if scope.crate_root && !has_forbid_unsafe(toks) {
        diags.push(Diagnostic {
            path: path.to_string(),
            line: 1,
            code: "SAFE001",
            severity: Severity::Error,
            message: "crate root lacks `#![forbid(unsafe_code)]` — the determinism \
                      analysis assumes safe Rust"
                .to_string(),
        });
    }

    diags
}

/// True if an enclosing `const` definition sits within a few tokens before
/// `i` (the single allowed spelling of a protocol constant).
fn near_const_definition(toks: &[Tok], i: usize) -> bool {
    toks[i.saturating_sub(8)..i]
        .iter()
        .any(|t| t.text == "const")
}

/// True if the stream contains `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
            && w[7].text == "]"
    })
}

/// Index of the `)` matching the `(` at `open` (or the last token).
fn match_paren(toks: &[Tok], open: usize) -> usize {
    match_delim(toks, open, "(", ")")
}

fn match_delim(toks: &[Tok], open: usize, l: &str, r: &str) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.text == l {
            depth += 1;
        } else if t.text == r {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_scope() -> Scope {
        Scope {
            sim_visible: true,
            am_layer: false,
            entropy_exempt: false,
            crate_root: false,
            parallel_ok: false,
            layer: crate::graph::Layer::Other,
        }
    }

    fn codes(src: &str, scope: &Scope) -> Vec<&'static str> {
        lint_source("t.rs", src, scope)
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn hash_collections_flagged_outside_tests_only() {
        let src = "fn f() { let m = std::collections::HashMap::<u32, u32>::new(); }\n\
                   #[cfg(test)]\nmod tests { use std::collections::HashSet; }\n";
        assert_eq!(codes(src, &sim_scope()), vec!["DET001"]);
    }

    #[test]
    fn wall_clock_and_entropy_flagged() {
        let src = "fn f() { let t = Instant::now(); let s = std::env::var(\"X\"); }";
        assert_eq!(codes(src, &sim_scope()), vec!["DET002", "DET003"]);
        let mut rng_scope = sim_scope();
        rng_scope.entropy_exempt = true;
        assert_eq!(
            codes("fn f() { getrandom(); }", &rng_scope),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn env_args_is_not_an_entropy_read() {
        assert!(codes("fn f() { let a = std::env::args(); }", &sim_scope()).is_empty());
    }

    #[test]
    fn handler_request_flagged_only_inside_registration() {
        let src = "fn g(c: &C) { c.register_handler(|ctx| { ctx.port.request(0); Reply::ack() }); \
                   c.port.request(1); }";
        assert_eq!(codes(src, &sim_scope()), vec!["AMP001"]);
    }

    #[test]
    fn am_layer_literals_flagged_except_const_definitions() {
        let mut scope = sim_scope();
        scope.am_layer = true;
        let src = "pub const GAM_FRAG_BYTES: u32 = 4096;\nfn f() { let frag = 4096; }\n\
                   fn g() -> C { C { window: 8 } }\nfn h(c: C) { c.with_window(8); }";
        assert_eq!(codes(src, &scope), vec!["AMP002", "AMP002", "AMP002"]);
        // Outside the AM layer the same literals are application data.
        assert!(codes("fn f() { let half = 4096; }", &sim_scope()).is_empty());
    }

    #[test]
    fn pub_fn_signature_reports_amp003_not_det001() {
        let src = "pub fn api() -> std::collections::HashMap<u32, u32> { todo!() }";
        assert_eq!(codes(src, &sim_scope()), vec!["AMP003"]);
        // pub(crate) is not a public sim-facing API.
        let src2 = "pub(crate) fn api(m: &HashMap<u32, u32>) {}";
        assert_eq!(codes(src2, &sim_scope()), vec!["DET001"]);
    }

    #[test]
    fn membership_state_confined_to_the_am_layer() {
        // Splitc/apps/core code naming detector internals is a second
        // membership implementation waiting to diverge.
        let src = "fn f(c: &C) { if c.peer_status[1] == PeerStatus::Dead { \
                   c.last_heard[1] = t; } }";
        assert_eq!(codes(src, &sim_scope()), vec!["AMP004", "AMP004", "AMP004"]);
        // Inside the AM layer the same identifiers are the implementation.
        let mut am = sim_scope();
        am.am_layer = true;
        assert!(codes(src, &am).is_empty());
        // The sanctioned observation surface stays clean everywhere.
        let port = "async fn g(ctx: &Ctx) { if !ctx.peer_dead(1) { \
                    let n = ctx.alive_count(); let v = ctx.peers_alive(); } }";
        assert!(codes(port, &sim_scope()).is_empty());
        // Host-side test modules may poke detector state freely.
        let test_only = "#[cfg(test)]\nmod tests { fn t(p: &P) { p.last_heard(); } }";
        assert!(codes(test_only, &sim_scope()).is_empty());
    }

    #[test]
    fn crate_root_requires_forbid_unsafe() {
        let mut scope = sim_scope();
        scope.crate_root = true;
        assert_eq!(codes("pub fn ok() {}", &scope), vec!["SAFE001"]);
        assert!(codes("#![forbid(unsafe_code)]\npub fn ok() {}", &scope).is_empty());
    }

    #[test]
    fn thread_and_lock_primitives_flagged_outside_orchestration() {
        let src = "fn f() { let m = std::sync::Mutex::new(0); \
                   std::thread::spawn(|| {}); }";
        assert_eq!(codes(src, &sim_scope()), vec!["PAR001", "PAR001"]);
        let mut pool_scope = sim_scope();
        pool_scope.parallel_ok = true;
        assert!(codes(src, &pool_scope).is_empty());
        // `thread` not followed by `::` (a local name) is not a violation,
        // and neither is `Arc` (shared ownership, not synchronization).
        let benign = "fn f(thread: u32) -> u32 { let a = Arc::new(thread); *a }";
        assert!(codes(benign, &sim_scope()).is_empty());
    }

    #[test]
    fn wall_flow_heuristic_is_a_warning() {
        let d = lint_source(
            "t.rs",
            "fn f(a: T, b: T) -> D { a.duration_since(b) }",
            &sim_scope(),
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, "DET004");
        assert_eq!(d[0].severity, Severity::Warning);
    }
}
