//! CLI entry point for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p nowlab-analyze                  # report all findings
//! cargo run -p nowlab-analyze -- --check       # CI: exit 1 on any error
//! cargo run -p nowlab-analyze -- --root DIR    # scan another tree
//! cargo run -p nowlab-analyze -- --allowlist F # alternate allowlist
//! ```
//!
//! Exit-code contract (the CI step depends on it): `0` when no
//! error-severity diagnostics survive the allowlist, `1` when at least one
//! does (under `--check`), `2` on usage or I/O errors. Warnings and stale
//! allowlist entries are reported but never affect the exit code.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use nowlab_analyze::allowlist::Allowlist;
use nowlab_analyze::{scan_workspace, Severity};

const USAGE: &str = "usage: nowlab-analyze [--check] [--root DIR] [--allowlist FILE]";

fn main() -> ExitCode {
    let mut check = false;
    let mut root: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return usage_error("--allowlist needs a value"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    // Default root: the workspace this binary was built from.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("analyze.toml"));
    let allowlist = if allowlist_path.is_file() {
        match std::fs::read_to_string(&allowlist_path) {
            Ok(text) => match Allowlist::parse(&text) {
                Ok(list) => list,
                Err(e) => {
                    eprintln!("error: {}: {e}", allowlist_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("error: reading {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::default()
    };

    let diags = match scan_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let filtered = allowlist.apply(diags);

    for d in &filtered.kept {
        println!("{d}");
    }
    for e in &filtered.stale {
        println!(
            "note: stale allowlist entry ({} in {}) matched nothing — remove it",
            e.code, e.path
        );
    }
    let errors = filtered
        .kept
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = filtered.kept.len() - errors;
    println!(
        "nowlab-analyze: {errors} error(s), {warnings} warning(s), {} allowlisted",
        filtered.suppressed.len()
    );

    if check && errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}
