//! CLI entry point for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p nowlab-analyze                     # report all findings
//! cargo run -p nowlab-analyze -- --check          # CI: exit 1 on any error
//! cargo run -p nowlab-analyze -- --format sarif   # SARIF 2.1.0 on stdout
//! cargo run -p nowlab-analyze -- --output F.sarif # write report to a file
//! cargo run -p nowlab-analyze -- --explain LAY001 # what a code means
//! cargo run -p nowlab-analyze -- --explain all    # the whole lint table
//! cargo run -p nowlab-analyze -- --root DIR       # scan another tree
//! cargo run -p nowlab-analyze -- --allowlist F    # alternate allowlist
//! cargo run -p nowlab-analyze -- --no-cache       # force a full re-parse
//! cargo run -p nowlab-analyze -- --cache FILE     # alternate cache location
//! ```
//!
//! Exit-code contract (the CI step depends on it): `0` when no
//! error-severity diagnostics survive the allowlist, `1` when at least one
//! does (under `--check`), `2` on usage or I/O errors. Warnings never affect
//! the exit code. Stale allowlist entries are notes by default but become
//! hard errors under `--check`, so the allowlist can only shrink over time.
//!
//! The human-readable summary and stale-entry notes always go to stderr when
//! `--format sarif` writes to stdout, so piping the SARIF stream stays clean.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use nowlab_analyze::allowlist::Allowlist;
use nowlab_analyze::cache::Cache;
use nowlab_analyze::{explain, sarif, scan_workspace_cached, Severity};

const USAGE: &str = "usage: nowlab-analyze [--check] [--root DIR] [--allowlist FILE] \
[--format text|sarif] [--output FILE] [--explain CODE|all] [--no-cache] [--cache FILE]";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Sarif,
}

fn main() -> ExitCode {
    let mut check = false;
    let mut root: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut output: Option<PathBuf> = None;
    let mut explain_code: Option<String> = None;
    let mut use_cache = true;
    let mut cache_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--no-cache" => use_cache = false,
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return usage_error("--allowlist needs a value"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    return usage_error(&format!(
                        "unknown format `{other}` (expected `text` or `sarif`)"
                    ))
                }
                None => return usage_error("--format needs a value"),
            },
            "--output" => match args.next() {
                Some(v) => output = Some(PathBuf::from(v)),
                None => return usage_error("--output needs a value"),
            },
            "--explain" => match args.next() {
                Some(v) => explain_code = Some(v),
                None => return usage_error("--explain needs a lint code or `all`"),
            },
            "--cache" => match args.next() {
                Some(v) => cache_path = Some(PathBuf::from(v)),
                None => return usage_error("--cache needs a value"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    // `--explain` is a pure lookup: no scan, no cache, no allowlist.
    if let Some(code) = explain_code {
        return match explain::render_explain(&code) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: unknown lint code `{code}` (try `--explain all`)");
                ExitCode::from(2)
            }
        };
    }

    // Default root: the workspace this binary was built from.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("analyze.toml"));
    let allowlist = if allowlist_path.is_file() {
        match std::fs::read_to_string(&allowlist_path) {
            Ok(text) => match Allowlist::parse(&text) {
                Ok(list) => list,
                Err(e) => {
                    eprintln!("error: {}: {e}", allowlist_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("error: reading {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::default()
    };

    let cache_path = cache_path.unwrap_or_else(|| default_cache_path(&root));
    let mut cache = if use_cache {
        Cache::load(&cache_path)
    } else {
        Cache::disabled()
    };

    let started = std::time::Instant::now();
    let (diags, stats) = match scan_workspace_cached(&root, &mut cache) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();
    if use_cache {
        if let Some(dir) = cache_path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = cache.save(&cache_path) {
            eprintln!("note: could not save cache {}: {e}", cache_path.display());
        }
    }

    let filtered = allowlist.apply(diags);

    match format {
        Format::Text => {
            let mut body = String::new();
            for d in &filtered.kept {
                body.push_str(&d.to_string());
                body.push('\n');
            }
            if let Err(code) = emit(output.as_deref(), &body) {
                return code;
            }
        }
        Format::Sarif => {
            if let Err(code) = emit(output.as_deref(), &sarif::render(&filtered.kept)) {
                return code;
            }
        }
    }

    // Summary and stale-entry notes go to stderr unless we're printing plain
    // text to stdout anyway — SARIF output must stay machine-parseable.
    let chatty_stdout = format == Format::Text && output.is_none();
    let note = |line: String| {
        if chatty_stdout {
            println!("{line}");
        } else {
            eprintln!("{line}");
        }
    };
    for e in &filtered.stale {
        if check {
            note(format!(
                "error: stale allowlist entry ({} in {}) matched nothing — remove it",
                e.code, e.path
            ));
        } else {
            note(format!(
                "note: stale allowlist entry ({} in {}) matched nothing — remove it",
                e.code, e.path
            ));
        }
    }
    let errors = filtered
        .kept
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = filtered.kept.len() - errors;
    note(format!(
        "nowlab-analyze: {errors} error(s), {warnings} warning(s), {} allowlisted, \
{} file(s) ({} cached) in {:.0?}",
        filtered.suppressed.len(),
        stats.files,
        stats.cached,
        elapsed,
    ));

    if check && (errors > 0 || !filtered.stale.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Keeps the cache out of the source tree: it lives next to the build
/// artifacts, so `cargo clean` (or a plain `rm -rf target`) resets it.
fn default_cache_path(root: &Path) -> PathBuf {
    root.join("target").join("nowlab-analyze.cache")
}

fn emit(output: Option<&Path>, body: &str) -> Result<(), ExitCode> {
    match output {
        None => {
            print!("{body}");
            Ok(())
        }
        Some(path) => std::fs::write(path, body).map_err(|e| {
            eprintln!("error: writing {}: {e}", path.display());
            ExitCode::from(2)
        }),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n{USAGE}");
    ExitCode::from(2)
}
