//! The `analyze.toml` allowlist: audited exceptions to the lints.
//!
//! The file is a sequence of `[[allow]]` tables, each naming a file, a
//! lint code, and a mandatory human-readable reason:
//!
//! ```toml
//! [[allow]]
//! path = "src/bin/nowlab.rs"
//! code = "DET001"
//! reason = "CLI flag map: host-side parsing, never enters simulation state"
//! ```
//!
//! Parsing is a deliberately small TOML subset (table arrays of string
//! key/values) so the analyzer stays dependency-free in the offline build
//! container. An entry suppresses every diagnostic with the matching
//! `code` in the matching `path`; entries without a `reason` are rejected
//! so exceptions stay auditable.

use crate::Diagnostic;

/// One audited exception.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path (forward slashes) the exception covers.
    pub path: String,
    /// Lint code, e.g. `DET001`.
    pub code: String,
    /// Why this occurrence is sound. Mandatory.
    pub reason: String,
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the `analyze.toml` subset. Returns a human-readable error on
    /// malformed input or entries missing `path`/`code`/`reason`.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        let mut current: Option<(Option<String>, Option<String>, Option<String>)> = None;
        let finish = |cur: Option<(Option<String>, Option<String>, Option<String>)>,
                      entries: &mut Vec<AllowEntry>|
         -> Result<(), String> {
            if let Some((path, code, reason)) = cur {
                entries.push(AllowEntry {
                    path: path.ok_or("allow entry missing `path`")?,
                    code: code.ok_or("allow entry missing `code`")?,
                    reason: reason.ok_or_else(|| {
                        "allow entry missing `reason` (exceptions must be audited)".to_string()
                    })?,
                });
            }
            Ok(())
        };
        for (ln, raw) in text.lines().enumerate() {
            let lineno = ln + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                finish(current.take(), &mut entries)?;
                current = Some((None, None, None));
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {lineno}: unknown table `{line}`"));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = \"value\"`"));
            };
            let key = key.trim();
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("line {lineno}: value for `{key}` must be quoted"))?;
            let Some(cur) = current.as_mut() else {
                return Err(format!("line {lineno}: `{key}` outside an [[allow]] table"));
            };
            match key {
                "path" => cur.0 = Some(value.to_string()),
                "code" => cur.1 = Some(value.to_string()),
                "reason" => cur.2 = Some(value.to_string()),
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            }
        }
        finish(current, &mut entries)?;
        Ok(Allowlist { entries })
    }

    /// Splits `diags` into (kept, suppressed). Also returns the entries
    /// that matched nothing, so stale exceptions can be reported.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Filtered {
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        let mut used = vec![false; self.entries.len()];
        'diag: for d in diags {
            for (i, e) in self.entries.iter().enumerate() {
                if e.code == d.code && e.path == d.path {
                    used[i] = true;
                    suppressed.push(d);
                    continue 'diag;
                }
            }
            kept.push(d);
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|&(_, &u)| !u)
            .map(|(e, _)| e.clone())
            .collect();
        Filtered {
            kept,
            suppressed,
            stale,
        }
    }
}

/// Result of filtering diagnostics through the allowlist.
#[derive(Clone, Debug, Default)]
pub struct Filtered {
    /// Diagnostics not covered by any entry.
    pub kept: Vec<Diagnostic>,
    /// Diagnostics an entry suppressed.
    pub suppressed: Vec<Diagnostic>,
    /// Entries that matched no diagnostic (candidates for removal).
    pub stale: Vec<AllowEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn diag(path: &str, code: &'static str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line: 1,
            code,
            severity: Severity::Error,
            message: String::new(),
        }
    }

    #[test]
    fn parses_entries_and_filters() {
        let toml = r#"
# audited exceptions
[[allow]]
path = "src/bin/nowlab.rs"
code = "DET001"
reason = "CLI flag map"

[[allow]]
path = "crates/x/src/lib.rs"   # trailing comment
code = "DET003"
reason = "diagnostic env read"
"#;
        let list = Allowlist::parse(toml).unwrap();
        assert_eq!(list.entries.len(), 2);
        let f = list.apply(vec![
            diag("src/bin/nowlab.rs", "DET001"),
            diag("src/bin/nowlab.rs", "DET002"),
        ]);
        assert_eq!(f.kept.len(), 1);
        assert_eq!(f.kept[0].code, "DET002");
        assert_eq!(f.suppressed.len(), 1);
        assert_eq!(f.stale.len(), 1, "unused entry reported as stale");
    }

    #[test]
    fn reason_is_mandatory() {
        let toml = "[[allow]]\npath = \"a.rs\"\ncode = \"DET001\"\n";
        let err = Allowlist::parse(toml).unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn rejects_unquoted_values_and_stray_keys() {
        assert!(Allowlist::parse("[[allow]]\npath = a.rs\n").is_err());
        assert!(Allowlist::parse("path = \"a.rs\"\n").is_err());
        assert!(Allowlist::parse("[other]\n").is_err());
    }

    #[test]
    fn empty_input_is_empty_list() {
        let list = Allowlist::parse("# nothing here\n").unwrap();
        assert!(list.entries.is_empty());
    }
}
