//! Per-file diagnostic cache keyed on (mtime, size).
//!
//! The analyzer runs on every CI push and, with `--check`, in inner dev
//! loops; almost all of its time is lexing + parsing unchanged files. The
//! cache records, per workspace-relative path, the file's modification
//! stamp and the diagnostics the last scan produced; a file whose stamp is
//! unchanged is neither read nor parsed. The full-tree pass stays well
//! under a second warm.
//!
//! The format is a line-oriented text file (no serde in the offline
//! container):
//!
//! ```text
//! nowlab-analyze-cache v0.1.0 r3
//! F <mtime_ns> <len> <path>
//! D <line> <code> <E|W> <message, tab/newline-escaped>
//! ```
//!
//! (fields are tab-separated; `D` lines belong to the preceding `F`).
//! The header pins both the package version and [`REVISION`], a counter
//! bumped whenever any lint's behavior changes — a stale header discards
//! the whole cache, so lint upgrades can never serve outdated findings.
//! Unknown lint codes on load likewise discard the entry.

use std::collections::BTreeMap;
use std::path::Path;

use crate::explain::intern_code;
use crate::{Diagnostic, Severity};

/// Bump whenever lint behavior changes (new lint, changed heuristic,
/// changed message) so caches written by older analyzers are discarded.
pub const REVISION: u32 = 3;

/// A file's identity for cache purposes: mtime (ns since epoch) + size.
/// Content hashing would be sturdier but would cost the read the cache
/// exists to avoid; mtime+len is the same trade `cargo` makes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileStamp {
    /// Modification time in nanoseconds since the UNIX epoch.
    pub mtime_ns: u128,
    /// File length in bytes.
    pub len: u64,
}

impl FileStamp {
    /// Reads the stamp for `path`, or `None` if the metadata is
    /// unavailable (the scan then simply proceeds uncached).
    pub fn of(path: &Path) -> Option<FileStamp> {
        let meta = std::fs::metadata(path).ok()?;
        let mtime = meta.modified().ok()?;
        let mtime_ns = mtime.duration_since(std::time::UNIX_EPOCH).ok()?.as_nanos();
        Some(FileStamp {
            mtime_ns,
            len: meta.len(),
        })
    }
}

#[derive(Clone, Debug)]
struct Entry {
    stamp: FileStamp,
    diags: Vec<Diagnostic>,
}

/// The diagnostic cache. [`Cache::disabled`] never hits and never saves,
/// so uncached scans share the same code path.
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, Entry>,
    enabled: bool,
}

impl Cache {
    /// A cache that never hits and is never persisted (`--no-cache`, and
    /// library callers that want a plain scan).
    pub fn disabled() -> Cache {
        Cache::default()
    }

    /// An empty, enabled cache (first run; will be populated and saved).
    pub fn empty() -> Cache {
        Cache {
            entries: BTreeMap::new(),
            enabled: true,
        }
    }

    /// Loads the cache from `path`. Any problem — missing file, version or
    /// revision mismatch, malformed line, unknown lint code — yields an
    /// empty enabled cache; the cache is an optimization, never a source
    /// of truth.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Cache::empty();
        };
        let mut lines = text.lines();
        if lines.next() != Some(header().as_str()) {
            return Cache::empty();
        }
        let mut cache = Cache::empty();
        let mut current: Option<(String, Entry)> = None;
        for line in lines {
            let mut fields = line.split('\t');
            match fields.next() {
                Some("F") => {
                    if let Some((p, e)) = current.take() {
                        cache.entries.insert(p, e);
                    }
                    let (Some(mtime), Some(len), Some(p)) =
                        (fields.next(), fields.next(), fields.next())
                    else {
                        return Cache::empty();
                    };
                    let (Ok(mtime_ns), Ok(len)) = (mtime.parse(), len.parse()) else {
                        return Cache::empty();
                    };
                    current = Some((
                        p.to_string(),
                        Entry {
                            stamp: FileStamp { mtime_ns, len },
                            diags: Vec::new(),
                        },
                    ));
                }
                Some("D") => {
                    let Some((ref p, ref mut entry)) = current else {
                        return Cache::empty();
                    };
                    let (Some(ln), Some(code), Some(sev), Some(msg)) =
                        (fields.next(), fields.next(), fields.next(), fields.next())
                    else {
                        return Cache::empty();
                    };
                    let (Ok(line), Some(code)) = (ln.parse(), intern_code(code)) else {
                        return Cache::empty();
                    };
                    let severity = match sev {
                        "E" => Severity::Error,
                        "W" => Severity::Warning,
                        _ => return Cache::empty(),
                    };
                    entry.diags.push(Diagnostic {
                        path: p.clone(),
                        line,
                        code,
                        severity,
                        message: unescape(msg),
                    });
                }
                _ => return Cache::empty(),
            }
        }
        if let Some((p, e)) = current.take() {
            cache.entries.insert(p, e);
        }
        cache
    }

    /// Returns the cached diagnostics for `rel` if its stamp matches.
    pub fn lookup(&self, rel: &str, stamp: FileStamp) -> Option<Vec<Diagnostic>> {
        if !self.enabled {
            return None;
        }
        let entry = self.entries.get(rel)?;
        (entry.stamp == stamp).then(|| entry.diags.clone())
    }

    /// Records the scan result for `rel`.
    pub fn store(&mut self, rel: &str, stamp: FileStamp, diags: &[Diagnostic]) {
        if !self.enabled {
            return;
        }
        self.entries.insert(
            rel.to_string(),
            Entry {
                stamp,
                diags: diags.to_vec(),
            },
        );
    }

    /// Persists the cache to `path` (no-op when disabled). The parent
    /// directory is created if needed.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if !self.enabled {
            return Ok(());
        }
        let mut out = header();
        out.push('\n');
        for (rel, entry) in &self.entries {
            out.push_str(&format!(
                "F\t{}\t{}\t{}\n",
                entry.stamp.mtime_ns, entry.stamp.len, rel
            ));
            for d in &entry.diags {
                out.push_str(&format!(
                    "D\t{}\t{}\t{}\t{}\n",
                    d.line,
                    d.code,
                    match d.severity {
                        Severity::Error => "E",
                        Severity::Warning => "W",
                    },
                    escape(&d.message)
                ));
            }
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, out)
    }
}

fn header() -> String {
    format!(
        "nowlab-analyze-cache v{} r{}",
        env!("CARGO_PKG_VERSION"),
        REVISION
    )
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(line: u32, msg: &str) -> Diagnostic {
        Diagnostic {
            path: "crates/sim/src/lib.rs".into(),
            line,
            code: "DET001",
            severity: Severity::Error,
            message: msg.into(),
        }
    }

    #[test]
    fn round_trips_entries_and_diagnostics() {
        let dir = std::env::temp_dir().join(format!("nowlab-cache-rt-{}", std::process::id()));
        let file = dir.join("analyze-cache.tsv");
        let stamp = FileStamp {
            mtime_ns: 12345678901234567890,
            len: 42,
        };
        let mut c = Cache::empty();
        c.store(
            "crates/sim/src/lib.rs",
            stamp,
            &[diag(7, "weird\tmessage\nwith breaks \\ and slashes")],
        );
        c.store(
            "crates/am/src/port.rs",
            FileStamp {
                mtime_ns: 1,
                len: 2,
            },
            &[],
        );
        c.save(&file).unwrap();

        let loaded = Cache::load(&file);
        let hit = loaded.lookup("crates/sim/src/lib.rs", stamp).unwrap();
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].line, 7);
        assert_eq!(hit[0].code, "DET001");
        assert_eq!(hit[0].message, "weird\tmessage\nwith breaks \\ and slashes");
        // Empty diagnostic lists (the common case: clean files) also hit.
        assert!(loaded
            .lookup(
                "crates/am/src/port.rs",
                FileStamp {
                    mtime_ns: 1,
                    len: 2
                }
            )
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_stamp_misses() {
        let stamp = FileStamp {
            mtime_ns: 10,
            len: 5,
        };
        let mut c = Cache::empty();
        c.store("a.rs", stamp, &[diag(1, "m")]);
        assert!(c
            .lookup(
                "a.rs",
                FileStamp {
                    mtime_ns: 11,
                    len: 5
                }
            )
            .is_none());
        assert!(c
            .lookup(
                "a.rs",
                FileStamp {
                    mtime_ns: 10,
                    len: 6
                }
            )
            .is_none());
        assert!(c.lookup("b.rs", stamp).is_none());
        assert!(c.lookup("a.rs", stamp).is_some());
    }

    #[test]
    fn version_or_revision_mismatch_discards() {
        let dir = std::env::temp_dir().join(format!("nowlab-cache-ver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("cache.tsv");
        std::fs::write(&file, "nowlab-analyze-cache v0.0.0 r0\nF\t1\t2\ta.rs\n").unwrap();
        let c = Cache::load(&file);
        assert!(c
            .lookup(
                "a.rs",
                FileStamp {
                    mtime_ns: 1,
                    len: 2
                }
            )
            .is_none());
        // Unknown lint codes poison the load (lint was removed/renamed).
        std::fs::write(
            &file,
            format!("{}\nF\t1\t2\ta.rs\nD\t3\tZZZ999\tE\tmsg\n", super::header()),
        )
        .unwrap();
        let c = Cache::load(&file);
        assert!(c
            .lookup(
                "a.rs",
                FileStamp {
                    mtime_ns: 1,
                    len: 2
                }
            )
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_cache_never_hits_or_saves() {
        let mut c = Cache::disabled();
        let stamp = FileStamp {
            mtime_ns: 1,
            len: 1,
        };
        c.store("a.rs", stamp, &[diag(1, "m")]);
        assert!(c.lookup("a.rs", stamp).is_none());
        let path = std::env::temp_dir().join("nowlab-cache-should-not-exist.tsv");
        std::fs::remove_file(&path).ok();
        c.save(&path).unwrap();
        assert!(!path.exists());
    }
}
