//! SARIF 2.1.0 exporter.
//!
//! `--format sarif` renders the diagnostics as a minimal-but-conformant
//! SARIF log: one run, the driver's rule table generated from the
//! [`explain`](crate::explain) registry (stable `ruleIndex` = catalogue
//! position), and one result per diagnostic with a physical location.
//! Like the metrics reports, the output is held to a checked-in schema in
//! CI (`schemas/sarif-subset.schema.json`, validated by
//! `scripts/check_schema.py`) so downstream tooling can trust the shape.
//!
//! Hand-rolled JSON, same as the metrics writer: the container is offline,
//! and the structure is small enough that an escaping helper is the only
//! subtle part.

use crate::explain::LINTS;
use crate::{Diagnostic, Severity};

/// Renders a complete SARIF 2.1.0 log for `diags`. Diagnostics should
/// already be sorted (the scan returns them sorted by path/line/code);
/// the output is deterministic for a given input.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(4096 + diags.len() * 256);
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"nowlab-analyze\",\n");
    out.push_str(&format!(
        "          \"version\": {},\n",
        json_str(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("          \"informationUri\": \"https://example.invalid/nowlab\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, l) in LINTS.iter().enumerate() {
        out.push_str("            {\n");
        out.push_str(&format!("              \"id\": {},\n", json_str(l.code)));
        out.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": {} }},\n",
            json_str(l.summary)
        ));
        out.push_str(&format!(
            "              \"fullDescription\": {{ \"text\": {} }},\n",
            json_str(l.rationale)
        ));
        out.push_str(&format!(
            "              \"defaultConfiguration\": {{ \"level\": {} }}\n",
            json_str(level(l.severity))
        ));
        out.push_str(if i + 1 < LINTS.len() {
            "            },\n"
        } else {
            "            }\n"
        });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let rule_index = LINTS
            .iter()
            .position(|l| l.code == d.code)
            .map(|p| p as i64)
            .unwrap_or(-1);
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": {},\n", json_str(d.code)));
        out.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
        out.push_str(&format!(
            "          \"level\": {},\n",
            json_str(level(d.severity))
        ));
        out.push_str(&format!(
            "          \"message\": {{ \"text\": {} }},\n",
            json_str(&d.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": {} }},\n",
            json_str(&d.path)
        ));
        out.push_str(&format!(
            "                \"region\": {{ \"startLine\": {} }}\n",
            d.line.max(1)
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(if i + 1 < diags.len() {
            "        },\n"
        } else {
            "        }\n"
        });
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
    }
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                path: "crates/am/src/stats.rs".into(),
                line: 222,
                code: "FLT001",
                severity: Severity::Error,
                message: "float `.sum()` with \"quotes\" and\nnewline".into(),
            },
            Diagnostic {
                path: "crates/core/src/models.rs".into(),
                line: 169,
                code: "TIM002",
                severity: Severity::Warning,
                message: "mixed units".into(),
            },
        ]
    }

    #[test]
    fn renders_rules_results_and_escapes() {
        let s = render(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        // Every registry rule is present.
        for l in LINTS {
            assert!(s.contains(&format!("\"id\": \"{}\"", l.code)), "{}", l.code);
        }
        assert!(s.contains("\"ruleId\": \"FLT001\""));
        assert!(s.contains("\"level\": \"warning\""));
        assert!(s.contains("\"startLine\": 222"));
        assert!(s.contains("and\\nnewline"));
        assert!(s.contains("\\\"quotes\\\""));
        // ruleIndex matches the catalogue position of the code.
        let idx = LINTS.iter().position(|l| l.code == "FLT001").unwrap();
        assert!(s.contains(&format!("\"ruleIndex\": {idx}")));
    }

    #[test]
    fn empty_scan_still_renders_a_valid_run() {
        let s = render(&[]);
        assert!(s.contains("\"results\": [\n      ]"));
        assert!(s.contains("\"rules\": ["));
    }

    #[test]
    fn output_parses_as_json() {
        // A tiny structural parse: balanced braces/brackets outside
        // strings, which catches the classic trailing-comma and unescaped-
        // quote mistakes of hand-rolled writers.
        let s = render(&sample());
        let mut depth = 0i32;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
