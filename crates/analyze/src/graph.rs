//! Workspace dependency graph, parsed from the crates' `Cargo.toml`
//! manifests.
//!
//! The ten-crate stack encodes the paper's o/g/L/G attribution as a strict
//! layering: `rng → sim → am → coll → splitc → apps`, with `trace`/`metrics`
//! as observe-only sinks off to the side and `core` as the experiment driver
//! above `splitc`. [`WorkspaceGraph`] makes that layering machine-checkable:
//! it knows, for every crate, which other workspace crates its manifest
//! declares (`[dependencies]` vs `[dev-dependencies]`, with line numbers for
//! diagnostics), and [`Layer`] fixes which of those edges are legal.
//!
//! Two lint surfaces hang off this graph:
//!
//! - **manifest level** ([`WorkspaceGraph::lint_manifests`], `LAY002` /
//!   `MET001`): a crate's `[dependencies]` must stay within its layer's
//!   allowed set. For the observer crates (`trace`, `metrics`) *every*
//!   dependency is checked — workspace or not — because the observers sit
//!   inside the event loop and must be provably unable to reach I/O,
//!   threads, or entropy.
//! - **source level** (`LAY001`/`LAY003` in [`families`](crate::families)):
//!   every `nowlab_x` path reference in a crate's sources must also resolve
//!   to an allowed layer, so a crate cannot smuggle an edge its manifest
//!   forgot to declare (path deps inherited through re-exports).

use std::collections::BTreeMap;
use std::path::Path;

use crate::{Diagnostic, Severity};

/// Architectural layer of a workspace crate. Order is not meaningful;
/// legality is the explicit edge set in [`Layer::allowed_deps`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// `crates/rng` — seeded entropy, depends on nothing.
    Rng,
    /// `crates/sim` — event kernel and virtual time, depends on nothing.
    Sim,
    /// `crates/trace` — per-message cost observer; may see only `sim`.
    Trace,
    /// `crates/metrics` — simulated-time accounting observer; `{sim, trace}`.
    Metrics,
    /// `crates/am` — GAM active-message layer over the kernel.
    Am,
    /// `crates/coll` — model-driven collective operations over AM;
    /// deterministic by construction, so no `rng` edge.
    Coll,
    /// `crates/splitc` — Split-C language runtime over AM.
    Splitc,
    /// `crates/predict` — happens-before DAG analytics over traces; reads
    /// the trace and prices edges with AM's LogGP config, but must never
    /// reach the runtime layers (`splitc`, `coll`) it reasons about.
    Predict,
    /// `crates/core` — experiment driver: sweeps, models, calibration.
    Core,
    /// `crates/apps` — the ported Split-C applications; splitc and above
    /// only, never the kernel or AM internals directly.
    Apps,
    /// `crates/bench` — host-side wall-clock harness; unconstrained.
    Bench,
    /// `crates/analyze` — this tool; unconstrained.
    Analyze,
    /// The root `nowlab` package (CLI); unconstrained.
    Root,
    /// Anything else (fixtures, unknown crates); unconstrained.
    #[default]
    Other,
}

impl Layer {
    /// Maps a crate directory name (`crates/<name>`) to its layer.
    pub fn of_crate(name: &str) -> Layer {
        match name {
            "rng" => Layer::Rng,
            "sim" => Layer::Sim,
            "trace" => Layer::Trace,
            "metrics" => Layer::Metrics,
            "am" => Layer::Am,
            "coll" => Layer::Coll,
            "splitc" => Layer::Splitc,
            "predict" => Layer::Predict,
            "core" => Layer::Core,
            "apps" => Layer::Apps,
            "bench" => Layer::Bench,
            "analyze" => Layer::Analyze,
            _ => Layer::Other,
        }
    }

    /// Maps a package name (`nowlab-sim`) or source-path root
    /// (`nowlab_sim`) to its layer, if it is a known workspace crate.
    pub fn of_package(pkg: &str) -> Option<Layer> {
        let name = pkg
            .strip_prefix("nowlab-")
            .or_else(|| pkg.strip_prefix("nowlab_"))?;
        match Layer::of_crate(name) {
            Layer::Other => None,
            l => Some(l),
        }
    }

    /// The workspace crates this layer may depend on — the legal edges of
    /// the layering diagram (self-edges are implicitly fine; they cannot
    /// occur in Cargo anyway). `None` means the layer is unconstrained
    /// (host-side tooling above the simulation boundary).
    pub fn allowed_deps(self) -> Option<&'static [Layer]> {
        match self {
            Layer::Rng => Some(&[]),
            Layer::Sim => Some(&[]),
            Layer::Trace => Some(&[Layer::Sim]),
            Layer::Metrics => Some(&[Layer::Sim, Layer::Trace]),
            Layer::Am => Some(&[Layer::Rng, Layer::Sim, Layer::Trace, Layer::Metrics]),
            Layer::Coll => Some(&[Layer::Sim, Layer::Trace, Layer::Metrics, Layer::Am]),
            Layer::Splitc => Some(&[
                Layer::Sim,
                Layer::Trace,
                Layer::Metrics,
                Layer::Am,
                Layer::Coll,
            ]),
            Layer::Predict => Some(&[Layer::Sim, Layer::Trace, Layer::Am]),
            Layer::Core => Some(&[
                Layer::Rng,
                Layer::Sim,
                Layer::Trace,
                Layer::Metrics,
                Layer::Am,
                Layer::Coll,
                Layer::Splitc,
                Layer::Predict,
            ]),
            Layer::Apps => Some(&[
                Layer::Rng,
                Layer::Trace,
                Layer::Metrics,
                Layer::Splitc,
                Layer::Core,
            ]),
            Layer::Bench | Layer::Analyze | Layer::Root | Layer::Other => None,
        }
    }

    /// True for the observe-only sink crates whose *entire* dependency
    /// cone (not just workspace edges) is checked.
    pub fn is_observer(self) -> bool {
        matches!(self, Layer::Trace | Layer::Metrics)
    }

    /// Short display name matching the crate directory.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Rng => "rng",
            Layer::Sim => "sim",
            Layer::Trace => "trace",
            Layer::Metrics => "metrics",
            Layer::Am => "am",
            Layer::Coll => "coll",
            Layer::Splitc => "splitc",
            Layer::Predict => "predict",
            Layer::Core => "core",
            Layer::Apps => "apps",
            Layer::Bench => "bench",
            Layer::Analyze => "analyze",
            Layer::Root => "root",
            Layer::Other => "other",
        }
    }
}

/// One declared dependency edge from a crate manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Package name as written (`nowlab-sim`, `serde`).
    pub name: String,
    /// 1-based line in the manifest.
    pub line: u32,
    /// True for `[dev-dependencies]` (host-side tests; layering-exempt).
    pub dev: bool,
}

/// One workspace member crate.
#[derive(Clone, Debug, Default)]
pub struct CrateNode {
    /// Crate directory name (`sim`), or `"."` for the root package.
    pub dir: String,
    /// Package name from `[package] name = …`.
    pub package: String,
    /// Architectural layer.
    pub layer: Layer,
    /// Declared dependencies, manifest order.
    pub deps: Vec<DepEdge>,
    /// Workspace-relative manifest path.
    pub manifest: String,
}

/// The parsed workspace: one node per member crate, keyed by directory.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceGraph {
    /// Nodes keyed by crate directory name (`"."` for the root package).
    pub crates: BTreeMap<String, CrateNode>,
}

impl WorkspaceGraph {
    /// Loads the graph from `root/Cargo.toml` plus every
    /// `root/crates/*/Cargo.toml`. Missing manifests are skipped (older
    /// checkouts, test trees), never an error.
    pub fn load(root: &Path) -> Result<WorkspaceGraph, String> {
        let mut graph = WorkspaceGraph::default();
        let root_manifest = root.join("Cargo.toml");
        if root_manifest.is_file() {
            let src = std::fs::read_to_string(&root_manifest)
                .map_err(|e| format!("reading Cargo.toml: {e}"))?;
            graph.insert_manifest(".", "Cargo.toml", &src, Layer::Root);
        }
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut dirs: Vec<_> = std::fs::read_dir(&crates_dir)
                .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            dirs.sort();
            for dir in dirs {
                let manifest = dir.join("Cargo.toml");
                if !manifest.is_file() {
                    continue;
                }
                let name = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let rel = format!("crates/{name}/Cargo.toml");
                let src = std::fs::read_to_string(&manifest)
                    .map_err(|e| format!("reading {rel}: {e}"))?;
                let layer = Layer::of_crate(&name);
                graph.insert_manifest(&name, &rel, &src, layer);
            }
        }
        Ok(graph)
    }

    fn insert_manifest(&mut self, dir: &str, rel: &str, source: &str, layer: Layer) {
        let mut node = CrateNode {
            dir: dir.to_string(),
            layer,
            manifest: rel.to_string(),
            ..CrateNode::default()
        };
        // Minimal line-oriented TOML walk: track the current section, pull
        // `name = …` from [package] and dependency names from the
        // dependency tables. Enough for Cargo manifests, which are flat.
        #[derive(PartialEq)]
        enum Section {
            Package,
            Deps,
            DevDeps,
            Other,
        }
        let mut section = Section::Other;
        for (i, raw) in source.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with('[') {
                section = match line {
                    "[package]" => Section::Package,
                    "[dependencies]" => Section::Deps,
                    "[dev-dependencies]" => Section::DevDeps,
                    _ => Section::Other,
                };
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match section {
                Section::Package => {
                    if let Some(rest) = line.strip_prefix("name") {
                        let rest = rest.trim_start();
                        if let Some(v) = rest.strip_prefix('=') {
                            node.package = v.trim().trim_matches('"').to_string();
                        }
                    }
                }
                Section::Deps | Section::DevDeps => {
                    let Some(name) = line.split(['=', '.']).next().map(str::trim) else {
                        continue;
                    };
                    if name.is_empty() {
                        continue;
                    }
                    node.deps.push(DepEdge {
                        name: name.trim_matches('"').to_string(),
                        line: (i + 1) as u32,
                        dev: section == Section::DevDeps,
                    });
                }
                Section::Other => {}
            }
        }
        self.crates.insert(dir.to_string(), node);
    }

    /// The node for a crate directory name, if present.
    pub fn get(&self, dir: &str) -> Option<&CrateNode> {
        self.crates.get(dir)
    }

    /// Manifest-level layering lints.
    ///
    /// For every constrained crate, each `[dependencies]` edge (dev-deps
    /// are host-side and exempt) must point at an allowed lower layer.
    /// Violations in the metrics crate keep their historical code
    /// `MET001`; everywhere else the code is `LAY002`. Observer crates
    /// additionally reject *non-workspace* dependencies outright.
    pub fn lint_manifests(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for node in self.crates.values() {
            let Some(allowed) = node.layer.allowed_deps() else {
                continue;
            };
            let code = if node.layer == Layer::Metrics {
                "MET001"
            } else {
                "LAY002"
            };
            for dep in &node.deps {
                if dep.dev {
                    continue;
                }
                match Layer::of_package(&dep.name) {
                    Some(dep_layer) => {
                        if allowed.contains(&dep_layer) || dep_layer == node.layer {
                            continue;
                        }
                        let names: Vec<&str> = allowed.iter().map(|l| l.name()).collect();
                        diags.push(Diagnostic {
                            path: node.manifest.clone(),
                            line: dep.line,
                            code,
                            severity: Severity::Error,
                            message: format!(
                                "`{}` (layer {}) depends on `{}` (layer {}); its declared \
                                 lower layers are {:?} — the rng→sim→am→splitc→apps stack \
                                 keeps the paper's o/g/L/G attribution honest",
                                node.package,
                                node.layer.name(),
                                dep.name,
                                dep_layer.name(),
                                names
                            ),
                        });
                    }
                    None if node.layer.is_observer() => {
                        diags.push(Diagnostic {
                            path: node.manifest.clone(),
                            line: dep.line,
                            code,
                            severity: Severity::Error,
                            message: format!(
                                "{} crate depends on `{}`; the observer must stay inside \
                                 the allowlist {:?} so enabling it cannot perturb a \
                                 simulation",
                                node.layer.name(),
                                dep.name,
                                allowed
                                    .iter()
                                    .map(|l| format!("nowlab-{}", l.name()))
                                    .collect::<Vec<_>>()
                            ),
                        });
                    }
                    None => {}
                }
            }
        }
        diags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_table_matches_the_stack() {
        assert_eq!(Layer::of_crate("splitc"), Layer::Splitc);
        assert_eq!(Layer::of_package("nowlab-sim"), Some(Layer::Sim));
        assert_eq!(Layer::of_package("nowlab_metrics"), Some(Layer::Metrics));
        assert_eq!(Layer::of_package("serde"), None);
        // Observers see only their sanctioned lower layers.
        assert_eq!(Layer::Trace.allowed_deps(), Some(&[Layer::Sim][..]));
        assert!(Layer::Metrics
            .allowed_deps()
            .unwrap()
            .contains(&Layer::Trace));
        // Apps must not reach the kernel, AM, or the collectives crate
        // directly — everything below splitc arrives via its re-exports.
        let apps = Layer::Apps.allowed_deps().unwrap();
        assert!(!apps.contains(&Layer::Sim));
        assert!(!apps.contains(&Layer::Am));
        assert!(!apps.contains(&Layer::Coll));
        assert!(apps.contains(&Layer::Splitc));
        // The collectives layer sits between am and splitc: splitc may use
        // it, and it is deterministic by construction (no rng edge).
        assert_eq!(Layer::of_crate("coll"), Layer::Coll);
        assert!(Layer::Splitc.allowed_deps().unwrap().contains(&Layer::Coll));
        let coll = Layer::Coll.allowed_deps().unwrap();
        assert!(coll.contains(&Layer::Am));
        assert!(!coll.contains(&Layer::Rng));
        assert!(!coll.contains(&Layer::Splitc));
        // The predictor reads traces and prices with AM's LogGP config
        // but must not touch the runtime layers it reasons about.
        assert_eq!(Layer::of_crate("predict"), Layer::Predict);
        let predict = Layer::Predict.allowed_deps().unwrap();
        assert!(predict.contains(&Layer::Trace));
        assert!(predict.contains(&Layer::Am));
        assert!(!predict.contains(&Layer::Splitc));
        assert!(!predict.contains(&Layer::Coll));
        assert!(Layer::Core
            .allowed_deps()
            .unwrap()
            .contains(&Layer::Predict));
        // Host-side layers are unconstrained.
        assert!(Layer::Bench.allowed_deps().is_none());
        assert!(Layer::Root.allowed_deps().is_none());
    }

    fn graph_from(manifests: &[(&str, &str)]) -> WorkspaceGraph {
        let mut g = WorkspaceGraph::default();
        for (dir, src) in manifests {
            let rel = format!("crates/{dir}/Cargo.toml");
            g.insert_manifest(dir, &rel, src, Layer::of_crate(dir));
        }
        g
    }

    #[test]
    fn manifest_parse_extracts_names_and_dep_lines() {
        let g = graph_from(&[(
            "splitc",
            "[package]\nname = \"nowlab-splitc\"\n\n[dependencies]\n\
             nowlab-sim.workspace = true\nnowlab-am = { path = \"../am\" }\n\n\
             [dev-dependencies]\nnowlab-rng.workspace = true\n",
        )]);
        let node = g.get("splitc").unwrap();
        assert_eq!(node.package, "nowlab-splitc");
        let deps: Vec<(&str, bool)> = node.deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            deps,
            vec![
                ("nowlab-sim", false),
                ("nowlab-am", false),
                ("nowlab-rng", true)
            ]
        );
        assert_eq!(node.deps[1].line, 6);
    }

    #[test]
    fn lay002_flags_upward_and_cross_edges() {
        let g = graph_from(&[(
            "trace",
            "[package]\nname = \"nowlab-trace\"\n[dependencies]\n\
             nowlab-sim.workspace = true\nnowlab-am.workspace = true\n",
        )]);
        let diags = g.lint_manifests();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "LAY002");
        assert!(diags[0].message.contains("nowlab-am"));
    }

    #[test]
    fn metrics_violations_keep_the_met001_code() {
        let g = graph_from(&[(
            "metrics",
            "[package]\nname = \"nowlab-metrics\"\n[dependencies]\n\
             nowlab-sim.workspace = true\nnowlab-trace.workspace = true\n\
             serde = \"1\"\nnowlab-am = { path = \"../am\" }\n",
        )]);
        let codes: Vec<&str> = g.lint_manifests().iter().map(|d| d.code).collect();
        assert_eq!(codes, ["MET001", "MET001"]);
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let g = graph_from(&[(
            "apps",
            "[package]\nname = \"nowlab-apps\"\n[dependencies]\n\
             nowlab-splitc.workspace = true\n\n[dev-dependencies]\n\
             nowlab-sim.workspace = true\n",
        )]);
        assert!(g.lint_manifests().is_empty());
    }

    #[test]
    fn unconstrained_layers_pass_anything() {
        let g = graph_from(&[(
            "bench",
            "[package]\nname = \"nowlab-bench\"\n[dependencies]\n\
             nowlab-sim.workspace = true\nnowlab-core.workspace = true\n",
        )]);
        assert!(g.lint_manifests().is_empty());
    }

    #[test]
    fn real_workspace_graph_is_clean() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let g = WorkspaceGraph::load(&root).unwrap();
        // All member crates plus the root package are present.
        for dir in [
            ".", "am", "analyze", "apps", "bench", "coll", "core", "metrics", "predict", "rng",
            "sim", "splitc", "trace",
        ] {
            assert!(g.get(dir).is_some(), "missing crate node {dir}");
        }
        let diags = g.lint_manifests();
        assert!(diags.is_empty(), "{diags:?}");
    }
}
