//! The lint registry: one record per lint code, with the rationale the
//! `--explain` flag renders and the metadata the SARIF exporter embeds as
//! `rules`.
//!
//! This is the single source of truth for what each code means. The docs
//! table in README.md / DESIGN.md is asserted (by `tests/analyzer.rs`) to
//! match these summaries, so the registry, the CLI help, and the docs
//! cannot drift apart.

use crate::Severity;

/// Static metadata for one lint code.
#[derive(Clone, Copy, Debug)]
pub struct LintInfo {
    /// Stable code (`DET001`, `LAY002`, …).
    pub code: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary (docs table / SARIF `shortDescription`).
    pub summary: &'static str,
    /// Why the rule exists and how to fix a finding (`--explain` body,
    /// SARIF `fullDescription`).
    pub rationale: &'static str,
}

/// Every lint the analyzer can emit, in stable catalogue order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        code: "DET001",
        severity: Severity::Error,
        summary: "HashMap/HashSet in simulation-visible state",
        rationale: "Hash collections iterate in randomized order (SipHash keyed per \
                    process), so any simulation-visible iteration over one makes event \
                    order — and therefore virtual time — depend on the host process. \
                    Use BTreeMap/BTreeSet or a Vec with an explicit sort instead.",
    },
    LintInfo {
        code: "DET002",
        severity: Severity::Error,
        summary: "Instant/SystemTime in sim-visible code",
        rationale: "Wall-clock reads inside the simulation make virtual time a function \
                    of the host. All time below the run boundary must come from \
                    Sim::now(). Host-side harness code (crates/bench) is exempt.",
    },
    LintInfo {
        code: "DET003",
        severity: Severity::Error,
        summary: "OS/env entropy outside crates/rng",
        rationale: "RandomState, getrandom, thread_rng, env-var reads and friends are \
                    entropy channels that break the (program, seed) -> time guarantee. \
                    Only crates/rng may touch them, wrapped behind seeded streams.",
    },
    LintInfo {
        code: "DET004",
        severity: Severity::Warning,
        summary: "wall-clock value flowing toward virtual time",
        rationale: "A value derived from a wall-clock read appears to flow into a \
                    SimTime/SimDelta computation. Usually a refactoring accident; route \
                    the value through the run boundary explicitly or delete it.",
    },
    LintInfo {
        code: "SAFE001",
        severity: Severity::Error,
        summary: "crate root missing #![forbid(unsafe_code)]",
        rationale: "Unsafe code could smuggle in uninitialized reads or data races that \
                    perturb results nondeterministically. Every workspace crate root \
                    carries #![forbid(unsafe_code)] so the compiler proves its absence.",
    },
    LintInfo {
        code: "AMP001",
        severity: Severity::Error,
        summary: "AM handler issues a request (GAM acyclicity)",
        rationale: "Generic Active Messages forbid request handlers from issuing new \
                    requests: the request/reply discipline is what makes the protocol \
                    deadlock-free with bounded buffers. Handlers may only reply.",
    },
    LintInfo {
        code: "AMP002",
        severity: Severity::Error,
        summary: "re-hardcoded window depth / 4KB fragment size",
        rationale: "The GAM flow-control window (8) and fragment size (4096) are \
                    protocol constants named GAM_WINDOW / GAM_FRAG_BYTES in crates/am. \
                    Re-hardcoding the literal elsewhere lets the copies drift apart.",
    },
    LintInfo {
        code: "AMP003",
        severity: Severity::Error,
        summary: "public sim-facing API exposes a hash collection",
        rationale: "A pub fn that accepts or returns HashMap/HashSet invites callers to \
                    iterate it in randomized order even if the implementation is \
                    careful. Expose BTree collections or sorted Vecs at the boundary.",
    },
    LintInfo {
        code: "AMP004",
        severity: Severity::Error,
        summary: "membership/detector state referenced outside crates/am",
        rationale: "Failure-detector state machines (Alive/Suspect/Dead) and membership \
                    words are confined to crates/am; upper layers consume the distilled \
                    RunAbort/degradation signals instead of peeking at detector state.",
    },
    LintInfo {
        code: "PAR001",
        severity: Severity::Error,
        summary: "thread/lock primitives outside the orchestration layer",
        rationale: "Simulations are single-threaded so virtual time cannot depend on \
                    host scheduling. OS threads, locks, and atomics are allowed only in \
                    the run-boundary orchestration layer (core::sweep, bench, src/bin).",
    },
    LintInfo {
        code: "MET001",
        severity: Severity::Error,
        summary: "metrics crate depends beyond {sim, trace}",
        rationale: "Metrics sinks run inside the event loop. Keeping the dependency \
                    cone to nowlab-sim + nowlab-trace guarantees the observer cannot \
                    reach I/O, threads, or entropy, so metering cannot perturb a run. \
                    This is the metrics-crate case of the LAY002 manifest rule, kept \
                    under its historical code.",
    },
    LintInfo {
        code: "LAY001",
        severity: Severity::Error,
        summary: "source reference to a crate outside the declared lower layers",
        rationale: "Each crate may `use` only its declared lower layers (rng -> sim -> \
                    am -> splitc -> apps, trace/metrics observe-only). A path reference \
                    that skips the layering bypasses the seam where the paper's \
                    o/g/L/G costs are attributed. Route the call through the layer \
                    that owns it, or re-export the type from the legal layer.",
    },
    LintInfo {
        code: "LAY002",
        severity: Severity::Error,
        summary: "manifest dependency outside the declared lower layers",
        rationale: "A crate's [dependencies] must stay within its layer's allowed set; \
                    dev-dependencies are host-side and exempt. For the observer crates \
                    (trace, metrics) every dependency is checked — even non-workspace \
                    ones — because observers inside the event loop must be provably \
                    unable to reach I/O, threads, or entropy.",
    },
    LintInfo {
        code: "LAY003",
        severity: Severity::Error,
        summary: "apps reach below splitc (sim/am/coll internals)",
        rationale: "The ported Split-C applications must speak only the splitc runtime \
                    surface, exactly like the originals on the NOW cluster. An app \
                    that imports nowlab_sim, nowlab_am, or nowlab_coll directly couples \
                    it to internals the paper's apparatus never exposed; use the re-exports \
                    on nowlab_splitc (SimDelta, SimTime, Payload, ...) instead.",
    },
    LintInfo {
        code: "FLT001",
        severity: Severity::Error,
        summary: "unordered f64/f32 reduction (.sum / fold(+)) in sim-visible code",
        rationale: "Float addition is non-associative, so the value of .sum::<f64>() \
                    or fold(0.0, +) depends on iteration order. Over any container \
                    without a guaranteed order this silently breaks (program, seed) -> \
                    time. Sum via nowlab_sim::ordered_sum over a slice (fixed \
                    left-to-right order) or document the ordering with a named helper.",
    },
    LintInfo {
        code: "FLT002",
        severity: Severity::Error,
        summary: "partial_cmp on floats in sim-visible code",
        rationale: "partial_cmp().unwrap() panics on NaN and sort_by with partial_cmp \
                    gives an unstable, input-dependent order when NaN appears. Use \
                    f64::total_cmp, which is a total order and deterministic for every \
                    bit pattern.",
    },
    LintInfo {
        code: "FLT003",
        severity: Severity::Error,
        summary: "float accumulation inside an event handler closure",
        rationale: "A `+=` on a float inside a handler registered on the event loop \
                    accumulates in event-arrival order. That order is deterministic \
                    only per (program, seed); accumulate integers (nanoseconds, \
                    counts) in handlers and convert to floats at the reporting edge.",
    },
    LintInfo {
        code: "TIM001",
        severity: Severity::Error,
        summary: "raw literal flowing into a timer API outside a named const",
        rationale: "SimDelta::from_micros(2.0) written inline at a delay/schedule call \
                    site is an unnamed protocol constant: copies drift, and sweeps \
                    cannot find it. Name it (const BACKOFF: SimDelta = ...) next to \
                    the other tunables; #[cfg(test)] code is exempt.",
    },
    LintInfo {
        code: "TIM002",
        severity: Severity::Warning,
        summary: "mixed time-unit arithmetic in one expression",
        rationale: "Mixing as_nanos() with as_micros_f64()/as_millis_f64() operands in \
                    one expression is how silent unit bugs (off by 1e3) happen. \
                    Convert both sides to one unit first, or stay in SimDelta, whose \
                    arithmetic is unit-safe integer nanoseconds.",
    },
];

/// Looks up a lint by code (case-insensitive).
pub fn lint_info(code: &str) -> Option<&'static LintInfo> {
    LINTS.iter().find(|l| l.code.eq_ignore_ascii_case(code))
}

/// Returns the interned `&'static str` code for a code string, if known.
/// The diagnostic cache needs this to rebuild `Diagnostic`s from disk.
pub fn intern_code(code: &str) -> Option<&'static str> {
    lint_info(code).map(|l| l.code)
}

/// Renders the `--explain` output for one code, or the full catalogue for
/// `all`.
pub fn render_explain(code: &str) -> Option<String> {
    if code.eq_ignore_ascii_case("all") {
        let mut out = String::from("| code | severity | meaning |\n|---|---|---|\n");
        for l in LINTS {
            out.push_str(&format!(
                "| `{}` | {} | {} |\n",
                l.code, l.severity, l.summary
            ));
        }
        return Some(out);
    }
    let l = lint_info(code)?;
    Some(format!(
        "{} ({})\n  {}\n\n{}\n",
        l.code, l.severity, l.summary, l.rationale
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        assert_eq!(LINTS.len(), 19);
        let mut codes: Vec<&str> = LINTS.iter().map(|l| l.code).collect();
        let n = codes.len();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate lint codes");
        // Exactly two advisory lints; everything else fails --check.
        let warnings: Vec<&str> = LINTS
            .iter()
            .filter(|l| l.severity == Severity::Warning)
            .map(|l| l.code)
            .collect();
        assert_eq!(warnings, ["DET004", "TIM002"]);
    }

    #[test]
    fn explain_renders_single_and_catalogue() {
        let one = render_explain("lay003").unwrap();
        assert!(one.contains("LAY003"));
        assert!(one.contains("splitc"));
        let all = render_explain("all").unwrap();
        for l in LINTS {
            assert!(all.contains(l.code), "{} missing from catalogue", l.code);
        }
        assert!(render_explain("NOPE999").is_none());
    }

    #[test]
    fn intern_round_trips() {
        assert_eq!(intern_code("TIM001"), Some("TIM001"));
        assert_eq!(intern_code("tim001"), Some("TIM001"));
        assert_eq!(intern_code("XXX"), None);
    }
}
