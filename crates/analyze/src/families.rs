//! The graph-aware lint families introduced by analyzer v2, implemented
//! over the [`FileModel`](crate::itemtree::FileModel) item tree rather than
//! the raw token stream.
//!
//! **`LAY…` — crate layering.** The ten-crate stack (rng → sim → am →
//! coll → splitc → apps, trace/metrics observe-only) encodes where the paper's
//! o/g/L/G costs are attributed. `LAY001`/`LAY003` check every source-level
//! `nowlab_x` path reference against the [`Layer`] table; the manifest side
//! (`LAY002`/`MET001`) lives in [`graph`](crate::graph).
//!
//! **`FLT…` — float determinism.** Float addition is non-associative, so
//! any reduction whose iteration order is not fixed makes the result — and
//! through the LogGP cost model, virtual time — depend on incidental
//! ordering. The same trap LLAMP's dependency-graph analysis controls for.
//!
//! **`TIM…` — sim-time hygiene.** Raw literals flowing into timer APIs are
//! unnamed protocol constants; mixed-unit arithmetic is how silent 1e3
//! errors happen.

use crate::graph::Layer;
use crate::itemtree::FileModel;
use crate::lexer::{Tok, TokKind};
use crate::{Diagnostic, Scope, Severity};

/// Sim/`Ctx` APIs that accept a time argument. A literal-built
/// `SimDelta`/`SimTime` flowing straight into one of these (outside a
/// named const or `#[cfg(test)]`) trips `TIM001`.
const TIMER_APIS: &[&str] = &[
    "delay",
    "sleep_until",
    "schedule",
    "schedule_in",
    "idle_until",
    "lock_with_backoff",
    "with_time_limit",
];

/// The `SimTime`/`SimDelta` constructors whose literal arguments `TIM001`
/// looks for.
const TIME_CTORS: &[&str] = &[
    "from_nanos",
    "from_micros",
    "from_micros_int",
    "from_millis",
    "from_secs",
];

/// Closure-accepting registration/scheduling APIs whose bodies run on the
/// event loop, in event-arrival order (`FLT003` scope).
const HANDLER_APIS: &[&str] = &["register_handler", "schedule", "schedule_in"];

/// Unit extractors on `SimTime`/`SimDelta`, grouped by unit for `TIM002`.
/// The value is a unit rank; two extractors with different ranks combined
/// by `+ - < >` in one statement is mixed-unit arithmetic.
fn unit_rank(ident: &str) -> Option<u8> {
    match ident {
        "as_nanos" => Some(0),
        "as_micros" | "as_micros_f64" => Some(1),
        "as_millis_f64" => Some(2),
        "as_secs_f64" => Some(3),
        _ => None,
    }
}

/// Runs the `LAY`/`FLT`/`TIM` families applicable under `scope`.
pub fn lint_model(path: &str, model: &FileModel, scope: &Scope) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    lint_layering(path, model, scope, &mut diags);
    if scope.sim_visible {
        lint_float_sums(path, model, &mut diags);
        lint_partial_cmp(path, model, &mut diags);
        lint_handler_accumulation(path, model, &mut diags);
        lint_timer_literals(path, model, &mut diags);
        lint_mixed_units(path, model, &mut diags);
    }
    diags
}

/// `LAY001`/`LAY003`: source-level layering. Every `nowlab_x` reference
/// (use-import root or inline path root) in a constrained crate must
/// resolve to a declared lower layer. Apps reaching below splitc get the
/// more specific `LAY003`.
fn lint_layering(path: &str, model: &FileModel, scope: &Scope, diags: &mut Vec<Diagnostic>) {
    let Some(allowed) = scope.layer.allowed_deps() else {
        return;
    };
    for (name, line) in model.workspace_crate_refs() {
        let Some(dep) = Layer::of_package(name) else {
            continue;
        };
        if dep == scope.layer || allowed.contains(&dep) {
            continue;
        }
        let apps_below_splitc =
            scope.layer == Layer::Apps && matches!(dep, Layer::Sim | Layer::Am | Layer::Coll);
        let (code, message) = if apps_below_splitc {
            (
                "LAY003",
                format!(
                    "app code references `{name}` — apps speak only the splitc runtime \
                     surface, like the originals on the NOW cluster; use the \
                     `nowlab_splitc` re-exports (SimDelta, SimTime, Payload, CollConfig, \
                     …) instead"
                ),
            )
        } else {
            let names: Vec<&str> = allowed.iter().map(|l| l.name()).collect();
            (
                "LAY001",
                format!(
                    "`{name}` is outside layer {}'s declared lower layers {:?} — \
                     route the call through the layer that owns it or re-export the \
                     type from a legal layer",
                    scope.layer.name(),
                    names
                ),
            )
        };
        diags.push(Diagnostic {
            path: path.to_string(),
            line,
            code,
            severity: Severity::Error,
            message,
        });
    }
}

/// `FLT001`: `.sum::<f64>()` (or an un-turbofished `.sum()` whose statement
/// is visibly float-typed), and `.fold(float, …+…)` reductions.
fn lint_float_sums(path: &str, model: &FileModel, diags: &mut Vec<Diagnostic>) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || model.in_test(i) {
            continue;
        }
        if toks[i].text == "sum" && i > 0 && toks[i - 1].text == "." {
            let float = if tok_text(toks, i + 1) == Some(":") {
                // Turbofish: `.sum::<T>()` — flag exactly the float types.
                matches!(tok_text(toks, i + 4), Some("f64") | Some("f32"))
            } else if tok_text(toks, i + 1) == Some("(") {
                // Bare `.sum()`: float only if the enclosing statement names
                // the type (`let s: f64 = …`). An integer sum can silence a
                // coincidental hit by annotating `.sum::<u64>()`. A field
                // access (`self.sum as f64`) is not a call and never matches.
                let stmt = stmt_bounds(toks, i);
                toks[stmt]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && (t.text == "f64" || t.text == "f32"))
            } else {
                false
            };
            if float {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: toks[i].line,
                    code: "FLT001",
                    severity: Severity::Error,
                    message: "float `.sum()` — addition is non-associative, so the value \
                              depends on iteration order; sum a slice left-to-right via \
                              `nowlab_sim::ordered_sum` (or annotate an integer sum with \
                              its type, e.g. `.sum::<u64>()`)"
                        .to_string(),
                });
            }
        }
        if toks[i].text == "fold" && i > 0 && toks[i - 1].text == "." {
            let Some(open) = (tok_text(toks, i + 1) == Some("(")).then_some(i + 1) else {
                continue;
            };
            let close = match_delim(toks, open, "(", ")");
            // First argument = the accumulator seed, up to the first
            // top-level comma.
            let mut depth = 0i32;
            let mut seed_end = close;
            for (j, t) in toks.iter().enumerate().take(close).skip(open + 1) {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => {
                        seed_end = j;
                        break;
                    }
                    _ => {}
                }
            }
            let float_seed = toks[open + 1..seed_end].iter().any(|t| {
                t.kind == TokKind::Float
                    || (t.kind == TokKind::Int
                        && (t.text.ends_with("f64") || t.text.ends_with("f32")))
            });
            let has_plus = toks[seed_end..close].iter().any(|t| t.text == "+");
            if float_seed && has_plus {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: toks[i].line,
                    code: "FLT001",
                    severity: Severity::Error,
                    message: "float `fold(…, +)` — addition is non-associative, so the \
                              value depends on iteration order; sum a slice left-to-right \
                              via `nowlab_sim::ordered_sum`"
                        .to_string(),
                });
            }
        }
    }
}

/// `FLT002`: `partial_cmp` in sim-visible code (panics on NaN under
/// `.unwrap()`, input-dependent order under `sort_by`).
fn lint_partial_cmp(path: &str, model: &FileModel, diags: &mut Vec<Diagnostic>) {
    for (i, t) in model.toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "partial_cmp" && !model.in_test(i) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line: t.line,
                code: "FLT002",
                severity: Severity::Error,
                message: "`partial_cmp` on floats — NaN makes the order partial and \
                          input-dependent; use `f64::total_cmp`, a deterministic total \
                          order over every bit pattern"
                    .to_string(),
            });
        }
    }
}

/// `FLT003`: `+=` float accumulation inside a closure passed to an event
/// registration/scheduling API — the accumulation happens in event-arrival
/// order.
fn lint_handler_accumulation(path: &str, model: &FileModel, diags: &mut Vec<Diagnostic>) {
    let toks = &model.toks;
    let mut i = 0;
    while i + 1 < toks.len() {
        let is_reg = toks[i].kind == TokKind::Ident
            && HANDLER_APIS.contains(&toks[i].text.as_str())
            && toks[i + 1].text == "("
            && !model.in_test(i);
        if !is_reg {
            i += 1;
            continue;
        }
        let end = match_delim(toks, i + 1, "(", ")");
        for j in i + 2..end.saturating_sub(1) {
            if toks[j].text != "+" || toks[j + 1].text != "=" {
                continue;
            }
            // `+=` found: float evidence on the right-hand side up to the
            // end of the statement.
            let mut k = j + 2;
            let mut float = false;
            while k < end && toks[k].text != ";" {
                let t = &toks[k];
                float |= t.kind == TokKind::Float
                    || (t.kind == TokKind::Ident
                        && (t.text == "f64"
                            || t.text == "f32"
                            || t.text.ends_with("_f64")
                            || t.text.ends_with("_f32")));
                k += 1;
            }
            if float {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: toks[j].line,
                    code: "FLT003",
                    severity: Severity::Error,
                    message: "float `+=` inside an event-loop closure accumulates in \
                              event-arrival order — accumulate integers (nanoseconds, \
                              counts) in handlers and convert to float at the reporting \
                              edge"
                        .to_string(),
                });
            }
        }
        i = end + 1;
    }
}

/// `TIM001`: a `SimTime`/`SimDelta` constructor with a literal argument
/// directly inside a timer-API call, outside named consts and tests.
fn lint_timer_literals(path: &str, model: &FileModel, diags: &mut Vec<Diagnostic>) {
    let toks = &model.toks;
    let mut i = 0;
    while i + 1 < toks.len() {
        let is_timer = toks[i].kind == TokKind::Ident
            && TIMER_APIS.contains(&toks[i].text.as_str())
            && toks[i + 1].text == "("
            && !model.in_test(i)
            && !model.in_const(i);
        if !is_timer {
            i += 1;
            continue;
        }
        let end = match_delim(toks, i + 1, "(", ")");
        for j in i + 2..end {
            let literal_ctor = toks[j].kind == TokKind::Ident
                && TIME_CTORS.contains(&toks[j].text.as_str())
                && tok_text(toks, j + 1) == Some("(")
                && model
                    .toks
                    .get(j + 2)
                    .is_some_and(|t| matches!(t.kind, TokKind::Int | TokKind::Float));
            if literal_ctor {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: toks[j].line,
                    code: "TIM001",
                    severity: Severity::Error,
                    message: format!(
                        "raw literal in `{}({}(…))` — an unnamed time constant at the \
                         call site; name it (`const …: SimDelta = …`) next to the other \
                         tunables so copies cannot drift and sweeps can find it",
                        toks[i].text, toks[j].text
                    ),
                });
            }
        }
        i = end + 1;
    }
}

/// `TIM002` (warning): two unit extractors of different units combined by
/// `+ - < >` within one statement (and not separated by a comma, which
/// would make them independent arguments).
fn lint_mixed_units(path: &str, model: &FileModel, diags: &mut Vec<Diagnostic>) {
    let toks = &model.toks;
    let mut i = 0;
    while i < toks.len() {
        let stmt = stmt_bounds(toks, i);
        // Jump past the statement's trailing boundary token, so a statement
        // is scanned exactly once.
        let next = stmt.end + 1;
        // Collect (index, rank) of extractor calls in this statement.
        let extractors: Vec<(usize, u8)> = (stmt.start..stmt.end)
            .filter(|&j| !model.in_test(j))
            .filter_map(|j| {
                (toks[j].kind == TokKind::Ident
                    && j > 0
                    && toks[j - 1].text == "."
                    && tok_text(toks, j + 1) == Some("("))
                .then(|| unit_rank(&toks[j].text).map(|r| (j, r)))
                .flatten()
            })
            .collect();
        'pairs: for a in 0..extractors.len() {
            for b in a + 1..extractors.len() {
                let (ja, ra) = extractors[a];
                let (jb, rb) = extractors[b];
                if ra == rb {
                    continue;
                }
                let between = &toks[ja..jb];
                let operator = between
                    .iter()
                    .any(|t| matches!(t.text.as_str(), "+" | "-" | "<" | ">"));
                let comma = between.iter().any(|t| t.text == ",");
                if operator && !comma {
                    diags.push(Diagnostic {
                        path: path.to_string(),
                        line: toks[jb].line,
                        code: "TIM002",
                        severity: Severity::Warning,
                        message: format!(
                            "`{}` and `{}` mixed in one expression — different time \
                             units combined arithmetically is how silent 1e3 errors \
                             happen; convert both sides to one unit first, or stay in \
                             `SimDelta` (unit-safe integer nanoseconds)",
                            toks[ja].text, toks[jb].text
                        ),
                    });
                    break 'pairs;
                }
            }
        }
        i = next;
    }
}

fn tok_text(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).map(|t| t.text.as_str())
}

/// The token range of the statement containing `i`: delimited by `;`, `{`,
/// or `}` on both sides.
fn stmt_bounds(toks: &[Tok], i: usize) -> std::ops::Range<usize> {
    let is_boundary = |t: &Tok| matches!(t.text.as_str(), ";" | "{" | "}");
    let mut s = i;
    while s > 0 && !is_boundary(&toks[s - 1]) {
        s -= 1;
    }
    let mut e = i;
    while e < toks.len() && !is_boundary(&toks[e]) {
        e += 1;
    }
    s..e
}

fn match_delim(toks: &[Tok], open: usize, l: &str, r: &str) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.text == l {
            depth += 1;
        } else if t.text == r {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope(layer: Layer) -> Scope {
        Scope {
            sim_visible: true,
            layer,
            ..Scope::default()
        }
    }

    fn codes(src: &str, sc: &Scope) -> Vec<&'static str> {
        let model = FileModel::parse(src);
        lint_model("t.rs", &model, sc)
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn lay001_flags_undeclared_layers_lay003_flags_apps() {
        // Metrics may see only sim and trace.
        let src = "use nowlab_am::Port;\nfn f() { let p = nowlab_apps::radix::run; }";
        assert_eq!(codes(src, &scope(Layer::Metrics)), vec!["LAY001", "LAY001"]);
        // Apps reaching below splitc get the specific code; the collectives
        // crate counts as "below" even though its vocabulary is re-exported.
        let src = "use nowlab_sim::SimDelta;\nfn f() { nowlab_am::Payload::words(1); }";
        assert_eq!(codes(src, &scope(Layer::Apps)), vec!["LAY003", "LAY003"]);
        let src = "use nowlab_coll::Selector;";
        assert_eq!(codes(src, &scope(Layer::Apps)), vec!["LAY003"]);
        // Declared lower layers and self-references are clean.
        let ok = "use nowlab_splitc::Ctx;\nuse nowlab_core::RunSpec;\nuse nowlab_apps::x;";
        assert!(codes(ok, &scope(Layer::Apps)).is_empty());
        // Unconstrained layers are never flagged.
        assert!(codes("use nowlab_sim::Sim;", &scope(Layer::Bench)).is_empty());
        // Test-only imports are host-side.
        let test_only = "#[cfg(test)]\nmod tests { use nowlab_sim::Sim; }";
        assert!(codes(test_only, &scope(Layer::Apps)).is_empty());
    }

    #[test]
    fn flt001_flags_float_sums_and_folds() {
        let sc = scope(Layer::Am);
        assert_eq!(
            codes(
                "fn f(v: &V) -> f64 { v.iter().map(|c| c.x).sum::<f64>() }",
                &sc
            ),
            vec!["FLT001"]
        );
        // Un-turbofished sum in a float-ascribed statement.
        assert_eq!(
            codes("fn f(v: &V) { let s: f64 = v.iter().sum(); }", &sc),
            vec!["FLT001"]
        );
        assert_eq!(
            codes(
                "fn f(v: &V) -> f64 { v.iter().fold(0.0, |a, x| a + x) }",
                &sc
            ),
            vec!["FLT001"]
        );
        // Integer reductions and non-additive float folds are fine.
        for ok in [
            "fn f(v: &V) -> u64 { v.iter().sum::<u64>() }",
            "fn f(v: &V) { let s: u64 = v.iter().sum(); }",
            "fn f(v: &V) -> f64 { v.iter().fold(1.0, f64::max) }",
            "fn f(v: &V) -> SimDelta { v.iter().fold(SimDelta::ZERO, Add::add) }",
        ] {
            assert!(codes(ok, &sc).is_empty(), "{ok}");
        }
        // Test code is host-side.
        let t = "#[cfg(test)]\nmod tests { fn f(v: &V) -> f64 { v.iter().sum::<f64>() } }";
        assert!(codes(t, &sc).is_empty());
    }

    #[test]
    fn flt002_flags_partial_cmp() {
        let sc = scope(Layer::Core);
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(codes(src, &sc), vec!["FLT002"]);
        let ok = "fn f(v: &mut Vec<f64>) { v.sort_by(f64::total_cmp); }";
        assert!(codes(ok, &sc).is_empty());
    }

    #[test]
    fn flt003_flags_float_accumulation_in_handlers() {
        let sc = scope(Layer::Splitc);
        let src = "fn f(c: &C) { c.register_handler(|ctx, st| { st.total += x as f64; }); }";
        assert_eq!(codes(src, &sc), vec!["FLT003"]);
        // Integer accumulation in a handler is the sanctioned pattern.
        let ok = "fn f(c: &C) { c.register_handler(|ctx, st| { st.total_ns += d.as_nanos(); }); }";
        assert!(codes(ok, &sc).is_empty());
        // Float accumulation outside any handler is FLT001/003-free.
        let outside = "fn f(st: &mut S) { st.total += x as f64; }";
        assert!(codes(outside, &sc).is_empty());
    }

    #[test]
    fn tim001_flags_literal_ctors_in_timer_calls() {
        let sc = scope(Layer::Splitc);
        let src = "async fn f(s: &Sim) { s.delay(SimDelta::from_micros(1.0)).await; }";
        assert_eq!(codes(src, &sc), vec!["TIM001"]);
        let src2 = "fn f(c: &Ctx) { c.lock_with_backoff(g, SimDelta::from_micros(2.0), \
                    SimDelta::from_micros(64.0)); }";
        assert_eq!(codes(src2, &sc), vec!["TIM001", "TIM001"]);
        // A named constant is the sanctioned spelling, both at the
        // definition and at the call site.
        let ok = "const BACKOFF: SimDelta = SimDelta::from_micros_int(1);\n\
                  async fn f(s: &Sim) { s.delay(BACKOFF).await; }";
        assert!(codes(ok, &sc).is_empty());
        // Test code may hardcode.
        let t = "#[cfg(test)]\nmod tests { async fn f(s: &Sim) { \
                 s.delay(SimDelta::from_nanos(10)).await; } }";
        assert!(codes(t, &sc).is_empty());
        // A computed argument is not a raw literal.
        let computed = "async fn f(s: &Sim, us: f64) { s.delay(SimDelta::from_micros(us)).await; }";
        assert!(codes(computed, &sc).is_empty());
    }

    #[test]
    fn tim002_warns_on_mixed_unit_arithmetic() {
        let sc = scope(Layer::Core);
        let src =
            "fn f(a: SimDelta, b: SimDelta) -> u64 { a.as_nanos() + b.as_micros_f64() as u64 }";
        let model = FileModel::parse(src);
        let diags = lint_model("t.rs", &model, &sc);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "TIM002");
        assert_eq!(diags[0].severity, Severity::Warning);
        // Same unit: fine. Different units as separate arguments: fine.
        for ok in [
            "fn f(a: SimDelta, b: SimDelta) -> u64 { a.as_nanos() + b.as_nanos() }",
            "fn f(a: SimDelta, b: SimDelta) { g(a.as_nanos(), b.as_micros_f64()); }",
            "fn f(a: SimDelta, b: SimDelta) -> f64 { a.as_micros_f64() / b.as_secs_f64() }",
        ] {
            assert!(codes(ok, &sc).is_empty(), "{ok}");
        }
    }

    #[test]
    fn families_respect_sim_visibility() {
        let host = Scope {
            sim_visible: false,
            layer: Layer::Bench,
            ..Scope::default()
        };
        let src = "fn f(v: &V) -> f64 { v.iter().sum::<f64>() }\n\
                   fn g(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert!(codes(src, &host).is_empty());
    }
}
