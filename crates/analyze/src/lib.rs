//! # nowlab-analyze — determinism & AM-protocol static analysis
//!
//! The simulation's headline guarantee is that virtual time is a pure
//! function of (program, seed): two runs with the same inputs produce
//! bit-identical statistics. That guarantee is easy to break silently —
//! one `HashMap` iteration in a hot path, one wall-clock read folded into
//! a `SimTime` — so this crate enforces it mechanically over the whole
//! workspace, along with the GAM active-message protocol rules the
//! paper's apparatus depends on.
//!
//! Run it as:
//!
//! ```text
//! cargo run -p nowlab-analyze            # report
//! cargo run -p nowlab-analyze -- --check # CI mode: non-zero exit on errors
//! ```
//!
//! Audited exceptions live in `analyze.toml` at the workspace root (see
//! [`allowlist`]). The build container is fully offline, so instead of
//! `syn` the pass runs on a hand-rolled token scanner ([`lexer`]) feeding a
//! lightweight recursive-descent item tree ([`itemtree`]) — modules, `use`
//! trees, fn/impl signatures, const items — plus a workspace dependency
//! graph parsed from the crates' manifests ([`graph`]). Lints are therefore
//! path- and scope-resolved, not bare-identifier matches.
//!
//! The lint catalogue — one [`explain::LintInfo`] record per code — is
//! rendered by `--explain CODE` (or `--explain all`); findings export as
//! SARIF 2.1.0 via `--format sarif` ([`sarif`]), and repeated runs reuse a
//! per-file mtime cache ([`cache`]).
//!
//! ## Lint catalogue
//!
//! | code | severity | meaning |
//! |---|---|---|
//! | `DET001` | error | `HashMap`/`HashSet` in simulation-visible state |
//! | `DET002` | error | `std::time::Instant`/`SystemTime` in sim-visible code |
//! | `DET003` | error | OS/env entropy outside `crates/rng` |
//! | `DET004` | warning | wall-clock value flowing toward virtual time |
//! | `SAFE001` | error | crate root missing `#![forbid(unsafe_code)]` |
//! | `AMP001` | error | AM handler issues a request (GAM acyclicity) |
//! | `AMP002` | error | re-hardcoded window depth / 4KB fragment size |
//! | `AMP003` | error | public sim-facing API exposes a hash collection |
//! | `AMP004` | error | membership/detector state referenced outside `crates/am` |
//! | `PAR001` | error | thread/lock primitives outside the orchestration layer |
//! | `MET001` | error | metrics crate depends beyond `{sim, trace}` |
//! | `LAY001` | error | source reference outside the crate's declared lower layers |
//! | `LAY002` | error | manifest dependency outside the declared lower layers |
//! | `LAY003` | error | apps reach below splitc (`sim`/`am`/`coll` internals) |
//! | `FLT001` | error | unordered `f64` reduction (`.sum()`, `fold(+)`) in sim-visible code |
//! | `FLT002` | error | `partial_cmp` on floats in sim-visible code |
//! | `FLT003` | error | float accumulation inside an event handler closure |
//! | `TIM001` | error | raw literal flowing into a timer API outside a named const |
//! | `TIM002` | warning | mixed time-unit arithmetic in one expression |

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod cache;
pub mod explain;
pub mod families;
pub mod graph;
pub mod itemtree;
pub mod lexer;
pub mod lints;
pub mod sarif;

use std::fmt;
use std::path::{Path, PathBuf};

use graph::{Layer, WorkspaceGraph};
use itemtree::FileModel;

/// How bad a finding is. `Error` fails `--check`; `Warning` is advisory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, never fails the build.
    Warning,
    /// Violation of a hard invariant: fails `--check`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, addressable by file and line.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Stable lint code (`DET001`, `AMP002`, …).
    pub code: &'static str,
    /// [`Severity::Error`] or [`Severity::Warning`].
    pub severity: Severity,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}: {}",
            self.severity, self.code, self.path, self.line, self.message
        )
    }
}

/// Which lint families apply to a file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Scope {
    /// Code that can influence simulation state or event order. The
    /// `DET…` family and `AMP003` apply here.
    pub sim_visible: bool,
    /// Inside `crates/am`: the protocol-constant lint `AMP002` applies.
    pub am_layer: bool,
    /// Inside `crates/rng`: the one place allowed to touch entropy
    /// primitives (it wraps them behind seeded streams).
    pub entropy_exempt: bool,
    /// A crate/bin root file, which must carry `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
    /// Inside the run-boundary orchestration layer (`crates/core::sweep`,
    /// `crates/bench`, `src/bin`): the only code allowed to use OS threads
    /// and lock/atomic primitives (`PAR001` elsewhere). Simulations stay
    /// single-threaded so virtual time cannot depend on host scheduling.
    pub parallel_ok: bool,
    /// The crate's architectural layer; drives the `LAY…` family (which
    /// crates this file may reference). [`Layer::Other`] is unconstrained.
    pub layer: Layer,
}

/// Crates whose code is simulation-visible. `bench` is deliberately
/// absent: it is the host-side wall-clock harness and may read
/// `Instant`/env freely.
const SIM_CRATES: &[&str] = &[
    "sim", "trace", "metrics", "am", "coll", "splitc", "predict", "core", "apps", "rng",
];

/// Determines the lint scope for a workspace-relative `.rs` path, or
/// `None` if the file is out of scope (tests, benches, fixtures — anything
/// outside a `src/` tree).
pub fn scope_for(rel: &str) -> Option<Scope> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, in_src) = if parts.first() == Some(&"crates") && parts.len() >= 3 {
        (Some(parts[1]), parts[2] == "src")
    } else if parts.first() == Some(&"src") {
        (None, true)
    } else {
        (None, false)
    };
    if !in_src {
        return None;
    }
    let file = *parts.last().unwrap_or(&"");
    let parent = parts[parts.len().saturating_sub(2)];
    let crate_root =
        (parent == "src" && (file == "lib.rs" || file == "main.rs")) || parent == "bin";
    Some(Scope {
        sim_visible: crate_name.is_none_or(|c| SIM_CRATES.contains(&c)),
        am_layer: crate_name == Some("am"),
        entropy_exempt: crate_name == Some("rng"),
        crate_root,
        parallel_ok: rel.starts_with("crates/bench/")
            || rel.starts_with("src/bin/")
            || rel.starts_with("crates/core/src/sweep"),
        layer: crate_name.map_or(Layer::Root, Layer::of_crate),
    })
}

/// Lints a single parsed [`FileModel`] under the given scope: the
/// token-level lints ([`lints`]) plus the graph-aware families
/// ([`families`]).
pub fn scan_model(path: &str, model: &FileModel, scope: &Scope) -> Vec<Diagnostic> {
    let mut diags = lints::lint_model(path, model, scope);
    diags.extend(families::lint_model(path, model, scope));
    diags
}

/// Lints a single source file under the given scope.
pub fn scan_source(path: &str, source: &str, scope: &Scope) -> Vec<Diagnostic> {
    scan_model(path, &FileModel::parse(source), scope)
}

/// What a workspace scan did, for the CLI's one-line status report.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanStats {
    /// In-scope `.rs` files considered.
    pub files: usize,
    /// Files whose diagnostics came from the mtime cache.
    pub cached: usize,
}

/// Scans every in-scope `.rs` file under the workspace `root`, in
/// deterministic (sorted-path) order, plus the manifest-level layering
/// lints from the workspace graph. Returns diagnostics sorted by
/// (path, line, code).
pub fn scan_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    scan_workspace_cached(root, &mut cache::Cache::disabled()).map(|(d, _)| d)
}

/// [`scan_workspace`] with a per-file mtime cache: files whose
/// (mtime, size) are unchanged since the cache was written reuse their
/// recorded diagnostics without being read or parsed.
pub fn scan_workspace_cached(
    root: &Path,
    cache: &mut cache::Cache,
) -> Result<(Vec<Diagnostic>, ScanStats), String> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let mut src_roots = vec![root.join("src")];
    if crates_dir.is_dir() {
        let mut names: Vec<_> = std::fs::read_dir(&crates_dir)
            .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        names.sort();
        src_roots.extend(names.into_iter().map(|p| p.join("src")));
    }
    for src in src_roots {
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();

    let mut stats = ScanStats::default();
    let mut diags = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(scope) = scope_for(&rel) else {
            continue;
        };
        stats.files += 1;
        let stamp = cache::FileStamp::of(file);
        if let Some(hit) = stamp.and_then(|st| cache.lookup(&rel, st)) {
            stats.cached += 1;
            diags.extend(hit);
            continue;
        }
        let source = std::fs::read_to_string(file).map_err(|e| format!("reading {rel}: {e}"))?;
        let file_diags = scan_model(&rel, &FileModel::parse(&source), &scope);
        if let Some(st) = stamp {
            cache.store(&rel, st, &file_diags);
        }
        diags.extend(file_diags);
    }
    // Manifest-level layering over the workspace graph (LAY002 / MET001).
    // Manifests are few and tiny; they are never cached.
    let graph = WorkspaceGraph::load(root)?;
    diags.extend(graph.lint_manifests());
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.code).cmp(&(b.path.as_str(), b.line, b.code)));
    Ok((diags, stats))
}

/// `MET001`: the metrics crate's `[dependencies]` must stay within
/// `{nowlab-sim, nowlab-trace}`. Kept as a named entry point because the
/// metrics crate's observer guarantee is load-bearing for the paper's
/// methodology; since analyzer v2 it is the metrics-crate case of the
/// [`graph`] manifest lints (`LAY002` elsewhere).
pub fn lint_metrics_manifest(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let graph = WorkspaceGraph::load(root)?;
    Ok(graph
        .lint_manifests()
        .into_iter()
        .filter(|d| d.code == "MET001")
        .collect())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_routing() {
        let s = scope_for("crates/am/src/cluster.rs").unwrap();
        assert!(s.sim_visible && s.am_layer && !s.entropy_exempt && !s.crate_root);
        assert!(!s.parallel_ok);
        let s = scope_for("crates/rng/src/lib.rs").unwrap();
        assert!(s.sim_visible && s.entropy_exempt && s.crate_root);
        let s = scope_for("crates/bench/src/lib.rs").unwrap();
        assert!(!s.sim_visible && s.crate_root, "bench is host-side");
        assert!(s.parallel_ok, "bench may use threads");
        let s = scope_for("src/bin/nowlab.rs").unwrap();
        assert!(s.sim_visible && s.crate_root);
        assert!(s.parallel_ok, "the CLI fans out whole runs");
        // Trace sinks observe simulations from inside, so the crate is
        // held to the same determinism rules as the layers it instruments.
        let s = scope_for("crates/trace/src/lib.rs").unwrap();
        assert!(s.sim_visible && !s.am_layer && s.crate_root);
        assert!(!s.parallel_ok);
        // Metrics sinks likewise run inside the event loop.
        let s = scope_for("crates/metrics/src/lib.rs").unwrap();
        assert!(s.sim_visible && !s.am_layer && s.crate_root);
        assert!(!s.parallel_ok);
        assert!(scope_for("crates/analyze/tests/fixtures/det001.rs").is_none());
        assert!(scope_for("crates/am/tests/gam.rs").is_none());
        assert!(scope_for("README.md").is_none());
    }

    #[test]
    fn met001_rejects_dependencies_outside_the_allowlist() {
        let dir = std::env::temp_dir().join(format!("nowlab-met001-{}", std::process::id()));
        let manifest_dir = dir.join("crates/metrics");
        std::fs::create_dir_all(&manifest_dir).unwrap();
        std::fs::write(
            manifest_dir.join("Cargo.toml"),
            "[package]\nname = \"nowlab-metrics\"\n\n[dependencies]\n\
             nowlab-sim.workspace = true\nnowlab-trace.workspace = true\n\
             serde = \"1\"\nnowlab-am = { path = \"../am\" }\n",
        )
        .unwrap();
        let diags = lint_metrics_manifest(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let names: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(names, ["MET001", "MET001"]);
        assert!(diags[0].message.contains("serde"));
        assert!(diags[1].message.contains("nowlab-am"));
        // A workspace without the crate at all is fine (older checkouts).
        assert!(lint_metrics_manifest(Path::new("/nonexistent"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn met001_accepts_the_real_manifest() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        assert!(lint_metrics_manifest(&root).unwrap().is_empty());
    }

    #[test]
    fn parallelism_is_confined_to_the_orchestration_layer() {
        // The worker pool and the sweep driver that owns it.
        assert!(
            scope_for("crates/core/src/sweep/par.rs")
                .unwrap()
                .parallel_ok
        );
        assert!(scope_for("crates/core/src/sweep.rs").unwrap().parallel_ok);
        // Everything below the run boundary is single-threaded.
        for rel in [
            "crates/sim/src/executor.rs",
            "crates/trace/src/ring.rs",
            "crates/am/src/cluster.rs",
            "crates/splitc/src/layer.rs",
            "crates/apps/src/common.rs",
            "crates/core/src/models.rs",
            "src/lib.rs",
        ] {
            assert!(!scope_for(rel).unwrap().parallel_ok, "{rel}");
        }
    }
}
