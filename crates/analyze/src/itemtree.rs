//! A lightweight item tree over the token stream.
//!
//! [`FileModel`] is the program model the lints run against: a recursive-
//! descent pass over the [`lexer`](crate::lexer) output that recognizes the
//! item kinds the analysis needs — modules, `use` trees, `fn`/`impl`
//! signatures, and `const`/`static` items — and records, for every token
//! index, whether it sits inside `#[cfg(test)]` code or inside a constant
//! definition. This is what lets the lints be *path- and scope-resolved*
//! instead of matching bare identifiers: a `use nowlab_am::…` is attributed
//! to the crate it imports from, a literal inside a named `const` is a
//! sanctioned time constant, and a `pub fn` signature is distinguished from
//! its body.
//!
//! The parser is deliberately forgiving: unknown constructs are skipped
//! token by token, so macro-heavy or exotic code degrades to "no items
//! recognized here" rather than an error. All ranges are token-index
//! ranges into [`FileModel::toks`].

use std::collections::BTreeMap;
use std::ops::Range;

use crate::lexer::{lex, Tok, TokKind};

/// One flattened `use` import: `use a::{b, c as d};` yields two entries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseImport {
    /// Full path segments, e.g. `["nowlab_sim", "SimDelta"]`. Globs end in
    /// `"*"`; `self` imports end at the group prefix.
    pub path: Vec<String>,
    /// The name the import binds locally (the rename after `as`, otherwise
    /// the last path segment; `"*"` for globs).
    pub alias: String,
    /// 1-based line of the `use` keyword.
    pub line: u32,
    /// True if the import sits inside `#[cfg(test)]` code.
    pub in_test: bool,
}

/// A `mod` declaration, inline (`mod x { … }`) or outline (`mod x;`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModDecl {
    /// Module name.
    pub name: String,
    /// 1-based line of the `mod` keyword.
    pub line: u32,
    /// True for `mod x { … }`, false for `mod x;`.
    pub inline: bool,
    /// Enclosing module path within the file (empty at file scope).
    pub parent: Vec<String>,
}

/// A function item (free function or method).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True for unrestricted `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// True for `async fn`.
    pub is_async: bool,
    /// Token range of the signature: from `fn` to the body `{` or `;`
    /// (exclusive).
    pub sig: Range<usize>,
    /// Token range of the body including braces, if the fn has one.
    pub body: Option<Range<usize>>,
    /// True if the fn sits inside `#[cfg(test)]` code.
    pub in_test: bool,
}

/// A `const` or `static` item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstItem {
    /// Item name.
    pub name: String,
    /// 1-based line of the `const`/`static` keyword.
    pub line: u32,
    /// Token range of the whole item, keyword through `;` (inclusive).
    pub range: Range<usize>,
}

/// An `impl` block header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImplDecl {
    /// The implemented-for type name (last path segment; heuristic).
    pub self_ty: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Token range of the block body including braces.
    pub body: Range<usize>,
}

/// The parsed model of one source file: token stream plus item tree.
#[derive(Clone, Debug, Default)]
pub struct FileModel {
    /// The token stream the item ranges index into.
    pub toks: Vec<Tok>,
    /// Flattened `use` imports, in source order.
    pub uses: Vec<UseImport>,
    /// Module declarations, in source order.
    pub mods: Vec<ModDecl>,
    /// Function items (free and methods), in source order.
    pub fns: Vec<FnItem>,
    /// `const`/`static` items, in source order.
    pub consts: Vec<ConstItem>,
    /// `impl` block headers, in source order.
    pub impls: Vec<ImplDecl>,
    test_ranges: Vec<Range<usize>>,
}

impl FileModel {
    /// Lexes and parses `source`.
    pub fn parse(source: &str) -> FileModel {
        let toks = lex(source);
        let mut model = FileModel {
            toks,
            ..FileModel::default()
        };
        let end = model.toks.len();
        let mut parser = Parser {
            model: &mut model,
            in_test: false,
            mod_path: Vec::new(),
        };
        parser.walk(0, end);
        model
    }

    /// True if token `idx` sits inside `#[cfg(test)]` code.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|r| r.contains(&idx))
    }

    /// True if token `idx` sits inside a `const`/`static` item (the one
    /// sanctioned home for raw time literals).
    pub fn in_const(&self, idx: usize) -> bool {
        self.consts.iter().any(|c| c.range.contains(&idx))
    }

    /// The innermost function whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.as_ref().is_some_and(|b| b.contains(&idx)))
            .min_by_key(|f| {
                let b = f.body.as_ref().unwrap();
                b.end - b.start
            })
    }

    /// Map from locally bound name to the import that bound it.
    pub fn import_map(&self) -> BTreeMap<&str, &UseImport> {
        let mut map = BTreeMap::new();
        for u in &self.uses {
            map.insert(u.alias.as_str(), u);
        }
        map
    }

    /// Every reference to another workspace crate (`nowlab_*`), resolved
    /// from both `use` imports and inline paths (`nowlab_x::y`), outside
    /// `#[cfg(test)]` code. Returns `(crate_name, line)` pairs in source
    /// order.
    pub fn workspace_crate_refs(&self) -> Vec<(&str, u32)> {
        let mut refs: Vec<(&str, u32)> = Vec::new();
        for u in &self.uses {
            if u.in_test {
                continue;
            }
            if let Some(first) = u.path.first() {
                if first.starts_with("nowlab_") {
                    refs.push((first.as_str(), u.line));
                }
            }
        }
        let use_spans = self.use_spans();
        for (i, t) in self.toks.iter().enumerate() {
            if t.kind != TokKind::Ident
                || !t.text.starts_with("nowlab_")
                || self.in_test(i)
                || use_spans.iter().any(|r| r.contains(&i))
            {
                continue;
            }
            // Only path roots count (`nowlab_x::…`), so a stray identifier
            // that merely shares the prefix is not a crate reference.
            if self.toks.get(i + 1).map(|t| t.text.as_str()) == Some(":")
                && self.toks.get(i + 2).map(|t| t.text.as_str()) == Some(":")
            {
                refs.push((t.text.as_str(), t.line));
            }
        }
        refs.sort_by_key(|&(_, line)| line);
        refs
    }

    fn use_spans(&self) -> Vec<Range<usize>> {
        // Reconstruct conservative spans for use statements: from each
        // `use` keyword to the next `;`.
        let mut spans = Vec::new();
        let mut i = 0;
        while i < self.toks.len() {
            if self.toks[i].text == "use" && self.toks[i].kind == TokKind::Ident {
                let mut j = i;
                while j < self.toks.len() && self.toks[j].text != ";" {
                    j += 1;
                }
                spans.push(i..j + 1);
                i = j + 1;
            } else {
                i += 1;
            }
        }
        spans
    }
}

struct Parser<'a> {
    model: &'a mut FileModel,
    in_test: bool,
    mod_path: Vec<String>,
}

impl Parser<'_> {
    /// Walks tokens in `[from, to)`, recording items. Recurses into inline
    /// modules, impl blocks, and fn bodies (for nested consts/fns).
    fn walk(&mut self, from: usize, to: usize) {
        let mut i = from;
        let mut pending_test = false;
        while i < to {
            let text = self.model.toks[i].text.clone();
            let kind = self.model.toks[i].kind;
            // Outer attribute: scan for cfg(test); inner attributes (`#![…]`)
            // are skipped without affecting the pending flag.
            if text == "#" {
                let inner = self.tok_text(i + 1) == Some("!");
                let open = if inner { i + 2 } else { i + 1 };
                if self.tok_text(open) == Some("[") {
                    let close = self.match_delim(open, "[", "]", to);
                    if !inner && self.is_cfg_test(open, close) {
                        pending_test = true;
                    }
                    i = close + 1;
                    continue;
                }
            }
            if kind == TokKind::Ident {
                match text.as_str() {
                    "mod" if self.is_mod_item(i) => {
                        i = self.parse_mod(i, to, pending_test);
                        pending_test = false;
                        continue;
                    }
                    "use" => {
                        i = self.parse_use(i, to, pending_test);
                        pending_test = false;
                        continue;
                    }
                    "const" | "static" if self.is_const_item(i) => {
                        i = self.parse_const(i, to, pending_test);
                        pending_test = false;
                        continue;
                    }
                    "fn" if self.is_fn_item(i) => {
                        i = self.parse_fn(i, to, pending_test);
                        pending_test = false;
                        continue;
                    }
                    "impl" if !self.prev_is_path_or_field(i) => {
                        i = self.parse_impl(i, to, pending_test);
                        pending_test = false;
                        continue;
                    }
                    "struct" | "enum" | "trait" | "union" | "type"
                        if !self.prev_is_path_or_field(i) =>
                    {
                        i = self.skip_item(i, to, pending_test);
                        pending_test = false;
                        continue;
                    }
                    _ => {}
                }
            }
            // Any other token: if it opens a brace belonging to an item we
            // did not recognize, just step over it token by token — the
            // walk is resilient to anything the grammar above missed.
            i += 1;
            if !matches!(text.as_str(), "#") {
                pending_test = pending_test
                    && matches!(
                        text.as_str(),
                        "pub"
                            | "("
                            | ")"
                            | "crate"
                            | "super"
                            | "in"
                            | "unsafe"
                            | "async"
                            | "extern"
                    );
            }
        }
    }

    fn tok_text(&self, i: usize) -> Option<&str> {
        self.model.toks.get(i).map(|t| t.text.as_str())
    }

    fn is_cfg_test(&self, open: usize, close: usize) -> bool {
        // `#[cfg(test)]` exactly: cfg ( test )
        self.tok_text(open + 1) == Some("cfg")
            && self.tok_text(open + 2) == Some("(")
            && self.tok_text(open + 3) == Some("test")
            && self.tok_text(open + 4) == Some(")")
            && open + 5 == close
    }

    fn is_mod_item(&self, i: usize) -> bool {
        // `mod name {` or `mod name ;` — not a path segment like `self::mod`
        // (not valid Rust anyway) or a raw-ident false positive.
        matches!(
            (self.tok_kind(i + 1), self.tok_text(i + 2)),
            (Some(TokKind::Ident), Some("{") | Some(";"))
        ) && !self.prev_is_path_or_field(i)
    }

    fn is_const_item(&self, i: usize) -> bool {
        // `const NAME :` / `static NAME :` / `static mut NAME :` /
        // `const fn` is handled by the fn grammar, `*const T` and
        // `&'static str` must not match.
        if self.prev_is_path_or_field(i) || self.tok_text(i.wrapping_sub(1)) == Some("*") {
            return false;
        }
        if self.tok_text(i) == Some("static") && self.tok_text(i + 1) == Some("mut") {
            return self.tok_kind(i + 2) == Some(TokKind::Ident)
                && self.tok_text(i + 3) == Some(":");
        }
        self.tok_kind(i + 1) == Some(TokKind::Ident) && self.tok_text(i + 2) == Some(":")
    }

    fn is_fn_item(&self, i: usize) -> bool {
        // `fn name` — not a fn-pointer type `fn(u32)` and not `Fn`-trait
        // sugar (different ident).
        self.tok_kind(i + 1) == Some(TokKind::Ident) && !self.prev_is_path_or_field(i)
    }

    fn tok_kind(&self, i: usize) -> Option<TokKind> {
        self.model.toks.get(i).map(|t| t.kind)
    }

    fn prev_is_path_or_field(&self, i: usize) -> bool {
        i > 0 && matches!(self.tok_text(i - 1), Some(":") | Some("."))
    }

    fn parse_mod(&mut self, i: usize, to: usize, test: bool) -> usize {
        let name = self.model.toks[i + 1].text.clone();
        let line = self.model.toks[i].line;
        let inline = self.tok_text(i + 2) == Some("{");
        self.model.mods.push(ModDecl {
            name: name.clone(),
            line,
            inline,
            parent: self.mod_path.clone(),
        });
        if !inline {
            return i + 3; // past `;`
        }
        let close = self.match_delim(i + 2, "{", "}", to);
        let was_test = self.in_test;
        if test {
            self.model.test_ranges.push(i..close + 1);
            self.in_test = true;
        }
        self.mod_path.push(name);
        self.walk(i + 3, close);
        self.mod_path.pop();
        self.in_test = was_test;
        close + 1
    }

    fn parse_use(&mut self, i: usize, to: usize, test: bool) -> usize {
        let line = self.model.toks[i].line;
        let mut j = i + 1;
        while j < to && self.model.toks[j].text != ";" {
            j += 1;
        }
        let in_test = self.in_test || test;
        if test {
            self.model.test_ranges.push(i..j + 1);
        }
        let mut imports = Vec::new();
        parse_use_tree(&self.model.toks[i + 1..j], &[], &mut imports);
        for (path, alias) in imports {
            self.model.uses.push(UseImport {
                path,
                alias,
                line,
                in_test,
            });
        }
        j + 1
    }

    fn parse_const(&mut self, i: usize, to: usize, test: bool) -> usize {
        let name_idx = if self.tok_text(i + 1) == Some("mut") {
            i + 2
        } else {
            i + 1
        };
        let name = self.model.toks[name_idx].text.clone();
        let line = self.model.toks[i].line;
        // The item runs to the terminating `;` at bracket depth 0 (array
        // types and initializer expressions may contain nested brackets).
        let mut depth = 0i32;
        let mut j = name_idx + 1;
        while j < to {
            match self.model.toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if test {
            self.model.test_ranges.push(i..j + 1);
        }
        self.model.consts.push(ConstItem {
            name,
            line,
            range: i..j + 1,
        });
        j + 1
    }

    fn parse_fn(&mut self, i: usize, to: usize, test: bool) -> usize {
        let name = self.model.toks[i + 1].text.clone();
        let line = self.model.toks[i].line;
        // Qualifiers sit immediately before `fn`: pub / pub(...) / const /
        // async / unsafe / extern "abi".
        let mut is_pub = false;
        let mut is_async = false;
        let mut k = i;
        while k > 0 {
            match self.tok_text(k - 1) {
                Some("async") => {
                    is_async = true;
                    k -= 1;
                }
                Some("const") | Some("unsafe") | Some("extern") => k -= 1,
                Some("pub") => {
                    is_pub = true;
                    k -= 1;
                }
                Some(")") => {
                    // `pub(crate)` / `pub(in path)`: restricted visibility —
                    // walk back over the group; is_pub stays false.
                    let mut depth = 0;
                    let mut m = k - 1;
                    loop {
                        match self.tok_text(m) {
                            Some(")") => depth += 1,
                            Some("(") => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if m == 0 {
                            break;
                        }
                        m -= 1;
                    }
                    if m > 0 && self.tok_text(m - 1) == Some("pub") {
                        k = m - 1;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        // Signature: from `fn` to the body `{` or `;` at angle/paren depth 0.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut body = None;
        while j < to {
            match self.model.toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    let close = self.match_delim(j, "{", "}", to);
                    body = Some(j..close + 1);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let sig = i..j;
        let end = body.as_ref().map(|b| b.end).unwrap_or(j + 1);
        let was_test = self.in_test;
        if test {
            self.model.test_ranges.push(k.min(i)..end);
            self.in_test = true;
        }
        self.model.fns.push(FnItem {
            name,
            line,
            is_pub,
            is_async,
            sig,
            body: body.clone(),
            in_test: self.in_test,
        });
        if let Some(b) = body {
            // Recurse for nested consts / fns / uses inside the body.
            self.walk(b.start + 1, b.end - 1);
        }
        self.in_test = was_test;
        end
    }

    /// Consumes a struct/enum/trait/union/type item without modeling it,
    /// so a `#[cfg(test)]` attribute on one still produces a test range.
    fn skip_item(&mut self, i: usize, to: usize, test: bool) -> usize {
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < to {
            match self.model.toks[j].text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" => depth -= 1,
                ">" => depth = (depth - 1).max(0),
                "{" if depth <= 0 => {
                    j = self.match_delim(j, "{", "}", to);
                    break;
                }
                ";" if depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if test {
            self.model.test_ranges.push(i..j + 1);
        }
        j + 1
    }

    fn parse_impl(&mut self, i: usize, to: usize, test: bool) -> usize {
        let line = self.model.toks[i].line;
        // Header: to the `{` at depth 0. Self type: the last identifier
        // before the `{` that follows a `for` if present, else the first
        // non-generic identifier after `impl`.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut after_for: Option<String> = None;
        let mut first: Option<String> = None;
        let mut saw_for = false;
        while j < to {
            let t = &self.model.toks[j];
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "<" => depth += 1,
                ">" => depth = (depth - 1).max(0),
                "{" if depth <= 0 => break,
                "for" if depth <= 0 => saw_for = true,
                "where" if depth <= 0 => {}
                _ => {
                    if t.kind == TokKind::Ident && depth <= 0 {
                        // The self type is the last path segment before the
                        // body (or before `for` when there is a trait).
                        if saw_for {
                            after_for = Some(t.text.clone());
                        } else {
                            first = Some(t.text.clone());
                        }
                    }
                }
            }
            j += 1;
        }
        if j >= to {
            return i + 1;
        }
        let close = self.match_delim(j, "{", "}", to);
        let was_test = self.in_test;
        if test {
            self.model.test_ranges.push(i..close + 1);
            self.in_test = true;
        }
        self.model.impls.push(ImplDecl {
            self_ty: after_for.or(first).unwrap_or_default(),
            line,
            body: j..close + 1,
        });
        self.walk(j + 1, close);
        self.in_test = was_test;
        close + 1
    }

    fn match_delim(&self, open: usize, l: &str, r: &str, to: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < to {
            let t = &self.model.toks[i].text;
            if t == l {
                depth += 1;
            } else if t == r {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        to.saturating_sub(1)
    }
}

/// Parses the token slice of a use tree (everything between `use` and `;`)
/// into flat `(path, alias)` imports.
fn parse_use_tree(toks: &[Tok], prefix: &[String], out: &mut Vec<(Vec<String>, String)>) {
    let mut segs: Vec<String> = Vec::new();
    let mut i = 0;
    let flush = |segs: &mut Vec<String>,
                 alias: Option<String>,
                 prefix: &[String],
                 out: &mut Vec<(Vec<String>, String)>| {
        if segs.is_empty() {
            return;
        }
        let mut path: Vec<String> = prefix.to_vec();
        path.extend(segs.iter().cloned());
        // `self` at the end of a group import refers to the group prefix.
        if path.last().map(String::as_str) == Some("self") {
            path.pop();
        }
        let alias = alias.unwrap_or_else(|| path.last().cloned().unwrap_or_default());
        out.push((path, alias));
        segs.clear();
    };
    while i < toks.len() {
        match toks[i].text.as_str() {
            "pub" | ":" => i += 1,
            "{" => {
                // Group: split by top-level commas, recurse per element.
                let mut depth = 1;
                let start = i + 1;
                let mut j = start;
                let mut elem_start = start;
                let mut full_prefix: Vec<String> = prefix.to_vec();
                full_prefix.extend(segs.iter().cloned());
                while j < toks.len() && depth > 0 {
                    match toks[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                if elem_start < j {
                                    parse_use_tree(&toks[elem_start..j], &full_prefix, out);
                                }
                                break;
                            }
                        }
                        "," if depth == 1 => {
                            if elem_start < j {
                                parse_use_tree(&toks[elem_start..j], &full_prefix, out);
                            }
                            elem_start = j + 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                segs.clear();
                i = j + 1;
            }
            "*" => {
                segs.push("*".to_string());
                flush(&mut segs, None, prefix, out);
                i += 1;
            }
            "as" => {
                let alias = toks.get(i + 1).map(|t| t.text.clone());
                flush(&mut segs, alias, prefix, out);
                i += 2;
            }
            "," => {
                flush(&mut segs, None, prefix, out);
                i += 1;
            }
            _ => {
                if toks[i].kind == TokKind::Ident {
                    segs.push(toks[i].text.clone());
                }
                i += 1;
            }
        }
    }
    flush(&mut segs, None, prefix, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_use_trees_flat_nested_renamed_and_glob() {
        let m = FileModel::parse(
            "use nowlab_sim::SimDelta;\n\
             use std::collections::{BTreeMap, btree_map::Entry as E};\n\
             pub use nowlab_am::{Payload, RunAbort};\n\
             use nowlab_trace::*;\n",
        );
        let paths: Vec<String> = m.uses.iter().map(|u| u.path.join("::")).collect();
        assert_eq!(
            paths,
            vec![
                "nowlab_sim::SimDelta",
                "std::collections::BTreeMap",
                "std::collections::btree_map::Entry",
                "nowlab_am::Payload",
                "nowlab_am::RunAbort",
                "nowlab_trace::*",
            ]
        );
        let aliases: Vec<&str> = m.uses.iter().map(|u| u.alias.as_str()).collect();
        assert_eq!(
            aliases,
            vec!["SimDelta", "BTreeMap", "E", "Payload", "RunAbort", "*"]
        );
        let map = m.import_map();
        assert_eq!(
            map["E"].path.join("::"),
            "std::collections::btree_map::Entry"
        );
    }

    #[test]
    fn group_self_import_binds_the_prefix() {
        let m = FileModel::parse("use nowlab_am::{self, Port};\n");
        assert_eq!(m.uses[0].path, vec!["nowlab_am"]);
        assert_eq!(m.uses[0].alias, "nowlab_am");
        assert_eq!(m.uses[1].path, vec!["nowlab_am", "Port"]);
    }

    #[test]
    fn records_mods_fns_consts_impls() {
        let src = "\
mod outer {
    pub const LIMIT: u64 = 8;
    pub async fn go(x: u32) -> u32 { x }
}
mod decl;
struct S { a: u32 }
impl S {
    pub fn method(&self) -> u32 { self.a }
    fn private(&self) {}
}
impl Default for S {
    fn default() -> S { S { a: 0 } }
}
static NAMES: &[&str] = &[\"a\"];
const fn k() -> u32 { 3 }
";
        let m = FileModel::parse(src);
        let mods: Vec<(&str, bool)> = m.mods.iter().map(|d| (d.name.as_str(), d.inline)).collect();
        assert_eq!(mods, vec![("outer", true), ("decl", false)]);
        let fns: Vec<(&str, bool, bool)> = m
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_pub, f.is_async))
            .collect();
        assert_eq!(
            fns,
            vec![
                ("go", true, true),
                ("method", true, false),
                ("private", false, false),
                ("default", false, false),
                ("k", false, false),
            ]
        );
        let consts: Vec<&str> = m.consts.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(consts, vec!["LIMIT", "NAMES"]);
        let impls: Vec<&str> = m.impls.iter().map(|d| d.self_ty.as_str()).collect();
        assert_eq!(impls, vec!["S", "S"]);
    }

    #[test]
    fn cfg_test_ranges_cover_mods_and_fns() {
        let src = "\
fn live() { let x = 1; }
#[cfg(test)]
mod tests {
    use nowlab_sim::Sim;
    #[test]
    fn t() {}
}
#[cfg(test)]
fn helper() {}
fn also_live() {}
";
        let m = FileModel::parse(src);
        // The use inside the test mod is marked.
        assert!(m.uses[0].in_test);
        let t = m.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.in_test);
        let h = m.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(h.in_test);
        let live = m.fns.iter().find(|f| f.name == "also_live").unwrap();
        assert!(!live.in_test);
        // Crate refs skip test code entirely.
        assert!(m.workspace_crate_refs().is_empty());
    }

    #[test]
    fn const_ranges_exempt_their_literals() {
        let src = "const POLL: SimDelta = SimDelta::from_micros_int(100);\n\
                   fn f(s: &Sim) { s.delay(SimDelta::from_nanos(5)); }\n";
        let m = FileModel::parse(src);
        let hundred = m.toks.iter().position(|t| t.text == "100").unwrap();
        let five = m.toks.iter().position(|t| t.text == "5").unwrap();
        assert!(m.in_const(hundred));
        assert!(!m.in_const(five));
    }

    #[test]
    fn const_inside_fn_body_is_recognized() {
        let m = FileModel::parse("fn f() { const MASK: u64 = 0xff; let y = MASK; }");
        assert_eq!(m.consts.len(), 1);
        assert_eq!(m.consts[0].name, "MASK");
    }

    #[test]
    fn raw_pointers_and_static_lifetimes_are_not_const_items() {
        let m = FileModel::parse(
            "type P = *const u8;\nfn f(s: &'static str, p: *const u32) -> &'static str { s }",
        );
        assert!(m.consts.is_empty(), "{:?}", m.consts);
    }

    #[test]
    fn workspace_crate_refs_resolve_uses_and_inline_paths() {
        let src = "\
use nowlab_splitc::{Ctx, GlobalPtr};
fn f() {
    let p = nowlab_am::Payload::words(4);
    let nowlab_fakevar = 3; // not a path root
    let _ = nowlab_fakevar;
}
";
        let m = FileModel::parse(src);
        let refs: Vec<&str> = m.workspace_crate_refs().iter().map(|&(n, _)| n).collect();
        assert_eq!(refs, vec!["nowlab_splitc", "nowlab_splitc", "nowlab_am"]);
    }

    #[test]
    fn enclosing_fn_finds_the_innermost_body() {
        let m = FileModel::parse("fn outer() { fn inner() { let marker = 1; } }");
        let idx = m.toks.iter().position(|t| t.text == "marker").unwrap();
        assert_eq!(m.enclosing_fn(idx).unwrap().name, "inner");
    }
}
