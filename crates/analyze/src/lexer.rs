//! A minimal Rust token scanner.
//!
//! The container this workspace builds in is fully offline (no crates.io),
//! so the analyzer cannot use `syn`; the lints it enforces only need a
//! token stream with comments and string/char literals stripped, which a
//! few hundred lines of hand-rolled lexing provide. The scanner understands
//! line and nested block comments, plain/byte/raw string literals, char
//! literals vs. lifetimes, identifiers, and integer literals (with radix
//! prefixes, `_` separators, and type suffixes); everything else is
//! emitted as single-character punctuation tokens.

/// What kind of token was scanned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (value available via [`Tok::int_value`]).
    Int,
    /// Float literal (`2.9`, `1.5e-3`, `0.0f64`), kept as one token so the
    /// float-determinism lints can recognize literal accumulator seeds.
    Float,
    /// A single punctuation character.
    Punct,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token text. For [`TokKind::Punct`] this is one character.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Token class.
    pub kind: TokKind,
}

impl Tok {
    /// Numeric value of an integer literal, tolerating `_` separators,
    /// `0x`/`0o`/`0b` radix prefixes, and type suffixes (`4096u32`).
    /// Returns `None` for non-integer tokens or overflow.
    pub fn int_value(&self) -> Option<u64> {
        if self.kind != TokKind::Int {
            return None;
        }
        let clean: String = self.text.chars().filter(|&c| c != '_').collect();
        let (radix, digits) = match clean.as_bytes() {
            [b'0', b'x' | b'X', rest @ ..] => (16, rest),
            [b'0', b'o' | b'O', rest @ ..] => (8, rest),
            [b'0', b'b' | b'B', rest @ ..] => (2, rest),
            _ => (10, clean.as_bytes()),
        };
        // Strip a type suffix: digits end at the first char that is not a
        // digit of the radix.
        let mut value: u64 = 0;
        let mut any = false;
        for &b in digits {
            let Some(d) = (b as char).to_digit(radix) else {
                break;
            };
            value = value
                .checked_mul(u64::from(radix))?
                .checked_add(u64::from(d))?;
            any = true;
        }
        any.then_some(value)
    }
}

/// Scans `source` into a token stream with comments and literals stripped.
pub fn lex(source: &str) -> Vec<Tok> {
    let b: Vec<char> = source.chars().collect();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let bump_lines = |s: &[char], from: usize, to: usize, line: &mut u32| {
        *line += s[from..to].iter().filter(|&&c| c == '\n').count() as u32;
    };

    while i < n {
        let c = b[i];
        // Newlines and whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Nested block comment.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            bump_lines(&b, start, i, &mut line);
            continue;
        }
        // Raw (and raw byte) strings: r"..." / r#"..."# / br#"..."#.
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let start = i;
            if c == 'b' {
                i += 1;
            }
            i += 1; // past 'r'
            let mut hashes = 0;
            while i < n && b[i] == '#' {
                hashes += 1;
                i += 1;
            }
            i += 1; // past opening quote
            loop {
                if i >= n {
                    break;
                }
                if b[i] == '"' {
                    let mut k = 0;
                    while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                        k += 1;
                    }
                    if k == hashes {
                        i += 1 + hashes;
                        break;
                    }
                }
                i += 1;
            }
            bump_lines(&b, start, i.min(n), &mut line);
            continue;
        }
        // Byte-char literal: b'H', b'\n', b'\''. Without this branch the
        // leading `b` would leak into the token stream as an identifier.
        if c == 'b' && i + 1 < n && b[i + 1] == '\'' {
            i += 2;
            while i < n && b[i] != '\'' {
                if b[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i = (i + 1).min(n);
            continue;
        }
        // Plain / byte string literal.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start = i;
            if c == 'b' {
                i += 1;
            }
            i += 1;
            while i < n && b[i] != '"' {
                if b[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i = (i + 1).min(n);
            bump_lines(&b, start, i, &mut line);
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' {
            let is_char = i + 1 < n
                && (b[i + 1] == '\\' || (i + 2 < n && b[i + 2] == '\'' && b[i + 1] != '\''));
            if is_char {
                i += 1;
                while i < n && b[i] != '\'' {
                    if b[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(n);
            } else {
                // Lifetime: consume the quote; the identifier lexes next.
                i += 1;
            }
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(Tok {
                text: b[start..i].iter().collect(),
                line,
                kind: TokKind::Ident,
            });
            continue;
        }
        // Numeric literal. Integers keep radix prefixes and type suffixes;
        // a dot followed by a digit extends the token into a float (so
        // `1..2` and `1.max(2)` keep their dots as punctuation), as does a
        // signed exponent (`1.5e-3`).
        if c.is_ascii_digit() {
            let start = i;
            let radix_prefixed =
                c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'X' | 'o' | 'O' | 'b' | 'B');
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            let mut kind = TokKind::Int;
            if !radix_prefixed {
                if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    kind = TokKind::Float;
                }
                if i + 1 < n
                    && matches!(b[i - 1], 'e' | 'E')
                    && matches!(b[i], '+' | '-')
                    && b[i + 1].is_ascii_digit()
                {
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    kind = TokKind::Float;
                }
            }
            toks.push(Tok {
                text: b[start..i].iter().collect(),
                line,
                kind,
            });
            continue;
        }
        // Single punctuation character.
        toks.push(Tok {
            text: c.to_string(),
            line,
            kind: TokKind::Punct,
        });
        i += 1;
    }
    toks
}

/// True if position `i` starts a raw-string literal (`r"`, `r#`, `br"`,
/// `br#`), as opposed to an identifier that merely begins with `r`/`b`.
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= b.len() || b[j] != 'r' {
            return false;
        }
    }
    if b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let toks =
            texts("// HashMap in a comment\n/* Instant /* nested */ */\nlet s = \"HashMap\"; foo");
        assert_eq!(toks, vec!["let", "s", "=", ";", "foo"]);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let toks = texts("fn f<'a>(x: &'a str) { let r = r#\"Instant \"quoted\"\"#; }");
        assert!(toks.contains(&"a".to_string()));
        assert!(!toks.contains(&"Instant".to_string()));
    }

    #[test]
    fn char_literals_are_stripped() {
        let toks = texts("let c = 'x'; let d = '\\n'; let e = '\\'';");
        assert!(!toks.contains(&"x".to_string()));
        assert!(!toks.contains(&"n".to_string()));
    }

    #[test]
    fn int_values_parse_radixes_and_suffixes() {
        let toks = lex("4096 0x1000 4_096u32 0b1000 8usize 2.9");
        let vals: Vec<Option<u64>> = toks.iter().map(Tok::int_value).collect();
        assert_eq!(vals[0], Some(4096));
        assert_eq!(vals[1], Some(4096));
        assert_eq!(vals[2], Some(4096));
        assert_eq!(vals[3], Some(8));
        assert_eq!(vals[4], Some(8));
        // The float is one token and is not an integer.
        assert_eq!(toks[5].kind, TokKind::Float);
        assert_eq!(toks[5].text, "2.9");
        assert_eq!(vals[5], None);
    }

    #[test]
    fn float_literals_are_single_tokens() {
        let toks = lex("2.9 0.0f64 1.5e-3 2E+6 1e5");
        assert_eq!(toks[0].kind, TokKind::Float);
        assert_eq!(toks[1].kind, TokKind::Float);
        assert_eq!(toks[1].text, "0.0f64");
        assert_eq!(toks[2].kind, TokKind::Float);
        assert_eq!(toks[2].text, "1.5e-3");
        assert_eq!(toks[3].kind, TokKind::Float);
        // `1e5` has no dot or sign, so it stays a (suffixed) Int token —
        // the lints never treat it as an integer value anyway (`int_value`
        // stops at `e` only after parsing `1`).
        assert_eq!(toks[4].text, "1e5");
    }

    #[test]
    fn ranges_and_method_calls_keep_their_dots() {
        let toks = lex("for i in 1..20 { x = 3.max(i); t.0 }");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"1"));
        assert!(texts.contains(&"20"));
        assert!(texts.contains(&"3"));
        assert!(texts.contains(&"max"));
        assert!(toks.iter().all(|t| t.kind != TokKind::Float));
    }

    #[test]
    fn byte_char_literals_do_not_leak_an_ident() {
        // `b'r'` must not emit a stray `b` (or worse, hide what follows).
        let toks = texts("let x = b'r'; let y = b'\\''; from_entropy()");
        assert_eq!(
            toks,
            vec![
                "let",
                "x",
                "=",
                ";",
                "let",
                "y",
                "=",
                ";",
                "from_entropy",
                "(",
                ")"
            ]
        );
    }

    #[test]
    fn byte_and_raw_byte_strings_are_stripped() {
        let toks = texts("let a = b\"OsRng\"; let b2 = br#\"thread_rng \"q\"\"#; getrandom()");
        assert_eq!(
            toks,
            vec![
                "let",
                "a",
                "=",
                ";",
                "let",
                "b2",
                "=",
                ";",
                "getrandom",
                "(",
                ")"
            ]
        );
    }

    #[test]
    fn multi_hash_raw_strings_terminate_at_matching_hashes() {
        // The `"#` inside the r##-string must not close it early; if it did,
        // the trailing `rand` would be swallowed or garbage would leak.
        let toks = texts("let s = r##\"inner \"# quote\"##; rand()");
        assert_eq!(toks, vec!["let", "s", "=", ";", "rand", "(", ")"]);
    }

    #[test]
    fn nested_block_comments_with_tricky_delimiters() {
        assert_eq!(texts("/*/**/*/ ok"), vec!["ok"]);
        assert_eq!(texts("/* a /* b */ c */ d /* unterminated"), vec!["d"]);
    }

    #[test]
    fn lifetimes_survive_next_to_char_literals() {
        let toks = texts("fn f<'a>(p: &'a T) { let c = 'x'; let l: &'static str = s; }");
        assert!(toks.contains(&"a".to_string()));
        assert!(toks.contains(&"static".to_string()));
        assert!(
            !toks.contains(&"x".to_string()),
            "char literal leaked: {toks:?}"
        );
    }

    #[test]
    fn escaped_backslash_string_does_not_swallow_code() {
        let toks = texts(r#"let p = "\\"; thread_rng()"#);
        assert_eq!(toks, vec!["let", "p", "=", ";", "thread_rng", "(", ")"]);
    }

    #[test]
    fn lines_are_tracked_across_multiline_constructs() {
        let toks = lex("a\n/* x\ny */\nb \"s\ntr\" c");
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        let c = toks.iter().find(|t| t.text == "c").unwrap();
        assert_eq!(b.line, 4);
        assert_eq!(c.line, 5);
    }
}
