//! Determinism regression test: the property the whole static-analysis
//! pass exists to protect. Running the same application with the same
//! seed twice must produce bit-identical outcomes — virtual runtime,
//! checksum, completion, and every per-processor communication counter.

use nowlab_apps::pray::{Pray, PrayParams};
use nowlab_core::{RunSpec, SweepableApp};

#[test]
fn same_seed_twice_is_bit_identical() {
    let spec = RunSpec::new(4).with_seed(7);
    let a = Pray::new(PrayParams::small()).run(&spec);
    let b = Pray::new(PrayParams::small()).run(&spec);
    assert!(a.completed && b.completed);
    assert_eq!(a.check, b.check, "checksums diverged");
    assert_eq!(a.runtime, b.runtime, "virtual runtimes diverged");
    assert_eq!(a.stats, b.stats, "communication counters diverged");
}

#[test]
fn different_seeds_actually_change_the_run() {
    // Guards against the vacuous version of the test above (a run that
    // ignores its seed would trivially be "deterministic").
    let a = Pray::new(PrayParams::small()).run(&RunSpec::new(4).with_seed(7));
    let b = Pray::new(PrayParams::small()).run(&RunSpec::new(4).with_seed(8));
    assert_ne!(a.check, b.check, "seed does not reach the workload");
}
