//! Fixture: raw time literals at timer call sites.

/// Named constants are the sanctioned spelling (and TIM001-exempt).
const POLL: SimDelta = SimDelta::from_micros_int(5);

pub async fn spin(sim: &Sim) {
    sim.delay(SimDelta::from_micros(2.0)).await; // TIM001: unnamed constant
    sim.delay(POLL).await; // clean: named constant
}

pub fn arm(sim: &Sim) {
    sim.schedule(SimTime::from_nanos(500), || {}); // TIM001
}

pub async fn computed(sim: &Sim, us: f64) {
    sim.delay(SimDelta::from_micros(us)).await; // clean: not a raw literal
}
