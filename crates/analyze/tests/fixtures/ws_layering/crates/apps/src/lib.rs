//! Fixture crate root: one source-level layering violation.
#![forbid(unsafe_code)]

use nowlab_sim::SimDelta; // LAY003: apps must use the nowlab_splitc re-export

pub fn wait(d: SimDelta) -> SimDelta {
    d
}
