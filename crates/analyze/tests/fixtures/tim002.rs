//! Fixture: different time units combined arithmetically.

pub fn skew(a: SimDelta, b: SimDelta) -> u64 {
    a.as_nanos() + b.as_micros() * 1_000 // TIM002: ns + µs
}

pub fn before(t: SimTime, deadline: SimDelta) -> bool {
    (t.as_nanos() as f64) < deadline.as_secs_f64() // TIM002: ns vs s
}

pub fn same_unit(a: SimDelta, b: SimDelta) -> u64 {
    a.as_nanos() + b.as_nanos() // clean: one unit
}

pub fn separate_args(a: SimDelta, b: SimDelta) -> (u64, f64) {
    (a.as_nanos(), b.as_micros_f64()) // clean: independent values
}
