//! Fixture: exactly one SAFE001 (crate root without forbid(unsafe_code)).
pub fn entry() {}
