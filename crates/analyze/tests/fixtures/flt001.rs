//! Fixture: order-dependent float reductions in sim-visible code.

pub fn mean(xs: &[f64]) -> f64 {
    let total = xs.iter().copied().sum::<f64>(); // FLT001: float sum
    total / xs.len() as f64
}

pub fn total(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x) // FLT001: float fold(+)
}

pub fn count(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>() // clean: integer sum
}
