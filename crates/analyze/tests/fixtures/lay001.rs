//! Fixture: metrics-layer code reaching outside its declared lower layers
//! ({sim, trace}). Scanned with `Layer::Metrics`.

use nowlab_am::Port; // LAY001: am is not a declared lower layer of metrics
use nowlab_splitc::Ctx; // LAY001: neither is splitc

pub fn observe(ctx: &Ctx, port: &Port) -> u64 {
    let _ = (ctx, port);
    0
}
