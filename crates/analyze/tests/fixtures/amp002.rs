//! Fixture: exactly one AMP002 (re-hardcoded fragment size in the AM layer).
fn fragment(len: u32) -> u32 {
    len.min(4096)
}
