//! Fixture: exactly one AMP001 (handler issuing a request).
fn wire(cluster: &Cluster) {
    cluster.register_handler(|ctx| {
        ctx.port.request(0, ECHO);
        Reply::ack()
    });
}
