//! Fixture: exactly one DET001 (hash collection in sim-visible state).
use std::collections::BTreeMap;

struct State {
    routes: std::collections::HashMap<u32, u32>,
    ordered: BTreeMap<u32, u32>,
}
