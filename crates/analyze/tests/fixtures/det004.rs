//! Fixture: exactly one DET004 (wall-clock value flowing toward SimTime).
fn to_virtual(a: Stamp, b: Stamp) -> u64 {
    a.duration_since(b).as_nanos() as u64
}
