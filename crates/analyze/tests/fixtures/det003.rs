//! Fixture: exactly one DET003 (OS entropy outside crates/rng).
fn roll() -> u64 {
    let mut r = thread_rng();
    r.next()
}
