//! Fixture: a lock primitive below the run boundary — the orchestration
//! layer (crates/core::sweep, crates/bench, src/bin) is the only place
//! threads and locks may live.

fn f() -> u32 {
    let m = std::sync::Mutex::new(7u32);
    let v = *m.lock().unwrap();
    v
}
