//! Fixture: exactly one DET002 (wall clock in sim-visible code).
fn stamp() -> u64 {
    let _t = std::time::Instant::now();
    0
}
