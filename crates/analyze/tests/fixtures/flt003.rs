//! Fixture: float accumulation inside event-loop closures.

pub fn register(bus: &Bus, st: &mut Stats) {
    bus.register_handler(|msg| {
        st.total_us += msg.delta_us as f64; // FLT003: order-dependent
    });
    bus.register_handler(|msg| {
        let _ = msg;
        st.weight += 0.5; // FLT003: float literal accumulation
    });
    bus.register_handler(|msg| {
        st.total_ns += msg.delta_ns; // clean: integer accumulation
    });
}
