//! Fixture: exactly one AMP003 (public API exposing a hash collection).
pub fn routing_table() -> std::collections::HashMap<u32, u32> {
    todo!()
}
