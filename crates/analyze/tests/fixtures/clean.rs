//! Fixture: a compliant crate root — zero diagnostics under every lint.
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};

pub const GAM_WINDOW: u32 = 8;
pub const GAM_FRAG_BYTES: u32 = 4096;

pub fn routes() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}

fn seen() -> BTreeSet<u64> {
    // HashMap and Instant in comments or "HashMap strings" never count.
    BTreeSet::new()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn host_side_tests_may_use_anything() {
        let _m: HashMap<u32, u32> = HashMap::new();
        let _t = Instant::now();
    }
}
