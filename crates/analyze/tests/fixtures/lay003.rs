//! Fixture: app code reaching below the splitc runtime surface. Scanned
//! with `Layer::Apps`.

use nowlab_sim::SimDelta; // LAY003: apps must use the nowlab_splitc re-export

pub fn payload_len() -> usize {
    nowlab_am::Payload::words(4).len() // LAY003: inline path below splitc
}

pub fn pick_bcast(p: usize) -> String {
    // LAY003: bypassing the splitc re-export of the collectives vocabulary.
    let sel = nowlab_coll::Selector::new(Default::default(), p, Default::default());
    format!("{:?}", sel.broadcast(1024))
}

pub fn wait(d: SimDelta) -> SimDelta {
    d
}
