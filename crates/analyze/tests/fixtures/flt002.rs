//! Fixture: partial float comparisons in sim-visible code.

pub fn sort_speedups(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // FLT002: NaN-partial order
}

pub fn best(v: &[f64]) -> Option<f64> {
    v.iter().copied().max_by(|a, b| a.partial_cmp(b).unwrap()) // FLT002
}

pub fn sort_total(v: &mut [f64]) {
    v.sort_by(f64::total_cmp); // clean: total order over every bit pattern
}
