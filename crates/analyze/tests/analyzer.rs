//! Integration tests: every lint fires on its fixture (the v2 families
//! twice, pinning two seeded true positives each), the clean fixture stays
//! silent, the `ws_layering` mini-workspace surfaces its manifest- and
//! source-level violations end to end, and the workspace itself passes the
//! analyzer with the checked-in allowlist.

use std::path::{Path, PathBuf};

use nowlab_analyze::allowlist::Allowlist;
use nowlab_analyze::cache::Cache;
use nowlab_analyze::graph::Layer;
use nowlab_analyze::{
    sarif, scan_source, scan_workspace, scan_workspace_cached, Diagnostic, Scope, Severity,
};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn fixture(name: &str) -> String {
    let path = fixture_path(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Scope used by most fixtures: sim-visible AM-layer code that is also a
/// crate root, so every lint family is armed at once and the fixtures
/// prove each trips exactly its own lint. `Layer::Other` keeps the `LAY`
/// family quiet; the layering fixtures opt in via [`layered`].
fn armed() -> Scope {
    Scope {
        sim_visible: true,
        am_layer: true,
        entropy_exempt: false,
        crate_root: true,
        parallel_ok: false,
        layer: Layer::Other,
    }
}

/// A sim-visible scope for a specific architectural layer (the `LAY`
/// fixtures).
fn layered(layer: Layer) -> Scope {
    Scope {
        sim_visible: true,
        layer,
        ..Scope::default()
    }
}

fn codes(name: &str, scope: &Scope) -> Vec<&'static str> {
    scan_source(name, &fixture(name), scope)
        .into_iter()
        .map(|d| d.code)
        .collect()
}

#[test]
fn each_fixture_trips_its_lint_exactly_once() {
    // SAFE001 would fire on every root fixture lacking the attribute, so
    // the per-lint fixtures use a non-root scope...
    let mut scope = armed();
    scope.crate_root = false;
    assert_eq!(codes("det001.rs", &scope), vec!["DET001"]);
    assert_eq!(codes("det002.rs", &scope), vec!["DET002"]);
    assert_eq!(codes("det003.rs", &scope), vec!["DET003"]);
    assert_eq!(codes("det004.rs", &scope), vec!["DET004"]);
    assert_eq!(codes("amp001.rs", &scope), vec!["AMP001"]);
    assert_eq!(codes("amp002.rs", &scope), vec!["AMP002"]);
    assert_eq!(codes("amp003.rs", &scope), vec!["AMP003"]);
    assert_eq!(codes("par001.rs", &scope), vec!["PAR001"]);
    // ...and the SAFE001 fixture alone runs as a crate root.
    assert_eq!(codes("safe001.rs", &armed()), vec!["SAFE001"]);
}

/// Each v2 family fixture pins two seeded true positives (plus clean
/// counter-examples that must stay silent).
#[test]
fn each_family_fixture_pins_two_true_positives() {
    let mut scope = armed();
    scope.crate_root = false;
    assert_eq!(
        codes("lay001.rs", &layered(Layer::Metrics)),
        vec!["LAY001", "LAY001"]
    );
    // lay003 pins three: sim, am, and the coll-bypass import (apps must
    // take the collectives vocabulary through the splitc re-exports).
    assert_eq!(
        codes("lay003.rs", &layered(Layer::Apps)),
        vec!["LAY003", "LAY003", "LAY003"]
    );
    assert_eq!(codes("flt001.rs", &scope), vec!["FLT001", "FLT001"]);
    assert_eq!(codes("flt002.rs", &scope), vec!["FLT002", "FLT002"]);
    assert_eq!(codes("flt003.rs", &scope), vec!["FLT003", "FLT003"]);
    assert_eq!(codes("tim001.rs", &scope), vec!["TIM001", "TIM001"]);
    assert_eq!(codes("tim002.rs", &scope), vec!["TIM002", "TIM002"]);
}

#[test]
fn det004_and_tim002_are_the_only_warning_severity_lints() {
    let mut scope = armed();
    scope.crate_root = false;
    for name in [
        "det001.rs",
        "det002.rs",
        "det003.rs",
        "det004.rs",
        "amp001.rs",
        "amp002.rs",
        "amp003.rs",
        "par001.rs",
        "flt001.rs",
        "flt002.rs",
        "flt003.rs",
        "tim001.rs",
        "tim002.rs",
    ] {
        for d in scan_source(name, &fixture(name), &scope) {
            let expect = if d.code == "DET004" || d.code == "TIM002" {
                Severity::Warning
            } else {
                Severity::Error
            };
            assert_eq!(d.severity, expect, "{name}: {d}");
        }
    }
}

#[test]
fn clean_fixture_produces_zero_diagnostics() {
    let diags = scan_source("clean.rs", &fixture("clean.rs"), &armed());
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

#[test]
fn diagnostics_carry_file_and_line() {
    let mut scope = armed();
    scope.crate_root = false;
    let diags = scan_source("det002.rs", &fixture("det002.rs"), &scope);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].path, "det002.rs");
    // `Instant` sits on line 3 of the fixture (after the //! line).
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].to_string().contains("det002.rs:3"));
}

/// End to end over the `ws_layering` mini-workspace: manifest-level
/// violations (MET001 for the observer, LAY002 for apps) and the
/// source-level LAY003, all from one `scan_workspace` call.
#[test]
fn ws_layering_fixture_surfaces_manifest_and_source_violations() {
    let diags = scan_workspace(&fixture_path("ws_layering")).expect("fixture scan");
    let got: Vec<(String, &str)> = diags.iter().map(|d| (d.path.clone(), d.code)).collect();
    assert_eq!(
        got,
        vec![
            ("crates/apps/Cargo.toml".to_string(), "LAY002"),
            ("crates/apps/src/lib.rs".to_string(), "LAY003"),
            ("crates/metrics/Cargo.toml".to_string(), "MET001"),
            ("crates/metrics/Cargo.toml".to_string(), "MET001"),
            ("crates/predict/Cargo.toml".to_string(), "LAY002"),
        ],
        "unexpected diagnostics: {diags:?}"
    );
    // The dev-dependency stayed exempt and the violations name their deps.
    let messages: String = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(messages.contains("serde"));
    assert!(!messages.contains("serde_json"));
    // The predictor's one live violation is the splitc edge; its trace
    // and am edges are sanctioned, and its dev-dep stays exempt.
    let predict: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.path == "crates/predict/Cargo.toml")
        .collect();
    assert_eq!(predict.len(), 1);
    assert!(predict[0].message.contains("nowlab-splitc"));
    assert!(predict[0].message.contains("layer predict"));
}

/// A second scan through the same cache reuses every file's recorded
/// diagnostics (and they match the uncached scan exactly).
#[test]
fn cached_rescan_is_complete_and_identical() {
    let root = fixture_path("ws_layering");
    let mut cache = Cache::empty();
    let (first, stats1) = scan_workspace_cached(&root, &mut cache).expect("first scan");
    assert_eq!(stats1.cached, 0);
    assert!(stats1.files > 0);
    let (second, stats2) = scan_workspace_cached(&root, &mut cache).expect("second scan");
    assert_eq!(stats2.files, stats1.files);
    assert_eq!(
        stats2.cached, stats2.files,
        "all files should hit the cache"
    );
    let render = |ds: &[nowlab_analyze::Diagnostic]| -> Vec<String> {
        ds.iter().map(ToString::to_string).collect()
    };
    assert_eq!(render(&first), render(&second));
}

/// The SARIF stream carries every diagnostic with its rule and location.
#[test]
fn sarif_render_covers_every_diagnostic() {
    let diags = scan_workspace(&fixture_path("ws_layering")).expect("fixture scan");
    let sarif = sarif::render(&diags);
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    for d in &diags {
        assert!(
            sarif.contains(&format!("\"ruleId\": \"{}\"", d.code)),
            "{d}"
        );
        assert!(sarif.contains(&d.path), "{d}");
    }
}

/// The README lint table is the `--explain all` catalogue verbatim, row
/// for row, so the registry and the docs cannot drift apart.
#[test]
fn readme_lint_table_matches_the_registry() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md");
    let catalogue = nowlab_analyze::explain::render_explain("all").expect("catalogue");
    for row in catalogue.lines().skip(2) {
        assert!(
            readme.contains(row),
            "README.md lint table is missing or differs on:\n{row}"
        );
    }
}

/// The acceptance gate: the workspace as committed passes its own
/// analyzer. Reverting e.g. the `cluster.rs` BTreeMap conversion makes
/// this test (and CI's `--check` step) fail with the file and line.
#[test]
fn workspace_self_scan_is_clean_under_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = scan_workspace(&root).expect("workspace scan");
    let allowlist_text = std::fs::read_to_string(root.join("analyze.toml")).expect("analyze.toml");
    let allowlist = Allowlist::parse(&allowlist_text).expect("allowlist parses");
    let filtered = allowlist.apply(diags);
    let errors: Vec<String> = filtered
        .kept
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(ToString::to_string)
        .collect();
    assert!(
        errors.is_empty(),
        "workspace violations:\n{}",
        errors.join("\n")
    );
    assert!(
        filtered.stale.is_empty(),
        "stale allowlist entries: {:?}",
        filtered.stale
    );
}
