//! Integration tests: every lint fires on its fixture exactly once, the
//! clean fixture stays silent, and the workspace itself passes the
//! analyzer with the checked-in allowlist.

use std::path::Path;

use nowlab_analyze::allowlist::Allowlist;
use nowlab_analyze::{scan_source, scan_workspace, Scope, Severity};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Scope used by most fixtures: sim-visible AM-layer code that is also a
/// crate root, so every lint family is armed at once and the fixtures
/// prove each trips exactly its own lint.
fn armed() -> Scope {
    Scope {
        sim_visible: true,
        am_layer: true,
        entropy_exempt: false,
        crate_root: true,
        parallel_ok: false,
    }
}

fn codes(name: &str, scope: &Scope) -> Vec<&'static str> {
    scan_source(name, &fixture(name), scope)
        .into_iter()
        .map(|d| d.code)
        .collect()
}

#[test]
fn each_fixture_trips_its_lint_exactly_once() {
    // SAFE001 would fire on every root fixture lacking the attribute, so
    // the per-lint fixtures use a non-root scope...
    let mut scope = armed();
    scope.crate_root = false;
    assert_eq!(codes("det001.rs", &scope), vec!["DET001"]);
    assert_eq!(codes("det002.rs", &scope), vec!["DET002"]);
    assert_eq!(codes("det003.rs", &scope), vec!["DET003"]);
    assert_eq!(codes("det004.rs", &scope), vec!["DET004"]);
    assert_eq!(codes("amp001.rs", &scope), vec!["AMP001"]);
    assert_eq!(codes("amp002.rs", &scope), vec!["AMP002"]);
    assert_eq!(codes("amp003.rs", &scope), vec!["AMP003"]);
    assert_eq!(codes("par001.rs", &scope), vec!["PAR001"]);
    // ...and the SAFE001 fixture alone runs as a crate root.
    assert_eq!(codes("safe001.rs", &armed()), vec!["SAFE001"]);
}

#[test]
fn det004_is_the_only_warning_severity_lint() {
    let mut scope = armed();
    scope.crate_root = false;
    for name in [
        "det001.rs",
        "det002.rs",
        "det003.rs",
        "det004.rs",
        "amp001.rs",
        "amp002.rs",
        "amp003.rs",
        "par001.rs",
    ] {
        for d in scan_source(name, &fixture(name), &scope) {
            let expect = if d.code == "DET004" {
                Severity::Warning
            } else {
                Severity::Error
            };
            assert_eq!(d.severity, expect, "{name}: {d}");
        }
    }
}

#[test]
fn clean_fixture_produces_zero_diagnostics() {
    let diags = scan_source("clean.rs", &fixture("clean.rs"), &armed());
    assert!(diags.is_empty(), "unexpected: {diags:?}");
}

#[test]
fn diagnostics_carry_file_and_line() {
    let mut scope = armed();
    scope.crate_root = false;
    let diags = scan_source("det002.rs", &fixture("det002.rs"), &scope);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].path, "det002.rs");
    // `Instant` sits on line 3 of the fixture (after the //! line).
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].to_string().contains("det002.rs:3"));
}

/// The acceptance gate: the workspace as committed passes its own
/// analyzer. Reverting e.g. the `cluster.rs` BTreeMap conversion makes
/// this test (and CI's `--check` step) fail with the file and line.
#[test]
fn workspace_self_scan_is_clean_under_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = scan_workspace(&root).expect("workspace scan");
    let allowlist_text = std::fs::read_to_string(root.join("analyze.toml")).expect("analyze.toml");
    let allowlist = Allowlist::parse(&allowlist_text).expect("allowlist parses");
    let filtered = allowlist.apply(diags);
    let errors: Vec<String> = filtered
        .kept
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(ToString::to_string)
        .collect();
    assert!(
        errors.is_empty(),
        "workspace violations:\n{}",
        errors.join("\n")
    );
    assert!(
        filtered.stale.is_empty(),
        "stale allowlist entries: {:?}",
        filtered.stale
    );
}
