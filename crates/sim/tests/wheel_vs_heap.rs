//! Differential property test: the timer-wheel kernel against the
//! ordering rules of the binary-heap kernel it replaced.
//!
//! The old kernel's contract was simple: events fire in strictly
//! ascending `(time, seq)` lexicographic order, where `seq` is the
//! global registration sequence, and a cancelled timer never fires. The
//! wheel must preserve that contract bit-for-bit. This test replays
//! seeded random workloads — same-instant ties, in-run rescheduling,
//! pre-run and in-run cancellations (including same-instant ones),
//! far-future overflow timers, mid-run `halt()`, and event-limit
//! chunking that splits same-instant batches — against a reference
//! `BinaryHeap` model that implements the rules directly, and asserts
//! the firing sequences are identical.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;

use nowlab_sim::{Sim, SimDelta, SimTime, StopReason, TimerHandle};

/// Deterministic xorshift64 — no host randomness may reach a workload.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// One pre-scheduled timer plus everything its callback will do.
#[derive(Clone, Copy)]
struct Op {
    id: u32,
    time: u64,
    cancellable: bool,
    /// Cancelled before `run()` starts.
    cancel_before: bool,
    /// When fired, cancels the op at this index (which may share its
    /// instant — the case batched extraction is most likely to break).
    cancels: Option<u32>,
    /// When fired, schedules a child callback at `now + delta`.
    child: Option<(u64, u32)>,
    /// When fired, requests an orderly halt.
    halts: bool,
}

/// Child ids live in a disjoint range from initial ids.
const CHILD_BASE: u32 = 1 << 20;

fn build_ops(seed: u64, n: u32, with_halt: bool) -> Vec<Op> {
    let mut rng = XorShift(seed);
    let mut ops: Vec<Op> = Vec::with_capacity(n as usize);
    for id in 0..n {
        let time = match rng.next() % 10 {
            // Dense cluster: ties and shared buckets.
            0..=4 => 1 + rng.next() % 4_096,
            // Exact tie with an earlier op.
            5..=6 if id > 0 => ops[(rng.next() % u64::from(id)) as usize].time,
            // Bucket-boundary values.
            7 => (1 + rng.next() % 512) << 8,
            // Far future: beyond the ring horizon, lands in overflow.
            _ => 300_000 + rng.next() % 2_000_000,
        };
        let cancellable = rng.next().is_multiple_of(3);
        ops.push(Op {
            id,
            time,
            cancellable,
            cancel_before: cancellable && rng.next().is_multiple_of(4),
            cancels: if rng.next().is_multiple_of(5) {
                Some((rng.next() % u64::from(n)) as u32)
            } else {
                None
            },
            child: if id % 7 == 0 {
                Some((1 + rng.next() % 100_000, CHILD_BASE + id))
            } else {
                None
            },
            halts: false,
        });
    }
    if with_halt {
        // The halter must actually fire: make it uncancellable and not a
        // cancellation target.
        let h = (rng.next() % u64::from(n)) as usize;
        ops[h].halts = true;
        ops[h].cancellable = false;
        ops[h].cancel_before = false;
        for op in &mut ops {
            if op.cancels == Some(h as u32) {
                op.cancels = None;
            }
        }
    }
    ops
}

/// The old kernel's rules, implemented directly on a `(time, seq)`
/// min-heap with a lazy cancellation set. Ignores `halts` — it returns
/// the complete uninterrupted order.
fn reference_order(ops: &[Op]) -> Vec<u32> {
    let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
    let mut cancelled: HashSet<u64> = HashSet::new();
    for (i, op) in ops.iter().enumerate() {
        heap.push(Reverse((op.time, i as u64, op.id)));
        if op.cancellable && op.cancel_before {
            cancelled.insert(i as u64);
        }
    }
    let mut seq = ops.len() as u64;
    let mut fired = Vec::new();
    while let Some(Reverse((t, s, id))) = heap.pop() {
        if cancelled.contains(&s) {
            continue;
        }
        fired.push(id);
        if id < CHILD_BASE {
            let op = ops[id as usize];
            if let Some(tgt) = op.cancels {
                if ops[tgt as usize].cancellable {
                    // A no-op if the target already fired: its heap entry
                    // is gone, so the set insertion is never consulted —
                    // exactly `cancel_timer` returning false.
                    cancelled.insert(u64::from(tgt));
                }
            }
            if let Some((delta, cid)) = op.child {
                heap.push(Reverse((t + delta, seq, cid)));
                seq += 1;
            }
        }
    }
    fired
}

struct SimRun {
    fired: Vec<u32>,
    stops: Vec<StopReason>,
}

/// Runs `ops` on the real kernel. `event_limit` chunks the run: the sim
/// is re-run until idle, splitting same-instant batches at arbitrary
/// points and forcing the reinsertion path. Stops early (without
/// resuming) on halt.
fn sim_order(ops: &[Op], event_limit: Option<u64>) -> SimRun {
    let sim = Sim::with_capacity(ops.len() / 4);
    let ring_before = sim.scheduler_stats().ring_buckets;
    let fired: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
    let handles: Rc<RefCell<Vec<Option<TimerHandle>>>> =
        Rc::new(RefCell::new(vec![None; ops.len()]));

    for op in ops.iter().copied() {
        let fired = Rc::clone(&fired);
        let cb_handles = Rc::clone(&handles);
        let cb = move |sim: &Sim| {
            fired.borrow_mut().push(op.id);
            if let Some(tgt) = op.cancels {
                if let Some(h) = cb_handles.borrow()[tgt as usize] {
                    sim.cancel_timer(h);
                }
            }
            if let Some((delta, cid)) = op.child {
                let fired = Rc::clone(&fired);
                sim.schedule(sim.now() + SimDelta::from_nanos(delta), move |_| {
                    fired.borrow_mut().push(cid);
                });
            }
            if op.halts {
                sim.halt();
            }
        };
        let at = SimTime::from_nanos(op.time);
        if op.cancellable {
            let h = sim.schedule_cancellable(at, cb);
            handles.borrow_mut()[op.id as usize] = Some(h);
        } else {
            sim.schedule(at, cb);
        }
    }
    for (i, op) in ops.iter().enumerate() {
        if op.cancellable && op.cancel_before {
            let h = handles.borrow()[i].expect("cancellable op has a handle");
            assert!(sim.cancel_timer(h), "pre-run cancel of a pending timer");
        }
    }

    sim.set_event_limit(event_limit);
    let mut stops = Vec::new();
    loop {
        let report = sim.run();
        stops.push(report.stop_reason);
        match report.stop_reason {
            StopReason::EventLimit => continue,
            _ => break,
        }
    }
    assert_eq!(
        sim.scheduler_stats().ring_buckets,
        ring_before,
        "the ring bucket array must never grow"
    );
    let fired = fired.borrow().clone();
    SimRun { fired, stops }
}

#[test]
fn wheel_matches_heap_order_on_random_workloads() {
    for seed in [0x9E3779B97F4A7C15u64, 42, 0xDEADBEEF, 7_777_777] {
        let ops = build_ops(seed, 500, false);
        let expect = reference_order(&ops);
        let run = sim_order(&ops, None);
        assert_eq!(run.stops, vec![StopReason::Idle], "seed {seed:#x}");
        assert_eq!(run.fired, expect, "seed {seed:#x}");
    }
}

#[test]
fn event_limit_chunking_preserves_the_exact_order() {
    // Tiny limits force stops *inside* same-instant batches; the unfired
    // remainder is reinserted and must come back in the same order.
    for (seed, limit) in [(1u64, 1u64), (2, 3), (3, 7), (0xABCDEF, 13)] {
        let ops = build_ops(seed, 300, false);
        let expect = reference_order(&ops);
        let run = sim_order(&ops, Some(limit));
        assert_eq!(run.stops.last(), Some(&StopReason::Idle), "seed {seed:#x}");
        assert!(run.stops.len() > 1, "limit {limit} must actually chunk");
        assert_eq!(run.fired, expect, "seed {seed:#x} limit {limit}");
    }
}

#[test]
fn halt_stops_on_a_prefix_of_the_reference_order() {
    for seed in [11u64, 0xFEED_F00D, 31_337] {
        let ops = build_ops(seed, 400, true);
        let expect = reference_order(&ops);
        let run = sim_order(&ops, None);
        assert_eq!(run.stops, vec![StopReason::Halted], "seed {seed:#x}");
        assert!(
            run.fired.len() <= expect.len(),
            "halt cannot fire extra events"
        );
        assert_eq!(
            run.fired,
            expect[..run.fired.len()],
            "seed {seed:#x}: a halted run is a prefix of the full order"
        );
        // The halting op fired last: halt takes effect before the next
        // event, even one at the same instant.
        let halter = ops.iter().find(|o| o.halts).expect("one op halts");
        assert_eq!(*run.fired.last().expect("halter fired"), halter.id);
    }
}

#[test]
fn cancellations_remove_exactly_the_cancelled_ops() {
    // Directed, not random: A cancels B at the same instant, C at a
    // later instant, and D pre-run; E (already fired) is cancelled
    // without effect.
    let sim = Sim::new();
    let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
    let l = Rc::clone(&log);
    sim.schedule(SimTime::from_nanos(10), move |_| l.borrow_mut().push("E"));
    let l = Rc::clone(&log);
    let b = sim.schedule_cancellable(SimTime::from_nanos(20), move |_| l.borrow_mut().push("B"));
    let l = Rc::clone(&log);
    let c = sim.schedule_cancellable(SimTime::from_nanos(30), move |_| l.borrow_mut().push("C"));
    let l = Rc::clone(&log);
    let d = sim.schedule_cancellable(SimTime::from_nanos(40), move |_| l.borrow_mut().push("D"));
    let l = Rc::clone(&log);
    sim.schedule(SimTime::from_nanos(20), move |sim| {
        // Fires after B was *extracted* into the same batch — the lazy
        // claim must still honour this.
        l.borrow_mut().push("A");
        assert!(!sim.cancel_timer(b), "B already fired (earlier seq)");
        assert!(sim.cancel_timer(c));
    });
    assert!(sim.cancel_timer(d));
    assert_eq!(sim.pending_timers(), 4, "E, B, A, C pending; D cancelled");
    let report = sim.run();
    assert_eq!(report.stop_reason, StopReason::Idle);
    assert_eq!(*log.borrow(), vec!["E", "B", "A"]);
    assert_eq!(sim.pending_timers(), 0);
}

#[test]
fn same_instant_cancellation_by_an_earlier_seq_suppresses_the_later_one() {
    // The canceller's seq precedes the target's, both at one instant:
    // under batched extraction the target is already out of the wheel,
    // so only fire-time claiming can suppress it (the heap kernel did,
    // via its slab check at pop time).
    let sim = Sim::new();
    let fired: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
    let handle: Rc<RefCell<Option<TimerHandle>>> = Rc::new(RefCell::new(None));
    let f = Rc::clone(&fired);
    let h = Rc::clone(&handle);
    sim.schedule(SimTime::from_nanos(100), move |sim| {
        f.borrow_mut().push(0);
        let target = h.borrow().expect("scheduled below");
        assert!(sim.cancel_timer(target), "same-instant cancel must win");
    });
    let f = Rc::clone(&fired);
    *handle.borrow_mut() = Some(
        sim.schedule_cancellable(SimTime::from_nanos(100), move |_| {
            f.borrow_mut().push(1);
        }),
    );
    let report = sim.run();
    assert_eq!(*fired.borrow(), vec![0]);
    assert_eq!(report.events_fired, 1, "a suppressed timer is not an event");
    assert_eq!(sim.pending_timers(), 0);
}
