//! Kernel accounting regression tests.
//!
//! The hot-path optimizations inside the executor (timer-action slab,
//! cached per-task wakers, cached next-deadline) must not change what the
//! kernel *counts*: `RunReport::events_fired` and `RunReport::polls` are
//! part of the determinism contract (`--verify-determinism` diffs them via
//! the application layer). The expected values below were recorded against
//! the pre-slab executor; any drift means the rework changed scheduling
//! semantics, not just its constant factors.

use std::cell::RefCell;
use std::rc::Rc;

use nowlab_sim::{race, Either, Sim, SimDelta, SimTime, StopReason};

/// A fixed mixed workload: scheduled callbacks, multi-delay tasks, a
/// join-handle chain, and a race with a losing timer left in the heap.
fn mixed_workload() -> (Sim, nowlab_sim::JoinHandle<Either<(), ()>>) {
    let sim = Sim::new();
    // 5 bare callbacks at distinct instants: 5 events, 0 polls.
    for i in 0..5u64 {
        sim.schedule(SimTime::from_nanos(i * 10), |_| {});
    }
    // 3 tasks x 4 delays: 12 timer events, 3 x 5 polls.
    for _ in 0..3 {
        let s = sim.clone();
        sim.spawn(async move {
            for _ in 0..4 {
                s.delay(SimDelta::from_nanos(7)).await;
            }
        });
    }
    // A join chain: inner sleeps once (1 event), inner poll pair plus the
    // outer task's two polls (initial + woken by the join handle).
    let inner = sim.spawn({
        let s = sim.clone();
        async move {
            s.delay(SimDelta::from_nanos(100)).await;
            7u32
        }
    });
    let outer = sim.spawn(async move {
        let v = inner.await;
        assert_eq!(v, 7);
    });
    // A race whose loser's timer still fires as a (poll-free) event.
    let h = sim.spawn({
        let s = sim.clone();
        async move {
            race(
                s.delay(SimDelta::from_nanos(40)),
                s.delay(SimDelta::from_nanos(90)),
            )
            .await
        }
    });
    drop(outer); // the outer task runs detached; we only count its polls
    (sim, h)
}

/// Golden accounting for the mixed workload, recorded before the slab
/// rework: 5 callbacks + 12 task delays + 1 inner sleep + 2 race timers
/// = 20 events; 15 delay-loop polls + 2 inner + 2 outer + 2 race polls
/// = 21 polls.
#[test]
fn mixed_workload_counts_are_stable() {
    let (sim, h) = mixed_workload();
    let report = sim.run();
    assert_eq!(report.stop_reason, StopReason::Idle);
    assert_eq!(report.events_fired, 20, "event count drifted");
    assert_eq!(report.polls, 21, "poll count drifted");
    assert_eq!(report.unfinished_tasks, 0);
    assert_eq!(h.try_take(), Some(Either::A(())));
}

/// Two identical kernels produce bit-identical reports — the double-run
/// diff the CLI's `--verify-determinism` relies on, at kernel level.
#[test]
fn same_workload_double_run_diff_is_empty() {
    let (sim_a, _ha) = mixed_workload();
    let (sim_b, _hb) = mixed_workload();
    let a = sim_a.run();
    let b = sim_b.run();
    assert_eq!(a, b, "kernel reports diverged between identical runs");
    assert_eq!(sim_a.order_violations(), 0);
    assert_eq!(sim_b.order_violations(), 0);
}

/// Timer order (and therefore the event-order audit) survives interleaved
/// pushes from callbacks while the heap drains — the case a slab free-list
/// could break by recycling a slot whose key is still enqueued.
#[test]
fn callbacks_scheduling_callbacks_keep_fifo_ties() {
    let sim = Sim::new();
    let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
    for i in 0..4u32 {
        let log = Rc::clone(&log);
        let sim2 = sim.clone();
        sim.schedule(SimTime::from_nanos(50), move |_| {
            log.borrow_mut().push(i);
            // Re-entrant push at the same instant: must fire after every
            // already-registered tie, in registration order.
            let log = Rc::clone(&log);
            sim2.schedule(SimTime::from_nanos(50), move |_| {
                log.borrow_mut().push(100 + i);
            });
        });
    }
    let report = sim.run();
    assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 100, 101, 102, 103]);
    assert_eq!(report.events_fired, 8);
    assert_eq!(sim.order_violations(), 0);
}

/// Event/time limits interact with the cached deadline: the kernel must
/// stop *before* firing an event beyond the horizon, and resuming after a
/// limit continues exactly where it left off.
#[test]
fn limits_and_resume_preserve_accounting() {
    let sim = Sim::new();
    for i in 1..=10u64 {
        sim.schedule(SimTime::from_nanos(i * 10), |_| {});
    }
    sim.set_time_limit(Some(SimTime::from_nanos(45)));
    let first = sim.run();
    assert_eq!(first.stop_reason, StopReason::TimeLimit);
    assert_eq!(first.events_fired, 4);
    assert_eq!(first.final_time, SimTime::from_nanos(40));
    sim.set_time_limit(None);
    sim.set_event_limit(Some(3));
    let second = sim.run();
    assert_eq!(second.stop_reason, StopReason::EventLimit);
    assert_eq!(second.events_fired, 3);
    sim.set_event_limit(None);
    let third = sim.run();
    assert_eq!(third.stop_reason, StopReason::Idle);
    assert_eq!(third.events_fired, 3);
    assert_eq!(third.final_time, SimTime::from_nanos(100));
}
