//! # nowlab-sim — deterministic discrete-event simulation kernel
//!
//! The substrate underneath the `nowlab` LogGP cluster laboratory (a
//! reproduction of Martin et al., *"Effects of Communication Latency,
//! Overhead, and Bandwidth in a Cluster Architecture"*, ISCA 1997).
//!
//! This crate knows nothing about networks: it provides
//!
//! * a virtual clock with nanosecond resolution ([`SimTime`], [`SimDelta`]),
//! * a time-ordered event queue with deterministic tie-breaking,
//! * a single-threaded async executor whose tasks model simulated
//!   processors ([`Sim::spawn`], [`Sim::run`]),
//! * timed futures ([`Sim::delay`], [`Sim::sleep_until`]) and one-shot
//!   scheduled callbacks ([`Sim::schedule`]),
//! * zero-time synchronization primitives ([`Notify`], [`Semaphore`]),
//! * livelock/bail-out controls ([`Sim::set_event_limit`],
//!   [`Sim::set_time_limit`]).
//!
//! Determinism is a design requirement: the ISCA'97 methodology compares the
//! same application run under many LogGP parameter vectors, so runs must not
//! be perturbed by host scheduling. Everything here is single-threaded and
//! FIFO/sequence-ordered.
//!
//! # Examples
//!
//! Two "processors" exchanging a rendezvous through a [`Notify`]:
//!
//! ```
//! use std::rc::Rc;
//! use std::cell::Cell;
//! use nowlab_sim::{Sim, SimDelta, Notify};
//!
//! let sim = Sim::new();
//! let ready = Rc::new(Notify::new());
//! let sent = Rc::new(Cell::new(false));
//!
//! let (r, s, k) = (Rc::clone(&ready), Rc::clone(&sent), sim.clone());
//! let receiver = sim.spawn(async move {
//!     while !s.get() {
//!         r.notified().await;
//!     }
//!     k.now()
//! });
//!
//! let (r, s, k) = (ready, sent, sim.clone());
//! sim.spawn(async move {
//!     k.delay(SimDelta::from_micros(5.0)).await; // "network latency"
//!     s.set(true);
//!     r.notify_all();
//! });
//!
//! sim.run();
//! assert_eq!(receiver.try_take().unwrap().as_micros_f64(), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod executor;
mod float;
mod ready;
mod sync;
mod time;
mod wheel;

pub use executor::{
    race, yield_now, Either, HookId, JoinHandle, RunReport, Sim, Sleep, StopReason, TimerHandle,
    YieldNow,
};
pub use float::{ordered_sum, ordered_sum_by};
pub use sync::{Notified, Notify, Semaphore};
pub use time::{SimDelta, SimTime};
pub use wheel::SchedulerStats;
