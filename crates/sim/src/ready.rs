//! Lock-free ready list: the executor's wake log.
//!
//! `std::task::Waker` must be `Send + Sync`, so the ready queue it pushes
//! into has to be a `Sync` type even though this executor is strictly
//! single-threaded. Through PR 7 that was an `Arc<Mutex<VecDeque<TaskId>>>`
//! locked on every wake and every pop — an uncontended-but-real lock
//! round trip per poll of a simulation that never leaves one thread.
//!
//! This module replaces it with a wake *log*:
//!
//! * [`ReadyQueue`] is a fixed array of atomic slots plus a `fetch_add`
//!   cursor. A push claims the next index and stores its task id; the
//!   run loop drains the whole log into a plain `Vec` with one atomic
//!   swap. Wakes beyond the slot array (more distinct tasks woken in one
//!   poll round than the array holds) spill into a `Mutex<Vec>` — cold by
//!   construction, since the array is sized from `Sim::with_capacity`.
//! * [`TaskWaker`] carries one ready *bit* per task. A wake enqueues the
//!   task only if the bit was clear, so a task appears at most once per
//!   drain; the executor clears the bit immediately before polling, so a
//!   wake arriving *during* the poll re-enqueues it. Because every entry
//!   was appended by a `fetch_add` in program order, drained order is
//!   exactly the old strict-FIFO order.
//!
//! Determinism: single-threaded execution makes every atomic here a plain
//! load/store at runtime; the types exist only to satisfy the `Waker`
//! contract. FIFO order and the at-most-once-queued invariant are what
//! the byte-identical replay suites exercise.
//!
//! All atomics use `Relaxed` ordering, and the cursor/ready-bit updates
//! are split `load` + `store` pairs rather than read-modify-write
//! instructions: there is exactly one thread, so there is nothing to
//! synchronize *with*, and on x86 a `lock xchg`/`lock xadd` in the
//! per-wake path costs tens of cycles that buy nothing. The atomic
//! *types* exist only to satisfy the `Send + Sync` bound on `Waker`.
//!
//! **Caveat (by design):** because the updates are not atomic RMWs, waking
//! a task from a *different* OS thread than the one running [`Sim::run`]
//! can lose or duplicate log entries. The executor has never supported
//! cross-thread wakes — `Sim` itself is `!Send` — and the kernel
//! benchmark (`engine_throughput`) plus the byte-identical replay suites
//! pin the single-threaded behavior.
//!
//! [`Sim::run`]: crate::Sim::run

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::task::Wake;

pub(crate) type TaskId = usize;

/// Single-producer-role wake log (see module docs).
pub(crate) struct ReadyQueue {
    /// Fixed slot array; index `i` holds the `i`-th task id woken since
    /// the last drain.
    slots: Box<[AtomicUsize]>,
    /// Next free slot index. May run past `slots.len()`; the excess went
    /// to `overflow` in the same order.
    cursor: AtomicUsize,
    /// Spill list for wake bursts larger than the slot array.
    overflow: Mutex<Vec<TaskId>>,
}

impl ReadyQueue {
    /// A queue sized so that `tasks` distinct tasks can be woken between
    /// drains without touching the spill lock.
    pub(crate) fn with_capacity(tasks: usize) -> Arc<Self> {
        let n = tasks.max(64).next_power_of_two();
        Arc::new(ReadyQueue {
            slots: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            cursor: AtomicUsize::new(0),
            overflow: Mutex::new(Vec::new()),
        })
    }

    /// Appends a task id to the log.
    pub(crate) fn push(&self, id: TaskId) {
        // Split load/store instead of `fetch_add`: single-threaded by
        // contract (see module docs).
        let i = self.cursor.load(Ordering::Relaxed);
        self.cursor.store(i + 1, Ordering::Relaxed);
        match self.slots.get(i) {
            Some(slot) => slot.store(id, Ordering::Relaxed),
            None => self
                .overflow
                .lock()
                .expect("sim ready overflow poisoned")
                .push(id),
        }
    }

    /// Moves the whole log into `out` (appending), oldest wake first,
    /// and resets the log to empty.
    pub(crate) fn drain_into(&self, out: &mut Vec<TaskId>) {
        // The run loop calls this once per fired event and once per poll
        // round, and most calls find the log empty — so the empty check
        // must be a plain load, not an unconditional `swap` RMW.
        let n = self.cursor.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        self.cursor.store(0, Ordering::Relaxed);
        let in_slots = n.min(self.slots.len());
        out.extend(
            self.slots[..in_slots]
                .iter()
                .map(|s| s.load(Ordering::Relaxed)),
        );
        if n > self.slots.len() {
            let mut spill = self.overflow.lock().expect("sim ready overflow poisoned");
            out.append(&mut spill);
        }
    }
}

/// Per-task waker shim: task id, ready bit, and the shared wake log.
///
/// Created once at spawn; `Waker::from(Arc<TaskWaker>)` is cached in the
/// task slot so polls reuse it allocation-free.
pub(crate) struct TaskWaker {
    id: TaskId,
    /// True while the task sits in the wake log (or its drained copy)
    /// awaiting a poll. Gates [`ReadyQueue::push`] so a task is enqueued
    /// at most once per poll round.
    queued: AtomicBool,
    queue: Arc<ReadyQueue>,
}

impl TaskWaker {
    pub(crate) fn new(id: TaskId, queue: Arc<ReadyQueue>) -> Arc<Self> {
        Arc::new(TaskWaker {
            id,
            queued: AtomicBool::new(false),
            queue,
        })
    }

    /// Marks the task queued and appends it to the wake log, unless it
    /// is already queued.
    pub(crate) fn enqueue(&self) {
        // Split load/store instead of `swap` — single-threaded by
        // contract (see module docs).
        if !self.queued.load(Ordering::Relaxed) {
            self.queued.store(true, Ordering::Relaxed);
            self.queue.push(self.id);
        }
    }

    /// Clears the ready bit. Called by the executor immediately before
    /// polling, so wakes arriving during the poll re-enqueue the task.
    pub(crate) fn clear_queued(&self) {
        self.queued.store(false, Ordering::Relaxed);
    }
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.enqueue();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.enqueue();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_preserves_fifo_order() {
        let q = ReadyQueue::with_capacity(4);
        for id in [3, 1, 4, 1, 5] {
            q.push(id);
        }
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(out, vec![3, 1, 4, 1, 5]);
        out.clear();
        q.drain_into(&mut out);
        assert!(out.is_empty(), "drain resets the log");
    }

    #[test]
    fn bursts_beyond_the_slot_array_spill_in_order() {
        let q = ReadyQueue::with_capacity(0); // 64 slots
        for id in 0..200 {
            q.push(id);
        }
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(out, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn ready_bit_deduplicates_wakes() {
        let q = ReadyQueue::with_capacity(4);
        let w = TaskWaker::new(7, Arc::clone(&q));
        w.enqueue();
        w.enqueue();
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(out, vec![7], "second wake while queued is a no-op");
        w.clear_queued();
        w.enqueue();
        out.clear();
        q.drain_into(&mut out);
        assert_eq!(out, vec![7], "after the bit clears, wakes enqueue again");
    }
}
