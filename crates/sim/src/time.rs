//! Virtual-time types.
//!
//! All simulation time is kept in **integer nanoseconds** so that the LogGP
//! parameters of the paper (e.g. `o = 2.9 µs`, `G = 1/38 MB/s`) are exact and
//! every run is bit-for-bit deterministic. Two newtypes keep instants and
//! durations from being confused:
//!
//! * [`SimTime`] — an absolute instant on the virtual clock.
//! * [`SimDelta`] — a span of virtual time.
//!
//! # Examples
//!
//! ```
//! use nowlab_sim::{SimTime, SimDelta};
//!
//! let t = SimTime::ZERO + SimDelta::from_micros(2.9);
//! assert_eq!(t.as_nanos(), 2_900);
//! assert_eq!((t - SimTime::ZERO).as_micros_f64(), 2.9);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDelta(u64);

impl SimTime {
    /// The origin of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (time cannot run backwards).
    pub fn since(self, earlier: SimTime) -> SimDelta {
        SimDelta(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is later than `self`"),
        )
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDelta {
        SimDelta(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDelta {
    /// The empty span.
    pub const ZERO: SimDelta = SimDelta(0);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDelta(nanos)
    }

    /// Creates a span of `micros` microseconds (integer).
    pub const fn from_micros_int(micros: u64) -> Self {
        SimDelta(micros * 1_000)
    }

    /// Creates a span from fractional microseconds, rounded to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is negative or not finite.
    pub fn from_micros(micros: f64) -> Self {
        assert!(
            micros.is_finite() && micros >= 0.0,
            "SimDelta::from_micros: invalid duration {micros}"
        );
        SimDelta((micros * 1_000.0).round() as u64)
    }

    /// Creates a span from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis(millis: f64) -> Self {
        Self::from_micros(millis * 1_000.0)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        Self::from_micros(secs * 1_000_000.0)
    }

    /// Length of the span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length of the span in microseconds, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length of the span in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Length of the span in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: SimDelta) -> SimDelta {
        SimDelta(self.0.saturating_sub(other.0))
    }

    /// Returns the longer of two spans.
    pub fn max(self, other: SimDelta) -> SimDelta {
        SimDelta(self.0.max(other.0))
    }

    /// Returns the shorter of two spans.
    pub fn min(self, other: SimDelta) -> SimDelta {
        SimDelta(self.0.min(other.0))
    }
}

impl Add<SimDelta> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDelta) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDelta> for SimTime {
    fn add_assign(&mut self, rhs: SimDelta) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDelta;
    fn sub(self, rhs: SimTime) -> SimDelta {
        self.since(rhs)
    }
}

impl Add for SimDelta {
    type Output = SimDelta;
    fn add(self, rhs: SimDelta) -> SimDelta {
        SimDelta(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDelta {
    fn add_assign(&mut self, rhs: SimDelta) {
        *self = *self + rhs;
    }
}

impl Sub for SimDelta {
    type Output = SimDelta;
    fn sub(self, rhs: SimDelta) -> SimDelta {
        SimDelta(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDelta subtraction underflow"),
        )
    }
}

impl SubAssign for SimDelta {
    fn sub_assign(&mut self, rhs: SimDelta) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDelta {
    type Output = SimDelta;
    fn mul(self, rhs: u64) -> SimDelta {
        SimDelta(self.0.saturating_mul(rhs))
    }
}

impl Mul<SimDelta> for u64 {
    type Output = SimDelta;
    fn mul(self, rhs: SimDelta) -> SimDelta {
        rhs * self
    }
}

impl Div<u64> for SimDelta {
    type Output = SimDelta;
    fn div(self, rhs: u64) -> SimDelta {
        SimDelta(self.0 / rhs)
    }
}

impl Sum for SimDelta {
    fn sum<I: Iterator<Item = SimDelta>>(iter: I) -> Self {
        iter.fold(SimDelta::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}ns)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDelta({}ns)", self.0)
    }
}

impl fmt::Display for SimDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_round_trip() {
        let d = SimDelta::from_micros(2.9);
        assert_eq!(d.as_nanos(), 2_900);
        assert!((d.as_micros_f64() - 2.9).abs() < 1e-12);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_nanos(100);
        let t1 = t0 + SimDelta::from_nanos(50);
        assert_eq!(t1.as_nanos(), 150);
        assert_eq!((t1 - t0).as_nanos(), 50);
        assert_eq!(t1.since(t0), SimDelta::from_nanos(50));
    }

    #[test]
    fn saturating_since_clamps() {
        let t0 = SimTime::from_nanos(100);
        let t1 = SimTime::from_nanos(50);
        assert_eq!(t1.saturating_since(t0), SimDelta::ZERO);
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn since_panics_on_backwards_time() {
        let _ = SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn delta_scaling() {
        let d = SimDelta::from_micros_int(3);
        assert_eq!((d * 4).as_nanos(), 12_000);
        assert_eq!((d / 3).as_nanos(), 1_000);
        assert_eq!(4 * d, d * 4);
    }

    #[test]
    fn delta_sum() {
        let total: SimDelta = (1..=4).map(SimDelta::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDelta::from_nanos(5);
        let y = SimDelta::from_nanos(9);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimDelta::from_nanos(2_900)), "2.900us");
        assert_eq!(format!("{}", SimTime::from_nanos(1_500)), "1.500us");
    }

    #[test]
    fn from_secs_and_millis() {
        assert_eq!(SimDelta::from_secs(1.0).as_nanos(), 1_000_000_000);
        assert_eq!(SimDelta::from_millis(1.5).as_nanos(), 1_500_000);
    }
}
