//! Deterministic float reduction.
//!
//! Float addition is non-associative: `(a + b) + c` and `a + (b + c)`
//! differ in the last bits, so the value of a float sum depends on the
//! order the elements arrive in. The ISCA'97 methodology compares the same
//! application under many LogGP parameter vectors, which only works if
//! every statistic is a pure function of (program, seed) — an
//! iteration-order-dependent sum silently breaks that (the `FLT001`
//! analyzer lint).
//!
//! [`ordered_sum`] is the sanctioned reduction: the caller materializes a
//! slice (whose order is part of the program, not of a hasher or an
//! arrival race) and the sum folds it strictly left-to-right.

/// Sums `xs` strictly left-to-right.
///
/// The result is bit-identical for a given slice, independent of how the
/// caller produced it — the ordering responsibility is pushed to the slice
/// itself, which in this workspace always comes from an index-ordered
/// container (`Vec` per processor rank, per axis point, …).
pub fn ordered_sum(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x;
    }
    acc
}

/// [`ordered_sum`] over a mapping of an index-ordered slice: sums
/// `f(x)` for each element strictly left-to-right without allocating.
pub fn ordered_sum_by<T>(xs: &[T], mut f: impl FnMut(&T) -> f64) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += f(x);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_left_to_right() {
        // A sequence engineered so that order matters: the big terms cancel
        // first and the tiny one survives left-to-right, while the reversed
        // order absorbs the tiny term into a big one and loses it. The
        // function must match the plain left-to-right loop exactly.
        let xs = [1e16, -1e16, 1.0];
        let mut expect = 0.0;
        for &x in &xs {
            expect += x;
        }
        assert_eq!(ordered_sum(&xs).to_bits(), expect.to_bits());
        // And that IS order-dependent, which is the whole point.
        let reversed: Vec<f64> = xs.iter().rev().copied().collect();
        assert_ne!(ordered_sum(&xs).to_bits(), ordered_sum(&reversed).to_bits());
    }

    #[test]
    fn by_variant_matches_mapped_slice() {
        struct P {
            t: f64,
        }
        let ps = [P { t: 0.25 }, P { t: 1.5 }, P { t: -0.75 }];
        let mapped: Vec<f64> = ps.iter().map(|p| p.t).collect();
        assert_eq!(
            ordered_sum_by(&ps, |p| p.t).to_bits(),
            ordered_sum(&mapped).to_bits()
        );
        assert_eq!(ordered_sum(&[]), 0.0);
    }
}
