//! The discrete-event simulation kernel and its async task executor.
//!
//! A [`Sim`] owns a virtual clock, a time-ordered event queue, and a set of
//! cooperatively scheduled async tasks. Tasks model the simulated processors:
//! they run in zero virtual time between `await` points and advance the clock
//! only by awaiting [`Sim::delay`] / [`Sim::sleep_until`] or by blocking on
//! synchronization primitives ([`crate::Notify`], [`crate::Semaphore`]).
//!
//! The executor is strictly single-threaded and deterministic: ties in the
//! event queue are broken by insertion sequence number, and the ready list is
//! FIFO, so the same program produces the same virtual-time trace on every
//! run.
//!
//! # Hot-path architecture
//!
//! Three structures carry the per-event cost (the raw-speed campaign of
//! ROADMAP item 3):
//!
//! * the **timer wheel** ([`crate::wheel`]) orders pending timers and hands
//!   the run loop *batches* — every timer at one instant under a single
//!   `Inner` borrow;
//! * the **wake log** ([`crate::ready`]) replaces the old
//!   `Arc<Mutex<VecDeque>>` ready queue with an atomic append-only log
//!   drained into a plain `Vec`, one ready bit per task;
//! * the **action slab** stores timer payloads out-of-line from the wheel
//!   keys, recycles slots through a free list, and — via registered
//!   [`Sim::register_hook`] dispatchers — lets high-rate callers schedule
//!   events without boxing a closure per event.
//!
//! # Examples
//!
//! ```
//! use nowlab_sim::{Sim, SimDelta};
//!
//! let sim = Sim::new();
//! let handle = sim.spawn({
//!     let sim = sim.clone();
//!     async move {
//!         sim.delay(SimDelta::from_micros(5.0)).await;
//!         sim.now()
//!     }
//! });
//! sim.run();
//! assert_eq!(handle.try_take().unwrap().as_nanos(), 5_000);
//! ```

use std::cell::{Cell, RefCell};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use crate::ready::{ReadyQueue, TaskId, TaskWaker};
use crate::time::{SimDelta, SimTime};
use crate::wheel::{SchedulerStats, TimerEntry, TimerWheel};

type BoxedTask = Pin<Box<dyn Future<Output = ()>>>;
type HookFn = Rc<dyn Fn(&Sim, u64)>;

/// Why [`Sim::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// No runnable tasks and no pending events remain.
    Idle,
    /// The configured event-count budget was exhausted (see
    /// [`Sim::set_event_limit`]). Used to detect livelock.
    EventLimit,
    /// The next event lies beyond the configured virtual-time horizon (see
    /// [`Sim::set_time_limit`]).
    TimeLimit,
    /// A task or callback requested an orderly stop (see [`Sim::halt`]) —
    /// e.g. a failure detector escalating an unrecoverable peer death.
    Halted,
}

/// Summary of one [`Sim::run`] invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Virtual time when the run stopped.
    pub final_time: SimTime,
    /// Total events fired (timer expirations and scheduled callbacks).
    pub events_fired: u64,
    /// Total task polls performed.
    pub polls: u64,
    /// Number of spawned tasks that have not completed.
    pub unfinished_tasks: usize,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Events that fired at the same virtual instant as their predecessor
    /// and therefore relied on the registration-sequence tiebreaker for
    /// their order. Counted only when the event-order audit is active
    /// (debug builds, or the `order-audit` feature); `0` otherwise.
    pub simultaneous_events: u64,
}

enum TimerAction {
    Wake(Waker),
    Call(Box<dyn FnOnce(&Sim)>),
    /// Inline dispatch through a registered hook (see
    /// [`Sim::register_hook`]): two words in the slab, no allocation.
    Hook {
        hook: u32,
        token: u64,
    },
}

/// Identifier of a hook registered with [`Sim::register_hook`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HookId(u32);

/// Handle to a timer scheduled with [`Sim::schedule_cancellable`] or
/// [`Sim::schedule_hook_cancellable`].
///
/// The handle names a (slab slot, registration sequence) pair; because the
/// sequence number is globally unique, a stale handle whose slot has been
/// recycled can never cancel the wrong timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerHandle {
    slot: u32,
    seq: u64,
}

/// One spawned task plus its reusable waker. The waker is created once at
/// spawn instead of once per poll: `Waker::from(Arc<TaskWaker>)` costs an
/// allocation, and tasks in a message-heavy simulation are polled many
/// thousands of times. The raw shim is kept alongside so the executor can
/// clear the ready bit before polling.
struct TaskSlot {
    fut: BoxedTask,
    waker: Waker,
    shim: Arc<TaskWaker>,
}

/// One slab slot: the registration sequence stamped at allocation plus the
/// pending action. A wheel entry (or a [`TimerHandle`]) is live only while
/// its `seq` matches the stamp — that is what makes lazy cancellation safe
/// against slot reuse.
struct SlabSlot {
    seq: u64,
    action: Option<TimerAction>,
}

struct Inner {
    wheel: TimerWheel,
    /// Slab of pending timer actions, indexed by `TimerEntry::slot`. The
    /// seq stamp and the action live side by side so the fire-time
    /// liveness check and the claim touch one slab slot, not two
    /// parallel arrays.
    slab: Vec<SlabSlot>,
    /// Recyclable slab slots (free list).
    free_slots: Vec<u32>,
    /// Timers scheduled but neither fired nor cancelled. The wheel's own
    /// `len` overcounts this by the lazily-cancelled ghosts still parked
    /// in its buckets.
    live_entries: usize,
    tasks: Vec<Option<TaskSlot>>,
    live_tasks: usize,
    seq: u64,
    order_violations: u64,
}

impl Inner {
    /// Stores `action` in the slab, reusing a freed slot when available,
    /// and stamps the slot with the registration sequence.
    fn alloc_slot(&mut self, action: TimerAction, seq: u64) -> u32 {
        self.live_entries += 1;
        match self.free_slots.pop() {
            Some(slot) => {
                self.slab[slot as usize] = SlabSlot {
                    seq,
                    action: Some(action),
                };
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("timer slab overflow");
                self.slab.push(SlabSlot {
                    seq,
                    action: Some(action),
                });
                slot
            }
        }
    }

    /// Extracts the next batch of *live* same-instant entries into `out`
    /// in `seq` order, discarding lazily-cancelled ghosts along the way
    /// (their slots were freed — and possibly recycled — at cancel
    /// time). Returns the batch instant, or `None` once the wheel is
    /// empty. Batches consisting entirely of ghosts are discarded
    /// without surfacing — the clock never advances to a cancelled
    /// instant.
    ///
    /// Actions stay in the slab: the run loop *claims* them one at a
    /// time as the batch fires, so an earlier same-instant event (or a
    /// task it wakes) can still cancel a later one, exactly as under the
    /// one-pop-at-a-time heap kernel.
    fn take_batch(&mut self, out: &mut Vec<TimerEntry>) -> Option<SimTime> {
        debug_assert!(out.is_empty());
        loop {
            let t = self.wheel.take_batch(out)?;
            out.retain(|e| {
                let slot = &self.slab[e.slot as usize];
                slot.seq == e.seq && slot.action.is_some()
            });
            if !out.is_empty() {
                return Some(t);
            }
        }
    }

    /// Takes a batch entry's action at fire time. `None` means the entry
    /// was cancelled after extraction — by an earlier event in the same
    /// batch, or by a task polled between two same-instant events — and
    /// must fire nothing.
    fn claim(&mut self, e: TimerEntry) -> Option<TimerAction> {
        let slot = &mut self.slab[e.slot as usize];
        if slot.seq != e.seq {
            return None;
        }
        let action = slot.action.take()?;
        self.free_slots.push(e.slot);
        self.live_entries -= 1;
        Some(action)
    }

    /// Puts an unclaimed batch entry back after an early stop mid-batch
    /// (halt or event limit between same-instant events). The action
    /// never left the slab and `seq` is preserved, so a later run fires
    /// it in exactly the order the uninterrupted run would have. Entries
    /// cancelled while in flight are dropped instead.
    fn reinsert(&mut self, e: TimerEntry) {
        let slot = &self.slab[e.slot as usize];
        if slot.seq == e.seq && slot.action.is_some() {
            self.wheel.push(e);
        }
    }
}

/// True when the runtime event-order audit is compiled in: every debug
/// build, plus release builds with the `order-audit` feature.
const fn order_audit_enabled() -> bool {
    cfg!(debug_assertions) || cfg!(feature = "order-audit")
}

/// Handle to a deterministic discrete-event simulation.
///
/// `Sim` is a cheap reference-counted handle; clone it freely into tasks.
/// See the crate documentation for an overview and example.
#[derive(Clone)]
pub struct Sim {
    /// All engine state behind one `Rc`. `Sim` is cloned on every hot-path
    /// construction of a `Sleep`/`Notify` future, so the handle must cost a
    /// single refcount bump — not one per field. (An earlier layout kept ten
    /// separate `Rc` fields; profiling showed `delay()` paying ~20 refcount
    /// operations per call just creating and dropping its `Sleep`.)
    shared: Rc<Shared>,
}

/// The single shared allocation behind every [`Sim`] handle.
struct Shared {
    now: Cell<SimTime>,
    /// Deadline of the earliest pending timer — a cached copy of the wheel
    /// minimum so the run loop's limit checks read a `Cell` instead of
    /// borrowing and scanning the wheel. Cancellation does not update it,
    /// so it may conservatively point at a cancelled ghost; the run loop
    /// re-checks after extraction.
    next_deadline: Cell<Option<SimTime>>,
    /// Run budgets live in `Cell`s (not `Inner`) so the hot loop reads
    /// them without a `RefCell` borrow; callbacks may change them mid-run.
    event_limit: Cell<Option<u64>>,
    time_limit: Cell<Option<SimTime>>,
    /// Orderly-stop request flag (see [`Sim::halt`]).
    halted: Cell<bool>,
    /// Event-density sampling boundary: the run loop compares the next
    /// event's time against this `Cell` and nothing else, so the feature
    /// costs one compare when disabled (`SimTime::MAX`). Sampling is
    /// passive — it schedules no events and cannot perturb the run.
    sample_boundary: Cell<SimTime>,
    samples: RefCell<SampleState>,
    /// Registered hook dispatchers, indexed by [`HookId`].
    hooks: RefCell<Vec<HookFn>>,
    inner: RefCell<Inner>,
    ready: Arc<ReadyQueue>,
}

/// State of the passive event-density sampler (see
/// [`Sim::enable_event_sampling`]).
#[derive(Default)]
struct SampleState {
    /// Window length in nanoseconds (0 = disabled).
    window: u64,
    /// Events counted at the last window flush.
    last_events: u64,
    /// Events fired per completed window.
    counts: Vec<u64>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.shared.now.get())
            .finish()
    }
}

impl Sim {
    /// Creates an empty simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty simulation pre-sized for roughly `tasks` spawned
    /// tasks (one per simulated processor, typically): the task table,
    /// wake log, timer wheel, and action slab reserve space up front so
    /// cluster construction does not grow them incrementally.
    pub fn with_capacity(tasks: usize) -> Self {
        // Each processor task usually keeps a few timers in flight
        // (delays, retransmit timers, NIC gap pacing).
        let timers = tasks.saturating_mul(4);
        Sim {
            shared: Rc::new(Shared {
                now: Cell::new(SimTime::ZERO),
                next_deadline: Cell::new(None),
                event_limit: Cell::new(None),
                time_limit: Cell::new(None),
                halted: Cell::new(false),
                sample_boundary: Cell::new(SimTime::MAX),
                samples: RefCell::new(SampleState::default()),
                hooks: RefCell::new(Vec::new()),
                inner: RefCell::new(Inner {
                    wheel: TimerWheel::with_capacity(timers),
                    slab: Vec::with_capacity(timers),
                    free_slots: Vec::with_capacity(timers),
                    live_entries: 0,
                    tasks: Vec::with_capacity(tasks),
                    live_tasks: 0,
                    seq: 0,
                    order_violations: 0,
                }),
                ready: ReadyQueue::with_capacity(tasks),
            }),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.now.get()
    }

    /// Number of *live* timers waiting in the scheduler queue — how much
    /// future the event wheel is holding right now. Lazily-cancelled
    /// entries are excluded (they occupy wheel slots until their instant
    /// passes, but will never fire). An O(1) observability probe for
    /// tracing/metrics; reading it cannot disturb event order.
    pub fn pending_timers(&self) -> usize {
        self.shared.inner.borrow().live_entries
    }

    /// Capacity and occupancy snapshot of the timer wheel: ring size
    /// (fixed at construction), per-bucket allocation, overflow-heap
    /// depth, and live/cancelled entry counts. Used by the differential
    /// tests to assert the ring never grows during steady state.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        let inner = self.shared.inner.borrow();
        let mut stats = inner.wheel.stats();
        stats.cancelled = inner.wheel.len().saturating_sub(inner.live_entries);
        stats
    }

    /// Caps the total number of events a subsequent [`Sim::run`] may fire.
    ///
    /// Used to bail out of livelocked programs (the paper's Barnes at high
    /// overhead never completes; we stop and report
    /// [`StopReason::EventLimit`]).
    pub fn set_event_limit(&self, limit: Option<u64>) {
        self.shared.event_limit.set(limit);
    }

    /// Caps virtual time: [`Sim::run`] stops before firing any event later
    /// than `limit`.
    pub fn set_time_limit(&self, limit: Option<SimTime>) {
        self.shared.time_limit.set(limit);
    }

    /// Requests an orderly stop: the run loop finishes polling every task
    /// that is ready at the current instant, then returns with
    /// [`StopReason::Halted`] instead of advancing virtual time. Callable
    /// from inside tasks and scheduled callbacks; idempotent. Unlike the
    /// event/time limits this is an *in-simulation* decision (a failure
    /// detector giving up on a dead peer), so the instant it fires at is
    /// itself deterministic.
    pub fn halt(&self) {
        self.shared.halted.set(true);
    }

    /// True if [`Sim::halt`] has been requested.
    pub fn is_halted(&self) -> bool {
        self.shared.halted.get()
    }

    /// Starts counting fired events per fixed window of virtual time
    /// (the metrics registry's event-density series). Call immediately
    /// before [`Sim::run`]; any previously collected samples are
    /// discarded. The sampler is passive — it schedules nothing and adds
    /// one `Cell` compare per fired event — so enabling it cannot change
    /// the schedule, the event count, or any simulation result.
    pub fn enable_event_sampling(&self, window: SimDelta) {
        let w = window.as_nanos().max(1);
        *self.shared.samples.borrow_mut() = SampleState {
            window: w,
            last_events: 0,
            counts: Vec::new(),
        };
        self.shared.sample_boundary.set(SimTime::from_nanos(w));
    }

    /// Takes the per-window event counts collected since
    /// [`Sim::enable_event_sampling`] and disables sampling. Only
    /// *completed* windows appear; the caller apportions the residual
    /// (total events minus the returned sum) to the final partial window.
    pub fn take_event_samples(&self) -> Vec<u64> {
        self.shared.sample_boundary.set(SimTime::MAX);
        std::mem::take(&mut self.shared.samples.borrow_mut().counts)
    }

    /// Cold path of the event-density sampler: closes every window older
    /// than `now` (zero-filling skipped ones) and advances the boundary.
    #[cold]
    fn flush_event_samples(&self, now: SimTime, events_so_far: u64) {
        let mut st = self.shared.samples.borrow_mut();
        if st.window == 0 {
            return;
        }
        // All events since the last flush fired before the old boundary,
        // so they belong to the first window being closed.
        let delta = events_so_far.saturating_sub(st.last_events);
        st.counts.push(delta);
        st.last_events = events_so_far;
        let mut boundary = self.shared.sample_boundary.get().as_nanos();
        boundary = boundary.saturating_add(st.window);
        while now.as_nanos() >= boundary {
            st.counts.push(0);
            boundary = boundary.saturating_add(st.window);
        }
        self.shared
            .sample_boundary
            .set(SimTime::from_nanos(boundary));
    }

    /// Event-order race detections accumulated across all [`Sim::run`]
    /// calls on this simulation.
    ///
    /// A violation is two events at the identical virtual instant whose
    /// firing order was *not* resolved by the strictly increasing
    /// registration sequence — i.e. the deterministic tiebreaker failed.
    /// With the wheel's `(time, seq)` batch ordering this is impossible
    /// by construction; the audit exists to catch regressions (a reset
    /// `seq` counter, an alternative queue) the moment they produce a
    /// nondeterministic schedule. Always `0` unless the audit is active
    /// (debug builds, or the `order-audit` feature).
    pub fn order_violations(&self) -> u64 {
        self.shared.inner.borrow().order_violations
    }

    /// Spawns an async task; it will first be polled by [`Sim::run`].
    ///
    /// Returns a [`JoinHandle`] from which the task's output can be awaited
    /// (inside the simulation) or taken (after `run`).
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waiters: Vec::new(),
        }));
        let state2 = Rc::clone(&state);
        let wrapped = async move {
            let out = fut.await;
            let mut st = state2.borrow_mut();
            st.result = Some(out);
            for w in st.waiters.drain(..) {
                w.wake();
            }
        };
        let shim = {
            let mut inner = self.shared.inner.borrow_mut();
            let id = inner.tasks.len();
            let shim = TaskWaker::new(id, Arc::clone(&self.shared.ready));
            let waker = Waker::from(Arc::clone(&shim));
            inner.tasks.push(Some(TaskSlot {
                fut: Box::pin(wrapped),
                waker,
                shim: Arc::clone(&shim),
            }));
            inner.live_tasks += 1;
            shim
        };
        // Initial wake: sets the ready bit and appends to the wake log.
        shim.enqueue();
        JoinHandle { state }
    }

    /// Schedules `f` to run at virtual time `at` (clamped to now if in the
    /// past). Callbacks run in zero virtual time and receive the `Sim` handle.
    pub fn schedule<F>(&self, at: SimTime, f: F)
    where
        F: FnOnce(&Sim) + 'static,
    {
        let at = at.max(self.now());
        self.push_timer(at, TimerAction::Call(Box::new(f)));
    }

    /// Schedules `f` like [`Sim::schedule`] but returns a [`TimerHandle`]
    /// that can revoke it via [`Sim::cancel_timer`] before it fires.
    pub fn schedule_cancellable<F>(&self, at: SimTime, f: F) -> TimerHandle
    where
        F: FnOnce(&Sim) + 'static,
    {
        let at = at.max(self.now());
        self.push_timer(at, TimerAction::Call(Box::new(f)))
    }

    /// Registers a hook dispatcher and returns its [`HookId`].
    ///
    /// A hook is the allocation-free alternative to [`Sim::schedule`] for
    /// high-rate callers: register the dispatcher once, then
    /// [`Sim::schedule_hook`] events that carry only a `u64` token — the
    /// per-event `Box<dyn FnOnce>` disappears from the hot path. The
    /// dispatcher is retained for the life of the simulation.
    pub fn register_hook<F>(&self, f: F) -> HookId
    where
        F: Fn(&Sim, u64) + 'static,
    {
        let mut hooks = self.shared.hooks.borrow_mut();
        let id = u32::try_from(hooks.len()).expect("hook table overflow");
        hooks.push(Rc::new(f));
        HookId(id)
    }

    /// Schedules the dispatcher registered under `hook` to run at `at`
    /// (clamped to now) with `token`. Event ordering is identical to an
    /// equivalent [`Sim::schedule`] call made at the same point.
    pub fn schedule_hook(&self, at: SimTime, hook: HookId, token: u64) {
        let at = at.max(self.now());
        self.push_timer(
            at,
            TimerAction::Hook {
                hook: hook.0,
                token,
            },
        );
    }

    /// [`Sim::schedule_hook`] returning a [`TimerHandle`] for
    /// [`Sim::cancel_timer`].
    pub fn schedule_hook_cancellable(&self, at: SimTime, hook: HookId, token: u64) -> TimerHandle {
        let at = at.max(self.now());
        self.push_timer(
            at,
            TimerAction::Hook {
                hook: hook.0,
                token,
            },
        )
    }

    /// Cancels a pending timer. Returns `true` if the timer was still
    /// pending (it will now never fire, and [`Sim::pending_timers`] drops
    /// immediately); `false` if it already fired, was already cancelled,
    /// or the handle is stale.
    ///
    /// Cancellation is lazy: the wheel entry remains as a ghost until the
    /// run loop reaches its instant and discards it. Ghosts never fire,
    /// never advance the clock, and are excluded from
    /// [`Sim::pending_timers`] — but the cached next-event deadline may
    /// conservatively point at one, in which case a time-limited run can
    /// stop with [`StopReason::TimeLimit`] one extraction earlier than
    /// strictly necessary; a subsequent [`Sim::run`] discards the ghost
    /// and proceeds normally.
    pub fn cancel_timer(&self, handle: TimerHandle) -> bool {
        let mut inner = self.shared.inner.borrow_mut();
        let idx = handle.slot as usize;
        match inner.slab.get(idx) {
            Some(slot) if slot.seq == handle.seq && slot.action.is_some() => {}
            _ => return false,
        }
        inner.slab[idx].action = None;
        inner.free_slots.push(handle.slot);
        inner.live_entries -= 1;
        true
    }

    /// Registers a timer action at `time`, maintaining the cached earliest
    /// deadline.
    fn push_timer(&self, time: SimTime, action: TimerAction) -> TimerHandle {
        let mut inner = self.shared.inner.borrow_mut();
        let seq = inner.seq;
        inner.seq += 1;
        let slot = inner.alloc_slot(action, seq);
        inner.wheel.push(TimerEntry { time, seq, slot });
        match self.shared.next_deadline.get() {
            Some(d) if d <= time => {}
            _ => self.shared.next_deadline.set(Some(time)),
        }
        TimerHandle { slot, seq }
    }

    /// Schedules `f` to run `after` from now.
    pub fn schedule_in<F>(&self, after: SimDelta, f: F)
    where
        F: FnOnce(&Sim) + 'static,
    {
        self.schedule(self.now() + after, f);
    }

    /// Future that completes at virtual time `deadline` (immediately if the
    /// deadline has passed).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// Future that completes after `delta` of virtual time.
    pub fn delay(&self, delta: SimDelta) -> Sleep {
        self.sleep_until(self.now() + delta)
    }

    fn register_timer_wake(&self, deadline: SimTime, waker: Waker) {
        self.push_timer(deadline, TimerAction::Wake(waker));
    }

    fn poll_task(&self, id: TaskId) -> u64 {
        let slot = {
            let mut inner = self.shared.inner.borrow_mut();
            match inner.tasks.get_mut(id) {
                Some(slot) => slot.take(),
                None => None,
            }
        };
        let Some(mut slot) = slot else { return 0 };
        // Clear the ready bit before polling: a wake arriving *during*
        // the poll must re-enqueue the task for another round.
        slot.shim.clear_queued();
        let mut cx = Context::from_waker(&slot.waker);
        match slot.fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.shared.inner.borrow_mut().live_tasks -= 1;
            }
            Poll::Pending => {
                self.shared.inner.borrow_mut().tasks[id] = Some(slot);
            }
        }
        1
    }

    /// Drains the wake log until no task is ready, polling in strict FIFO
    /// order. Returns polls performed.
    fn drain_ready(&self, buf: &mut Vec<TaskId>) -> u64 {
        let mut polls = 0;
        loop {
            self.shared.ready.drain_into(buf);
            if buf.is_empty() {
                return polls;
            }
            for id in buf.drain(..) {
                polls += self.poll_task(id);
            }
        }
    }

    /// Runs the simulation until no work remains or a limit is hit.
    ///
    /// Determinism: ready tasks are polled FIFO; simultaneous timers fire in
    /// registration order. Timers at one instant are *extracted* as a batch
    /// (one `Inner` borrow) but *fired* with the same interleaving as ever:
    /// after each event the ready list is drained and the halt/event-limit
    /// conditions re-checked, so an early stop mid-batch reinserts the
    /// unfired remainder and leaves the schedule byte-identical to the
    /// one-event-at-a-time kernel.
    pub fn run(&self) -> RunReport {
        let mut events: u64 = 0;
        let mut polls: u64 = 0;
        let mut simultaneous: u64 = 0;
        // Event-order race detector: remembers the (time, seq) of the last
        // fired event so ties at the same virtual instant can be audited.
        let mut last_fired: Option<(SimTime, u64)> = None;
        let mut ready_buf: Vec<TaskId> = Vec::new();
        let mut batch: Vec<TimerEntry> = Vec::new();
        let stop_reason = 'run: loop {
            // Poll every ready task at the current instant.
            polls += self.drain_ready(&mut ready_buf);
            if self.shared.halted.get() {
                break StopReason::Halted;
            }
            if let Some(limit) = self.shared.event_limit.get() {
                if events >= limit {
                    break StopReason::EventLimit;
                }
            }
            // Advance virtual time to the next event. The earliest
            // deadline is cached in a `Cell`, so the empty/over-horizon
            // checks cost no wheel scan and no `RefCell` borrow.
            let Some(next) = self.shared.next_deadline.get() else {
                break StopReason::Idle;
            };
            if let Some(tl) = self.shared.time_limit.get() {
                if next > tl {
                    break StopReason::TimeLimit;
                }
            }
            // Batched same-instant extraction: one `Inner` borrow pulls
            // every live timer at the earliest instant, instead of a
            // borrow→pop→release round trip per event.
            let t = {
                let mut inner = self.shared.inner.borrow_mut();
                let Some(t) = inner.take_batch(&mut batch) else {
                    // Only cancelled ghosts remained; the wheel is empty.
                    self.shared.next_deadline.set(None);
                    break StopReason::Idle;
                };
                // The cached deadline only needs to be a *lower bound*:
                // pushes min-update it, the `t > next` ghost path below
                // re-validates against the time limit, and an exact scan
                // after every batch would cost more than the heap peek
                // this campaign is replacing. `t` itself is the tightest
                // bound available without touching the wheel again.
                self.shared.next_deadline.set(if inner.wheel.is_empty() {
                    None
                } else {
                    Some(t)
                });
                t
            };
            debug_assert!(t >= self.shared.now.get(), "event queue went backwards");
            debug_assert!(t >= next, "cached deadline out of sync");
            if t > next {
                // The cached deadline was a stale lower bound (a push
                // since overwritten, or a cancelled ghost); the first
                // live batch may now lie beyond the time horizon.
                if let Some(tl) = self.shared.time_limit.get() {
                    if t > tl {
                        let mut inner = self.shared.inner.borrow_mut();
                        for e in batch.drain(..) {
                            inner.reinsert(e);
                        }
                        self.shared.next_deadline.set(inner.wheel.peek_next());
                        break StopReason::TimeLimit;
                    }
                }
            }
            self.shared.now.set(t);
            if t >= self.shared.sample_boundary.get() {
                self.flush_event_samples(t, events);
            }
            // Fire the batch. Extraction was batched; *firing* keeps the
            // historical interleaving: between any two same-instant events
            // the ready list is drained and the stop conditions re-checked,
            // and each entry's action is claimed from the slab only at its
            // own fire point — so earlier events (or tasks they wake) can
            // still cancel later same-instant timers.
            let mut fired = 0;
            let early_stop = loop {
                if fired == batch.len() {
                    break None;
                }
                if fired > 0 {
                    polls += self.drain_ready(&mut ready_buf);
                    if self.shared.halted.get() {
                        break Some(StopReason::Halted);
                    }
                    if let Some(limit) = self.shared.event_limit.get() {
                        if events >= limit {
                            break Some(StopReason::EventLimit);
                        }
                    }
                }
                let e = batch[fired];
                fired += 1;
                let Some(action) = self.shared.inner.borrow_mut().claim(e) else {
                    // Cancelled while in flight: fires nothing and does
                    // not count as an event.
                    continue;
                };
                if order_audit_enabled() {
                    if let Some((lt, ls)) = last_fired {
                        if t == lt {
                            simultaneous += 1;
                            if e.seq <= ls {
                                self.shared.inner.borrow_mut().order_violations += 1;
                                debug_assert!(
                                    false,
                                    "event-order race: two events at {t:?} without a \
                                     deterministic tiebreaker (seq {} fired after {ls})",
                                    e.seq
                                );
                            }
                        }
                    }
                    last_fired = Some((t, e.seq));
                }
                events += 1;
                match action {
                    TimerAction::Wake(w) => w.wake(),
                    TimerAction::Call(f) => f(self),
                    TimerAction::Hook { hook, token } => {
                        let f = Rc::clone(&self.shared.hooks.borrow()[hook as usize]);
                        f(self, token);
                    }
                }
            };
            if let Some(reason) = early_stop {
                // Unfired same-instant events go back to the wheel with
                // their original sequence numbers; a resumed run fires
                // them exactly where the uninterrupted run would have.
                let mut inner = self.shared.inner.borrow_mut();
                for e in batch.drain(fired..) {
                    inner.reinsert(e);
                }
                batch.clear();
                self.shared.next_deadline.set(inner.wheel.peek_next());
                break 'run reason;
            }
            batch.clear();
        };
        RunReport {
            final_time: self.now(),
            events_fired: events,
            polls,
            unfinished_tasks: self.shared.inner.borrow().live_tasks,
            stop_reason,
            simultaneous_events: simultaneous,
        }
    }
}

/// Future returned by [`Sim::sleep_until`] and [`Sim::delay`].
#[derive(Debug)]
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            let deadline = self.deadline;
            self.sim.register_timer_wake(deadline, cx.waker().clone());
            self.registered = true;
        }
        Poll::Pending
    }
}

struct JoinState<T> {
    result: Option<T>,
    waiters: Vec<Waker>,
}

/// Handle to a spawned task's output.
///
/// Await it inside the simulation, or call [`JoinHandle::try_take`] after
/// [`Sim::run`] returns.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let done = self.state.borrow().result.is_some();
        f.debug_struct("JoinHandle")
            .field("finished", &done)
            .finish()
    }
}

impl<T> JoinHandle<T> {
    /// Takes the task's output if it has completed.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// True if the task has completed (and its output not yet taken).
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        match st.result.take() {
            Some(v) => Poll::Ready(v),
            None => {
                st.waiters.push(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Races two futures: completes when either completes, returning which one
/// won (ties go to `a`). The loser is dropped.
///
/// The contestants are pinned on the caller's stack (`pin!`), not boxed:
/// `race` sits on the AM layer's timeout path, so the two heap
/// allocations the old boxed implementation paid per call were a
/// measurable share of per-message software cost.
pub async fn race<A, B>(a: A, b: B) -> Either<A::Output, B::Output>
where
    A: Future,
    B: Future,
{
    let mut a = std::pin::pin!(a);
    let mut b = std::pin::pin!(b);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = a.as_mut().poll(cx) {
            return Poll::Ready(Either::A(v));
        }
        if let Poll::Ready(v) = b.as_mut().poll(cx) {
            return Poll::Ready(Either::B(v));
        }
        Poll::Pending
    })
    .await
}

/// Result of [`race`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished first.
    A(A),
    /// The second future finished first.
    B(B),
}

/// Future that yields once, letting other ready tasks run at the same instant.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug, Default)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_advances_clock() {
        let sim = Sim::new();
        let h = sim.spawn({
            let sim = sim.clone();
            async move {
                sim.delay(SimDelta::from_micros_int(7)).await;
                sim.now()
            }
        });
        let report = sim.run();
        assert_eq!(h.try_take().unwrap(), SimTime::from_nanos(7_000));
        assert_eq!(report.stop_reason, StopReason::Idle);
        assert_eq!(report.unfinished_tasks, 0);
    }

    #[test]
    fn event_sampling_counts_every_event_and_changes_nothing() {
        let build = |sample: bool| {
            let sim = Sim::new();
            for i in 0..12u32 {
                // Exponential spacing: several events in the first 100ns
                // window, then sparse with empty windows in between.
                sim.schedule(SimTime::from_nanos(1 << i), |_| {});
            }
            if sample {
                sim.enable_event_sampling(SimDelta::from_nanos(100));
            }
            let report = sim.run();
            (report, sim.take_event_samples())
        };
        let (plain, none) = build(false);
        let (sampled, counts) = build(true);
        assert!(none.is_empty());
        assert_eq!(plain, sampled, "sampling must not perturb the run");
        // Completed windows plus the residual account for every event.
        let residual = sampled.events_fired - counts.iter().sum::<u64>();
        assert!(residual > 0, "last partial window holds the rest");
        // The first window holds the events at 1, 2, ..., 64.
        assert_eq!(counts[0], 7);
        // Windows with no events are zero-filled, e.g. [300, 400).
        assert!(counts.contains(&0), "{counts:?}");
    }

    #[test]
    fn simultaneous_timers_fire_in_registration_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u32 {
            let log = Rc::clone(&log);
            sim.schedule(SimTime::from_nanos(100), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_interleave_by_time_not_spawn_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let l1 = Rc::clone(&log);
        let s1 = sim.clone();
        sim.spawn(async move {
            s1.delay(SimDelta::from_nanos(20)).await;
            l1.borrow_mut().push("late");
        });
        let l2 = Rc::clone(&log);
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.delay(SimDelta::from_nanos(10)).await;
            l2.borrow_mut().push("early");
        });
        sim.run();
        assert_eq!(*log.borrow(), vec!["early", "late"]);
    }

    #[test]
    fn join_handle_awaitable_within_sim() {
        let sim = Sim::new();
        let inner = sim.spawn({
            let sim = sim.clone();
            async move {
                sim.delay(SimDelta::from_nanos(42)).await;
                7u32
            }
        });
        let outer = sim.spawn(async move { inner.await * 2 });
        sim.run();
        assert_eq!(outer.try_take(), Some(14));
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let sim = Sim::new();
        let fired = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&fired);
        sim.schedule_in(SimDelta::from_nanos(10), move |sim| {
            let f3 = Rc::clone(&f2);
            // Schedule "in the past" relative to the new now.
            sim.schedule(SimTime::ZERO, move |sim| {
                assert_eq!(sim.now(), SimTime::from_nanos(10));
                f3.set(true);
            });
        });
        sim.run();
        assert!(fired.get());
    }

    #[test]
    fn event_limit_stops_livelock() {
        let sim = Sim::new();
        sim.set_event_limit(Some(100));
        let s = sim.clone();
        sim.spawn(async move {
            loop {
                s.delay(SimDelta::from_nanos(1)).await;
            }
        });
        let report = sim.run();
        assert_eq!(report.stop_reason, StopReason::EventLimit);
        assert_eq!(report.unfinished_tasks, 1);
    }

    #[test]
    fn event_limit_splits_a_same_instant_batch() {
        // Five timers at one instant with a budget of three: the run must
        // stop mid-batch and a resumed run must fire the remainder in the
        // original registration order.
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u32 {
            let log = Rc::clone(&log);
            sim.schedule(SimTime::from_nanos(100), move |_| log.borrow_mut().push(i));
        }
        sim.set_event_limit(Some(3));
        let report = sim.run();
        assert_eq!(report.stop_reason, StopReason::EventLimit);
        assert_eq!(report.events_fired, 3);
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
        assert_eq!(sim.pending_timers(), 2);
        sim.set_event_limit(None);
        let report = sim.run();
        assert_eq!(report.stop_reason, StopReason::Idle);
        assert_eq!(report.events_fired, 2);
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn time_limit_stops_before_horizon() {
        let sim = Sim::new();
        sim.set_time_limit(Some(SimTime::from_nanos(50)));
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.delay(SimDelta::from_nanos(200)).await;
        });
        let report = sim.run();
        assert_eq!(report.stop_reason, StopReason::TimeLimit);
        assert!(report.final_time <= SimTime::from_nanos(50));
        assert!(!h.is_finished());
    }

    #[test]
    fn halt_stops_without_advancing_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.delay(SimDelta::from_nanos(10)).await;
            s.halt();
            // The halt takes effect only once this task yields; later
            // events must never fire.
            s.delay(SimDelta::from_nanos(1000)).await;
            unreachable!("halted simulation advanced time");
        });
        let report = sim.run();
        assert_eq!(report.stop_reason, StopReason::Halted);
        assert_eq!(report.final_time, SimTime::from_nanos(10));
        assert!(!h.is_finished());
        assert!(sim.is_halted());
    }

    #[test]
    fn yield_now_interleaves_same_instant() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for round in 0..2u32 {
                    log.borrow_mut().push(i * 10 + round);
                    yield_now().await;
                }
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 10, 20, 1, 11, 21]);
    }

    #[test]
    fn order_audit_counts_simultaneous_events_without_violations() {
        let sim = Sim::new();
        for i in 0..4u32 {
            let _ = i;
            sim.schedule(SimTime::from_nanos(100), |_| {});
        }
        sim.schedule(SimTime::from_nanos(200), |_| {});
        let report = sim.run();
        // 4 events share t=100ns: three of them tie with their predecessor.
        assert_eq!(report.simultaneous_events, 3);
        // The (time, seq) tiebreaker resolves every tie — no races.
        assert_eq!(sim.order_violations(), 0);
    }

    #[test]
    fn run_report_counts_events() {
        let sim = Sim::new();
        for i in 0..4 {
            sim.schedule(SimTime::from_nanos(i), |_| {});
        }
        let report = sim.run();
        assert_eq!(report.events_fired, 4);
        assert_eq!(report.final_time, SimTime::from_nanos(3));
    }

    #[test]
    fn race_returns_first_winner() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let first = race(
                s.delay(SimDelta::from_nanos(10)),
                s.delay(SimDelta::from_nanos(20)),
            )
            .await;
            let second = race(
                s.delay(SimDelta::from_nanos(30)),
                s.delay(SimDelta::from_nanos(5)),
            )
            .await;
            (first, second)
        });
        sim.run();
        let (first, second) = h.try_take().unwrap();
        assert_eq!(first, Either::A(()));
        assert_eq!(second, Either::B(()));
    }

    #[test]
    fn race_ties_go_to_a() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            race(
                s.delay(SimDelta::from_nanos(7)),
                s.delay(SimDelta::from_nanos(7)),
            )
            .await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Either::A(()));
    }

    #[test]
    fn race_returns_values() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            match race(
                async {
                    s.delay(SimDelta::from_nanos(1)).await;
                    "fast"
                },
                async { "never-timed" },
            )
            .await
            {
                // The second future is ready immediately, so B wins even
                // though A was listed first: A is only preferred on ties
                // of *readiness at the same poll*.
                Either::A(v) => v,
                Either::B(v) => v,
            }
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), "never-timed");
    }

    #[test]
    fn zero_delay_completes_immediately() {
        let sim = Sim::new();
        let h = sim.spawn({
            let sim = sim.clone();
            async move {
                sim.delay(SimDelta::ZERO).await;
                sim.now()
            }
        });
        sim.run();
        assert_eq!(h.try_take(), Some(SimTime::ZERO));
    }

    #[test]
    fn pending_timers_tracks_the_event_heap() {
        let sim = Sim::new();
        assert_eq!(sim.pending_timers(), 0);
        sim.schedule(SimTime::from_nanos(10), |_| {});
        sim.schedule(SimTime::from_nanos(20), |_| {});
        assert_eq!(sim.pending_timers(), 2);
        // Probing mid-run must also work (and see the undrained tail).
        let sim2 = sim.clone();
        sim.schedule(SimTime::from_nanos(15), move |_| {
            assert_eq!(sim2.pending_timers(), 1, "only the 20ns timer remains");
        });
        sim.run();
        assert_eq!(sim.pending_timers(), 0);
    }

    #[test]
    fn pending_timers_excludes_cancelled_entries() {
        let sim = Sim::new();
        let h1 =
            sim.schedule_cancellable(SimTime::from_nanos(10), |_| panic!("cancelled timer fired"));
        sim.schedule(SimTime::from_nanos(20), |_| {});
        let h3 =
            sim.schedule_cancellable(SimTime::from_nanos(30), |_| panic!("cancelled timer fired"));
        assert_eq!(sim.pending_timers(), 3);
        assert!(sim.cancel_timer(h1));
        assert_eq!(sim.pending_timers(), 2, "cancelled entry excluded at once");
        assert!(sim.cancel_timer(h3));
        assert!(!sim.cancel_timer(h3), "double-cancel is a no-op");
        assert_eq!(sim.pending_timers(), 1);
        let report = sim.run();
        assert_eq!(report.events_fired, 1, "ghosts never fire");
        assert_eq!(
            report.final_time,
            SimTime::from_nanos(20),
            "the clock never advances to a cancelled instant"
        );
        assert_eq!(sim.pending_timers(), 0);
    }

    #[test]
    fn stale_cancel_handles_do_not_hit_reused_slots() {
        let sim = Sim::new();
        let h = sim.schedule_cancellable(SimTime::from_nanos(10), |_| panic!("fired"));
        assert!(sim.cancel_timer(h));
        let fired = Rc::new(Cell::new(false));
        let f = Rc::clone(&fired);
        // Reuses the freed slab slot.
        sim.schedule(SimTime::from_nanos(15), move |_| f.set(true));
        assert!(
            !sim.cancel_timer(h),
            "stale handle must not cancel the new timer"
        );
        sim.run();
        assert!(fired.get());
    }

    #[test]
    fn hooks_dispatch_tokens_in_schedule_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let l = Rc::clone(&log);
        let hook = sim.register_hook(move |_, token| l.borrow_mut().push(token));
        // Interleave hook events with boxed callbacks at one instant: the
        // shared seq counter keeps the combined order.
        sim.schedule_hook(SimTime::from_nanos(5), hook, 10);
        let l2 = Rc::clone(&log);
        sim.schedule(SimTime::from_nanos(5), move |_| l2.borrow_mut().push(11));
        sim.schedule_hook(SimTime::from_nanos(5), hook, 12);
        let h = sim.schedule_hook_cancellable(SimTime::from_nanos(6), hook, 99);
        assert!(sim.cancel_timer(h));
        let report = sim.run();
        assert_eq!(*log.borrow(), vec![10, 11, 12]);
        assert_eq!(report.events_fired, 3);
    }
}
