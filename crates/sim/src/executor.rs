//! The discrete-event simulation kernel and its async task executor.
//!
//! A [`Sim`] owns a virtual clock, a time-ordered event queue, and a set of
//! cooperatively scheduled async tasks. Tasks model the simulated processors:
//! they run in zero virtual time between `await` points and advance the clock
//! only by awaiting [`Sim::delay`] / [`Sim::sleep_until`] or by blocking on
//! synchronization primitives ([`crate::Notify`], [`crate::Semaphore`]).
//!
//! The executor is strictly single-threaded and deterministic: ties in the
//! event queue are broken by insertion sequence number, and the ready queue is
//! FIFO, so the same program produces the same virtual-time trace on every
//! run.
//!
//! # Examples
//!
//! ```
//! use nowlab_sim::{Sim, SimDelta};
//!
//! let sim = Sim::new();
//! let handle = sim.spawn({
//!     let sim = sim.clone();
//!     async move {
//!         sim.delay(SimDelta::from_micros(5.0)).await;
//!         sim.now()
//!     }
//! });
//! sim.run();
//! assert_eq!(handle.try_take().unwrap().as_nanos(), 5_000);
//! ```

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::time::{SimDelta, SimTime};

type TaskId = usize;
type BoxedTask = Pin<Box<dyn Future<Output = ()>>>;

/// Why [`Sim::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// No runnable tasks and no pending events remain.
    Idle,
    /// The configured event-count budget was exhausted (see
    /// [`Sim::set_event_limit`]). Used to detect livelock.
    EventLimit,
    /// The next event lies beyond the configured virtual-time horizon (see
    /// [`Sim::set_time_limit`]).
    TimeLimit,
    /// A task or callback requested an orderly stop (see [`Sim::halt`]) —
    /// e.g. a failure detector escalating an unrecoverable peer death.
    Halted,
}

/// Summary of one [`Sim::run`] invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Virtual time when the run stopped.
    pub final_time: SimTime,
    /// Total events fired (timer expirations and scheduled callbacks).
    pub events_fired: u64,
    /// Total task polls performed.
    pub polls: u64,
    /// Number of spawned tasks that have not completed.
    pub unfinished_tasks: usize,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Events that fired at the same virtual instant as their predecessor
    /// and therefore relied on the registration-sequence tiebreaker for
    /// their order. Counted only when the event-order audit is active
    /// (debug builds, or the `order-audit` feature); `0` otherwise.
    pub simultaneous_events: u64,
}

enum TimerAction {
    Wake(Waker),
    Call(Box<dyn FnOnce(&Sim)>),
}

/// Heap entry for one pending timer. The payload lives in the action slab
/// (`Inner::actions`), so sift operations move three words instead of the
/// whole `TimerAction`, and freed slots are recycled through a free list
/// rather than churning the allocator once per event.
///
/// Ordering is lexicographic over `(time, seq)` — the deterministic
/// tiebreaker the whole apparatus depends on. `seq` is strictly increasing
/// across registrations, so `slot` (last field) is never reached.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct TimerKey {
    time: SimTime,
    seq: u64,
    slot: u32,
}

/// One spawned task plus its reusable waker. The waker is created once at
/// spawn instead of once per poll: `Waker::from(Arc<TaskWaker>)` costs an
/// allocation, and tasks in a message-heavy simulation are polled many
/// thousands of times.
struct TaskSlot {
    fut: BoxedTask,
    waker: Waker,
}

struct Inner {
    timers: BinaryHeap<Reverse<TimerKey>>,
    /// Slab of pending timer actions, indexed by `TimerKey::slot`.
    actions: Vec<Option<TimerAction>>,
    /// Recyclable slab slots (free list).
    free_slots: Vec<u32>,
    tasks: Vec<Option<TaskSlot>>,
    live_tasks: usize,
    seq: u64,
    order_violations: u64,
}

impl Inner {
    /// Stores `action` in the slab, reusing a freed slot when available.
    fn alloc_slot(&mut self, action: TimerAction) -> u32 {
        match self.free_slots.pop() {
            Some(slot) => {
                self.actions[slot as usize] = Some(action);
                slot
            }
            None => {
                let slot = u32::try_from(self.actions.len()).expect("timer slab overflow");
                self.actions.push(Some(action));
                slot
            }
        }
    }
}

/// True when the runtime event-order audit is compiled in: every debug
/// build, plus release builds with the `order-audit` feature.
const fn order_audit_enabled() -> bool {
    cfg!(debug_assertions) || cfg!(feature = "order-audit")
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<Mutex<VecDeque<TaskId>>>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready
            .lock()
            .expect("sim ready queue poisoned")
            .push_back(self.id);
    }
}

/// Handle to a deterministic discrete-event simulation.
///
/// `Sim` is a cheap reference-counted handle; clone it freely into tasks.
/// See the crate documentation for an overview and example.
#[derive(Clone)]
pub struct Sim {
    now: Rc<Cell<SimTime>>,
    /// Deadline of the earliest pending timer — a cached copy of the heap
    /// top so the run loop's limit checks read a `Cell` instead of
    /// borrowing and peeking the heap.
    next_deadline: Rc<Cell<Option<SimTime>>>,
    /// Run budgets live in `Cell`s (not `Inner`) so the hot loop reads
    /// them without a `RefCell` borrow; callbacks may change them mid-run.
    event_limit: Rc<Cell<Option<u64>>>,
    time_limit: Rc<Cell<Option<SimTime>>>,
    /// Orderly-stop request flag (see [`Sim::halt`]).
    halted: Rc<Cell<bool>>,
    /// Event-density sampling boundary: the run loop compares the next
    /// event's time against this `Cell` and nothing else, so the feature
    /// costs one compare when disabled (`SimTime::MAX`). Sampling is
    /// passive — it schedules no events and cannot perturb the run.
    sample_boundary: Rc<Cell<SimTime>>,
    samples: Rc<RefCell<SampleState>>,
    inner: Rc<RefCell<Inner>>,
    ready: Arc<Mutex<VecDeque<TaskId>>>,
}

/// State of the passive event-density sampler (see
/// [`Sim::enable_event_sampling`]).
#[derive(Default)]
struct SampleState {
    /// Window length in nanoseconds (0 = disabled).
    window: u64,
    /// Events counted at the last window flush.
    last_events: u64,
    /// Events fired per completed window.
    counts: Vec<u64>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim").field("now", &self.now.get()).finish()
    }
}

impl Sim {
    /// Creates an empty simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty simulation pre-sized for roughly `tasks` spawned
    /// tasks (one per simulated processor, typically): the task table,
    /// ready queue, timer heap, and action slab reserve space up front so
    /// cluster construction does not grow them incrementally.
    pub fn with_capacity(tasks: usize) -> Self {
        // Each processor task usually keeps a few timers in flight
        // (delays, retransmit timers, NIC gap pacing).
        let timers = tasks.saturating_mul(4);
        Sim {
            now: Rc::new(Cell::new(SimTime::ZERO)),
            next_deadline: Rc::new(Cell::new(None)),
            event_limit: Rc::new(Cell::new(None)),
            time_limit: Rc::new(Cell::new(None)),
            halted: Rc::new(Cell::new(false)),
            sample_boundary: Rc::new(Cell::new(SimTime::MAX)),
            samples: Rc::new(RefCell::new(SampleState::default())),
            inner: Rc::new(RefCell::new(Inner {
                timers: BinaryHeap::with_capacity(timers),
                actions: Vec::with_capacity(timers),
                free_slots: Vec::with_capacity(timers),
                tasks: Vec::with_capacity(tasks),
                live_tasks: 0,
                seq: 0,
                order_violations: 0,
            })),
            ready: Arc::new(Mutex::new(VecDeque::with_capacity(tasks))),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now.get()
    }

    /// Number of timers waiting in the scheduler queue — how much future
    /// the event heap is holding right now. An O(1) observability probe
    /// for tracing/metrics; reading it cannot disturb event order.
    pub fn pending_timers(&self) -> usize {
        self.inner.borrow().timers.len()
    }

    /// Caps the total number of events a subsequent [`Sim::run`] may fire.
    ///
    /// Used to bail out of livelocked programs (the paper's Barnes at high
    /// overhead never completes; we stop and report
    /// [`StopReason::EventLimit`]).
    pub fn set_event_limit(&self, limit: Option<u64>) {
        self.event_limit.set(limit);
    }

    /// Caps virtual time: [`Sim::run`] stops before firing any event later
    /// than `limit`.
    pub fn set_time_limit(&self, limit: Option<SimTime>) {
        self.time_limit.set(limit);
    }

    /// Requests an orderly stop: the run loop finishes polling every task
    /// that is ready at the current instant, then returns with
    /// [`StopReason::Halted`] instead of advancing virtual time. Callable
    /// from inside tasks and scheduled callbacks; idempotent. Unlike the
    /// event/time limits this is an *in-simulation* decision (a failure
    /// detector giving up on a dead peer), so the instant it fires at is
    /// itself deterministic.
    pub fn halt(&self) {
        self.halted.set(true);
    }

    /// True if [`Sim::halt`] has been requested.
    pub fn is_halted(&self) -> bool {
        self.halted.get()
    }

    /// Starts counting fired events per fixed window of virtual time
    /// (the metrics registry's event-density series). Call immediately
    /// before [`Sim::run`]; any previously collected samples are
    /// discarded. The sampler is passive — it schedules nothing and adds
    /// one `Cell` compare per fired event — so enabling it cannot change
    /// the schedule, the event count, or any simulation result.
    pub fn enable_event_sampling(&self, window: SimDelta) {
        let w = window.as_nanos().max(1);
        *self.samples.borrow_mut() = SampleState {
            window: w,
            last_events: 0,
            counts: Vec::new(),
        };
        self.sample_boundary.set(SimTime::from_nanos(w));
    }

    /// Takes the per-window event counts collected since
    /// [`Sim::enable_event_sampling`] and disables sampling. Only
    /// *completed* windows appear; the caller apportions the residual
    /// (total events minus the returned sum) to the final partial window.
    pub fn take_event_samples(&self) -> Vec<u64> {
        self.sample_boundary.set(SimTime::MAX);
        std::mem::take(&mut self.samples.borrow_mut().counts)
    }

    /// Cold path of the event-density sampler: closes every window older
    /// than `now` (zero-filling skipped ones) and advances the boundary.
    #[cold]
    fn flush_event_samples(&self, now: SimTime, events_so_far: u64) {
        let mut st = self.samples.borrow_mut();
        if st.window == 0 {
            return;
        }
        // All events since the last flush fired before the old boundary,
        // so they belong to the first window being closed.
        let delta = events_so_far.saturating_sub(st.last_events);
        st.counts.push(delta);
        st.last_events = events_so_far;
        let mut boundary = self.sample_boundary.get().as_nanos();
        boundary = boundary.saturating_add(st.window);
        while now.as_nanos() >= boundary {
            st.counts.push(0);
            boundary = boundary.saturating_add(st.window);
        }
        self.sample_boundary.set(SimTime::from_nanos(boundary));
    }

    /// Event-order race detections accumulated across all [`Sim::run`]
    /// calls on this simulation.
    ///
    /// A violation is two events at the identical virtual instant whose
    /// firing order was *not* resolved by the strictly increasing
    /// registration sequence — i.e. the deterministic tiebreaker failed.
    /// With the current `(time, seq)` heap ordering this is impossible by
    /// construction; the audit exists to catch regressions (a reset `seq`
    /// counter, an alternative queue) the moment they produce a
    /// nondeterministic schedule. Always `0` unless the audit is active
    /// (debug builds, or the `order-audit` feature).
    pub fn order_violations(&self) -> u64 {
        self.inner.borrow().order_violations
    }

    /// Spawns an async task; it will first be polled by [`Sim::run`].
    ///
    /// Returns a [`JoinHandle`] from which the task's output can be awaited
    /// (inside the simulation) or taken (after `run`).
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let state = Rc::new(RefCell::new(JoinState {
            result: None,
            waiters: Vec::new(),
        }));
        let state2 = Rc::clone(&state);
        let wrapped = async move {
            let out = fut.await;
            let mut st = state2.borrow_mut();
            st.result = Some(out);
            for w in st.waiters.drain(..) {
                w.wake();
            }
        };
        let id = {
            let mut inner = self.inner.borrow_mut();
            let id = inner.tasks.len();
            let waker = Waker::from(Arc::new(TaskWaker {
                id,
                ready: Arc::clone(&self.ready),
            }));
            inner.tasks.push(Some(TaskSlot {
                fut: Box::pin(wrapped),
                waker,
            }));
            inner.live_tasks += 1;
            id
        };
        self.ready
            .lock()
            .expect("sim ready queue poisoned")
            .push_back(id);
        JoinHandle { state }
    }

    /// Schedules `f` to run at virtual time `at` (clamped to now if in the
    /// past). Callbacks run in zero virtual time and receive the `Sim` handle.
    pub fn schedule<F>(&self, at: SimTime, f: F)
    where
        F: FnOnce(&Sim) + 'static,
    {
        let at = at.max(self.now());
        self.push_timer(at, TimerAction::Call(Box::new(f)));
    }

    /// Registers a timer action at `time`, maintaining the cached earliest
    /// deadline.
    fn push_timer(&self, time: SimTime, action: TimerAction) {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.seq;
        inner.seq += 1;
        let slot = inner.alloc_slot(action);
        inner.timers.push(Reverse(TimerKey { time, seq, slot }));
        match self.next_deadline.get() {
            Some(d) if d <= time => {}
            _ => self.next_deadline.set(Some(time)),
        }
    }

    /// Schedules `f` to run `after` from now.
    pub fn schedule_in<F>(&self, after: SimDelta, f: F)
    where
        F: FnOnce(&Sim) + 'static,
    {
        self.schedule(self.now() + after, f);
    }

    /// Future that completes at virtual time `deadline` (immediately if the
    /// deadline has passed).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// Future that completes after `delta` of virtual time.
    pub fn delay(&self, delta: SimDelta) -> Sleep {
        self.sleep_until(self.now() + delta)
    }

    fn register_timer_wake(&self, deadline: SimTime, waker: Waker) {
        self.push_timer(deadline, TimerAction::Wake(waker));
    }

    fn poll_task(&self, id: TaskId) -> u64 {
        let slot = {
            let mut inner = self.inner.borrow_mut();
            match inner.tasks.get_mut(id) {
                Some(slot) => slot.take(),
                None => None,
            }
        };
        let Some(mut slot) = slot else { return 0 };
        let mut cx = Context::from_waker(&slot.waker);
        match slot.fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.inner.borrow_mut().live_tasks -= 1;
            }
            Poll::Pending => {
                self.inner.borrow_mut().tasks[id] = Some(slot);
            }
        }
        1
    }

    /// Runs the simulation until no work remains or a limit is hit.
    ///
    /// Determinism: ready tasks are polled FIFO; simultaneous timers fire in
    /// registration order.
    pub fn run(&self) -> RunReport {
        let mut events: u64 = 0;
        let mut polls: u64 = 0;
        let mut simultaneous: u64 = 0;
        // Event-order race detector: remembers the (time, seq) of the last
        // fired event so ties at the same virtual instant can be audited.
        let mut last_fired: Option<(SimTime, u64)> = None;
        let stop_reason = loop {
            // Drain all ready tasks at the current instant.
            loop {
                let next = self
                    .ready
                    .lock()
                    .expect("sim ready queue poisoned")
                    .pop_front();
                match next {
                    Some(id) => polls += self.poll_task(id),
                    None => break,
                }
            }
            if self.halted.get() {
                break StopReason::Halted;
            }
            // Advance virtual time to the next event. The earliest
            // deadline is cached in a `Cell`, so the empty/over-horizon
            // checks cost no heap peek and no `RefCell` borrow.
            if let Some(limit) = self.event_limit.get() {
                if events >= limit {
                    break StopReason::EventLimit;
                }
            }
            let Some(next) = self.next_deadline.get() else {
                break StopReason::Idle;
            };
            if let Some(tl) = self.time_limit.get() {
                if next > tl {
                    break StopReason::TimeLimit;
                }
            }
            let (key, action) = {
                let mut inner = self.inner.borrow_mut();
                let Reverse(key) = inner
                    .timers
                    .pop()
                    .expect("cached deadline with empty timer heap");
                let action = inner.actions[key.slot as usize]
                    .take()
                    .expect("timer slab slot already taken");
                inner.free_slots.push(key.slot);
                self.next_deadline
                    .set(inner.timers.peek().map(|Reverse(k)| k.time));
                (key, action)
            };
            debug_assert!(key.time >= self.now.get(), "event queue went backwards");
            debug_assert_eq!(key.time, next, "cached deadline out of sync");
            if order_audit_enabled() {
                if let Some((t, s)) = last_fired {
                    if key.time == t {
                        simultaneous += 1;
                        if key.seq <= s {
                            self.inner.borrow_mut().order_violations += 1;
                            debug_assert!(
                                false,
                                "event-order race: two events at {:?} without a \
                                 deterministic tiebreaker (seq {} fired after {})",
                                key.time, key.seq, s
                            );
                        }
                    }
                }
                last_fired = Some((key.time, key.seq));
            }
            self.now.set(key.time);
            if key.time >= self.sample_boundary.get() {
                self.flush_event_samples(key.time, events);
            }
            events += 1;
            match action {
                TimerAction::Wake(w) => w.wake(),
                TimerAction::Call(f) => f(self),
            }
        };
        RunReport {
            final_time: self.now(),
            events_fired: events,
            polls,
            unfinished_tasks: self.inner.borrow().live_tasks,
            stop_reason,
            simultaneous_events: simultaneous,
        }
    }
}

/// Future returned by [`Sim::sleep_until`] and [`Sim::delay`].
#[derive(Debug)]
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            let deadline = self.deadline;
            self.sim.register_timer_wake(deadline, cx.waker().clone());
            self.registered = true;
        }
        Poll::Pending
    }
}

struct JoinState<T> {
    result: Option<T>,
    waiters: Vec<Waker>,
}

/// Handle to a spawned task's output.
///
/// Await it inside the simulation, or call [`JoinHandle::try_take`] after
/// [`Sim::run`] returns.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let done = self.state.borrow().result.is_some();
        f.debug_struct("JoinHandle")
            .field("finished", &done)
            .finish()
    }
}

impl<T> JoinHandle<T> {
    /// Takes the task's output if it has completed.
    pub fn try_take(&self) -> Option<T> {
        self.state.borrow_mut().result.take()
    }

    /// True if the task has completed (and its output not yet taken).
    pub fn is_finished(&self) -> bool {
        self.state.borrow().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        match st.result.take() {
            Some(v) => Poll::Ready(v),
            None => {
                st.waiters.push(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Races two futures: completes when either completes, returning which one
/// won (ties go to `a`). The loser is dropped.
///
/// The contestants are pinned on the caller's stack (`pin!`), not boxed:
/// `race` sits on the AM layer's timeout path, so the two heap
/// allocations the old boxed implementation paid per call were a
/// measurable share of per-message software cost.
pub async fn race<A, B>(a: A, b: B) -> Either<A::Output, B::Output>
where
    A: Future,
    B: Future,
{
    let mut a = std::pin::pin!(a);
    let mut b = std::pin::pin!(b);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = a.as_mut().poll(cx) {
            return Poll::Ready(Either::A(v));
        }
        if let Poll::Ready(v) = b.as_mut().poll(cx) {
            return Poll::Ready(Either::B(v));
        }
        Poll::Pending
    })
    .await
}

/// Result of [`race`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished first.
    A(A),
    /// The second future finished first.
    B(B),
}

/// Future that yields once, letting other ready tasks run at the same instant.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug, Default)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_advances_clock() {
        let sim = Sim::new();
        let h = sim.spawn({
            let sim = sim.clone();
            async move {
                sim.delay(SimDelta::from_micros_int(7)).await;
                sim.now()
            }
        });
        let report = sim.run();
        assert_eq!(h.try_take().unwrap(), SimTime::from_nanos(7_000));
        assert_eq!(report.stop_reason, StopReason::Idle);
        assert_eq!(report.unfinished_tasks, 0);
    }

    #[test]
    fn event_sampling_counts_every_event_and_changes_nothing() {
        let build = |sample: bool| {
            let sim = Sim::new();
            for i in 0..12u32 {
                // Exponential spacing: several events in the first 100ns
                // window, then sparse with empty windows in between.
                sim.schedule(SimTime::from_nanos(1 << i), |_| {});
            }
            if sample {
                sim.enable_event_sampling(SimDelta::from_nanos(100));
            }
            let report = sim.run();
            (report, sim.take_event_samples())
        };
        let (plain, none) = build(false);
        let (sampled, counts) = build(true);
        assert!(none.is_empty());
        assert_eq!(plain, sampled, "sampling must not perturb the run");
        // Completed windows plus the residual account for every event.
        let residual = sampled.events_fired - counts.iter().sum::<u64>();
        assert!(residual > 0, "last partial window holds the rest");
        // The first window holds the events at 1, 2, ..., 64.
        assert_eq!(counts[0], 7);
        // Windows with no events are zero-filled, e.g. [300, 400).
        assert!(counts.contains(&0), "{counts:?}");
    }

    #[test]
    fn simultaneous_timers_fire_in_registration_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u32 {
            let log = Rc::clone(&log);
            sim.schedule(SimTime::from_nanos(100), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_interleave_by_time_not_spawn_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let l1 = Rc::clone(&log);
        let s1 = sim.clone();
        sim.spawn(async move {
            s1.delay(SimDelta::from_nanos(20)).await;
            l1.borrow_mut().push("late");
        });
        let l2 = Rc::clone(&log);
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.delay(SimDelta::from_nanos(10)).await;
            l2.borrow_mut().push("early");
        });
        sim.run();
        assert_eq!(*log.borrow(), vec!["early", "late"]);
    }

    #[test]
    fn join_handle_awaitable_within_sim() {
        let sim = Sim::new();
        let inner = sim.spawn({
            let sim = sim.clone();
            async move {
                sim.delay(SimDelta::from_nanos(42)).await;
                7u32
            }
        });
        let outer = sim.spawn(async move { inner.await * 2 });
        sim.run();
        assert_eq!(outer.try_take(), Some(14));
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let sim = Sim::new();
        let fired = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&fired);
        sim.schedule_in(SimDelta::from_nanos(10), move |sim| {
            let f3 = Rc::clone(&f2);
            // Schedule "in the past" relative to the new now.
            sim.schedule(SimTime::ZERO, move |sim| {
                assert_eq!(sim.now(), SimTime::from_nanos(10));
                f3.set(true);
            });
        });
        sim.run();
        assert!(fired.get());
    }

    #[test]
    fn event_limit_stops_livelock() {
        let sim = Sim::new();
        sim.set_event_limit(Some(100));
        let s = sim.clone();
        sim.spawn(async move {
            loop {
                s.delay(SimDelta::from_nanos(1)).await;
            }
        });
        let report = sim.run();
        assert_eq!(report.stop_reason, StopReason::EventLimit);
        assert_eq!(report.unfinished_tasks, 1);
    }

    #[test]
    fn time_limit_stops_before_horizon() {
        let sim = Sim::new();
        sim.set_time_limit(Some(SimTime::from_nanos(50)));
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.delay(SimDelta::from_nanos(200)).await;
        });
        let report = sim.run();
        assert_eq!(report.stop_reason, StopReason::TimeLimit);
        assert!(report.final_time <= SimTime::from_nanos(50));
        assert!(!h.is_finished());
    }

    #[test]
    fn halt_stops_without_advancing_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.delay(SimDelta::from_nanos(10)).await;
            s.halt();
            // The halt takes effect only once this task yields; later
            // events must never fire.
            s.delay(SimDelta::from_nanos(1000)).await;
            unreachable!("halted simulation advanced time");
        });
        let report = sim.run();
        assert_eq!(report.stop_reason, StopReason::Halted);
        assert_eq!(report.final_time, SimTime::from_nanos(10));
        assert!(!h.is_finished());
        assert!(sim.is_halted());
    }

    #[test]
    fn yield_now_interleaves_same_instant() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for round in 0..2u32 {
                    log.borrow_mut().push(i * 10 + round);
                    yield_now().await;
                }
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 10, 20, 1, 11, 21]);
    }

    #[test]
    fn order_audit_counts_simultaneous_events_without_violations() {
        let sim = Sim::new();
        for i in 0..4u32 {
            let _ = i;
            sim.schedule(SimTime::from_nanos(100), |_| {});
        }
        sim.schedule(SimTime::from_nanos(200), |_| {});
        let report = sim.run();
        // 4 events share t=100ns: three of them tie with their predecessor.
        assert_eq!(report.simultaneous_events, 3);
        // The (time, seq) tiebreaker resolves every tie — no races.
        assert_eq!(sim.order_violations(), 0);
    }

    #[test]
    fn run_report_counts_events() {
        let sim = Sim::new();
        for i in 0..4 {
            sim.schedule(SimTime::from_nanos(i), |_| {});
        }
        let report = sim.run();
        assert_eq!(report.events_fired, 4);
        assert_eq!(report.final_time, SimTime::from_nanos(3));
    }

    #[test]
    fn race_returns_first_winner() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let first = race(
                s.delay(SimDelta::from_nanos(10)),
                s.delay(SimDelta::from_nanos(20)),
            )
            .await;
            let second = race(
                s.delay(SimDelta::from_nanos(30)),
                s.delay(SimDelta::from_nanos(5)),
            )
            .await;
            (first, second)
        });
        sim.run();
        let (first, second) = h.try_take().unwrap();
        assert_eq!(first, Either::A(()));
        assert_eq!(second, Either::B(()));
    }

    #[test]
    fn race_ties_go_to_a() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            race(
                s.delay(SimDelta::from_nanos(7)),
                s.delay(SimDelta::from_nanos(7)),
            )
            .await
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), Either::A(()));
    }

    #[test]
    fn race_returns_values() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            match race(
                async {
                    s.delay(SimDelta::from_nanos(1)).await;
                    "fast"
                },
                async { "never-timed" },
            )
            .await
            {
                // The second future is ready immediately, so B wins even
                // though A was listed first: A is only preferred on ties
                // of *readiness at the same poll*.
                Either::A(v) => v,
                Either::B(v) => v,
            }
        });
        sim.run();
        assert_eq!(h.try_take().unwrap(), "never-timed");
    }

    #[test]
    fn zero_delay_completes_immediately() {
        let sim = Sim::new();
        let h = sim.spawn({
            let sim = sim.clone();
            async move {
                sim.delay(SimDelta::ZERO).await;
                sim.now()
            }
        });
        sim.run();
        assert_eq!(h.try_take(), Some(SimTime::ZERO));
    }

    #[test]
    fn pending_timers_tracks_the_event_heap() {
        let sim = Sim::new();
        assert_eq!(sim.pending_timers(), 0);
        sim.schedule(SimTime::from_nanos(10), |_| {});
        sim.schedule(SimTime::from_nanos(20), |_| {});
        assert_eq!(sim.pending_timers(), 2);
        // Probing mid-run must also work (and see the undrained tail).
        let sim2 = sim.clone();
        sim.schedule(SimTime::from_nanos(15), move |_| {
            assert_eq!(sim2.pending_timers(), 1, "only the 20ns timer remains");
        });
        sim.run();
        assert_eq!(sim.pending_timers(), 0);
    }
}
