//! Hierarchical timer wheel: the executor's time-ordered event queue.
//!
//! Replaces the `BinaryHeap<Reverse<TimerKey>>` the kernel used through
//! PR 7. The heap paid `O(log n)` sift cost *per event* on both push and
//! pop, and popping same-instant ties one at a time forced a
//! borrow→pop→release round trip per event. The wheel makes the common
//! case — a timer landing within a few hundred microseconds of now —
//! an `O(1)` push into a bucket, and extracts *all* timers at one
//! instant as a single batch.
//!
//! # Structure
//!
//! * **Ring.** `num_buckets` (a power of two) buckets, each spanning
//!   `2^shift` nanoseconds of virtual time. A timer at time `t` lives in
//!   bucket number `t >> shift`; the ring slot is the bucket number
//!   masked by `num_buckets - 1`. A slot is never shared by two live
//!   bucket numbers: an entry is only accepted into the ring while its
//!   bucket number lies within the horizon `[cursor, cursor +
//!   num_buckets)`, and the cursor only advances past fully drained
//!   buckets.
//! * **Occupancy bitmap.** One bit per ring slot, so "find the next
//!   non-empty bucket" is a handful of word scans instead of walking
//!   `Vec` headers.
//! * **Overflow.** Timers beyond the horizon (retransmit backoffs,
//!   long compute spans, far `sleep_until`s) go to a conventional
//!   `(time, seq)`-ordered min-heap and are *promoted* into the ring as
//!   the cursor approaches them.
//!
//! # Determinism
//!
//! The kernel's contract is that events fire in strictly ascending
//! `(time, seq)` lexicographic order — `seq` being the global
//! registration sequence number. The wheel preserves it exactly:
//!
//! * Buckets partition time, so draining the earliest non-empty bucket
//!   first yields globally ascending times.
//! * Within a bucket, a batch is every entry carrying the minimal time;
//!   the batch is then sorted by `seq`. Entries pushed directly arrive
//!   already in `seq` order, but entries *promoted* from the overflow
//!   heap can interleave with later direct pushes at the same instant,
//!   so the (almost always no-op) sort is what makes wheel order
//!   bit-identical to the old heap order. `crates/sim/tests/
//!   wheel_vs_heap.rs` replays randomized workloads against a reference
//!   heap to hold this line.
//!
//! The wheel stores only `(time, seq, slot)` keys; payloads live in the
//! executor's action slab, which is also where lazy cancellation is
//! resolved (a cancelled entry's slot no longer names it — see
//! `executor.rs`).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Log2 of the virtual-time span of one ring bucket, in nanoseconds.
///
/// Geometry is driven by the LogGP sweeps this kernel exists to run:
/// latency and overhead parameters range up to ~100 µs, and a timer that
/// misses the ring horizon is handled *twice* (overflow-heap push, then
/// promotion into the ring) — strictly more work than the old binary
/// heap did. 256 ns buckets with a ≥1024-bucket ring give a ≥262 µs
/// horizon, so delivery, gap-pacing, overhead, and sweep-scale latency
/// timers all take the O(1) ring path; only genuinely far timers
/// (retransmit backstops, heartbeats) pay for the heap. Distinct
/// instants sharing a 256 ns bucket are separated at extraction time, so
/// the span affects constant factors, never ordering.
const BUCKET_SHIFT: u32 = 8;

/// Ring size bounds: at least 1024 buckets (262 µs horizon), at most
/// 8192 (2.1 ms) — past that, promotion from the overflow heap is
/// cheaper than the larger bitmap scans.
const MIN_BUCKETS: usize = 1024;
const MAX_BUCKETS: usize = 8192;

/// One pending timer: when, which registration, and which action-slab
/// slot holds its payload.
///
/// Ordering is lexicographic over `(time, seq)` — the deterministic
/// tiebreaker the whole apparatus depends on. `seq` is strictly
/// increasing across registrations, so `slot` (last field) is never
/// reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct TimerEntry {
    pub time: SimTime,
    pub seq: u64,
    pub slot: u32,
}

/// Capacity and occupancy probe for the wheel (see
/// [`crate::Sim::scheduler_stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Ring buckets allocated. Fixed at construction; never grows.
    pub ring_buckets: usize,
    /// Sum of the per-bucket `Vec` capacities (allocation churn probe:
    /// steady-state workloads stop growing this after warm-up).
    pub bucket_capacity: usize,
    /// Entries currently parked in the overflow heap (far timers).
    pub overflow_len: usize,
    /// Total entries tracked (live + lazily-cancelled).
    pub entries: usize,
    /// Entries whose action was cancelled but whose wheel entry has not
    /// yet been reached and discarded.
    pub cancelled: usize,
}

pub(crate) struct TimerWheel {
    /// The ring. Allocated once; the bucket *array* never grows (the
    /// per-bucket `Vec`s grow amortized and keep their capacity).
    buckets: Box<[Vec<TimerEntry>]>,
    /// One bit per ring slot: set iff the bucket is non-empty.
    occupied: Box<[u64]>,
    /// Ring index mask (`buckets.len() - 1`).
    mask: u64,
    /// Lowest bucket number that may still hold ring entries. All ring
    /// entries have bucket numbers in `[cursor, cursor + buckets.len())`.
    cursor: u64,
    /// Far timers, beyond the ring horizon at push time.
    overflow: BinaryHeap<Reverse<TimerEntry>>,
    /// Total entries (ring + overflow), including lazily-cancelled ones.
    len: usize,
}

impl TimerWheel {
    /// A wheel pre-sized for roughly `timers` concurrently pending
    /// timers (the executor's ≈4-per-task heuristic feeds this from
    /// `Sim::with_capacity`).
    pub(crate) fn with_capacity(timers: usize) -> Self {
        let n = timers.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        TimerWheel {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; n / 64].into_boxed_slice(),
            mask: (n - 1) as u64,
            cursor: 0,
            overflow: BinaryHeap::with_capacity(timers),
            len: 0,
        }
    }

    /// Total entries tracked, including lazily-cancelled ones.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Capacity/occupancy snapshot (`cancelled` is filled in by the
    /// executor, which owns the cancellation count).
    pub(crate) fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            ring_buckets: self.buckets.len(),
            bucket_capacity: self.buckets.iter().map(Vec::capacity).sum(),
            overflow_len: self.overflow.len(),
            entries: self.len,
            cancelled: 0,
        }
    }

    /// Inserts an entry. `entry.time` must not precede the instant of
    /// the most recently extracted batch (the executor clamps to `now`).
    pub(crate) fn push(&mut self, entry: TimerEntry) {
        self.len += 1;
        let bn = entry.time.as_nanos() >> BUCKET_SHIFT;
        debug_assert!(bn >= self.cursor, "timer wheel pushed into the past");
        if bn >= self.cursor + self.buckets.len() as u64 {
            self.overflow.push(Reverse(entry));
        } else {
            let idx = (bn & self.mask) as usize;
            self.buckets[idx].push(entry);
            self.occupied[idx / 64] |= 1 << (idx % 64);
        }
    }

    /// True when no entries remain (ring or overflow).
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Earliest pending time across ring and overflow, without draining
    /// anything. A full scan — used only on cold paths (reinsertion after
    /// an early stop); the hot loop tracks a *lower bound* instead, which
    /// the executor re-validates after extraction.
    pub(crate) fn peek_next(&self) -> Option<SimTime> {
        let ring = self
            .first_occupied()
            .map(|idx| bucket_min(&self.buckets[idx]));
        let far = self.overflow.peek().map(|Reverse(e)| e.time);
        match (ring, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Extracts every entry at the earliest pending instant, in `seq`
    /// order, into `out`. Returns that instant, or `None` if the wheel
    /// is empty. One call replaces a borrow→pop→release round trip per
    /// event — the batch-drain move of the raw-speed campaign.
    ///
    /// Invariant used here: [`Self::promote`] runs after every cursor
    /// advance, so between calls every overflow entry's bucket lies at or
    /// beyond `cursor + num_buckets` — strictly after every ring bucket.
    /// The ring's first occupied bucket therefore holds the global
    /// minimum whenever the ring is non-empty, and the overflow heap is
    /// consulted only when the ring has drained completely.
    pub(crate) fn take_batch(&mut self, out: &mut Vec<TimerEntry>) -> Option<SimTime> {
        debug_assert!(out.is_empty());
        if self.len == 0 {
            return None;
        }
        let idx = match self.first_occupied() {
            Some(idx) => idx,
            None => {
                // Ring empty, overflow not: jump the cursor to the far
                // cluster and pull it in.
                let Reverse(top) = *self.overflow.peek().expect("len > 0 with empty ring");
                self.cursor = top.time.as_nanos() >> BUCKET_SHIFT;
                self.promote();
                self.first_occupied().expect("promotion filled the ring")
            }
        };
        let bucket = &mut self.buckets[idx];
        // One pass: the minimum time, and whether the bucket is uniform
        // (a single instant — the common case at 64 ns per bucket).
        let mut t = bucket[0].time;
        let mut uniform = true;
        for e in &bucket[1..] {
            if e.time != t {
                uniform = false;
                if e.time < t {
                    t = e.time;
                }
            }
        }
        if uniform {
            // Whole bucket fires: move it out without compaction.
            out.append(bucket);
            self.occupied[idx / 64] &= !(1 << (idx % 64));
        } else {
            // Partition preserving order: ties keep their push order,
            // which for direct pushes is already seq order.
            bucket.retain(|e| {
                if e.time == t {
                    out.push(*e);
                    false
                } else {
                    true
                }
            });
        }
        // Promoted entries were appended behind direct pushes regardless
        // of seq; restore the global tiebreaker. Direct pushes arrive in
        // seq order, so the sort almost never actually runs.
        if !out.is_sorted_by_key(|e| e.seq) {
            out.sort_unstable_by_key(|e| e.seq);
        }
        self.len -= out.len();
        // The extracted bucket's number is exactly `t >> shift`; advance
        // the cursor there and re-establish the promotion invariant.
        self.cursor = t.as_nanos() >> BUCKET_SHIFT;
        if let Some(Reverse(top)) = self.overflow.peek() {
            if (top.time.as_nanos() >> BUCKET_SHIFT) < self.cursor + self.buckets.len() as u64 {
                self.promote();
            }
        }
        Some(t)
    }

    /// Moves every overflow entry that now falls within the ring horizon
    /// into its bucket.
    #[cold]
    fn promote(&mut self) {
        let horizon = self.cursor + self.buckets.len() as u64;
        while let Some(Reverse(top)) = self.overflow.peek() {
            if top.time.as_nanos() >> BUCKET_SHIFT >= horizon {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked entry vanished");
            let idx = ((e.time.as_nanos() >> BUCKET_SHIFT) & self.mask) as usize;
            self.buckets[idx].push(e);
            self.occupied[idx / 64] |= 1 << (idx % 64);
        }
    }

    /// Ring index of the first occupied bucket in circular order from
    /// the cursor, or `None` if the ring is empty.
    fn first_occupied(&self) -> Option<usize> {
        let n = self.buckets.len();
        let words = self.occupied.len();
        let start = (self.cursor & self.mask) as usize;
        let (sw, sb) = (start / 64, start % 64);
        // First word: mask off bits below the cursor slot, then walk the
        // whole bitmap once (wrapping), finally re-check the low bits of
        // the first word.
        let head = self.occupied[sw] & (!0u64 << sb);
        if head != 0 {
            return Some(sw * 64 + head.trailing_zeros() as usize);
        }
        for off in 1..words {
            let w = (sw + off) % words;
            if self.occupied[w] != 0 {
                return Some(w * 64 + self.occupied[w].trailing_zeros() as usize);
            }
        }
        let tail = self.occupied[sw] & !(!0u64 << sb);
        if tail != 0 {
            return Some(sw * 64 + tail.trailing_zeros() as usize);
        }
        let _ = n;
        None
    }
}

/// Minimum time within a non-empty bucket.
fn bucket_min(bucket: &[TimerEntry]) -> SimTime {
    debug_assert!(!bucket.is_empty());
    let mut t = SimTime::MAX;
    for e in bucket {
        if e.time < t {
            t = e.time;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(time: u64, seq: u64) -> TimerEntry {
        TimerEntry {
            time: SimTime::from_nanos(time),
            seq,
            slot: seq as u32,
        }
    }

    fn drain_all(w: &mut TimerWheel) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut batch = Vec::new();
        while let Some(t) = w.take_batch(&mut batch) {
            for entry in batch.drain(..) {
                assert_eq!(entry.time, t);
                out.push((t.as_nanos(), entry.seq));
            }
        }
        out
    }

    #[test]
    fn orders_across_buckets_and_overflow() {
        let mut w = TimerWheel::with_capacity(0);
        // Far beyond the minimum ring horizon.
        w.push(e(1_000_000, 0));
        w.push(e(10, 1));
        w.push(e(70, 2));
        w.push(e(10, 3));
        assert_eq!(w.peek_next(), Some(SimTime::from_nanos(10)));
        assert_eq!(
            drain_all(&mut w),
            vec![(10, 1), (10, 3), (70, 2), (1_000_000, 0)]
        );
        assert_eq!(w.len(), 0);
        assert_eq!(w.peek_next(), None);
    }

    #[test]
    fn same_instant_ties_form_one_batch_in_seq_order() {
        let mut w = TimerWheel::with_capacity(0);
        for seq in 0..5 {
            w.push(e(100, seq));
        }
        let mut batch = Vec::new();
        let t = w.take_batch(&mut batch).unwrap();
        assert_eq!(t, SimTime::from_nanos(100));
        assert_eq!(
            batch.iter().map(|x| x.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn distinct_instants_in_one_bucket_split_batches() {
        let mut w = TimerWheel::with_capacity(0);
        // 3 and 5 share bucket 0 but are distinct instants.
        w.push(e(5, 0));
        w.push(e(3, 1));
        w.push(e(5, 2));
        assert_eq!(drain_all(&mut w), vec![(3, 1), (5, 0), (5, 2)]);
    }

    #[test]
    fn promoted_overflow_tie_merges_into_the_direct_batch() {
        let mut w = TimerWheel::with_capacity(0);
        let horizon = (MIN_BUCKETS as u64) << BUCKET_SHIFT;
        // seq 0 goes to overflow (beyond horizon from cursor 0).
        w.push(e(horizon + 10, 0));
        // Drain a near timer so the cursor advances and the horizon
        // swallows the overflow entry.
        w.push(e(horizon - 64, 1));
        let mut batch = Vec::new();
        assert_eq!(
            w.take_batch(&mut batch),
            Some(SimTime::from_nanos(horizon - 64))
        );
        batch.clear();
        // A direct push at the same instant as the promoted entry, with
        // a *later* seq: the batch must still come out in seq order.
        w.push(e(horizon + 10, 2));
        let t = w.take_batch(&mut batch).unwrap();
        assert_eq!(t, SimTime::from_nanos(horizon + 10));
        assert_eq!(batch.iter().map(|x| x.seq).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn ring_slots_are_reused_as_the_cursor_laps() {
        let mut w = TimerWheel::with_capacity(0);
        let span = 1u64 << BUCKET_SHIFT; // one bucket
        let mut expect = Vec::new();
        // March far past one full ring revolution, two timers per step.
        for i in 0..600u64 {
            let t = i * span;
            w.push(e(t, 2 * i));
            w.push(e(t, 2 * i + 1));
            expect.push((t, 2 * i));
            expect.push((t, 2 * i + 1));
            // Interleave draining so pushes stay within the horizon.
            if i % 3 == 2 {
                let mut batch = Vec::new();
                while w.take_batch(&mut batch).is_some() {
                    for entry in batch.drain(..) {
                        let (et, eseq) = expect.remove(0);
                        assert_eq!((entry.time.as_nanos(), entry.seq), (et, eseq));
                    }
                }
            }
        }
        for (et, eseq) in std::mem::take(&mut expect) {
            let mut batch = Vec::new();
            if let Some(t) = w.take_batch(&mut batch) {
                assert_eq!(t.as_nanos(), et);
                assert_eq!(batch[0].seq, eseq);
                for extra in &batch[1..] {
                    expect.push((extra.time.as_nanos(), extra.seq));
                }
            }
        }
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn ring_never_grows() {
        let mut w = TimerWheel::with_capacity(32);
        let before = w.stats().ring_buckets;
        for i in 0..10_000u64 {
            w.push(e(i * 7, i));
        }
        let mut batch = Vec::new();
        while w.take_batch(&mut batch).is_some() {
            batch.clear();
        }
        assert_eq!(w.stats().ring_buckets, before);
    }
}
