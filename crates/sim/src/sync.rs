//! Task synchronization primitives for the single-threaded simulation.
//!
//! These are virtual-time-free: waiting on them consumes no simulated time by
//! itself (time only advances through [`crate::Sim::delay`] or other timed
//! futures). They exist to express *ordering* between simulated processes.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, Waker};

/// An epoch-based notification primitive (a condition variable for tasks).
///
/// Typical use is a condition loop:
///
/// ```
/// use std::rc::Rc;
/// use std::cell::Cell;
/// use nowlab_sim::{Sim, Notify};
///
/// let sim = Sim::new();
/// let flag = Rc::new(Cell::new(false));
/// let notify = Rc::new(Notify::new());
///
/// let (f, n) = (Rc::clone(&flag), Rc::clone(&notify));
/// let waiter = sim.spawn(async move {
///     while !f.get() {
///         n.notified().await;
///     }
///     true
/// });
///
/// let (f, n) = (flag, notify);
/// sim.spawn(async move {
///     f.set(true);
///     n.notify_all();
/// });
///
/// sim.run();
/// assert_eq!(waiter.try_take(), Some(true));
/// ```
///
/// Wakeups may be spurious from the waiter's perspective (every `notify_all`
/// wakes every waiter), so always re-check the condition.
#[derive(Default)]
pub struct Notify {
    epoch: Cell<u64>,
    waiters: RefCell<Vec<Waker>>,
}

impl fmt::Debug for Notify {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Notify")
            .field("epoch", &self.epoch.get())
            .field("waiters", &self.waiters.borrow().len())
            .finish()
    }
}

impl Notify {
    /// Creates a notifier with no waiters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wakes every task currently waiting in [`Notify::notified`].
    pub fn notify_all(&self) {
        self.epoch.set(self.epoch.get() + 1);
        for w in self.waiters.borrow_mut().drain(..) {
            w.wake();
        }
    }

    /// Future that completes at the next [`Notify::notify_all`] issued after
    /// this call.
    pub fn notified(&self) -> Notified<'_> {
        Notified {
            notify: self,
            start_epoch: self.epoch.get(),
        }
    }

    /// Number of notifications issued so far (diagnostic).
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }
}

/// Future returned by [`Notify::notified`].
#[derive(Debug)]
pub struct Notified<'a> {
    notify: &'a Notify,
    start_epoch: u64,
}

impl Future for Notified<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.notify.epoch.get() > self.start_epoch {
            Poll::Ready(())
        } else {
            self.notify.waiters.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// A counting semaphore for simulated tasks.
///
/// Used, e.g., to model bounded queues. Fair in the sense that all waiters are
/// woken on release and re-race deterministically (FIFO ready queue).
///
/// # Examples
///
/// ```
/// use std::rc::Rc;
/// use nowlab_sim::{Sim, Semaphore};
///
/// let sim = Sim::new();
/// let sem = Rc::new(Semaphore::new(1));
/// let s2 = Rc::clone(&sem);
/// let h = sim.spawn(async move {
///     s2.acquire().await;
///     s2.release();
///     true
/// });
/// sim.run();
/// assert_eq!(h.try_take(), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct Semaphore {
    permits: Cell<usize>,
    notify: Notify,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            permits: Cell::new(permits),
            notify: Notify::new(),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.permits.get()
    }

    /// Acquires one permit, waiting (in zero virtual time) until available.
    pub async fn acquire(&self) {
        loop {
            let p = self.permits.get();
            if p > 0 {
                self.permits.set(p - 1);
                return;
            }
            self.notify.notified().await;
        }
    }

    /// Acquires a permit if one is available right now.
    pub fn try_acquire(&self) -> bool {
        let p = self.permits.get();
        if p > 0 {
            self.permits.set(p - 1);
            true
        } else {
            false
        }
    }

    /// Returns one permit and wakes waiters.
    pub fn release(&self) {
        self.permits.set(self.permits.get() + 1);
        self.notify.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimDelta};
    use std::rc::Rc;

    #[test]
    fn notify_wakes_waiter() {
        let sim = Sim::new();
        let n = Rc::new(Notify::new());
        let n2 = Rc::clone(&n);
        let s2 = sim.clone();
        let waiter = sim.spawn(async move {
            n2.notified().await;
            s2.now()
        });
        let s3 = sim.clone();
        sim.spawn(async move {
            s3.delay(SimDelta::from_nanos(30)).await;
            n.notify_all();
        });
        sim.run();
        assert_eq!(waiter.try_take().unwrap().as_nanos(), 30);
    }

    #[test]
    fn notify_before_wait_is_not_lost_in_condition_loop() {
        // A notified() created *after* the notify fires must not complete
        // until the next notify; condition loops handle this by re-checking
        // state first.
        let n = Notify::new();
        n.notify_all();
        assert_eq!(n.epoch(), 1);
        // Future created now requires epoch > 1.
        let sim = Sim::new();
        let n = Rc::new(n);
        let n2 = Rc::clone(&n);
        let h = sim.spawn(async move {
            n2.notified().await;
            true
        });
        sim.run();
        assert!(
            !h.is_finished(),
            "stale notify must not complete new waiter"
        );
    }

    #[test]
    fn semaphore_serializes_critical_sections() {
        let sim = Sim::new();
        let sem = Rc::new(Semaphore::new(1));
        let log: Rc<std::cell::RefCell<Vec<(u32, &'static str)>>> =
            Rc::new(std::cell::RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let sem = Rc::clone(&sem);
            let log = Rc::clone(&log);
            let s = sim.clone();
            sim.spawn(async move {
                sem.acquire().await;
                log.borrow_mut().push((i, "in"));
                s.delay(SimDelta::from_nanos(10)).await;
                log.borrow_mut().push((i, "out"));
                sem.release();
            });
        }
        sim.run();
        let log = log.borrow();
        assert_eq!(log.len(), 6);
        // Sections never interleave: every "in" is followed by its own "out".
        for pair in log.chunks(2) {
            assert_eq!(pair[0].0, pair[1].0);
            assert_eq!(pair[0].1, "in");
            assert_eq!(pair[1].1, "out");
        }
    }

    #[test]
    fn try_acquire_fails_when_empty() {
        let sem = Semaphore::new(1);
        assert!(sem.try_acquire());
        assert!(!sem.try_acquire());
        sem.release();
        assert!(sem.try_acquire());
    }

    #[test]
    fn semaphore_available_tracks_permits() {
        let sem = Semaphore::new(3);
        assert_eq!(sem.available(), 3);
        assert!(sem.try_acquire());
        assert_eq!(sem.available(), 2);
        sem.release();
        assert_eq!(sem.available(), 3);
    }
}
