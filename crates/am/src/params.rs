//! LogGP machine parameters and the experiment "knobs".
//!
//! The LogGP model (Culler et al. PPoPP'93; Alexandrov et al. SPAA'95)
//! characterizes a distributed-memory machine by
//!
//! * `L` — network latency for a small message,
//! * `o` — processor overhead per message send / receive,
//! * `g` — minimum gap between consecutive injections at one NIC,
//! * `G` — time per byte of a bulk transfer (1 / bulk bandwidth),
//! * `P` — processor count.
//!
//! [`LoggpParams`] holds a machine's *baseline* values (Table 1 of the
//! paper); [`Knobs`] holds the *added* deltas the apparatus dials in
//! (Figure 2); [`NetConfig`] combines both with the Active-Message-layer
//! constants (flow-control window, fragment size, wire sizes).

use nowlab_sim::SimDelta;
use std::fmt;

use crate::fault::{FaultPlan, NodeFaultPlan, Reliability};

/// Baseline LogGP parameters of a machine (all per Table 1 of the paper).
///
/// The overhead is split into its send and receive components as measured by
/// the LogP signature microbenchmark (Figure 3 shows `o_send = 1.8 µs`,
/// `o_recv = 4 µs` for the Berkeley NOW); the paper reports their average as
/// "o".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LoggpParams {
    /// Send overhead: processor time to write a message into the NIC.
    pub o_send: SimDelta,
    /// Receive overhead: processor time to read a message from the NIC.
    pub o_recv: SimDelta,
    /// Gap: minimum interval between consecutive NIC injections.
    pub gap: SimDelta,
    /// Latency: NIC-to-NIC transit time for a short message.
    pub latency: SimDelta,
    /// Bulk Gap `G`: time per byte of bulk transfer (DMA-rate bound).
    pub gap_per_byte: SimDelta,
}

impl LoggpParams {
    /// Berkeley NOW baseline: `o = 2.9 µs` (avg of 1.8 send / 4.0 receive),
    /// `g = 5.8 µs`, `L = 5.0 µs`, `1/G = 38 MB/s`.
    pub fn berkeley_now() -> Self {
        LoggpParams {
            o_send: SimDelta::from_micros(1.8),
            o_recv: SimDelta::from_micros(4.0),
            gap: SimDelta::from_micros(5.8),
            latency: SimDelta::from_micros(5.0),
            gap_per_byte: per_byte_from_mb_per_s(38.0),
        }
    }

    /// Intel Paragon (Table 1): `o = 1.8`, `g = 7.6`, `L = 6.5`, 141 MB/s.
    pub fn intel_paragon() -> Self {
        LoggpParams {
            o_send: SimDelta::from_micros(1.8),
            o_recv: SimDelta::from_micros(1.8),
            gap: SimDelta::from_micros(7.6),
            latency: SimDelta::from_micros(6.5),
            gap_per_byte: per_byte_from_mb_per_s(141.0),
        }
    }

    /// Meiko CS-2 (Table 1): `o = 1.7`, `g = 13.6`, `L = 7.5`, 47 MB/s.
    pub fn meiko_cs2() -> Self {
        LoggpParams {
            o_send: SimDelta::from_micros(1.7),
            o_recv: SimDelta::from_micros(1.7),
            gap: SimDelta::from_micros(13.6),
            latency: SimDelta::from_micros(7.5),
            gap_per_byte: per_byte_from_mb_per_s(47.0),
        }
    }

    /// A conventional mid-90s switched-LAN TCP/IP stack (paper §5.1: ~100 µs
    /// of overhead with NOW-like latency and gap).
    pub fn lan_tcp() -> Self {
        let now = Self::berkeley_now();
        LoggpParams {
            o_send: now.o_send + SimDelta::from_micros(100.0),
            o_recv: now.o_recv + SimDelta::from_micros(100.0),
            ..now
        }
    }

    /// The reported `o`: average of send and receive overhead.
    pub fn o_mean(&self) -> SimDelta {
        (self.o_send + self.o_recv) / 2
    }

    /// Bulk bandwidth `1/G` in MB/s.
    pub fn bulk_mb_per_s(&self) -> f64 {
        mb_per_s_from_per_byte(self.gap_per_byte)
    }
}

impl Default for LoggpParams {
    /// Defaults to the Berkeley NOW baseline.
    fn default() -> Self {
        Self::berkeley_now()
    }
}

impl fmt::Display for LoggpParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "o={} (s={},r={}) g={} L={} 1/G={:.1}MB/s",
            self.o_mean(),
            self.o_send,
            self.o_recv,
            self.gap,
            self.latency,
            self.bulk_mb_per_s()
        )
    }
}

/// Converts a bulk bandwidth in MB/s to a per-byte [`SimDelta`].
///
/// # Panics
///
/// Panics if `mb_per_s` is not strictly positive and finite.
pub fn per_byte_from_mb_per_s(mb_per_s: f64) -> SimDelta {
    assert!(
        mb_per_s.is_finite() && mb_per_s > 0.0,
        "bandwidth must be positive, got {mb_per_s}"
    );
    // 1 MB/s = 1e6 B/s -> ns per byte = 1e9 / (mb * 1e6) = 1000 / mb.
    SimDelta::from_nanos((1_000.0 / mb_per_s).round() as u64)
}

/// Converts a per-byte gap back to MB/s (0 means "infinite bandwidth").
pub fn mb_per_s_from_per_byte(per_byte: SimDelta) -> f64 {
    if per_byte.is_zero() {
        f64::INFINITY
    } else {
        1_000.0 / per_byte.as_nanos() as f64
    }
}

/// The *added* deltas dialled into the apparatus (paper Figure 2).
///
/// * `d_o` — delay loop added on the host's send path **and** its
///   pre-receive path (so reported steady-state gap rises by `2·d_o`).
/// * `d_g` — stall added in the NIC transmit loop *after* injection.
/// * `d_lat` — extra arrival delay applied through the receive-side delay
///   queue (latency rises; `o` and `g` untouched).
/// * `d_gap_per_byte` — extra per-byte stall after each bulk fragment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Knobs {
    /// Added per-message overhead (applied to send and receive paths).
    pub d_o: SimDelta,
    /// Added per-message gap (NIC injection stall).
    pub d_g: SimDelta,
    /// Added latency (receive-side delay queue).
    pub d_lat: SimDelta,
    /// Added per-byte bulk gap.
    pub d_gap_per_byte: SimDelta,
}

impl Knobs {
    /// No added delays: the baseline machine.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// Knobs with only added overhead.
    pub fn with_overhead(d_o: SimDelta) -> Self {
        Knobs {
            d_o,
            ..Self::default()
        }
    }

    /// Knobs with only added gap.
    pub fn with_gap(d_g: SimDelta) -> Self {
        Knobs {
            d_g,
            ..Self::default()
        }
    }

    /// Knobs with only added latency.
    pub fn with_latency(d_lat: SimDelta) -> Self {
        Knobs {
            d_lat,
            ..Self::default()
        }
    }

    /// Knobs with only added bulk gap, expressed as a *target* bulk bandwidth
    /// in MB/s given the machine baseline `G`.
    ///
    /// Returns `None` if the target exceeds the baseline bandwidth (the
    /// apparatus can only slow the machine down).
    pub fn with_bulk_bandwidth(base: &LoggpParams, target_mb_per_s: f64) -> Option<Self> {
        let target = per_byte_from_mb_per_s(target_mb_per_s);
        if target < base.gap_per_byte {
            return None;
        }
        Some(Knobs {
            d_gap_per_byte: target - base.gap_per_byte,
            ..Self::default()
        })
    }
}

impl fmt::Display for Knobs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "+o={} +g={} +L={} +G={}ns/B",
            self.d_o,
            self.d_g,
            self.d_lat,
            self.d_gap_per_byte.as_nanos()
        )
    }
}

/// How the added-latency knob is realized (paper §3.2).
///
/// The paper is careful to add latency through a **receive-side delay
/// queue**: the NIC deposits the message normally but defers setting its
/// presence bit, so `o` and `g` are untouched. The naive alternative —
/// slowing the receive path itself — has "the side effect of increasing
/// g". Both mechanisms are implemented so the `ablation_latency_mechanism`
/// bench can demonstrate the artifact the paper avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LatencyMode {
    /// The paper's mechanism: presence-bit deferral; `g` unaffected.
    #[default]
    DelayQueue,
    /// The naive mechanism: the receive context spends `ΔL` per message,
    /// so the effective gap grows by `ΔL`.
    SlowRxPath,
}

/// GAM flow-control window: maximum outstanding requests per processor
/// (paper §3.3). The single authoritative definition — the analyzer's
/// `AMP002` lint rejects re-hardcoded copies of this depth.
pub const GAM_WINDOW: u32 = 8;

/// GAM bulk-transfer fragment size in bytes (paper: "up to 4KB"). The
/// single authoritative definition, mirroring [`GAM_WINDOW`].
pub const GAM_FRAG_BYTES: u32 = 4096;

/// Full network configuration: machine baseline, knobs, and AM-layer
/// constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NetConfig {
    /// Baseline machine parameters.
    pub machine: LoggpParams,
    /// Added deltas.
    pub knobs: Knobs,
    /// Maximum outstanding *requests* per processor (GAM flow-control
    /// window). Constant and independent of `L` — this reproduces the
    /// paper's observation (§3.3) that effective `g` rises for very large
    /// `L` because "the implementation has a fixed number of outstanding
    /// messages independent of L".
    pub window: u32,
    /// Bulk messages are fragmented at this size (paper: "up to 4KB").
    pub frag_bytes: u32,
    /// Wire footprint of a short message (header + 4-word payload). Derived
    /// from Table 4: small-message KB/s ÷ msg rate = 28 B for Radix/EM3D.
    pub short_wire_bytes: u32,
    /// Mechanism implementing the added-latency knob.
    pub latency_mode: LatencyMode,
    /// Deterministic fault model applied at the wire. The default
    /// [`FaultPlan::none`] is inert and leaves every run bit-identical to
    /// the lossless transport.
    pub faults: FaultPlan,
    /// Deterministic node-level fault model (crash/recovery/straggler)
    /// plus failure-detector timing. The default
    /// [`NodeFaultPlan::none`] is inert: no heartbeats, no detector
    /// events, runs bit-identical to the healthy cluster.
    pub node_faults: NodeFaultPlan,
    /// Tuning of the reliable-delivery protocol, engaged whenever the
    /// fault plan is active (or [`Reliability::always_on`] is set).
    pub reliability: Reliability,
}

impl NetConfig {
    /// Berkeley NOW baseline configuration with no added delays.
    pub fn berkeley_now() -> Self {
        NetConfig {
            machine: LoggpParams::berkeley_now(),
            knobs: Knobs::baseline(),
            window: GAM_WINDOW,
            frag_bytes: GAM_FRAG_BYTES,
            short_wire_bytes: 28,
            latency_mode: LatencyMode::DelayQueue,
            faults: FaultPlan::none(),
            node_faults: NodeFaultPlan::none(),
            reliability: Reliability::baseline(),
        }
    }

    /// Replaces the knobs, keeping everything else.
    pub fn with_knobs(mut self, knobs: Knobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Replaces the machine baseline, keeping everything else.
    pub fn with_machine(mut self, machine: LoggpParams) -> Self {
        self.machine = machine;
        self
    }

    /// Replaces the latency mechanism, keeping everything else.
    pub fn with_latency_mode(mut self, mode: LatencyMode) -> Self {
        self.latency_mode = mode;
        self
    }

    /// Replaces the flow-control window, keeping everything else.
    pub fn with_window(mut self, window: u32) -> Self {
        assert!(window > 0, "window must be at least 1");
        self.window = window;
        self
    }

    /// Replaces the fault plan, keeping everything else. An active plan
    /// engages the reliable-delivery protocol.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the reliability tuning, keeping everything else.
    pub fn with_reliability(mut self, reliability: Reliability) -> Self {
        self.reliability = reliability;
        self
    }

    /// Replaces the node-fault plan, keeping everything else. An active
    /// plan engages the heartbeat/failure-detector control plane *and*
    /// the reliable-delivery protocol (senders must be able to stop
    /// retransmitting into a dead peer).
    pub fn with_node_faults(mut self, node_faults: NodeFaultPlan) -> Self {
        self.node_faults = node_faults;
        self
    }

    /// True if the reliable-delivery protocol is engaged: sequence-number
    /// tracking, duplicate suppression, and retransmission timers. False by
    /// default, in which case the transport takes the exact lossless code
    /// path (no timers, no extra state).
    pub fn reliability_active(&self) -> bool {
        self.faults.is_active() || self.node_faults.is_active() || self.reliability.always_on
    }

    /// Effective send overhead (`o_send + Δo`).
    pub fn eff_o_send(&self) -> SimDelta {
        self.machine.o_send + self.knobs.d_o
    }

    /// Effective receive overhead (`o_recv + Δo`).
    pub fn eff_o_recv(&self) -> SimDelta {
        self.machine.o_recv + self.knobs.d_o
    }

    /// Effective reported `o` (mean of effective send/receive overheads).
    pub fn eff_o_mean(&self) -> SimDelta {
        (self.eff_o_send() + self.eff_o_recv()) / 2
    }

    /// Effective injection gap (`g + Δg`).
    pub fn eff_gap(&self) -> SimDelta {
        self.machine.gap + self.knobs.d_g
    }

    /// Effective latency (`L + ΔL`).
    pub fn eff_latency(&self) -> SimDelta {
        self.machine.latency + self.knobs.d_lat
    }

    /// Effective per-byte bulk gap (`G + ΔG`).
    pub fn eff_gap_per_byte(&self) -> SimDelta {
        self.machine.gap_per_byte + self.knobs.d_gap_per_byte
    }

    /// Effective bulk bandwidth in MB/s.
    pub fn eff_bulk_mb_per_s(&self) -> f64 {
        mb_per_s_from_per_byte(self.eff_gap_per_byte())
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::berkeley_now()
    }
}

impl fmt::Display for NetConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} | {} | W={} frag={}B",
            self.machine, self.knobs, self.window, self.frag_bytes
        )?;
        if self.reliability_active() {
            write!(f, " | {} {}", self.faults, self.reliability)?;
            if self.node_faults.is_active() {
                write!(f, " {}", self.node_faults)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_baseline_matches_table1() {
        let p = LoggpParams::berkeley_now();
        assert!((p.o_mean().as_micros_f64() - 2.9).abs() < 1e-9);
        assert!((p.gap.as_micros_f64() - 5.8).abs() < 1e-9);
        assert!((p.latency.as_micros_f64() - 5.0).abs() < 1e-9);
        assert!((p.bulk_mb_per_s() - 38.0).abs() < 0.5);
    }

    #[test]
    fn paragon_and_meiko_match_table1() {
        let p = LoggpParams::intel_paragon();
        assert!((p.o_mean().as_micros_f64() - 1.8).abs() < 1e-9);
        assert!((p.bulk_mb_per_s() - 141.0).abs() < 3.0);
        let m = LoggpParams::meiko_cs2();
        assert!((m.gap.as_micros_f64() - 13.6).abs() < 1e-9);
        assert!((m.bulk_mb_per_s() - 47.0).abs() < 1.0);
    }

    #[test]
    fn bandwidth_round_trip() {
        for mb in [1.0, 5.5, 15.0, 38.0, 141.0] {
            let g = per_byte_from_mb_per_s(mb);
            let back = mb_per_s_from_per_byte(g);
            assert!(
                (back - mb).abs() / mb < 0.03,
                "round trip {mb} -> {back} off by >3%"
            );
        }
    }

    #[test]
    fn knob_bandwidth_target_is_slowdown_only() {
        let base = LoggpParams::berkeley_now();
        assert!(Knobs::with_bulk_bandwidth(&base, 100.0).is_none());
        let k = Knobs::with_bulk_bandwidth(&base, 10.0).unwrap();
        let cfg = NetConfig::berkeley_now().with_knobs(k);
        assert!((cfg.eff_bulk_mb_per_s() - 10.0).abs() < 0.2);
    }

    #[test]
    fn effective_params_add_deltas() {
        let cfg = NetConfig::berkeley_now().with_knobs(Knobs {
            d_o: SimDelta::from_micros(50.0),
            d_g: SimDelta::from_micros(10.0),
            d_lat: SimDelta::from_micros(25.0),
            d_gap_per_byte: SimDelta::from_nanos(100),
        });
        assert!((cfg.eff_o_send().as_micros_f64() - 51.8).abs() < 1e-9);
        assert!((cfg.eff_o_recv().as_micros_f64() - 54.0).abs() < 1e-9);
        assert!((cfg.eff_o_mean().as_micros_f64() - 52.9).abs() < 1e-9);
        assert!((cfg.eff_gap().as_micros_f64() - 15.8).abs() < 1e-9);
        assert!((cfg.eff_latency().as_micros_f64() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn lan_preset_adds_100us_overhead() {
        let lan = LoggpParams::lan_tcp();
        assert!((lan.o_mean().as_micros_f64() - 102.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_rejected() {
        let _ = NetConfig::berkeley_now().with_window(0);
    }

    #[test]
    fn display_formats() {
        let s = format!("{}", NetConfig::berkeley_now());
        assert!(s.contains("W=8"));
        assert!(s.contains("frag=4096B"));
        assert!(!s.contains("faults"), "inert plan must not clutter: {s}");
        let s = format!(
            "{}",
            NetConfig::berkeley_now().with_faults(FaultPlan::with_drop_rate(0.01, 1))
        );
        assert!(s.contains("drop=1.00%"), "{s}");
    }

    #[test]
    fn reliability_engages_on_faults_or_forcing() {
        let base = NetConfig::berkeley_now();
        assert!(!base.reliability_active());
        assert!(base
            .with_faults(FaultPlan::with_drop_rate(0.01, 1))
            .reliability_active());
        assert!(base
            .with_reliability(Reliability::baseline().with_always_on(true))
            .reliability_active());
        // A seeded-but-inert plan does not engage the protocol.
        assert!(!base
            .with_faults(FaultPlan::none().with_seed(9))
            .reliability_active());
    }

    #[test]
    fn node_faults_engage_reliability() {
        use crate::fault::NodeFault;
        use nowlab_sim::SimTime;
        let base = NetConfig::berkeley_now();
        let crashy = NodeFaultPlan::none().with_fault(NodeFault::crash(0, SimTime::ZERO));
        assert!(base.with_node_faults(crashy).reliability_active());
        // The empty node plan stays fully inert.
        let empty = base.with_node_faults(NodeFaultPlan::none());
        assert!(!empty.reliability_active());
        assert_eq!(empty, base);
        let s = format!("{empty}");
        assert!(
            !s.contains("nodes"),
            "inert node plan must not clutter: {s}"
        );
        let s = format!("{}", base.with_node_faults(crashy));
        assert!(s.contains("nodes[hb="), "{s}");
    }
}
