//! Deterministic fault injection and the reliable-delivery configuration.
//!
//! The paper's GAM/Myrinet apparatus assumes a lossless SAN, so the
//! baseline transport delivers every injected message exactly once. This
//! module adds the misbehaving-fabric regime: a [`FaultPlan`] describes,
//! per (source, destination) link, how the network may **drop**,
//! **duplicate**, or **jitter** (reorder) messages, and when whole links
//! suffer transient [`Outage`] windows. A [`Reliability`] config tunes the
//! retransmission protocol the AM layer switches on to survive those
//! faults (sequence numbers, cumulative acks, timeout-driven retransmit
//! with exponential backoff — see DESIGN.md §3).
//!
//! # Determinism
//!
//! Every fault decision is a pure hash of `(plan seed, src, dst, per-link
//! attempt counter, decision kind)` — no sequential generator state is
//! threaded through the transport. Because the simulator schedules
//! injections deterministically, the attempt counters are deterministic,
//! so **the same plan seed always yields the identical fault pattern and
//! identical virtual times** (the same discipline the apparatus already
//! uses for workload seeding). Probabilities are stored in integer parts
//! per million so [`crate::NetConfig`] stays `Copy + Eq + Hash`.
//!
//! The default [`FaultPlan::none`] is inert: the transport checks one
//! boolean and takes the exact seed code path, so all lossless benches and
//! tests are bit-identical to a build without this module.

use nowlab_sim::{SimDelta, SimTime};
use std::fmt;

/// Maximum number of outage windows a plan can carry (fixed so the plan
/// stays `Copy`).
pub const MAX_OUTAGES: usize = 4;

/// One part per million; probabilities are stored as integers in
/// `[0, PPM_SCALE]`.
pub const PPM_SCALE: u32 = 1_000_000;

/// A transient link outage: during `[start, end)` the affected link drops
/// every message (both message classes). Use [`Outage::permanent`] to take
/// a link down forever — the livelock guard (`event_limit` /
/// `time_limit`) must then turn the run into the paper's `N/A`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct Outage {
    /// First instant of the outage.
    pub start: SimTime,
    /// First instant after the outage.
    pub end: SimTime,
    /// Affected source processor, or `None` for all sources.
    pub src: Option<usize>,
    /// Affected destination processor, or `None` for all destinations.
    pub dst: Option<usize>,
}

impl Outage {
    /// An outage of every link during `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn window(start: SimTime, end: SimTime) -> Self {
        assert!(start < end, "outage window must be non-empty");
        Outage {
            start,
            end,
            src: None,
            dst: None,
        }
    }

    /// A permanent outage of every link from `start` on.
    pub fn permanent(start: SimTime) -> Self {
        Outage {
            start,
            end: SimTime::MAX,
            src: None,
            dst: None,
        }
    }

    /// Restricts the outage to messages from `src`.
    pub fn from_src(mut self, src: usize) -> Self {
        self.src = Some(src);
        self
    }

    /// Restricts the outage to messages to `dst`.
    pub fn to_dst(mut self, dst: usize) -> Self {
        self.dst = Some(dst);
        self
    }

    /// True if this outage swallows a message on `(src, dst)` hitting the
    /// wire at `t`.
    pub fn covers(&self, t: SimTime, src: usize, dst: usize) -> bool {
        self.start <= t
            && t < self.end
            && self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
    }
}

/// A deterministic, seeded fault model for the cluster network.
///
/// Probabilities are per *injection attempt*: short messages roll once,
/// bulk messages roll once per ≤`frag_bytes` fragment (losing any fragment
/// loses the whole message — the transport has no partial-message
/// semantics, so the retransmit resends it all, as GAM would).
///
/// Attach to a [`crate::NetConfig`] with
/// [`crate::NetConfig::with_faults`]; the reliable-delivery protocol
/// engages automatically whenever the plan [is active](FaultPlan::is_active).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct FaultPlan {
    /// Seed for all fault decisions (same seed ⇒ identical fault pattern).
    pub seed: u64,
    /// Drop probability for short messages, in parts per million.
    pub drop_short_ppm: u32,
    /// Drop probability per bulk fragment, in parts per million.
    pub drop_bulk_ppm: u32,
    /// Duplication probability per delivered message, in parts per
    /// million.
    pub dup_ppm: u32,
    /// Upper bound on extra transit delay (uniform in `[0, jitter_max]`);
    /// nonzero jitter reorders messages that left within a window of each
    /// other.
    pub jitter_max: SimDelta,
    /// Scheduled link outages (up to [`MAX_OUTAGES`]).
    pub outages: [Option<Outage>; MAX_OUTAGES],
}

impl FaultPlan {
    /// The inert plan: no faults, reliability protocol disengaged, the
    /// transport byte-identical to the lossless baseline.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan dropping both message classes with probability `rate`
    /// (`0.0..=1.0`), seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_drop_rate(rate: f64, seed: u64) -> Self {
        FaultPlan::none().with_seed(seed).with_drops(rate, rate)
    }

    /// Replaces the decision seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the drop probabilities for short messages and bulk fragments.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]`.
    pub fn with_drops(mut self, short: f64, bulk_frag: f64) -> Self {
        self.drop_short_ppm = to_ppm(short);
        self.drop_bulk_ppm = to_ppm(bulk_frag);
        self
    }

    /// Sets the duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_dup(mut self, rate: f64) -> Self {
        self.dup_ppm = to_ppm(rate);
        self
    }

    /// Sets the reorder-jitter bound.
    pub fn with_jitter(mut self, jitter_max: SimDelta) -> Self {
        self.jitter_max = jitter_max;
        self
    }

    /// Adds an outage window.
    ///
    /// # Panics
    ///
    /// Panics if the plan already holds [`MAX_OUTAGES`] outages.
    pub fn with_outage(mut self, outage: Outage) -> Self {
        let slot = self
            .outages
            .iter_mut()
            .find(|o| o.is_none())
            .expect("FaultPlan: too many outages");
        *slot = Some(outage);
        self
    }

    /// True if the plan can perturb anything — this is the switch that
    /// engages the reliability protocol.
    pub fn is_active(&self) -> bool {
        self.drop_short_ppm > 0
            || self.drop_bulk_ppm > 0
            || self.dup_ppm > 0
            || !self.jitter_max.is_zero()
            || self.outages.iter().any(Option::is_some)
    }

    /// True if some outage swallows a message on `(src, dst)` hitting the
    /// wire at `t`.
    pub fn in_outage(&self, t: SimTime, src: usize, dst: usize) -> bool {
        self.outages.iter().flatten().any(|o| o.covers(t, src, dst))
    }

    /// Drop decision for injection attempt `nonce` on `(src, dst)`; bulk
    /// messages call once per fragment with distinct `frag` indices.
    pub fn drops(&self, src: usize, dst: usize, nonce: u64, frag: u32, bulk: bool) -> bool {
        let ppm = if bulk {
            self.drop_bulk_ppm
        } else {
            self.drop_short_ppm
        };
        roll(
            self.decision(src, dst, nonce, u64::from(frag), salt::DROP),
            ppm,
        )
    }

    /// Duplication decision for injection attempt `nonce` on `(src, dst)`.
    pub fn duplicates(&self, src: usize, dst: usize, nonce: u64) -> bool {
        roll(self.decision(src, dst, nonce, 0, salt::DUP), self.dup_ppm)
    }

    /// Extra transit delay for delivery `copy` (0 = original, 1 = the
    /// duplicate) of injection attempt `nonce` on `(src, dst)` — uniform
    /// in `[0, jitter_max]`.
    pub fn jitter(&self, src: usize, dst: usize, nonce: u64, copy: u64) -> SimDelta {
        let bound = self.jitter_max.as_nanos();
        if bound == 0 {
            return SimDelta::ZERO;
        }
        let h = self.decision(src, dst, nonce, copy, salt::JITTER);
        SimDelta::from_nanos(h % (bound + 1))
    }

    /// The stateless decision hash: a strong 64-bit mix of the plan seed
    /// and the decision coordinates (same family as the splitc lock
    /// backoff and the apps' `mix64`).
    fn decision(&self, src: usize, dst: usize, nonce: u64, extra: u64, salt: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((src as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add((dst as u64).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7))
            .wrapping_add(nonce.wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add(extra.wrapping_mul(0x9FB2_1C65_1E98_DF25))
            ^ salt;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^= x >> 33;
        x
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_active() {
            return write!(f, "faults=none");
        }
        write!(
            f,
            "faults[seed={} drop={:.2}%/{:.2}% dup={:.2}% jitter={} outages={}]",
            self.seed,
            self.drop_short_ppm as f64 / 10_000.0,
            self.drop_bulk_ppm as f64 / 10_000.0,
            self.dup_ppm as f64 / 10_000.0,
            self.jitter_max,
            self.outages.iter().flatten().count(),
        )
    }
}

/// Distinct decision kinds must never share a hash.
mod salt {
    pub const DROP: u64 = 0x11;
    pub const DUP: u64 = 0x22;
    pub const JITTER: u64 = 0x33;
    pub const BACKOFF: u64 = 0x44;
}

fn to_ppm(rate: f64) -> u32 {
    assert!(
        (0.0..=1.0).contains(&rate),
        "fault rate {rate} outside [0, 1]"
    );
    (rate * f64::from(PPM_SCALE)).round() as u32
}

fn roll(hash: u64, ppm: u32) -> bool {
    // Unbiased enough for fault injection: 2^64 % 1e6 bias is ~5e-14.
    (hash % u64::from(PPM_SCALE)) < u64::from(ppm)
}

/// Tuning of the reliable-delivery protocol (engaged when the fault plan
/// is active; see DESIGN.md §3 for the wire format and the exactly-once
/// argument).
///
/// Retransmission backs off exponentially from [`Reliability::rto`]
/// (doubling per attempt, capped at [`Reliability::rto_max`]) with a
/// deterministic hash jitter of up to a quarter of the current backoff —
/// the same mechanism family as the Barnes lock backoff (DESIGN.md §6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct Reliability {
    /// Initial retransmission timeout. Must generously exceed the
    /// round trip (2L + 4o ≈ 21.6 µs at the NOW baseline) plus queueing,
    /// or spurious retransmits churn the wire.
    pub rto: SimDelta,
    /// Upper bound on the backed-off timeout.
    pub rto_max: SimDelta,
    /// Engage the protocol even with an inert fault plan (measures the
    /// protocol's own cost on a healthy network).
    pub always_on: bool,
}

impl Reliability {
    /// Initial RTO of 250 µs backing off to 16 ms — an order of magnitude
    /// above the baseline round trip, two below the app-suite runtimes.
    pub fn baseline() -> Self {
        Reliability {
            rto: SimDelta::from_micros(250.0),
            rto_max: SimDelta::from_millis(16.0),
            always_on: false,
        }
    }

    /// Replaces the initial retransmission timeout.
    ///
    /// # Panics
    ///
    /// Panics if `rto` is zero (a zero timeout livelocks the wire).
    pub fn with_rto(mut self, rto: SimDelta) -> Self {
        assert!(!rto.is_zero(), "rto must be positive");
        self.rto = rto;
        self
    }

    /// Replaces the backoff cap.
    pub fn with_rto_max(mut self, rto_max: SimDelta) -> Self {
        self.rto_max = rto_max;
        self
    }

    /// Forces the protocol on even without faults.
    pub fn with_always_on(mut self, on: bool) -> Self {
        self.always_on = on;
        self
    }

    /// The backoff before retransmission attempt `attempt` (1-based) of
    /// request `req` on `(src, dst)`: `rto · 2^(attempt-1)` capped at
    /// `rto_max`, plus a deterministic jitter in `[0, backoff/4]`.
    pub fn backoff(&self, seed: u64, src: usize, dst: usize, req: u64, attempt: u32) -> SimDelta {
        let doublings = attempt.saturating_sub(1).min(20);
        let base = (self.rto * (1u64 << doublings)).min(self.rto_max);
        let jitter_bound = base.as_nanos() / 4;
        if jitter_bound == 0 {
            return base;
        }
        let mut h = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((src as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add((dst as u64).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7))
            .wrapping_add(req.wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9FB2_1C65_1E98_DF25))
            ^ salt::BACKOFF;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 29;
        base + SimDelta::from_nanos(h % (jitter_bound + 1))
    }
}

impl Default for Reliability {
    fn default() -> Self {
        Self::baseline()
    }
}

impl fmt::Display for Reliability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rto={}..{}", self.rto, self.rto_max)?;
        if self.always_on {
            write!(f, " (forced on)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_is_inactive_and_default() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p, FaultPlan::default());
        assert!(!p.drops(0, 1, 0, 0, false));
        assert!(!p.duplicates(0, 1, 0));
        assert_eq!(p.jitter(0, 1, 0, 0), SimDelta::ZERO);
        assert!(!p.in_outage(SimTime::ZERO, 0, 1));
    }

    #[test]
    fn activity_flags() {
        assert!(FaultPlan::with_drop_rate(0.01, 1).is_active());
        assert!(FaultPlan::none().with_dup(0.5).is_active());
        assert!(FaultPlan::none()
            .with_jitter(SimDelta::from_micros(1.0))
            .is_active());
        assert!(FaultPlan::none()
            .with_outage(Outage::permanent(SimTime::ZERO))
            .is_active());
        // A bare seed perturbs nothing.
        assert!(!FaultPlan::none().with_seed(7).is_active());
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let p = FaultPlan::with_drop_rate(0.10, 42);
        let hits = (0..100_000).filter(|&n| p.drops(0, 1, n, 0, false)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.10).abs() < 0.01, "measured {rate}");
        // Bulk fragments roll their own class.
        let p = FaultPlan::none().with_drops(0.0, 0.5);
        assert!(!(0..1000).any(|n| p.drops(0, 1, n, 0, false)));
        let bulk_hits = (0..100_000).filter(|&n| p.drops(0, 1, n, 0, true)).count();
        assert!((bulk_hits as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::with_drop_rate(0.3, 7);
        let b = FaultPlan::with_drop_rate(0.3, 7);
        let c = FaultPlan::with_drop_rate(0.3, 8);
        let pat =
            |p: &FaultPlan| -> Vec<bool> { (0..256).map(|n| p.drops(2, 3, n, 0, false)).collect() };
        assert_eq!(pat(&a), pat(&b));
        assert_ne!(pat(&a), pat(&c));
        // Links draw independent streams.
        let other_link: Vec<bool> = (0..256).map(|n| a.drops(3, 2, n, 0, false)).collect();
        assert_ne!(pat(&a), other_link);
    }

    #[test]
    fn jitter_is_bounded() {
        let p = FaultPlan::none()
            .with_jitter(SimDelta::from_micros(5.0))
            .with_seed(1);
        let mut max_seen = SimDelta::ZERO;
        for n in 0..10_000 {
            let j = p.jitter(0, 1, n, 0);
            assert!(j <= SimDelta::from_micros(5.0));
            max_seen = max_seen.max(j);
        }
        // The bound is actually approached.
        assert!(max_seen > SimDelta::from_micros(4.5), "max {max_seen}");
    }

    #[test]
    fn outage_windows_cover_and_filter() {
        let o = Outage::window(SimTime::from_nanos(100), SimTime::from_nanos(200));
        assert!(o.covers(SimTime::from_nanos(100), 0, 1));
        assert!(o.covers(SimTime::from_nanos(199), 3, 2));
        assert!(!o.covers(SimTime::from_nanos(200), 0, 1));
        assert!(!o.covers(SimTime::from_nanos(99), 0, 1));
        let scoped = o.from_src(1).to_dst(2);
        assert!(scoped.covers(SimTime::from_nanos(150), 1, 2));
        assert!(!scoped.covers(SimTime::from_nanos(150), 1, 3));
        assert!(!scoped.covers(SimTime::from_nanos(150), 0, 2));
        let perm = Outage::permanent(SimTime::from_nanos(10));
        assert!(perm.covers(SimTime::from_nanos(u64::MAX - 1), 0, 1));
        let plan = FaultPlan::none().with_outage(o).with_outage(perm);
        assert!(plan.in_outage(SimTime::from_nanos(150), 0, 1));
        assert!(!plan.in_outage(SimTime::ZERO, 0, 1));
    }

    #[test]
    #[should_panic(expected = "too many outages")]
    fn outage_capacity_enforced() {
        let mut p = FaultPlan::none();
        for i in 0..=MAX_OUTAGES as u64 {
            p = p.with_outage(Outage::permanent(SimTime::from_nanos(i)));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn silly_rates_rejected() {
        let _ = FaultPlan::with_drop_rate(1.5, 0);
    }

    #[test]
    fn backoff_doubles_caps_and_jitters() {
        let r = Reliability::baseline();
        let b1 = r.backoff(0, 0, 1, 0, 1);
        let b2 = r.backoff(0, 0, 1, 0, 2);
        let b9 = r.backoff(0, 0, 1, 0, 9);
        // Base doubles (jitter ≤ base/4 keeps attempts ordered).
        assert!(b1 >= r.rto && b1 <= r.rto + r.rto / 4);
        assert!(b2 >= r.rto * 2 && b2 <= r.rto * 2 + r.rto / 2);
        // Attempt 9 is capped at rto_max (+ jitter).
        assert!(b9 >= r.rto_max && b9 <= r.rto_max + r.rto_max / 4);
        // Deterministic.
        assert_eq!(b2, r.backoff(0, 0, 1, 0, 2));
        // Different requests get different jitter.
        assert_ne!(r.backoff(0, 0, 1, 10, 3), r.backoff(0, 0, 1, 11, 3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", FaultPlan::none()), "faults=none");
        let s = format!("{}", FaultPlan::with_drop_rate(0.01, 3));
        assert!(s.contains("drop=1.00%"), "{s}");
        let r = format!("{}", Reliability::baseline().with_always_on(true));
        assert!(r.contains("forced on"), "{r}");
    }
}
