//! Deterministic fault injection and the reliable-delivery configuration.
//!
//! The paper's GAM/Myrinet apparatus assumes a lossless SAN, so the
//! baseline transport delivers every injected message exactly once. This
//! module adds the misbehaving-fabric regime: a [`FaultPlan`] describes,
//! per (source, destination) link, how the network may **drop**,
//! **duplicate**, or **jitter** (reorder) messages, and when whole links
//! suffer transient [`Outage`] windows. A [`Reliability`] config tunes the
//! retransmission protocol the AM layer switches on to survive those
//! faults (sequence numbers, cumulative acks, timeout-driven retransmit
//! with exponential backoff — see DESIGN.md §3).
//!
//! # Determinism
//!
//! Every fault decision is a pure hash of `(plan seed, src, dst, per-link
//! attempt counter, decision kind)` — no sequential generator state is
//! threaded through the transport. Because the simulator schedules
//! injections deterministically, the attempt counters are deterministic,
//! so **the same plan seed always yields the identical fault pattern and
//! identical virtual times** (the same discipline the apparatus already
//! uses for workload seeding). Probabilities are stored in integer parts
//! per million so [`crate::NetConfig`] stays `Copy + Eq + Hash`.
//!
//! The default [`FaultPlan::none`] is inert: the transport checks one
//! boolean and takes the exact seed code path, so all lossless benches and
//! tests are bit-identical to a build without this module.

use nowlab_sim::{SimDelta, SimTime};
use std::fmt;

/// Maximum number of outage windows a plan can carry (fixed so the plan
/// stays `Copy`).
pub const MAX_OUTAGES: usize = 4;

/// One part per million; probabilities are stored as integers in
/// `[0, PPM_SCALE]`.
pub const PPM_SCALE: u32 = 1_000_000;

/// A transient link outage: during `[start, end)` the affected link drops
/// every message (both message classes). Use [`Outage::permanent`] to take
/// a link down forever — the livelock guard (`event_limit` /
/// `time_limit`) must then turn the run into the paper's `N/A`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct Outage {
    /// First instant of the outage.
    pub start: SimTime,
    /// First instant after the outage.
    pub end: SimTime,
    /// Affected source processor, or `None` for all sources.
    pub src: Option<usize>,
    /// Affected destination processor, or `None` for all destinations.
    pub dst: Option<usize>,
}

impl Outage {
    /// An outage of every link during `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn window(start: SimTime, end: SimTime) -> Self {
        assert!(start < end, "outage window must be non-empty");
        Outage {
            start,
            end,
            src: None,
            dst: None,
        }
    }

    /// A permanent outage of every link from `start` on.
    pub fn permanent(start: SimTime) -> Self {
        Outage {
            start,
            end: SimTime::MAX,
            src: None,
            dst: None,
        }
    }

    /// Restricts the outage to messages from `src`.
    pub fn from_src(mut self, src: usize) -> Self {
        self.src = Some(src);
        self
    }

    /// Restricts the outage to messages to `dst`.
    pub fn to_dst(mut self, dst: usize) -> Self {
        self.dst = Some(dst);
        self
    }

    /// True if this outage swallows a message on `(src, dst)` hitting the
    /// wire at `t`.
    pub fn covers(&self, t: SimTime, src: usize, dst: usize) -> bool {
        self.start <= t
            && t < self.end
            && self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
    }
}

/// A deterministic, seeded fault model for the cluster network.
///
/// Probabilities are per *injection attempt*: short messages roll once,
/// bulk messages roll once per ≤`frag_bytes` fragment (losing any fragment
/// loses the whole message — the transport has no partial-message
/// semantics, so the retransmit resends it all, as GAM would).
///
/// Attach to a [`crate::NetConfig`] with
/// [`crate::NetConfig::with_faults`]; the reliable-delivery protocol
/// engages automatically whenever the plan [is active](FaultPlan::is_active).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct FaultPlan {
    /// Seed for all fault decisions (same seed ⇒ identical fault pattern).
    pub seed: u64,
    /// Drop probability for short messages, in parts per million.
    pub drop_short_ppm: u32,
    /// Drop probability per bulk fragment, in parts per million.
    pub drop_bulk_ppm: u32,
    /// Duplication probability per delivered message, in parts per
    /// million.
    pub dup_ppm: u32,
    /// Upper bound on extra transit delay (uniform in `[0, jitter_max]`);
    /// nonzero jitter reorders messages that left within a window of each
    /// other.
    pub jitter_max: SimDelta,
    /// Scheduled link outages (up to [`MAX_OUTAGES`]).
    pub outages: [Option<Outage>; MAX_OUTAGES],
}

impl FaultPlan {
    /// The inert plan: no faults, reliability protocol disengaged, the
    /// transport byte-identical to the lossless baseline.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan dropping both message classes with probability `rate`
    /// (`0.0..=1.0`), seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_drop_rate(rate: f64, seed: u64) -> Self {
        FaultPlan::none().with_seed(seed).with_drops(rate, rate)
    }

    /// Replaces the decision seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the drop probabilities for short messages and bulk fragments.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]`.
    pub fn with_drops(mut self, short: f64, bulk_frag: f64) -> Self {
        self.drop_short_ppm = to_ppm(short);
        self.drop_bulk_ppm = to_ppm(bulk_frag);
        self
    }

    /// Sets the duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_dup(mut self, rate: f64) -> Self {
        self.dup_ppm = to_ppm(rate);
        self
    }

    /// Sets the reorder-jitter bound.
    pub fn with_jitter(mut self, jitter_max: SimDelta) -> Self {
        self.jitter_max = jitter_max;
        self
    }

    /// Adds an outage window, coalescing it with any existing window of
    /// the same `(src, dst)` scope that overlaps or abuts it. Without the
    /// merge, a doubly-covered span would silently occupy two slots and
    /// make equivalent plans compare unequal (`NetConfig` is `Eq + Hash`).
    ///
    /// # Panics
    ///
    /// Panics if the plan already holds [`MAX_OUTAGES`] disjoint outages.
    pub fn with_outage(mut self, outage: Outage) -> Self {
        let mut merged = outage;
        // Repeat until no slot overlaps: the union of two windows can
        // newly bridge a third.
        loop {
            let mut changed = false;
            for slot in self.outages.iter_mut() {
                if let Some(o) = *slot {
                    let same_scope = o.src == merged.src && o.dst == merged.dst;
                    if same_scope && o.start <= merged.end && merged.start <= o.end {
                        merged.start = merged.start.min(o.start);
                        merged.end = merged.end.max(o.end);
                        *slot = None;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let slot = self
            .outages
            .iter_mut()
            .find(|o| o.is_none())
            .expect("FaultPlan: too many outages");
        *slot = Some(merged);
        self
    }

    /// True if the plan can perturb anything — this is the switch that
    /// engages the reliability protocol.
    pub fn is_active(&self) -> bool {
        self.drop_short_ppm > 0
            || self.drop_bulk_ppm > 0
            || self.dup_ppm > 0
            || !self.jitter_max.is_zero()
            || self.outages.iter().any(Option::is_some)
    }

    /// True if some outage swallows a message on `(src, dst)` hitting the
    /// wire at `t`.
    pub fn in_outage(&self, t: SimTime, src: usize, dst: usize) -> bool {
        self.outages.iter().flatten().any(|o| o.covers(t, src, dst))
    }

    /// Drop decision for injection attempt `nonce` on `(src, dst)`; bulk
    /// messages call once per fragment with distinct `frag` indices.
    pub fn drops(&self, src: usize, dst: usize, nonce: u64, frag: u32, bulk: bool) -> bool {
        let ppm = if bulk {
            self.drop_bulk_ppm
        } else {
            self.drop_short_ppm
        };
        roll(
            self.decision(src, dst, nonce, u64::from(frag), salt::DROP),
            ppm,
        )
    }

    /// Duplication decision for injection attempt `nonce` on `(src, dst)`.
    pub fn duplicates(&self, src: usize, dst: usize, nonce: u64) -> bool {
        roll(self.decision(src, dst, nonce, 0, salt::DUP), self.dup_ppm)
    }

    /// Extra transit delay for delivery `copy` (0 = original, 1 = the
    /// duplicate) of injection attempt `nonce` on `(src, dst)` — uniform
    /// in `[0, jitter_max]`.
    pub fn jitter(&self, src: usize, dst: usize, nonce: u64, copy: u64) -> SimDelta {
        let bound = self.jitter_max.as_nanos();
        if bound == 0 {
            return SimDelta::ZERO;
        }
        let h = self.decision(src, dst, nonce, copy, salt::JITTER);
        SimDelta::from_nanos(h % (bound + 1))
    }

    /// The stateless decision hash: a strong 64-bit mix of the plan seed
    /// and the decision coordinates (same family as the splitc lock
    /// backoff and the apps' `mix64`).
    fn decision(&self, src: usize, dst: usize, nonce: u64, extra: u64, salt: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((src as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add((dst as u64).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7))
            .wrapping_add(nonce.wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add(extra.wrapping_mul(0x9FB2_1C65_1E98_DF25))
            ^ salt;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^= x >> 33;
        x
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_active() {
            return write!(f, "faults=none");
        }
        write!(
            f,
            "faults[seed={} drop={:.2}%/{:.2}% dup={:.2}% jitter={} outages={}]",
            self.seed,
            self.drop_short_ppm as f64 / 10_000.0,
            self.drop_bulk_ppm as f64 / 10_000.0,
            self.dup_ppm as f64 / 10_000.0,
            self.jitter_max,
            self.outages.iter().flatten().count(),
        )
    }
}

/// Distinct decision kinds must never share a hash.
mod salt {
    pub const DROP: u64 = 0x11;
    pub const DUP: u64 = 0x22;
    pub const JITTER: u64 = 0x33;
    pub const BACKOFF: u64 = 0x44;
    pub const HEARTBEAT: u64 = 0x55;
}

/// Maximum number of node faults a plan can carry (fixed so the plan
/// stays `Copy`).
pub const MAX_NODE_FAULTS: usize = 4;

/// One processor's scheduled misbehavior.
///
/// The model is **fail-pause**: a crashed processor stops executing and
/// stops emitting heartbeats, but its memory survives, so a
/// crash-recovery node resumes exactly where it froze (the LANai-reset
/// regime of the NOW cluster, where the host loses the NIC but not its
/// address space). Crash-stop is the `recover_at == SimTime::MAX` limit.
/// A *straggler* keeps running with its host overhead and compute charges
/// scaled by a fixed multiplier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct NodeFault {
    /// The afflicted processor.
    pub node: usize,
    /// First instant at which the processor is frozen ([`SimTime::MAX`]
    /// for a pure straggler that never crashes).
    pub crash_at: SimTime,
    /// First instant after the freeze ([`SimTime::MAX`] for crash-stop).
    pub recover_at: SimTime,
    /// Multiplier on host overhead and compute charges, in parts per
    /// million ([`PPM_SCALE`] = 1.0× = healthy).
    pub slowdown_ppm: u32,
}

impl NodeFault {
    /// A crash-stop fault: `node` freezes at `at` and never returns.
    pub fn crash(node: usize, at: SimTime) -> Self {
        NodeFault {
            node,
            crash_at: at,
            recover_at: SimTime::MAX,
            slowdown_ppm: PPM_SCALE,
        }
    }

    /// A crash-recovery fault: `node` freezes at `at` and resumes after
    /// `downtime`.
    ///
    /// # Panics
    ///
    /// Panics if `downtime` is zero.
    pub fn crash_recovery(node: usize, at: SimTime, downtime: SimDelta) -> Self {
        assert!(!downtime.is_zero(), "downtime must be positive");
        NodeFault {
            node,
            crash_at: at,
            recover_at: at + downtime,
            slowdown_ppm: PPM_SCALE,
        }
    }

    /// A straggler fault: `node` runs with overhead and compute scaled by
    /// `factor` for the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0` (a node cannot be faster than healthy).
    pub fn straggler(node: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "straggler factor {factor} below 1.0");
        NodeFault {
            node,
            crash_at: SimTime::MAX,
            recover_at: SimTime::MAX,
            slowdown_ppm: (factor * f64::from(PPM_SCALE)).round() as u32,
        }
    }

    /// True if the processor is frozen at `t`.
    pub fn frozen(&self, t: SimTime) -> bool {
        self.crash_at <= t && t < self.recover_at
    }

    /// True if this entry ever freezes its node.
    pub fn crashes(&self) -> bool {
        self.crash_at != SimTime::MAX
    }
}

impl fmt::Display for NodeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.node)?;
        if self.crashes() {
            write!(f, "@{}", self.crash_at)?;
            if self.recover_at != SimTime::MAX {
                write!(f, "+{}", self.recover_at - self.crash_at)?;
            }
        }
        if self.slowdown_ppm != PPM_SCALE {
            write!(
                f,
                "x{:.2}",
                f64::from(self.slowdown_ppm) / f64::from(PPM_SCALE)
            )?;
        }
        Ok(())
    }
}

/// A deterministic, seeded schedule of node-level faults, plus the
/// failure-detector timing every surviving processor runs against it.
///
/// The plan is a pure data value (`Copy + Eq + Hash`, like
/// [`FaultPlan`]): every crash, recovery, and slowdown is scheduled in
/// simulated time up front, and the heartbeat jitter is a stateless hash
/// of `(seed, sender, tick)`. The empty plan is **inert**: the transport
/// checks one boolean, schedules no heartbeat or detector events, and
/// runs bit-identical to a build without the node-failure model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct NodeFaultPlan {
    /// Seed for the deterministic heartbeat jitter.
    pub seed: u64,
    /// Heartbeat emission period (every live node, every period).
    pub hb_period: SimDelta,
    /// Silence after which an observer *suspects* a peer.
    pub suspect_after: SimDelta,
    /// Silence after which an observer *confirms* a peer dead.
    pub confirm_after: SimDelta,
    /// Scheduled node faults (up to [`MAX_NODE_FAULTS`], one per node).
    pub faults: [Option<NodeFault>; MAX_NODE_FAULTS],
}

impl NodeFaultPlan {
    /// The inert plan: no node faults, no heartbeats, no detector — the
    /// transport is byte-identical to the healthy baseline.
    pub fn none() -> Self {
        Self::default()
    }

    /// Replaces the heartbeat-jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the detector timing: heartbeat `period`, `suspect`
    /// silence threshold, `confirm` silence threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < period ≤ suspect ≤ confirm`.
    pub fn with_detector(mut self, period: SimDelta, suspect: SimDelta, confirm: SimDelta) -> Self {
        assert!(
            !period.is_zero() && period <= suspect && suspect <= confirm,
            "detector timing must satisfy 0 < period <= suspect <= confirm"
        );
        self.hb_period = period;
        self.suspect_after = suspect;
        self.confirm_after = confirm;
        self
    }

    /// Adds a node fault.
    ///
    /// # Panics
    ///
    /// Panics if the plan already holds [`MAX_NODE_FAULTS`] faults or
    /// already afflicts the same node.
    pub fn with_fault(mut self, fault: NodeFault) -> Self {
        assert!(
            !self.faults.iter().flatten().any(|f| f.node == fault.node),
            "NodeFaultPlan: duplicate fault for node {}",
            fault.node
        );
        let slot = self
            .faults
            .iter_mut()
            .find(|f| f.is_none())
            .expect("NodeFaultPlan: too many node faults");
        *slot = Some(fault);
        self
    }

    /// True if the plan afflicts any node — this is the switch that
    /// engages the heartbeat/detector control plane.
    pub fn is_active(&self) -> bool {
        self.faults.iter().any(Option::is_some)
    }

    /// The fault entry afflicting `node`, if any.
    pub fn fault_of(&self, node: usize) -> Option<&NodeFault> {
        self.faults.iter().flatten().find(|f| f.node == node)
    }

    /// True if `node` is frozen (crashed, not yet recovered) at `t`.
    pub fn frozen(&self, node: usize, t: SimTime) -> bool {
        self.fault_of(node).is_some_and(|f| f.frozen(t))
    }

    /// Overhead/compute slowdown multiplier for `node`, in parts per
    /// million ([`PPM_SCALE`] for a healthy node).
    pub fn slowdown_ppm(&self, node: usize) -> u32 {
        self.fault_of(node).map_or(PPM_SCALE, |f| f.slowdown_ppm)
    }

    /// Scales a host charge by `node`'s straggler multiplier.
    pub fn scale(&self, node: usize, d: SimDelta) -> SimDelta {
        let ppm = self.slowdown_ppm(node);
        if ppm == PPM_SCALE {
            return d;
        }
        SimDelta::from_nanos(
            (u128::from(d.as_nanos()) * u128::from(ppm) / u128::from(PPM_SCALE)) as u64,
        )
    }

    /// The instant by which every scheduled fault's fate is settled from
    /// every observer's perspective: each crash has been confirmable for
    /// a full confirm window past its recovery (or forever, for
    /// crash-stop), plus two heartbeat periods of evaluation margin.
    /// The control plane stops re-arming ticks past this point — after
    /// it, no tick can change detector state, so bare clusters with no
    /// SPMD epilogue still reach quiescence.
    pub fn settle_by(&self) -> SimTime {
        let mut t = SimTime::ZERO;
        for f in self.faults.iter().flatten() {
            if !f.crashes() {
                continue;
            }
            let resolved = if f.recover_at == SimTime::MAX {
                f.crash_at
            } else {
                f.recover_at
            };
            t = t.max(resolved + self.confirm_after);
        }
        t + self.hb_period * 2
    }

    /// Deterministic heartbeat delivery jitter for `sender`'s beat at
    /// `tick` — a stateless hash in `[0, hb_period/8]`, so identical
    /// plans always produce the identical detector timeline.
    pub fn hb_jitter(&self, sender: usize, tick: u64) -> SimDelta {
        let bound = self.hb_period.as_nanos() / 8;
        if bound == 0 {
            return SimDelta::ZERO;
        }
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((sender as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add(tick.wrapping_mul(0xA24B_AED4_963E_E407))
            ^ salt::HEARTBEAT;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        SimDelta::from_nanos(x % (bound + 1))
    }
}

impl Default for NodeFaultPlan {
    /// Inert plan with the baseline detector timing: 100 µs heartbeats,
    /// suspect after 400 µs of silence, confirm after 1.2 ms — an order
    /// of magnitude above the NOW round trip, well under app runtimes.
    fn default() -> Self {
        NodeFaultPlan {
            seed: 0,
            hb_period: SimDelta::from_micros(100.0),
            suspect_after: SimDelta::from_micros(400.0),
            confirm_after: SimDelta::from_micros(1200.0),
            faults: [None; MAX_NODE_FAULTS],
        }
    }
}

impl fmt::Display for NodeFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_active() {
            return write!(f, "nodes=healthy");
        }
        write!(f, "nodes[hb={} ", self.hb_period)?;
        for (i, fault) in self.faults.iter().flatten().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{fault}")?;
        }
        write!(f, "]")
    }
}

fn to_ppm(rate: f64) -> u32 {
    assert!(
        (0.0..=1.0).contains(&rate),
        "fault rate {rate} outside [0, 1]"
    );
    (rate * f64::from(PPM_SCALE)).round() as u32
}

fn roll(hash: u64, ppm: u32) -> bool {
    // Unbiased enough for fault injection: 2^64 % 1e6 bias is ~5e-14.
    (hash % u64::from(PPM_SCALE)) < u64::from(ppm)
}

/// Tuning of the reliable-delivery protocol (engaged when the fault plan
/// is active; see DESIGN.md §3 for the wire format and the exactly-once
/// argument).
///
/// Retransmission backs off exponentially from [`Reliability::rto`]
/// (doubling per attempt, capped at [`Reliability::rto_max`]) with a
/// deterministic hash jitter of up to a quarter of the current backoff —
/// the same mechanism family as the Barnes lock backoff (DESIGN.md §6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub struct Reliability {
    /// Initial retransmission timeout. Must generously exceed the
    /// round trip (2L + 4o ≈ 21.6 µs at the NOW baseline) plus queueing,
    /// or spurious retransmits churn the wire.
    pub rto: SimDelta,
    /// Upper bound on the backed-off timeout.
    pub rto_max: SimDelta,
    /// Maximum injection attempts per message (first send plus
    /// retransmissions) before the sender gives up and escalates the
    /// peer to its failure detector as dead. Before this cap the
    /// protocol retransmitted forever, so a permanently dead link spun
    /// timers until the run's event/time guard tripped.
    pub max_attempts: u32,
    /// Engage the protocol even with an inert fault plan (measures the
    /// protocol's own cost on a healthy network).
    pub always_on: bool,
}

impl Reliability {
    /// Initial RTO of 250 µs backing off to 16 ms — an order of magnitude
    /// above the baseline round trip, two below the app-suite runtimes —
    /// and at most 16 attempts per message. GAM's credit protocol bounds
    /// its own NACK-retry the same way; 16 attempts make a spurious
    /// escalation vanishingly rare even at heavy loss (0.05¹⁶ ≈ 10⁻²¹).
    pub fn baseline() -> Self {
        Reliability {
            rto: SimDelta::from_micros(250.0),
            rto_max: SimDelta::from_millis(16.0),
            max_attempts: 16,
            always_on: false,
        }
    }

    /// Replaces the initial retransmission timeout.
    ///
    /// # Panics
    ///
    /// Panics if `rto` is zero (a zero timeout livelocks the wire).
    pub fn with_rto(mut self, rto: SimDelta) -> Self {
        assert!(!rto.is_zero(), "rto must be positive");
        self.rto = rto;
        self
    }

    /// Replaces the backoff cap.
    pub fn with_rto_max(mut self, rto_max: SimDelta) -> Self {
        self.rto_max = rto_max;
        self
    }

    /// Replaces the per-message attempt cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts < 2` (one original send plus at least one
    /// retransmission — a cap of 1 would escalate on the first loss).
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        assert!(max_attempts >= 2, "max_attempts must be at least 2");
        self.max_attempts = max_attempts;
        self
    }

    /// Forces the protocol on even without faults.
    pub fn with_always_on(mut self, on: bool) -> Self {
        self.always_on = on;
        self
    }

    /// The backoff before retransmission attempt `attempt` (1-based) of
    /// request `req` on `(src, dst)`: `rto · 2^(attempt-1)` capped at
    /// `rto_max`, plus a deterministic jitter in `[0, backoff/4]`.
    pub fn backoff(&self, seed: u64, src: usize, dst: usize, req: u64, attempt: u32) -> SimDelta {
        let doublings = attempt.saturating_sub(1).min(20);
        let base = (self.rto * (1u64 << doublings)).min(self.rto_max);
        let jitter_bound = base.as_nanos() / 4;
        if jitter_bound == 0 {
            return base;
        }
        let mut h = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((src as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
            .wrapping_add((dst as u64).wrapping_mul(0x8CB9_2BA7_2F3D_8DD7))
            .wrapping_add(req.wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9FB2_1C65_1E98_DF25))
            ^ salt::BACKOFF;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 29;
        base + SimDelta::from_nanos(h % (jitter_bound + 1))
    }
}

impl Default for Reliability {
    fn default() -> Self {
        Self::baseline()
    }
}

impl fmt::Display for Reliability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rto={}..{} tries<={}",
            self.rto, self.rto_max, self.max_attempts
        )?;
        if self.always_on {
            write!(f, " (forced on)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_is_inactive_and_default() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert_eq!(p, FaultPlan::default());
        assert!(!p.drops(0, 1, 0, 0, false));
        assert!(!p.duplicates(0, 1, 0));
        assert_eq!(p.jitter(0, 1, 0, 0), SimDelta::ZERO);
        assert!(!p.in_outage(SimTime::ZERO, 0, 1));
    }

    #[test]
    fn activity_flags() {
        assert!(FaultPlan::with_drop_rate(0.01, 1).is_active());
        assert!(FaultPlan::none().with_dup(0.5).is_active());
        assert!(FaultPlan::none()
            .with_jitter(SimDelta::from_micros(1.0))
            .is_active());
        assert!(FaultPlan::none()
            .with_outage(Outage::permanent(SimTime::ZERO))
            .is_active());
        // A bare seed perturbs nothing.
        assert!(!FaultPlan::none().with_seed(7).is_active());
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let p = FaultPlan::with_drop_rate(0.10, 42);
        let hits = (0..100_000).filter(|&n| p.drops(0, 1, n, 0, false)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.10).abs() < 0.01, "measured {rate}");
        // Bulk fragments roll their own class.
        let p = FaultPlan::none().with_drops(0.0, 0.5);
        assert!(!(0..1000).any(|n| p.drops(0, 1, n, 0, false)));
        let bulk_hits = (0..100_000).filter(|&n| p.drops(0, 1, n, 0, true)).count();
        assert!((bulk_hits as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::with_drop_rate(0.3, 7);
        let b = FaultPlan::with_drop_rate(0.3, 7);
        let c = FaultPlan::with_drop_rate(0.3, 8);
        let pat =
            |p: &FaultPlan| -> Vec<bool> { (0..256).map(|n| p.drops(2, 3, n, 0, false)).collect() };
        assert_eq!(pat(&a), pat(&b));
        assert_ne!(pat(&a), pat(&c));
        // Links draw independent streams.
        let other_link: Vec<bool> = (0..256).map(|n| a.drops(3, 2, n, 0, false)).collect();
        assert_ne!(pat(&a), other_link);
    }

    #[test]
    fn jitter_is_bounded() {
        let p = FaultPlan::none()
            .with_jitter(SimDelta::from_micros(5.0))
            .with_seed(1);
        let mut max_seen = SimDelta::ZERO;
        for n in 0..10_000 {
            let j = p.jitter(0, 1, n, 0);
            assert!(j <= SimDelta::from_micros(5.0));
            max_seen = max_seen.max(j);
        }
        // The bound is actually approached.
        assert!(max_seen > SimDelta::from_micros(4.5), "max {max_seen}");
    }

    #[test]
    fn outage_windows_cover_and_filter() {
        let o = Outage::window(SimTime::from_nanos(100), SimTime::from_nanos(200));
        assert!(o.covers(SimTime::from_nanos(100), 0, 1));
        assert!(o.covers(SimTime::from_nanos(199), 3, 2));
        assert!(!o.covers(SimTime::from_nanos(200), 0, 1));
        assert!(!o.covers(SimTime::from_nanos(99), 0, 1));
        let scoped = o.from_src(1).to_dst(2);
        assert!(scoped.covers(SimTime::from_nanos(150), 1, 2));
        assert!(!scoped.covers(SimTime::from_nanos(150), 1, 3));
        assert!(!scoped.covers(SimTime::from_nanos(150), 0, 2));
        let perm = Outage::permanent(SimTime::from_nanos(10));
        assert!(perm.covers(SimTime::from_nanos(u64::MAX - 1), 0, 1));
        let plan = FaultPlan::none().with_outage(o).with_outage(perm);
        assert!(plan.in_outage(SimTime::from_nanos(150), 0, 1));
        assert!(!plan.in_outage(SimTime::ZERO, 0, 1));
    }

    #[test]
    #[should_panic(expected = "too many outages")]
    fn outage_capacity_enforced() {
        // Disjoint windows (overlapping ones would coalesce into one).
        let mut p = FaultPlan::none();
        for i in 0..=MAX_OUTAGES as u64 {
            p = p.with_outage(Outage::window(
                SimTime::from_nanos(10 * i),
                SimTime::from_nanos(10 * i + 5),
            ));
        }
    }

    #[test]
    fn overlapping_outages_merge_into_one_window() {
        let t = SimTime::from_nanos;
        let a = Outage::window(t(100), t(200));
        let b = Outage::window(t(150), t(300));
        // Overlapping same-scope windows coalesce: the plan is identical
        // to one built from the union, occupying a single slot.
        let merged = FaultPlan::none().with_outage(a).with_outage(b);
        assert_eq!(
            merged,
            FaultPlan::none().with_outage(Outage::window(t(100), t(300)))
        );
        assert_eq!(merged.outages.iter().flatten().count(), 1);
        // Abutting windows coalesce too (the union covers both spans).
        let abut = FaultPlan::none()
            .with_outage(Outage::window(t(100), t(200)))
            .with_outage(Outage::window(t(200), t(250)));
        assert_eq!(
            abut,
            FaultPlan::none().with_outage(Outage::window(t(100), t(250)))
        );
        // A later window can bridge two earlier disjoint ones.
        let bridged = FaultPlan::none()
            .with_outage(Outage::window(t(100), t(150)))
            .with_outage(Outage::window(t(200), t(250)))
            .with_outage(Outage::window(t(140), t(210)));
        assert_eq!(bridged.outages.iter().flatten().count(), 1);
        assert!(bridged.in_outage(t(175), 0, 1));
        // Different scopes never merge: per-link and all-links windows
        // are distinct fault populations.
        let scoped = FaultPlan::none().with_outage(a).with_outage(b.from_src(1));
        assert_eq!(scoped.outages.iter().flatten().count(), 2);
    }

    #[test]
    fn node_fault_plan_schedules_and_scales() {
        let t = |us: f64| SimTime::ZERO + SimDelta::from_micros(us);
        let plan = NodeFaultPlan::none()
            .with_fault(NodeFault::crash(3, t(100.0)))
            .with_fault(NodeFault::crash_recovery(
                1,
                t(50.0),
                SimDelta::from_micros(25.0),
            ))
            .with_fault(NodeFault::straggler(2, 2.5));
        assert!(plan.is_active());
        assert!(!NodeFaultPlan::none().is_active());
        // Crash-stop: frozen from crash_at on, forever.
        assert!(!plan.frozen(3, t(99.9)));
        assert!(plan.frozen(3, t(100.0)));
        assert!(plan.frozen(3, t(999_000.0)));
        // Crash-recovery: frozen only inside the downtime window.
        assert!(plan.frozen(1, t(50.0)));
        assert!(plan.frozen(1, t(74.9)));
        assert!(!plan.frozen(1, t(75.0)));
        // Straggler never freezes but scales charges.
        assert!(!plan.frozen(2, t(0.0)));
        assert_eq!(
            plan.scale(2, SimDelta::from_nanos(1000)),
            SimDelta::from_nanos(2500)
        );
        // Healthy nodes scale by exactly 1 (bit-identical charges).
        assert_eq!(
            plan.scale(0, SimDelta::from_nanos(1234)),
            SimDelta::from_nanos(1234)
        );
        assert_eq!(plan.slowdown_ppm(0), PPM_SCALE);
    }

    #[test]
    fn node_fault_plan_is_deterministic_data() {
        let t = |us: f64| SimTime::ZERO + SimDelta::from_micros(us);
        let a = NodeFaultPlan::none().with_fault(NodeFault::crash(0, t(10.0)));
        let b = NodeFaultPlan::none().with_fault(NodeFault::crash(0, t(10.0)));
        assert_eq!(a, b);
        // Heartbeat jitter is a pure bounded hash of (seed, sender, tick).
        for tick in 0..64 {
            let j = a.hb_jitter(1, tick);
            assert_eq!(j, b.hb_jitter(1, tick));
            assert!(j <= a.hb_period / 8);
        }
        assert_ne!(
            (0..64)
                .map(|k| a.with_seed(9).hb_jitter(1, k))
                .collect::<Vec<_>>(),
            (0..64).map(|k| a.hb_jitter(1, k)).collect::<Vec<_>>(),
        );
    }

    #[test]
    #[should_panic(expected = "duplicate fault")]
    fn duplicate_node_fault_rejected() {
        let _ = NodeFaultPlan::none()
            .with_fault(NodeFault::crash(1, SimTime::ZERO))
            .with_fault(NodeFault::straggler(1, 2.0));
    }

    #[test]
    fn node_plan_display_formats() {
        assert_eq!(format!("{}", NodeFaultPlan::none()), "nodes=healthy");
        let plan = NodeFaultPlan::none().with_fault(NodeFault::crash(
            3,
            SimTime::ZERO + SimDelta::from_micros(100.0),
        ));
        let s = format!("{plan}");
        assert!(s.contains("p3@"), "{s}");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn silly_rates_rejected() {
        let _ = FaultPlan::with_drop_rate(1.5, 0);
    }

    #[test]
    fn backoff_doubles_caps_and_jitters() {
        let r = Reliability::baseline();
        let b1 = r.backoff(0, 0, 1, 0, 1);
        let b2 = r.backoff(0, 0, 1, 0, 2);
        let b9 = r.backoff(0, 0, 1, 0, 9);
        // Base doubles (jitter ≤ base/4 keeps attempts ordered).
        assert!(b1 >= r.rto && b1 <= r.rto + r.rto / 4);
        assert!(b2 >= r.rto * 2 && b2 <= r.rto * 2 + r.rto / 2);
        // Attempt 9 is capped at rto_max (+ jitter).
        assert!(b9 >= r.rto_max && b9 <= r.rto_max + r.rto_max / 4);
        // Deterministic.
        assert_eq!(b2, r.backoff(0, 0, 1, 0, 2));
        // Different requests get different jitter.
        assert_ne!(r.backoff(0, 0, 1, 10, 3), r.backoff(0, 0, 1, 11, 3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", FaultPlan::none()), "faults=none");
        let s = format!("{}", FaultPlan::with_drop_rate(0.01, 3));
        assert!(s.contains("drop=1.00%"), "{s}");
        let r = format!("{}", Reliability::baseline().with_always_on(true));
        assert!(r.contains("forced on"), "{r}");
    }
}
