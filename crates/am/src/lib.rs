//! # nowlab-am — a LogGP cluster network with a tunable Active Message layer
//!
//! This crate is the Rust stand-in for the experimental apparatus of
//! Martin, Vahdat, Culler & Anderson, *"Effects of Communication Latency,
//! Overhead, and Bandwidth in a Cluster Architecture"* (ISCA 1997): a
//! Myrinet/LANai cluster whose Generic-Active-Messages layer was modified so
//! that each LogGP parameter — overhead `o`, gap `g`, latency `L`, and bulk
//! Gap `G` — can be **independently increased** from the Berkeley NOW
//! baseline.
//!
//! The emulation runs on the deterministic discrete-event kernel of
//! [`nowlab_sim`]. Each simulated processor is an async task holding an
//! [`AmPort`]; the [`AmCluster`] models the NICs and the wire. The knobs
//! ([`Knobs`]) implement exactly the mechanisms of the paper's Figure 2:
//!
//! | knob | mechanism here (and in the paper) |
//! |------|-----------------------------------|
//! | `Δo` | host busy-loop added on send *and* pre-receive paths |
//! | `Δg` | NIC transmit-context stall after each injection |
//! | `ΔL` | receive-side delay queue defers message visibility |
//! | `ΔG` | per-byte stall after each ≤4KB bulk fragment |
//!
//! Flow control is a constant window of outstanding requests per processor
//! (default 8), independent of `L` — reproducing the paper's §3.3
//! observation that effective `g` rises at very large `L` because the
//! network pipeline cannot be filled.
//!
//! Beyond the paper's lossless Myrinet, the transport can emulate a
//! misbehaving fabric: a deterministic, seeded [`FaultPlan`] drops,
//! duplicates, jitters, or blacks out messages at the wire, and an
//! integrated reliable-delivery protocol (sequence numbers, piggybacked
//! cumulative acks, timeout-driven retransmission with exponential
//! backoff; see [`Reliability`]) keeps handler execution exactly-once. The
//! default plan is inert and costs nothing.
//!
//! # Examples
//!
//! A remote fetch-add between two processors:
//!
//! ```
//! use nowlab_sim::Sim;
//! use nowlab_am::{AmCluster, NetConfig, Mark, Payload, ReplyData};
//!
//! let sim = Sim::new();
//! let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 2);
//! cluster.set_state(1, Box::new(10u64));
//! let fadd = cluster.register_handler(|ctx| {
//!     let cell = ctx.state.downcast_mut::<u64>().unwrap();
//!     let old = *cell;
//!     *cell += ctx.msg.args[0];
//!     ReplyData::word(old)
//! });
//!
//! let server = cluster.port(1);
//! sim.spawn(async move { server.wait_until(|| false).await });
//!
//! let client = cluster.port(0);
//! let got = sim.spawn(async move {
//!     let (args, _) = client
//!         .request(1, fadd, [32, 0, 0, 0], Payload::None, Mark::Rmw)
//!         .await;
//!     args[0]
//! });
//! sim.run();
//! assert_eq!(got.try_take(), Some(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod fault;
mod message;
mod params;
mod port;
mod stats;

pub use cluster::{AmCluster, Handler, HandlerCtx, RunAbort};
pub use fault::{
    FaultPlan, NodeFault, NodeFaultPlan, Outage, Reliability, MAX_NODE_FAULTS, MAX_OUTAGES,
    PPM_SCALE,
};
pub use message::{Dir, HandlerId, Mark, Msg, Payload, ProcId, ReplyData, ReqId};
pub use params::{
    mb_per_s_from_per_byte, per_byte_from_mb_per_s, Knobs, LatencyMode, LoggpParams, NetConfig,
    GAM_FRAG_BYTES, GAM_WINDOW,
};
pub use port::AmPort;
pub use stats::{render_balance_matrix, CollKind, CommStats, ProcCounters};
