//! Message types carried by the Active Message layer.

use std::fmt;
use std::rc::Rc;

/// Index of a processor in the cluster (0..P).
pub type ProcId = usize;

/// Index into the cluster-wide handler table.
pub type HandlerId = usize;

/// Request identifier, unique per source processor.
pub type ReqId = u64;

/// Semantic class of a message, used by the instrumentation to reproduce the
/// paper's Table 4 columns ("% reads", barrier accounting, …).
///
/// A reply inherits the mark of its request, so "read requests **or
/// replies**" are both counted as read traffic, as in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mark {
    /// Remote read (request/response round trip the issuer waits on).
    Read,
    /// Remote write (pipelined store; ack returns asynchronously).
    Write,
    /// Atomic read-modify-write (fetch-add, compare-swap, lock ops).
    Rmw,
    /// Bulk data transfer (put/get payload).
    Bulk,
    /// Barrier/synchronization traffic.
    Barrier,
    /// Application-defined active message.
    User,
}

impl Mark {
    /// True for marks the paper counts as "read requests or replies".
    pub fn is_read(self) -> bool {
        matches!(self, Mark::Read)
    }
}

/// Payload attached to a message.
///
/// Short messages carry up to four 64-bit argument words only; bulk messages
/// additionally carry either real bytes or a synthetic length (for streaming
/// workloads such as NOW-sort where the byte values are irrelevant but the
/// wire time is not).
#[derive(Clone, Debug, Default)]
pub enum Payload {
    /// No payload beyond the argument words.
    #[default]
    None,
    /// Real data (shared, so forwarding does not copy).
    Bytes(Rc<[u8]>),
    /// Real 64-bit words (convenient for key shuffles).
    Words(Rc<[u64]>),
    /// Synthetic payload: occupies wire time and counts bytes, carries no
    /// data.
    Synthetic(u32),
}

impl Payload {
    /// Creates a payload from owned bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Payload::Bytes(bytes.into())
    }

    /// Creates a payload from owned words.
    pub fn from_words(words: Vec<u64>) -> Self {
        Payload::Words(words.into())
    }

    /// Number of payload bytes on the wire.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            Payload::None => 0,
            Payload::Bytes(b) => b.len() as u32,
            Payload::Words(w) => (w.len() * 8) as u32,
            Payload::Synthetic(n) => *n,
        }
    }

    /// True if there is no payload.
    pub fn is_none(&self) -> bool {
        matches!(self, Payload::None)
    }

    /// Borrows the payload as words, if it is a word payload.
    pub fn as_words(&self) -> Option<&[u64]> {
        match self {
            Payload::Words(w) => Some(w),
            _ => None,
        }
    }

    /// Borrows the payload as bytes, if it is a byte payload.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Payload::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

/// Direction of a message within a request/response pair.
///
/// Every AM request is answered: reads return data, stores and one-way
/// messages are acknowledged at the transport level. This pairing is what
/// makes the paper's `2·m·Δo` overhead model exact (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dir {
    /// A request, consuming one flow-control credit at the source.
    Request,
    /// The response to `ReqId`, restoring that credit on arrival.
    Reply,
}

/// A message in flight (or queued) between two processors.
#[derive(Clone, Debug)]
pub struct Msg {
    /// Sending processor.
    pub src: ProcId,
    /// Destination processor.
    pub dst: ProcId,
    /// Request/response direction.
    pub dir: Dir,
    /// Request id for credit matching (replies carry their request's id).
    pub req: ReqId,
    /// Cumulative acknowledgement piggybacked on every message: the
    /// sender's receipt watermark toward `dst` — every request it sent to
    /// `dst` with id below `ack` has completed (its reply was received).
    /// The receiver uses it to garbage-collect duplicate-suppression state
    /// (see DESIGN.md §3). Always zero when the reliability protocol is
    /// disengaged.
    pub ack: ReqId,
    /// Per-link FIFO sequence number (requests only): position of this
    /// request in the stream `src` sends to `dst`. The lossless wire
    /// delivers per-source FIFO and the upper layers rely on it, so the
    /// reliable path restores that order at the receiver — a request
    /// arriving ahead of a lost predecessor is held back until the gap is
    /// retransmitted. Zero on replies and when the protocol is disengaged.
    pub seq: u64,
    /// Handler to run on arrival (requests only).
    pub handler: HandlerId,
    /// Four argument words (GAM short-message format).
    pub args: [u64; 4],
    /// Optional bulk payload.
    pub payload: Payload,
    /// Semantic class for instrumentation.
    pub mark: Mark,
    /// Trace correlation id, stamped from a deterministic per-cluster
    /// counter when the port constructs the message (always, so traced
    /// and untraced runs are identical). Retransmissions keep their
    /// original id; `0` marks a raw injection that bypassed the port.
    pub trace: u64,
}

impl Msg {
    /// True if this message uses the bulk-transfer mechanism (it carries a
    /// payload beyond the four argument words).
    pub fn is_bulk(&self) -> bool {
        !self.payload.is_none()
    }
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}#{} {}->{} h{} {:?} {}B",
            self.dir,
            self.req,
            self.src,
            self.dst,
            self.handler,
            self.mark,
            self.payload.wire_bytes()
        )
    }
}

/// What a handler tells the transport to send back.
#[derive(Clone, Debug, Default)]
pub struct ReplyData {
    /// Four reply argument words.
    pub args: [u64; 4],
    /// Optional bulk reply payload (e.g. a bulk get).
    pub payload: Payload,
}

impl ReplyData {
    /// An empty acknowledgement.
    pub fn ack() -> Self {
        Self::default()
    }

    /// A reply carrying argument words only.
    pub fn words(args: [u64; 4]) -> Self {
        ReplyData {
            args,
            payload: Payload::None,
        }
    }

    /// A reply carrying a single word in `args[0]`.
    pub fn word(w: u64) -> Self {
        Self::words([w, 0, 0, 0])
    }

    /// A reply carrying a bulk payload.
    pub fn bulk(args: [u64; 4], payload: Payload) -> Self {
        ReplyData { args, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_wire_bytes() {
        assert_eq!(Payload::None.wire_bytes(), 0);
        assert_eq!(Payload::from_bytes(vec![0u8; 100]).wire_bytes(), 100);
        assert_eq!(Payload::from_words(vec![0u64; 4]).wire_bytes(), 32);
        assert_eq!(Payload::Synthetic(4096).wire_bytes(), 4096);
    }

    #[test]
    fn payload_accessors() {
        let w = Payload::from_words(vec![1, 2, 3]);
        assert_eq!(w.as_words(), Some(&[1u64, 2, 3][..]));
        assert!(w.as_bytes().is_none());
        let b = Payload::from_bytes(vec![9, 9]);
        assert_eq!(b.as_bytes(), Some(&[9u8, 9][..]));
        assert!(b.as_words().is_none());
        assert!(Payload::None.is_none());
        assert!(!b.is_none());
    }

    #[test]
    fn read_mark_classification() {
        assert!(Mark::Read.is_read());
        for m in [
            Mark::Write,
            Mark::Rmw,
            Mark::Bulk,
            Mark::Barrier,
            Mark::User,
        ] {
            assert!(!m.is_read());
        }
    }

    #[test]
    fn bulk_detection() {
        let m = Msg {
            src: 0,
            dst: 1,
            dir: Dir::Request,
            req: 0,
            ack: 0,
            seq: 0,
            handler: 0,
            args: [0; 4],
            payload: Payload::Synthetic(128),
            mark: Mark::Bulk,
            trace: 0,
        };
        assert!(m.is_bulk());
        let m2 = Msg {
            payload: Payload::None,
            ..m
        };
        assert!(!m2.is_bulk());
    }

    #[test]
    fn reply_data_constructors() {
        assert_eq!(ReplyData::ack().args, [0; 4]);
        assert_eq!(ReplyData::word(7).args[0], 7);
        let r = ReplyData::bulk([1, 2, 3, 4], Payload::Synthetic(10));
        assert_eq!(r.payload.wire_bytes(), 10);
    }
}
