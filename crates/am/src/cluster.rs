//! The emulated cluster: P endpoints, their NICs, and the wire.
//!
//! Timing model (paper Figure 2):
//!
//! * **Send**: the host processor is busy for `o_send + Δo` writing the
//!   message into the NIC (charged by [`crate::AmPort`]); the NIC injects it
//!   at `max(deposit, tx_free)` and then stalls its transmit context —
//!   `g + Δg` for a short message; for each ≤4KB bulk fragment,
//!   `max(g, (G+ΔG)·bytes) + Δg`.
//! * **Transit**: the message arrives `L + ΔL` after injection of its last
//!   fragment (the `ΔL` is the paper's receive-side delay queue: it defers
//!   the presence bit without perturbing `o` or `g`).
//! * **Receive**: the destination NIC makes at most one message visible per
//!   `g + Δg` (its receive context is independent of the transmit context —
//!   the LANai's dual hardware contexts), after which the message waits in
//!   the receive queue until the destination *processor* polls it, paying
//!   `o_recv + Δo` per message.

use std::any::Any;
use std::cell::{Cell, OnceCell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::{Rc, Weak};

use nowlab_metrics::MetricsSink;
use nowlab_sim::{HookId, Notify, Sim, SimDelta, SimTime};
use nowlab_trace::{MsgKind, SendEvent, TraceEvent, TraceSink, VisibleEvent};

use crate::message::{Dir, HandlerId, Mark, Msg, Payload, ProcId, ReplyData, ReqId};
use crate::params::NetConfig;
use crate::stats::{CommStats, ProcCounters};

/// Context passed to an Active Message handler.
///
/// Handlers run synchronously on the destination processor (in zero
/// simulated time beyond the `o_recv` already charged) and must not block;
/// their only way to communicate is the [`ReplyData`] they return.
pub struct HandlerCtx<'a> {
    /// The destination processor's mutable user state (set via
    /// [`AmCluster::set_state`]).
    pub state: &'a mut dyn Any,
    /// The incoming request.
    pub msg: &'a Msg,
    /// Virtual time at which the handler runs.
    pub now: SimTime,
}

impl fmt::Debug for HandlerCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandlerCtx")
            .field("msg", &self.msg)
            .field("now", &self.now)
            .finish()
    }
}

/// An Active Message handler: runs at the destination, returns the reply.
pub type Handler = Box<dyn Fn(HandlerCtx<'_>) -> ReplyData>;

pub(crate) struct ReplySlot {
    pub filled: Cell<bool>,
    pub args: Cell<[u64; 4]>,
    pub payload: RefCell<Payload>,
}

/// An unacknowledged request held for possible retransmission (reliability
/// protocol only).
pub(crate) struct TxEntry {
    /// The original message, re-injected verbatim on timeout (its `ack`
    /// field is refreshed per attempt).
    pub msg: Msg,
    /// Transmission attempts so far (1 = original send only).
    pub attempts: u32,
}

/// What a responder keeps to re-answer a duplicate request without
/// re-running its handler.
#[derive(Clone)]
pub(crate) struct CachedReply {
    pub args: [u64; 4],
    pub payload: Payload,
    pub mark: Mark,
}

/// One observer's failure-detector verdict about a peer.
///
/// The state machine is driven only at heartbeat ticks: `Alive →
/// Suspect` after [`crate::NodeFaultPlan::suspect_after`] of silence,
/// `Suspect → Alive` (a *false suspicion*) when the peer's beat resumes,
/// `Suspect → Dead` after [`crate::NodeFaultPlan::confirm_after`].
/// `Dead` is absorbing: a peer that recovers after confirmation stays
/// dead in this observer's view (crash-stop semantics from the
/// survivor's side).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PeerStatus {
    /// Heard from recently (or never evaluated).
    Alive,
    /// Silent beyond the suspect threshold.
    Suspect,
    /// Confirmed dead: silence beyond the confirm threshold, or
    /// retransmit-attempt exhaustion.
    Dead,
}

/// A confirmed peer death, as recorded by the first observer to confirm
/// it — the structured payload of an aborted run (the upper layers'
/// `DegradePolicy::Abort` surfaces this instead of panicking or hanging).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunAbort {
    /// The surviving processor whose detector (or retransmit exhaustion)
    /// confirmed the death.
    pub observer: ProcId,
    /// The processor written off as dead.
    pub peer: ProcId,
    /// Virtual time of confirmation.
    pub at: SimTime,
}

impl fmt::Display for RunAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "proc {} confirmed proc {} dead at {}",
            self.observer, self.peer, self.at
        )
    }
}

/// Receiver-side duplicate-suppression state for one incoming link
/// (reliability protocol only). Garbage-collected by the cumulative ack
/// watermark piggybacked on every message from that source.
#[derive(Default)]
pub(crate) struct RxLink {
    /// Every request id below this completed at the sender: anything
    /// arriving below it is a stale duplicate, and no state is retained
    /// for it.
    pub acked_below: ReqId,
    /// Request ids (≥ `acked_below`) whose handler has already run.
    pub seen: BTreeSet<ReqId>,
    /// Replies already sent for `seen` requests, kept until acked.
    pub reply_cache: BTreeMap<ReqId, CachedReply>,
    /// Next in-order sequence number expected on this link ([`Msg::seq`]).
    pub next_seq: u64,
    /// Requests that arrived ahead of a lost predecessor, keyed by
    /// sequence number and held until the gap closes. Bounded by the
    /// sender's flow-control window.
    pub reorder: BTreeMap<u64, Msg>,
}

pub(crate) struct Endpoint {
    /// Messages visible to the processor, awaiting its poll.
    pub rx: RefCell<std::collections::VecDeque<Msg>>,
    /// Woken on every delivery into `rx`.
    pub rx_notify: Notify,
    /// Remaining flow-control credits (requests in flight = window - credits).
    pub credits: Cell<u32>,
    /// Reply slots for requests whose issuer is waiting.
    pub pending_replies: RefCell<BTreeMap<ReqId, Rc<ReplySlot>>>,
    /// Outstanding posted (non-waited) requests, drained by acks.
    pub pending_posts: Cell<u64>,
    /// Next request id.
    pub next_req: Cell<ReqId>,
    /// NIC transmit context: time at which it can inject again.
    pub nic_tx_free: Cell<SimTime>,
    /// NIC receive context: time at which it can make another message
    /// visible.
    pub nic_rx_free: Cell<SimTime>,
    /// Per-processor application state, visible to handlers.
    pub user_state: RefCell<Option<Box<dyn Any>>>,
    /// Instrumentation.
    pub counters: RefCell<ProcCounters>,
    /// True while the owning process is inside a communication wait
    /// (time-breakdown accounting).
    pub in_wait: Cell<bool>,
    /// Monotone per-source counter keying the stateless fault decisions
    /// (one tick per injection attempt; see [`crate::FaultPlan`]).
    pub fault_nonce: Cell<u64>,
    /// Reliability protocol: unacknowledged requests per destination.
    pub rel_tx: RefCell<Vec<BTreeMap<ReqId, TxEntry>>>,
    /// Reliability protocol: duplicate-suppression state per source.
    pub rel_rx: RefCell<Vec<RxLink>>,
    /// Reliability protocol: next per-link request sequence number, per
    /// destination ([`Msg::seq`]).
    pub tx_seq: RefCell<Vec<u64>>,
    /// Woken when this processor's crash window ends (fail-pause
    /// recovery); never signalled for healthy or crash-stop nodes.
    pub crash_notify: Notify,
    /// Failure-detector verdict about each peer (self entry stays
    /// `Alive`). Only the heartbeat control plane and retransmit
    /// exhaustion mutate it.
    pub peer_status: RefCell<Vec<PeerStatus>>,
    /// Last instant a heartbeat from each peer reached this observer.
    pub last_heard: RefCell<Vec<SimTime>>,
}

impl Endpoint {
    fn new(p: usize, window: u32) -> Self {
        Endpoint {
            rx: RefCell::new(std::collections::VecDeque::new()),
            rx_notify: Notify::new(),
            credits: Cell::new(window),
            pending_replies: RefCell::new(BTreeMap::new()),
            pending_posts: Cell::new(0),
            next_req: Cell::new(0),
            nic_tx_free: Cell::new(SimTime::ZERO),
            nic_rx_free: Cell::new(SimTime::ZERO),
            user_state: RefCell::new(None),
            counters: RefCell::new(ProcCounters::new(p)),
            in_wait: Cell::new(false),
            fault_nonce: Cell::new(0),
            rel_tx: RefCell::new((0..p).map(|_| BTreeMap::new()).collect()),
            rel_rx: RefCell::new((0..p).map(|_| RxLink::default()).collect()),
            tx_seq: RefCell::new(vec![0; p]),
            crash_notify: Notify::new(),
            peer_status: RefCell::new(vec![PeerStatus::Alive; p]),
            last_heard: RefCell::new(vec![SimTime::ZERO; p]),
        }
    }
}

/// In-flight message arena: the hot delivery path parks each [`Msg`] here
/// and schedules a kernel *hook* event carrying only the slot token, so no
/// `Box<dyn FnOnce>` is allocated per message (see [`Sim::register_hook`]).
/// Slots are recycled through a free list; a message occupies its slot only
/// between schedule and fire, so the arena's high-water mark tracks the
/// number of messages simultaneously in flight on the wire.
#[derive(Default)]
pub(crate) struct MsgSlab {
    entries: Vec<Option<Msg>>,
    free: Vec<u32>,
}

impl MsgSlab {
    fn with_capacity(n: usize) -> Self {
        MsgSlab {
            entries: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
        }
    }

    fn insert(&mut self, msg: Msg) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.entries[slot as usize] = Some(msg);
                slot
            }
            None => {
                let slot = u32::try_from(self.entries.len()).expect("message arena overflow");
                self.entries.push(Some(msg));
                slot
            }
        }
    }

    fn take(&mut self, slot: u32) -> Msg {
        let msg = self.entries[slot as usize]
            .take()
            .expect("message arena slot fired twice");
        self.free.push(slot);
        msg
    }
}

/// Token bit distinguishing the two delivery phases dispatched through the
/// single network hook: clear = arrival at the destination NIC, set = the
/// SlowRxPath make-visible step after the receive context's ΔL.
const VISIBLE_BIT: u64 = 1 << 32;

pub(crate) struct ClusterInner {
    pub sim: Sim,
    pub cfg: NetConfig,
    pub procs: Vec<Endpoint>,
    /// In-flight message arena for hook-scheduled delivery events.
    pub msg_slab: RefCell<MsgSlab>,
    /// The network delivery hook, registered once at construction.
    pub net_hook: OnceCell<HookId>,
    pub handlers: RefCell<Vec<Handler>>,
    pub stats_epoch: Cell<SimTime>,
    pub frozen_stats: RefCell<Option<CommStats>>,
    /// Optional lifecycle observer. When empty (the default) the hot path
    /// pays one pointer check per hook and constructs nothing.
    pub trace: OnceCell<Rc<dyn TraceSink>>,
    /// Optional metrics observer (utilization timelines). Same discipline
    /// as `trace`: one pointer check per hook when empty, pure
    /// observation when installed.
    pub metrics: OnceCell<Rc<dyn MetricsSink>>,
    /// Deterministic trace-id well: advances once per port-constructed
    /// message whether or not a sink is installed, so tracing cannot
    /// perturb a run.
    pub trace_ids: Cell<u64>,
    /// Set by the SPMD runtime when the program epilogue completes: the
    /// heartbeat control plane stops re-arming ticks.
    pub control_done: Cell<bool>,
    /// When set, the first confirmed peer death halts the simulation
    /// (the *abort* degradation policy; see [`AmCluster::set_abort_on_death`]).
    pub abort_on_death: Cell<bool>,
    /// First confirmed peer death across the whole cluster.
    pub death_note: RefCell<Option<RunAbort>>,
}

/// The AM layer's [`Mark`] projected onto the trace crate's
/// dependency-free message category.
fn trace_kind(mark: Mark) -> MsgKind {
    match mark {
        Mark::Read => MsgKind::Read,
        Mark::Write => MsgKind::Write,
        Mark::Rmw => MsgKind::Rmw,
        Mark::Bulk => MsgKind::Bulk,
        Mark::Barrier => MsgKind::Barrier,
        Mark::User => MsgKind::User,
    }
}

/// An emulated cluster of `P` processors joined by a LogGP network with a
/// GAM-style Active Message layer.
///
/// Cheap to clone (reference-counted handle). Spawn one simulated process
/// per processor, give each an [`crate::AmPort`] via [`AmCluster::port`],
/// and drive the [`Sim`].
///
/// # Examples
///
/// A remote increment via a user handler:
///
/// ```
/// use nowlab_sim::Sim;
/// use nowlab_am::{AmCluster, NetConfig, Mark, Payload, ReplyData};
///
/// let sim = Sim::new();
/// let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 2);
/// cluster.set_state(1, Box::new(0u64));
/// let inc = cluster.register_handler(|ctx| {
///     let counter = ctx.state.downcast_mut::<u64>().unwrap();
///     *counter += ctx.msg.args[0];
///     ReplyData::word(*counter)
/// });
///
/// // Receives are polled: the destination must be servicing the network.
/// let server = cluster.port(1);
/// sim.spawn(async move { server.wait_until(|| false).await });
///
/// let port = cluster.port(0);
/// let h = sim.spawn(async move {
///     let (args, _) = port.request(1, inc, [5, 0, 0, 0], Payload::None, Mark::Rmw).await;
///     args[0]
/// });
/// sim.run();
/// assert_eq!(h.try_take(), Some(5));
/// ```
#[derive(Clone)]
pub struct AmCluster {
    pub(crate) inner: Rc<ClusterInner>,
}

impl fmt::Debug for AmCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AmCluster")
            .field("procs", &self.inner.procs.len())
            .field("cfg", &self.inner.cfg)
            .finish()
    }
}

impl AmCluster {
    /// Creates a cluster of `p` processors over the given network
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    pub fn new(sim: Sim, cfg: NetConfig, p: usize) -> Self {
        assert!(p > 0, "cluster needs at least one processor");
        let procs = (0..p).map(|_| Endpoint::new(p, cfg.window)).collect();
        // Arena sized for the steady-state wire load: up to `window`
        // outstanding messages per processor.
        let slab_cap = p.saturating_mul(cfg.window as usize);
        let cluster = AmCluster {
            inner: Rc::new(ClusterInner {
                sim,
                cfg,
                procs,
                msg_slab: RefCell::new(MsgSlab::with_capacity(slab_cap)),
                net_hook: OnceCell::new(),
                handlers: RefCell::new(Vec::new()),
                stats_epoch: Cell::new(SimTime::ZERO),
                frozen_stats: RefCell::new(None),
                trace: OnceCell::new(),
                metrics: OnceCell::new(),
                trace_ids: Cell::new(0),
                control_done: Cell::new(false),
                abort_on_death: Cell::new(false),
                death_note: RefCell::new(None),
            }),
        };
        // Register the network delivery hook once: every wire arrival and
        // every SlowRxPath visibility step dispatches through it with a
        // message-arena token instead of a freshly boxed closure.
        {
            let weak = Rc::downgrade(&cluster.inner);
            let hook = cluster.inner.sim.register_hook(move |sim, token| {
                if let Some(inner) = weak.upgrade() {
                    inner.on_net_hook(sim, token);
                }
            });
            cluster
                .inner
                .net_hook
                .set(hook)
                .expect("network hook registered twice");
        }
        // The node-failure control plane costs nothing unless the plan is
        // active: an inert plan schedules no events here, keeping every
        // healthy run bit-identical to a build without the failure model.
        let plan = cluster.inner.cfg.node_faults;
        if plan.is_active() {
            let weak = Rc::downgrade(&cluster.inner);
            let first = SimTime::ZERO + plan.hb_period;
            cluster
                .inner
                .sim
                .schedule(first, move |_| ClusterInner::on_heartbeat_tick(&weak, 1));
            for f in plan.faults.iter().flatten() {
                if f.crashes() && f.recover_at != SimTime::MAX {
                    // Fail-pause recovery: wake the frozen task's crash
                    // gate and nudge its wait loops to re-check.
                    let weak = Rc::downgrade(&cluster.inner);
                    let node = f.node;
                    cluster.inner.sim.schedule(f.recover_at, move |_| {
                        if let Some(inner) = weak.upgrade() {
                            inner.procs[node].crash_notify.notify_all();
                            inner.procs[node].rx_notify.notify_all();
                        }
                    });
                }
            }
        }
        cluster
    }

    /// Installs a lifecycle observer (see [`TraceSink`]). The first
    /// installation wins; later calls are ignored. Sinks are pure
    /// observers — traced runs are event-count- and result-identical to
    /// untraced runs.
    pub fn set_trace_sink(&self, sink: Rc<dyn TraceSink>) {
        let _ = self.inner.trace.set(sink);
    }

    /// Installs a metrics observer (see [`MetricsSink`]). The first
    /// installation wins; later calls are ignored. Like tracing, metrics
    /// hooks are passive: a metered run is event-count- and
    /// result-identical to an unmetered one.
    pub fn set_metrics_sink(&self, sink: Rc<dyn MetricsSink>) {
        let _ = self.inner.metrics.set(sink);
    }

    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.inner.procs.len()
    }

    /// The network configuration.
    pub fn config(&self) -> NetConfig {
        self.inner.cfg
    }

    /// The simulation this cluster runs in.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }

    /// Registers a handler on all processors; returns its id.
    pub fn register_handler<F>(&self, f: F) -> HandlerId
    where
        F: Fn(HandlerCtx<'_>) -> ReplyData + 'static,
    {
        let mut handlers = self.inner.handlers.borrow_mut();
        handlers.push(Box::new(f));
        handlers.len() - 1
    }

    /// Installs per-processor application state (visible to handlers via
    /// [`HandlerCtx::state`] and to the process via
    /// [`crate::AmPort::with_state`]).
    pub fn set_state(&self, proc: ProcId, state: Box<dyn Any>) {
        *self.inner.procs[proc].user_state.borrow_mut() = Some(state);
    }

    /// A communication port bound to processor `proc`.
    pub fn port(&self, proc: ProcId) -> crate::AmPort {
        assert!(proc < self.num_procs(), "no such processor {proc}");
        crate::AmPort::new(Rc::clone(&self.inner), proc)
    }

    /// Snapshot of the communication counters since the last
    /// [`AmCluster::reset_stats`] — or the frozen snapshot, if
    /// [`AmCluster::freeze_stats`] was called.
    pub fn stats(&self) -> CommStats {
        if let Some(frozen) = self.inner.frozen_stats.borrow().as_ref() {
            return frozen.clone();
        }
        self.live_stats()
    }

    /// Freezes the measured region: subsequent traffic (e.g. result
    /// verification) is excluded from [`AmCluster::stats`].
    pub fn freeze_stats(&self) {
        *self.inner.frozen_stats.borrow_mut() = Some(self.live_stats());
    }

    fn live_stats(&self) -> CommStats {
        CommStats {
            per_proc: self
                .inner
                .procs
                .iter()
                .map(|e| e.counters.borrow().clone())
                .collect(),
            elapsed: self.inner.sim.now().since(self.inner.stats_epoch.get()),
        }
    }

    /// One line per processor describing live transport state — credits,
    /// outstanding posts/requests, retransmit queues, receive-queue depth.
    /// A diagnostic for stuck runs: a processor deadlocked in the
    /// communication layer shows up here as missing credits or a
    /// never-draining retransmit queue.
    pub fn transport_diagnostic(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (p, ep) in self.inner.procs.iter().enumerate() {
            let tx: Vec<String> = ep
                .rel_tx
                .borrow()
                .iter()
                .enumerate()
                .filter(|(_, m)| !m.is_empty())
                .map(|(d, m)| format!("->{d}:{:?}", m.keys().collect::<Vec<_>>()))
                .collect();
            let mut awaiting: Vec<ReqId> = ep.pending_replies.borrow().keys().copied().collect();
            awaiting.sort_unstable();
            let held: usize = ep.rel_rx.borrow().iter().map(|l| l.reorder.len()).sum();
            let _ = writeln!(
                out,
                "proc {p}: credits={} posts={} awaiting={awaiting:?} rx={} \
                 next_req={} in_wait={} held_ooo={held} rel_tx=[{}]",
                ep.credits.get(),
                ep.pending_posts.get(),
                ep.rx.borrow().len(),
                ep.next_req.get(),
                ep.in_wait.get(),
                tx.join(" "),
            );
        }
        out
    }

    /// Wakes every processor blocked in a network wait so it re-checks its
    /// condition. Used by SPMD runtimes for conditions that change without
    /// a message arriving (e.g. "all processors have finished").
    pub fn poke_all(&self) {
        for ep in &self.inner.procs {
            ep.rx_notify.notify_all();
        }
    }

    /// Marks the distributed program finished: the heartbeat control
    /// plane stops re-arming ticks, so trailing control events cannot
    /// outlive the application by more than one period. Idempotent.
    pub fn finish_control(&self) {
        self.inner.control_done.set(true);
    }

    /// Selects the *abort* degradation policy: the first confirmed peer
    /// death records a death note and halts the simulation at the
    /// current instant (a clean, structured abort — never a hang). The
    /// default (`false`) lets survivors keep running degraded.
    pub fn set_abort_on_death(&self, on: bool) {
        self.inner.abort_on_death.set(on);
    }

    /// The first confirmed peer death, if any.
    pub fn death_note(&self) -> Option<RunAbort> {
        *self.inner.death_note.borrow()
    }

    /// Zeroes all counters and restarts the stats clock (used to exclude
    /// input-generation phases from the measured region). Also discards
    /// any frozen snapshot.
    pub fn reset_stats(&self) {
        let p = self.num_procs();
        for e in &self.inner.procs {
            *e.counters.borrow_mut() = ProcCounters::new(p);
        }
        self.inner.stats_epoch.set(self.inner.sim.now());
        *self.inner.frozen_stats.borrow_mut() = None;
    }
}

impl ClusterInner {
    /// Draws the next trace correlation id. Always advances (tracing on
    /// or off) so the id stream is part of the deterministic run state.
    pub(crate) fn next_trace(&self) -> u64 {
        let id = self.trace_ids.get() + 1;
        self.trace_ids.set(id);
        id
    }

    /// Hands a message to the source NIC at the current instant; computes
    /// injection and transit times and schedules delivery. The caller has
    /// just paid `o_send` on the host processor (retransmission timers
    /// charge it out of band and use [`ClusterInner::inject_with`]).
    pub(crate) fn inject(self: &Rc<Self>, msg: Msg) {
        let o_send = self.cfg.eff_o_send();
        self.inject_with(msg, o_send);
    }

    /// [`ClusterInner::inject`] with an explicit just-paid send overhead
    /// (attributed to the message's trace record; zero for timer-driven
    /// retransmissions).
    pub(crate) fn inject_with(self: &Rc<Self>, msg: Msg, o_send: SimDelta) {
        let cfg = &self.cfg;
        let now = self.sim.now();
        let src = &self.procs[msg.src];

        // Instrumentation: every injected message is a "send".
        {
            let mut c = src.counters.borrow_mut();
            c.sends += 1;
            c.per_dst[msg.dst] += 1;
            if msg.dir == Dir::Reply {
                c.replies_sent += 1;
            }
            if msg.mark.is_read() {
                c.sends_read += 1;
            }
            if msg.is_bulk() {
                c.sends_bulk += 1;
                c.bytes_bulk += u64::from(msg.payload.wire_bytes());
            } else {
                c.bytes_short += u64::from(cfg.short_wire_bytes);
            }
        }

        // Transmit-context occupancy.
        let start = now.max(src.nic_tx_free.get());
        let payload_bytes = msg.payload.wire_bytes();
        let (wire_done, tx_free) = if payload_bytes == 0 {
            // Short message: injected instantaneously at `start`; the tx
            // loop then stalls for the (possibly inflated) gap.
            (start, start + cfg.eff_gap())
        } else {
            // Bulk: fragments of up to `frag_bytes`; each occupies the DMA
            // engine for (G+ΔG)·size (at least the base per-message gap),
            // then the added-gap knob stalls the loop.
            let mut t = start;
            let mut remaining = payload_bytes;
            let mut last_done = start;
            while remaining > 0 {
                let frag = remaining.min(cfg.frag_bytes);
                remaining -= frag;
                let dma = cfg.eff_gap_per_byte() * u64::from(frag);
                let busy = dma.max(self.cfg.machine.gap);
                last_done = t + busy;
                t = last_done + cfg.knobs.d_g;
            }
            (last_done, t)
        };
        src.nic_tx_free.set(tx_free);
        if let Some(m) = self.metrics.get() {
            // The send context is busy from DMA start to loop release;
            // `nic_tx_free` serializes these spans, so they never overlap.
            m.nic_tx(msg.src, start, tx_free);
            m.window_depth(
                msg.src,
                self.cfg.window.saturating_sub(src.credits.get()) as usize,
                now,
            );
        }

        // Transit. With the delay queue the added latency is applied here
        // (equivalent to deferring the presence bit at the receiver); with
        // the naive slow-receive-path mode only the base latency is, and
        // the receive context pays ΔL per message instead.
        let mut arrival = match cfg.latency_mode {
            crate::LatencyMode::DelayQueue => wire_done + cfg.eff_latency(),
            crate::LatencyMode::SlowRxPath => wire_done + cfg.machine.latency,
        };

        // Fault injection. The sender has already paid full LogGP send
        // costs (overhead, NIC occupancy, counters) — a fault only decides
        // what the *wire* does with the message. Decisions are stateless
        // hashes of (seed, link, attempt nonce), so the pattern is a pure
        // function of the plan and the deterministic injection order.
        if cfg.faults.is_active() {
            let faults = &cfg.faults;
            let nonce = src.fault_nonce.get();
            src.fault_nonce.set(nonce + 1);
            let lost = faults.in_outage(wire_done, msg.src, msg.dst)
                || if payload_bytes == 0 {
                    faults.drops(msg.src, msg.dst, nonce, 0, false)
                } else {
                    // Bulk: each fragment rolls; losing any fragment loses
                    // the whole message (the transport has no
                    // partial-message semantics — the retransmit resends
                    // it all).
                    let frags = payload_bytes.div_ceil(cfg.frag_bytes);
                    (0..frags).any(|f| faults.drops(msg.src, msg.dst, nonce, f, true))
                };
            if lost {
                src.counters.borrow_mut().drops += 1;
                if let Some(sink) = self.trace.get() {
                    sink.record(&TraceEvent::Drop {
                        id: msg.trace,
                        at: now,
                    });
                }
                return;
            }
            if faults.duplicates(msg.src, msg.dst, nonce) {
                src.counters.borrow_mut().dups += 1;
                let dup_arrival = arrival + faults.jitter(msg.src, msg.dst, nonce, 1);
                if let Some(sink) = self.trace.get() {
                    sink.record(&TraceEvent::DupDelivery {
                        id: msg.trace,
                        arrival: dup_arrival,
                    });
                }
                self.schedule_deliver(dup_arrival, msg.clone());
            }
            arrival += faults.jitter(msg.src, msg.dst, nonce, 0);
        }

        // Tracing: all sender-side timestamps are known here, so one
        // event carries the whole injection. Pure observation — nothing
        // is scheduled and no simulation state is touched.
        if let Some(sink) = self.trace.get() {
            sink.record(&TraceEvent::Send(SendEvent {
                id: msg.trace,
                src: msg.src,
                dst: msg.dst,
                reply: msg.dir == Dir::Reply,
                kind: trace_kind(msg.mark),
                bytes: payload_bytes,
                o_send,
                inject: now,
                tx_start: start,
                wire_done,
                arrival,
                in_flight: self.cfg.window.saturating_sub(src.credits.get()),
                timer_depth: self.sim.pending_timers() as u32,
            }));
        }

        if let Some(m) = self.metrics.get() {
            m.wire(msg.src, msg.dst, wire_done, arrival);
        }
        self.schedule_deliver(arrival, msg);
    }

    /// The cumulative-ack watermark `src` piggybacks on messages to `dst`:
    /// the lowest still-outstanding request id on that link, or the next
    /// id to be issued if none is outstanding. Every request below it has
    /// completed, so the receiver can discard its duplicate-suppression
    /// state below the watermark.
    pub(crate) fn ack_watermark(&self, src: ProcId, dst: ProcId) -> ReqId {
        let ep = &self.procs[src];
        ep.rel_tx.borrow()[dst]
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| ep.next_req.get())
    }

    /// Applies the cumulative ack carried by an incoming message: advances
    /// the per-link watermark and prunes the seen-set and reply cache
    /// below it.
    pub(crate) fn note_ack(&self, at: ProcId, from: ProcId, ack: ReqId) {
        let mut rx = self.procs[at].rel_rx.borrow_mut();
        let link = &mut rx[from];
        if ack <= link.acked_below {
            return;
        }
        link.acked_below = ack;
        link.seen = link.seen.split_off(&ack);
        link.reply_cache.retain(|&req, _| req >= ack);
    }

    /// Arms the single-shot retransmission timer for attempt `attempt` of
    /// an outstanding request. The timer self-reschedules with exponential
    /// backoff while the request remains unacknowledged and becomes a
    /// no-op once the reply arrives (there is no cancellation — the event
    /// queue drains naturally).
    pub(crate) fn arm_retransmit(
        self: &Rc<Self>,
        src: ProcId,
        dst: ProcId,
        req: ReqId,
        attempt: u32,
    ) {
        let backoff = self
            .cfg
            .reliability
            .backoff(self.cfg.faults.seed, src, dst, req, attempt);
        {
            let mut c = self.procs[src].counters.borrow_mut();
            c.max_retry_backoff = c.max_retry_backoff.max(backoff);
        }
        let weak = Rc::downgrade(self);
        self.sim.schedule(self.sim.now() + backoff, move |_| {
            if let Some(inner) = weak.upgrade() {
                inner.on_retransmit_timer(src, dst, req, attempt);
            }
        });
    }

    /// Timeout expiry: if the request is still unacknowledged, charge the
    /// sender, re-inject with a refreshed ack watermark, and re-arm with
    /// the next backoff step. When the silence has a scheduled cause — an
    /// active node-fault plan, or a wire outage covering the link right
    /// now — the sender gives up after
    /// [`crate::Reliability::max_attempts`] injections and escalates the
    /// peer to its failure detector as dead: a crashed peer or severed
    /// link ends in a bounded number of timer events, never a spin to the
    /// run's event/time guard. Probabilistic drops alone never escalate:
    /// a lossy wire eventually delivers, so the sender retries until the
    /// run's event/time budget rules (a healthy peer must never be
    /// declared dead by bad luck).
    fn on_retransmit_timer(self: &Rc<Self>, src: ProcId, dst: ProcId, req: ReqId, attempt: u32) {
        let ep = &self.procs[src];
        let exhausted = {
            let tx = ep.rel_tx.borrow();
            match tx[dst].get(&req) {
                None => return, // acknowledged in the meantime: timer is stale
                Some(entry) => entry.attempts >= self.cfg.reliability.max_attempts,
            }
        };
        if exhausted
            && (self.cfg.node_faults.is_active()
                || self.cfg.faults.in_outage(self.sim.now(), src, dst))
        {
            self.escalate_peer_death(src, dst);
            return;
        }
        let mut msg = {
            let mut tx = ep.rel_tx.borrow_mut();
            let Some(entry) = tx[dst].get_mut(&req) else {
                return;
            };
            entry.attempts += 1;
            entry.msg.clone()
        };
        {
            // The retransmission is driven from the timer, so its send
            // overhead is charged interrupt-style: o_time accrues without
            // blocking the (possibly computing) processor.
            let mut c = ep.counters.borrow_mut();
            c.timeouts += 1;
            c.retransmits += 1;
            c.o_time += self.cfg.node_faults.scale(src, self.cfg.eff_o_send());
        }
        if let Some(sink) = self.trace.get() {
            sink.record(&TraceEvent::Retransmit {
                id: msg.trace,
                attempt: attempt + 1,
                o_send: self.cfg.eff_o_send(),
                at: self.sim.now(),
            });
        }
        if let Some(m) = self.metrics.get() {
            // Counted, not timed: the interrupt-style o_send charge above
            // overlaps whatever the processor was doing, so it cannot be
            // a span in the conserving per-processor timeline.
            m.retransmit(src, self.sim.now());
        }
        msg.ack = self.ack_watermark(src, dst);
        // The interrupt-style overhead above does not precede the
        // injection in time, so the retry's attributed o_send is zero
        // (the Retransmit event reports the out-of-band charge).
        self.inject_with(msg, SimDelta::ZERO);
        self.arm_retransmit(src, dst, req, attempt + 1);
    }

    /// One tick of the global heartbeat control plane (active node-fault
    /// plans only). Heartbeats are modelled out of band: each live node's
    /// beat is stamped directly into every observer's `last_heard` (with
    /// the plan's deterministic delivery jitter) rather than sent through
    /// the data plane, so the failure detector perturbs neither LogGP
    /// charges nor message schedules. Frozen observers still receive the
    /// stamps — a recovering node must not wake to a wall of stale
    /// silence and suspect every healthy peer at once — but evaluate
    /// nothing while frozen.
    fn on_heartbeat_tick(weak: &Weak<Self>, tick: u64) {
        let Some(inner) = weak.upgrade() else { return };
        if inner.control_done.get() {
            return;
        }
        let now = inner.sim.now();
        let plan = &inner.cfg.node_faults;
        let p = inner.procs.len();

        // Emission: every non-frozen node beats once.
        for sender in 0..p {
            if plan.frozen(sender, now) {
                continue;
            }
            inner.procs[sender].counters.borrow_mut().heartbeats += 1;
            let heard = now + plan.hb_jitter(sender, tick);
            for observer in 0..p {
                if observer != sender {
                    inner.procs[observer].last_heard.borrow_mut()[sender] = heard;
                }
            }
        }

        // Detection: every non-frozen observer evaluates peer silence.
        for observer in 0..p {
            if plan.frozen(observer, now) {
                continue;
            }
            for peer in 0..p {
                if peer == observer {
                    continue;
                }
                let (status, gap) = {
                    let ep = &inner.procs[observer];
                    let status = ep.peer_status.borrow()[peer];
                    let gap = now.saturating_since(ep.last_heard.borrow()[peer]);
                    (status, gap)
                };
                match status {
                    PeerStatus::Dead => {}
                    _ if gap > plan.confirm_after => {
                        inner.escalate_peer_death(observer, peer);
                    }
                    PeerStatus::Alive if gap > plan.suspect_after => {
                        let ep = &inner.procs[observer];
                        ep.peer_status.borrow_mut()[peer] = PeerStatus::Suspect;
                        ep.counters.borrow_mut().suspicions += 1;
                    }
                    PeerStatus::Suspect if gap <= plan.suspect_after => {
                        // The beat resumed: retract (a false suspicion —
                        // crash-recovery downtimes shorter than the
                        // confirm threshold land here by design).
                        let ep = &inner.procs[observer];
                        ep.peer_status.borrow_mut()[peer] = PeerStatus::Alive;
                        ep.counters.borrow_mut().false_suspicions += 1;
                    }
                    _ => {}
                }
            }
        }

        // Re-arm until every scheduled fault's fate is settled from every
        // observer's perspective; past that point no tick can change
        // detector state, so stopping keeps bare-cluster runs finite even
        // when no SPMD epilogue calls `finish_control`.
        if now < plan.settle_by() {
            let weak = weak.clone();
            let next = now + plan.hb_period;
            inner
                .sim
                .schedule(next, move |_| Self::on_heartbeat_tick(&weak, tick + 1));
        }
    }

    /// Marks `peer` dead in `observer`'s membership view and abandons all
    /// of `observer`'s in-flight protocol state toward it: unacknowledged
    /// requests are dropped, their reply waiters completed with a default
    /// reply, posted-but-unacked sends written off, and flow-control
    /// credits restored — so no task can block forever on a dead peer.
    /// Idempotent in the view (the death is counted once) but always
    /// sweeps the in-flight state, because new sends may have raced in
    /// between confirmation and the next retransmit exhaustion.
    pub(crate) fn escalate_peer_death(&self, observer: ProcId, peer: ProcId) {
        let now = self.sim.now();
        let ep = &self.procs[observer];
        let newly = {
            let mut status = ep.peer_status.borrow_mut();
            let newly = status[peer] != PeerStatus::Dead;
            status[peer] = PeerStatus::Dead;
            newly
        };
        if newly {
            let mut c = ep.counters.borrow_mut();
            c.peer_deaths += 1;
            if let Some(f) = self.cfg.node_faults.fault_of(peer) {
                if f.crashes() && f.crash_at <= now {
                    c.max_detect_latency =
                        c.max_detect_latency.max(now.saturating_since(f.crash_at));
                }
            }
        }
        let orphaned: Vec<ReqId> = ep.rel_tx.borrow()[peer].keys().copied().collect();
        for req in orphaned {
            ep.rel_tx.borrow_mut()[peer].remove(&req);
            ep.credits.set(ep.credits.get() + 1);
            let slot = ep.pending_replies.borrow_mut().remove(&req);
            match slot {
                Some(slot) => {
                    // The requester unblocks with the protocol's default
                    // reply (zero words, no payload) — the degraded app
                    // layer decides what that means.
                    slot.args.set([0; 4]);
                    *slot.payload.borrow_mut() = Payload::None;
                    slot.filled.set(true);
                }
                None => {
                    let posts = ep.pending_posts.get();
                    debug_assert!(posts > 0, "orphaned request was neither awaited nor posted");
                    ep.pending_posts.set(posts.saturating_sub(1));
                }
            }
        }
        ep.rx_notify.notify_all();
        if newly {
            if self.death_note.borrow().is_none() {
                *self.death_note.borrow_mut() = Some(RunAbort {
                    observer,
                    peer,
                    at: now,
                });
            }
            if self.abort_on_death.get() {
                self.sim.halt();
            }
        }
    }

    /// Parks `msg` in the arena and schedules the NIC-arrival phase of the
    /// network hook at `at`. Event ordering is identical to the closure
    /// `schedule` it replaces — the kernel's sequence counter is shared.
    fn schedule_deliver(&self, at: SimTime, msg: Msg) {
        let slot = self.msg_slab.borrow_mut().insert(msg);
        let hook = *self.net_hook.get().expect("network hook not registered");
        self.sim.schedule_hook(at, hook, u64::from(slot));
    }

    /// Parks `msg` and schedules the SlowRxPath make-visible phase at `at`.
    fn schedule_visible(&self, at: SimTime, msg: Msg) {
        let slot = self.msg_slab.borrow_mut().insert(msg);
        let hook = *self.net_hook.get().expect("network hook not registered");
        self.sim
            .schedule_hook(at, hook, VISIBLE_BIT | u64::from(slot));
    }

    /// Dispatcher for the network hook: reclaims the arena slot and runs
    /// the phase encoded in the token.
    fn on_net_hook(&self, sim: &Sim, token: u64) {
        let slot = (token & u64::from(u32::MAX)) as u32;
        let msg = self.msg_slab.borrow_mut().take(slot);
        if token & VISIBLE_BIT != 0 {
            self.make_visible(sim, msg);
        } else {
            self.deliver(sim, msg);
        }
    }

    /// Delivery at the destination NIC, serialized at one message per
    /// effective gap by the receive context.
    fn deliver(&self, sim: &Sim, msg: Msg) {
        let dst = &self.procs[msg.dst];
        let now = sim.now();
        let free = dst.nic_rx_free.get();
        if free > now {
            self.schedule_deliver(free, msg);
            return;
        }
        match self.cfg.latency_mode {
            crate::LatencyMode::DelayQueue => {
                dst.nic_rx_free.set(now + self.cfg.eff_gap());
                if let Some(m) = self.metrics.get() {
                    m.nic_rx(msg.dst, now, now + self.cfg.eff_gap());
                }
                self.make_visible(sim, msg);
            }
            crate::LatencyMode::SlowRxPath => {
                // The receive context spends ΔL handling this message
                // before it becomes visible — inflating the effective gap.
                let d_lat = self.cfg.knobs.d_lat;
                let visible = now + d_lat;
                dst.nic_rx_free.set(visible + self.cfg.eff_gap());
                if let Some(m) = self.metrics.get() {
                    m.nic_rx(msg.dst, now, visible + self.cfg.eff_gap());
                }
                self.schedule_visible(visible, msg);
            }
        }
    }

    /// The message enters the destination's receive queue and its waiters
    /// are woken (DelayQueue: immediately on NIC arrival; SlowRxPath:
    /// after the receive context's ΔL).
    fn make_visible(&self, sim: &Sim, msg: Msg) {
        let dst = &self.procs[msg.dst];
        let trace_id = msg.trace;
        dst.rx.borrow_mut().push_back(msg);
        if let Some(sink) = self.trace.get() {
            sink.record(&TraceEvent::Visible(VisibleEvent {
                id: trace_id,
                at: sim.now(),
                rx_depth: dst.rx.borrow().len() as u32,
            }));
        }
        dst.rx_notify.notify_all();
    }

    /// Runs the registered handler for `msg` on its destination processor.
    pub(crate) fn run_handler(&self, msg: &Msg) -> ReplyData {
        if let Some(sink) = self.trace.get() {
            sink.record(&TraceEvent::Handler {
                id: msg.trace,
                at: self.sim.now(),
            });
        }
        let handlers = self.handlers.borrow();
        let handler = handlers
            .get(msg.handler)
            .unwrap_or_else(|| panic!("no handler {} registered", msg.handler));
        let ep = &self.procs[msg.dst];
        let mut guard = ep.user_state.borrow_mut();
        let mut unit = ();
        let state: &mut dyn Any = match guard.as_mut() {
            Some(b) => b.as_mut(),
            None => &mut unit,
        };
        handler(HandlerCtx {
            state,
            msg,
            now: self.sim.now(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Mark;
    use nowlab_sim::SimDelta;

    fn short_msg(src: ProcId, dst: ProcId) -> Msg {
        Msg {
            src,
            dst,
            dir: Dir::Request,
            req: 0,
            ack: 0,
            seq: 0,
            handler: 0,
            args: [0; 4],
            payload: Payload::None,
            mark: Mark::Write,
            trace: 0,
        }
    }

    #[test]
    fn short_message_arrives_after_latency() {
        let sim = Sim::new();
        let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 2);
        cluster.register_handler(|_| ReplyData::ack());
        cluster.inner.inject(short_msg(0, 1));
        sim.run();
        let ep = &cluster.inner.procs[1];
        assert_eq!(ep.rx.borrow().len(), 1);
        // Delivered exactly at L = 5 µs.
        assert_eq!(sim.now(), SimTime::ZERO + SimDelta::from_micros(5.0));
    }

    #[test]
    fn sender_nic_enforces_gap() {
        let sim = Sim::new();
        let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 2);
        cluster.register_handler(|_| ReplyData::ack());
        // Two messages injected back to back at t=0.
        cluster.inner.inject(short_msg(0, 1));
        cluster.inner.inject(short_msg(0, 1));
        sim.run();
        // Second injection waits one gap: arrival = g + L = 10.8 µs.
        assert_eq!(
            sim.now(),
            SimTime::ZERO + SimDelta::from_micros(5.8) + SimDelta::from_micros(5.0)
        );
    }

    #[test]
    fn receiver_nic_serializes_distinct_senders() {
        let sim = Sim::new();
        let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 3);
        cluster.register_handler(|_| ReplyData::ack());
        // Both senders inject at t=0; both would arrive at L=5 µs.
        cluster.inner.inject(short_msg(0, 2));
        cluster.inner.inject(short_msg(1, 2));
        sim.run();
        // Second delivery is pushed to 5 + g = 10.8 µs.
        assert_eq!(sim.now(), SimTime::ZERO + SimDelta::from_micros(10.8));
        assert_eq!(cluster.inner.procs[2].rx.borrow().len(), 2);
    }

    #[test]
    fn added_latency_delays_arrival_only() {
        let sim = Sim::new();
        let cfg = NetConfig::berkeley_now()
            .with_knobs(crate::Knobs::with_latency(SimDelta::from_micros(100.0)));
        let cluster = AmCluster::new(sim.clone(), cfg, 2);
        cluster.register_handler(|_| ReplyData::ack());
        cluster.inner.inject(short_msg(0, 1));
        sim.run();
        assert_eq!(sim.now(), SimTime::ZERO + SimDelta::from_micros(105.0));
        // Sender NIC freed long before arrival: gap unaffected.
        assert_eq!(
            cluster.inner.procs[0].nic_tx_free.get(),
            SimTime::ZERO + SimDelta::from_micros(5.8)
        );
    }

    #[test]
    fn bulk_transfer_time_tracks_big_g() {
        let sim = Sim::new();
        let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 2);
        cluster.register_handler(|_| ReplyData::ack());
        let mut msg = short_msg(0, 1);
        msg.payload = Payload::Synthetic(8192); // two 4KB fragments
        msg.mark = Mark::Bulk;
        cluster.inner.inject(msg);
        sim.run();
        // DMA time = 8192 B at the (ns-quantized) per-byte gap, plus L.
        let per_byte = NetConfig::berkeley_now().eff_gap_per_byte();
        let expect = SimTime::ZERO + per_byte * 8192 + SimDelta::from_micros(5.0);
        assert_eq!(sim.now(), expect);
        // And it is within 2% of the ideal 38 MB/s figure.
        let ideal_us = 8192.0 * (1000.0 / 38.0) / 1000.0 + 5.0;
        assert!((sim.now().as_micros_f64() - ideal_us).abs() / ideal_us < 0.02);
    }

    #[test]
    fn stats_count_sends_and_bytes() {
        let sim = Sim::new();
        let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 2);
        cluster.register_handler(|_| ReplyData::ack());
        cluster.inner.inject(short_msg(0, 1));
        let mut bulk = short_msg(0, 1);
        bulk.payload = Payload::Synthetic(100);
        bulk.mark = Mark::Bulk;
        cluster.inner.inject(bulk);
        sim.run();
        let stats = cluster.stats();
        let c0 = &stats.per_proc[0];
        assert_eq!(c0.sends, 2);
        assert_eq!(c0.sends_bulk, 1);
        assert_eq!(c0.bytes_short, 28);
        assert_eq!(c0.bytes_bulk, 100);
        assert_eq!(c0.per_dst, vec![0, 2]);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let sim = Sim::new();
        let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 2);
        cluster.register_handler(|_| ReplyData::ack());
        cluster.inner.inject(short_msg(0, 1));
        sim.run();
        cluster.reset_stats();
        let stats = cluster.stats();
        assert_eq!(stats.total_sends(), 0);
        assert_eq!(stats.elapsed, SimDelta::ZERO);
    }

    #[test]
    #[should_panic(expected = "no such processor")]
    fn port_bounds_checked() {
        let sim = Sim::new();
        let cluster = AmCluster::new(sim, NetConfig::berkeley_now(), 2);
        let _ = cluster.port(2);
    }

    #[test]
    fn certain_drop_swallows_wire_but_charges_sender() {
        let sim = Sim::new();
        let cfg = NetConfig::berkeley_now().with_faults(crate::FaultPlan::with_drop_rate(1.0, 1));
        let cluster = AmCluster::new(sim.clone(), cfg, 2);
        cluster.register_handler(|_| ReplyData::ack());
        cluster.inner.inject(short_msg(0, 1));
        sim.run();
        assert_eq!(cluster.inner.procs[1].rx.borrow().len(), 0);
        let c0 = &cluster.stats().per_proc[0];
        // The sender still paid: counters and NIC occupancy charged.
        assert_eq!(c0.sends, 1);
        assert_eq!(c0.drops, 1);
        assert_eq!(
            cluster.inner.procs[0].nic_tx_free.get(),
            SimTime::ZERO + SimDelta::from_micros(5.8)
        );
    }

    #[test]
    fn certain_duplication_delivers_twice() {
        let sim = Sim::new();
        let cfg = NetConfig::berkeley_now().with_faults(crate::FaultPlan::none().with_dup(1.0));
        let cluster = AmCluster::new(sim.clone(), cfg, 2);
        cluster.register_handler(|_| ReplyData::ack());
        cluster.inner.inject(short_msg(0, 1));
        sim.run();
        assert_eq!(cluster.inner.procs[1].rx.borrow().len(), 2);
        assert_eq!(cluster.stats().per_proc[0].dups, 1);
    }

    #[test]
    fn jitter_delays_arrival_within_bound() {
        let bound = SimDelta::from_micros(50.0);
        let sim = Sim::new();
        let cfg = NetConfig::berkeley_now()
            .with_faults(crate::FaultPlan::none().with_jitter(bound).with_seed(3));
        let cluster = AmCluster::new(sim.clone(), cfg, 2);
        cluster.register_handler(|_| ReplyData::ack());
        cluster.inner.inject(short_msg(0, 1));
        sim.run();
        let t = sim.now();
        let base = SimTime::ZERO + SimDelta::from_micros(5.0);
        assert!(t >= base && t <= base + bound, "arrival {t}");
    }

    #[test]
    fn outage_window_blacks_out_the_wire() {
        let sim = Sim::new();
        let outage = crate::Outage::window(SimTime::ZERO, SimTime::from_nanos(1));
        let cfg =
            NetConfig::berkeley_now().with_faults(crate::FaultPlan::none().with_outage(outage));
        let cluster = AmCluster::new(sim.clone(), cfg, 2);
        cluster.register_handler(|_| ReplyData::ack());
        // First message hits the wire at t=0, inside the outage; the second
        // is serialized behind the gap and escapes it.
        cluster.inner.inject(short_msg(0, 1));
        cluster.inner.inject(short_msg(0, 1));
        sim.run();
        assert_eq!(cluster.inner.procs[1].rx.borrow().len(), 1);
        assert_eq!(cluster.stats().per_proc[0].drops, 1);
    }

    #[test]
    fn inert_plan_leaves_fault_state_untouched() {
        let sim = Sim::new();
        let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 2);
        cluster.register_handler(|_| ReplyData::ack());
        cluster.inner.inject(short_msg(0, 1));
        sim.run();
        assert_eq!(cluster.inner.procs[0].fault_nonce.get(), 0);
        let c0 = &cluster.stats().per_proc[0];
        assert_eq!(
            (c0.drops, c0.dups, c0.retransmits, c0.timeouts),
            (0, 0, 0, 0)
        );
    }
}
