//! The processor side of the Active Message layer.
//!
//! An [`AmPort`] is held by the simulated process of one processor. All its
//! operations follow GAM's *polling* discipline: entering the communication
//! layer (to send, to wait, or to poll explicitly) first drains any
//! messages the NIC has made visible, charging `o_recv + Δo` for each and
//! running its handler (whose reply costs `o_send + Δo` like any send).
//! While a process computes, messages accumulate unserviced — exactly the
//! coupling that makes applications overhead-sensitive in the paper.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use nowlab_metrics::{ProcState, WaitKind};
use nowlab_sim::{SimDelta, SimTime};
use nowlab_trace::{RecvEvent, TraceEvent};

use crate::cluster::{CachedReply, ClusterInner, PeerStatus, ReplySlot, TxEntry};
use crate::message::{Dir, HandlerId, Mark, Msg, Payload, ProcId, ReqId};
use crate::params::NetConfig;

/// A processor's handle onto the Active Message layer.
///
/// Obtained from [`crate::AmCluster::port`]; see the crate docs for a full
/// walk-through.
pub struct AmPort {
    inner: Rc<ClusterInner>,
    proc: ProcId,
}

impl fmt::Debug for AmPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AmPort").field("proc", &self.proc).finish()
    }
}

impl AmPort {
    pub(crate) fn new(inner: Rc<ClusterInner>, proc: ProcId) -> Self {
        AmPort { inner, proc }
    }

    /// This port's processor id.
    pub fn proc_id(&self) -> ProcId {
        self.proc
    }

    /// Number of processors in the cluster.
    pub fn num_procs(&self) -> usize {
        self.inner.procs.len()
    }

    /// The cluster's network configuration.
    pub fn config(&self) -> NetConfig {
        self.inner.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.sim.now()
    }

    /// Parks this task while its processor is inside a crash window
    /// (fail-pause: execution freezes, memory survives). Awaited at every
    /// communication-layer and compute entry, so a crashed processor
    /// stops emitting, polling, and serving — exactly like a host whose
    /// NIC program died. Crash-stop nodes (no recovery) pend forever;
    /// crash-recovery nodes resume at the scheduled wake. Free for
    /// healthy plans: one boolean check.
    async fn crash_gate(&self) {
        if !self.inner.cfg.node_faults.is_active() {
            return;
        }
        loop {
            if !self
                .inner
                .cfg
                .node_faults
                .frozen(self.proc, self.inner.sim.now())
            {
                return;
            }
            self.inner.procs[self.proc].crash_notify.notified().await;
        }
    }

    /// True once this processor's failure detector has confirmed `peer`
    /// dead (never true for itself or under an inert node plan).
    pub fn peer_dead(&self, peer: ProcId) -> bool {
        self.inner.procs[self.proc].peer_status.borrow()[peer] == PeerStatus::Dead
    }

    /// This processor's membership view: `alive[p]` is false exactly for
    /// the peers its failure detector has confirmed dead. The self entry
    /// is always true.
    pub fn peers_alive(&self) -> Vec<bool> {
        self.inner.procs[self.proc]
            .peer_status
            .borrow()
            .iter()
            .map(|s| *s != PeerStatus::Dead)
            .collect()
    }

    /// Number of processors this one still considers alive (including
    /// itself).
    pub fn alive_count(&self) -> usize {
        self.peers_alive().iter().filter(|&&a| a).count()
    }

    /// Spends `d` of processor time computing (the network is *not*
    /// serviced meanwhile). A straggler node's charge is scaled by its
    /// slowdown multiplier; a crashed node freezes here until recovery.
    pub async fn compute(&self, d: SimDelta) {
        self.crash_gate().await;
        let d = self.inner.cfg.node_faults.scale(self.proc, d);
        let start = self.inner.sim.now();
        self.inner.sim.delay(d).await;
        self.inner.procs[self.proc]
            .counters
            .borrow_mut()
            .compute_time += d;
        if let Some(m) = self.inner.metrics.get() {
            m.busy(self.proc, ProcState::Compute, start, start + d);
        }
        if let Some(sink) = self.inner.trace.get() {
            sink.record(&TraceEvent::Compute {
                proc: self.proc,
                start,
                dur: d,
            });
        }
    }

    /// Marks the crossing into application phase `name` (metrics
    /// segmentation only; a pure observation with no simulation effect).
    pub fn phase_marker(&self, name: &str) {
        if let Some(m) = self.inner.metrics.get() {
            m.phase(self.proc, name, self.inner.sim.now());
        }
        if let Some(sink) = self.inner.trace.get() {
            sink.record(&TraceEvent::Phase {
                proc: self.proc,
                label: nowlab_trace::PhaseLabel::new(name),
                at: self.inner.sim.now(),
            });
        }
    }

    /// Marks a measured-region boundary (observation only; emitted by the
    /// Split-C layer when measurement starts/stops so the trace DAG knows
    /// which span the reported runtime covers).
    pub fn region_marker(&self, begin: bool) {
        if let Some(sink) = self.inner.trace.get() {
            sink.record(&TraceEvent::Region {
                proc: self.proc,
                begin,
                at: self.inner.sim.now(),
            });
        }
    }

    /// Reports an overhead span `[start, start + eff)` to the metrics
    /// sink, split into the machine's baseline component and the Δo
    /// busy-loop the overhead knob adds (paper §3).
    fn note_overhead(&self, state: ProcState, base: SimDelta, eff: SimDelta, start: SimTime) {
        if let Some(m) = self.inner.metrics.get() {
            let split = start + base.min(eff);
            m.busy(self.proc, state, start, split);
            m.busy(self.proc, ProcState::DeltaO, split, start + eff);
        }
    }

    /// Runs `f` on this processor's user state.
    ///
    /// # Panics
    ///
    /// Panics if no state of type `T` was installed via
    /// [`crate::AmCluster::set_state`].
    pub fn with_state<T: 'static, R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let ep = &self.inner.procs[self.proc];
        let mut guard = ep.user_state.borrow_mut();
        let any = guard
            .as_mut()
            .unwrap_or_else(|| panic!("proc {}: no user state installed", self.proc));
        let state = any
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("proc {}: user state has a different type", self.proc));
        f(state)
    }

    /// Records one completed barrier (instrumentation for Table 4).
    pub fn note_barrier(&self) {
        self.inner.procs[self.proc].counters.borrow_mut().barriers += 1;
        self.note_wave(nowlab_trace::WaveKind::Barrier);
    }

    /// Records one completed collective operation of the given kind
    /// (instrumentation for the metrics report's per-collective counters;
    /// mirrors [`AmPort::note_barrier`]).
    pub fn note_coll(&self, kind: crate::CollKind) {
        {
            let mut c = self.inner.procs[self.proc].counters.borrow_mut();
            match kind {
                crate::CollKind::Broadcast => c.coll_bcasts += 1,
                crate::CollKind::Reduce => c.coll_reduces += 1,
                crate::CollKind::Allgather => c.coll_allgathers += 1,
                crate::CollKind::AllToAll => c.coll_alltoalls += 1,
            }
        }
        self.note_wave(match kind {
            crate::CollKind::Broadcast => nowlab_trace::WaveKind::Broadcast,
            crate::CollKind::Reduce => nowlab_trace::WaveKind::Reduce,
            crate::CollKind::Allgather => nowlab_trace::WaveKind::Allgather,
            crate::CollKind::AllToAll => nowlab_trace::WaveKind::AllToAll,
        });
    }

    fn note_wave(&self, kind: nowlab_trace::WaveKind) {
        if let Some(sink) = self.inner.trace.get() {
            sink.record(&TraceEvent::Wave {
                proc: self.proc,
                kind,
                at: self.inner.sim.now(),
            });
        }
    }

    /// Drains every message currently visible at this processor, charging
    /// receive overhead and running handlers (replies charged as sends).
    pub async fn poll(&self) {
        self.crash_gate().await;
        loop {
            let msg = self.inner.procs[self.proc].rx.borrow_mut().pop_front();
            match msg {
                Some(m) => self.process_incoming(m).await,
                None => return,
            }
        }
    }

    /// Services at most `max` visible messages (the bounded poll GAM's
    /// send path performs — an unbounded drain would let a steady inbound
    /// stream starve the sender and serialize pipelines).
    async fn poll_n(&self, max: usize) {
        for _ in 0..max {
            let msg = self.inner.procs[self.proc].rx.borrow_mut().pop_front();
            match msg {
                Some(m) => self.process_incoming(m).await,
                None => return,
            }
        }
    }

    async fn process_incoming(&self, msg: Msg) {
        let cfg = &self.inner.cfg;
        let reliable = cfg.reliability_active();
        let o_recv = cfg.node_faults.scale(self.proc, cfg.eff_o_recv());
        let base_o_recv = cfg.machine.o_recv;
        let start = self.inner.sim.now();
        self.inner.sim.delay(o_recv).await;
        self.note_overhead(ProcState::ORecv, base_o_recv, o_recv, start);
        {
            let ep = &self.inner.procs[self.proc];
            let mut c = ep.counters.borrow_mut();
            c.recvs += 1;
            c.o_time += o_recv;
            if ep.in_wait.get() {
                c.o_time_in_wait += o_recv;
            }
        }
        if let Some(sink) = self.inner.trace.get() {
            sink.record(&TraceEvent::Recv(RecvEvent {
                id: msg.trace,
                o_recv,
                done: self.inner.sim.now(),
            }));
        }
        if reliable {
            // Every message piggybacks the sender's cumulative receipt
            // watermark; apply it before anything else so stale
            // duplicate-suppression state is shed eagerly.
            self.inner.note_ack(self.proc, msg.src, msg.ack);
        }
        match msg.dir {
            Dir::Reply => {
                let ep = &self.inner.procs[self.proc];
                if reliable {
                    // Only the first reply for a request completes it; the
                    // removal doubles as the duplicate filter, so a late
                    // network copy or a re-sent cached reply can neither
                    // double-credit the window nor underflow the posted
                    // count (the lossless path's "stray ack" hazard).
                    let first = ep.rel_tx.borrow_mut()[msg.src].remove(&msg.req).is_some();
                    if !first {
                        ep.counters.borrow_mut().dup_suppressed += 1;
                        return;
                    }
                }
                ep.credits.set(ep.credits.get() + 1);
                let slot = ep.pending_replies.borrow_mut().remove(&msg.req);
                match slot {
                    Some(slot) => {
                        slot.args.set(msg.args);
                        *slot.payload.borrow_mut() = msg.payload;
                        slot.filled.set(true);
                    }
                    None => {
                        debug_assert!(ep.pending_posts.get() > 0, "stray ack");
                        ep.pending_posts
                            .set(ep.pending_posts.get().saturating_sub(1));
                    }
                }
                // State changed; wake this endpoint's own waiters (the
                // notify is shared by everything that waits on rx-driven
                // conditions).
                ep.rx_notify.notify_all();
            }
            Dir::Request => {
                if !reliable {
                    let reply = self.inner.run_handler(&msg);
                    self.send_reply(&msg, reply.args, reply.payload, msg.mark)
                        .await;
                    return;
                }
                // FIFO restore: the lossless wire delivers per-source
                // in-order and the upper layers rely on it, so a request
                // that overtook a lost predecessor is held back until the
                // gap is retransmitted in. (Its `o_recv` is already
                // charged — the processor did examine it.)
                let src = msg.src;
                let msg = {
                    let ep = &self.inner.procs[self.proc];
                    let mut rx = ep.rel_rx.borrow_mut();
                    let link = &mut rx[src];
                    if msg.seq > link.next_seq {
                        link.reorder.insert(msg.seq, msg);
                        return;
                    }
                    msg
                };
                self.serve_request(msg).await;
                // This arrival may have closed the gap: release held
                // successors in sequence order (no second `o_recv` — it
                // was paid when they first arrived).
                loop {
                    let next = {
                        let ep = &self.inner.procs[self.proc];
                        let mut rx = ep.rel_rx.borrow_mut();
                        let link = &mut rx[src];
                        let key = link.next_seq;
                        link.reorder.remove(&key)
                    };
                    match next {
                        Some(m) => self.serve_request(m).await,
                        None => break,
                    }
                }
            }
        }
    }

    /// Serves one in-order request under the reliability protocol:
    /// duplicate suppression, exactly-once handler execution, reply
    /// caching. The caller has already charged `o_recv` and established
    /// that `msg.seq <= next_seq` on the link.
    async fn serve_request(&self, msg: Msg) {
        enum Verdict {
            Fresh,
            Stale,
            Replay(CachedReply),
        }
        let verdict = {
            let ep = &self.inner.procs[self.proc];
            let mut rx = ep.rel_rx.borrow_mut();
            let link = &mut rx[msg.src];
            if msg.req < link.acked_below {
                // The sender already received our reply; this copy
                // wandered the network too long. Nothing to re-send.
                Verdict::Stale
            } else if link.seen.contains(&msg.req) {
                match link.reply_cache.get(&msg.req) {
                    Some(cached) => Verdict::Replay(cached.clone()),
                    None => Verdict::Stale,
                }
            } else {
                // First processing of this link's next sequence step.
                debug_assert_eq!(msg.seq, link.next_seq, "fresh request out of order");
                link.next_seq = msg.seq + 1;
                link.seen.insert(msg.req);
                Verdict::Fresh
            }
        };
        match verdict {
            Verdict::Stale => {
                let ep = &self.inner.procs[self.proc];
                ep.counters.borrow_mut().dup_suppressed += 1;
                return;
            }
            Verdict::Replay(cached) => {
                // Duplicate of a request we already answered: the handler
                // must NOT run again (exactly-once semantics); re-send the
                // cached reply at full send cost.
                {
                    let ep = &self.inner.procs[self.proc];
                    let mut c = ep.counters.borrow_mut();
                    c.dup_suppressed += 1;
                    c.retransmits += 1;
                }
                self.send_reply(&msg, cached.args, cached.payload, cached.mark)
                    .await;
                return;
            }
            Verdict::Fresh => {}
        }
        let reply = self.inner.run_handler(&msg);
        {
            let ep = &self.inner.procs[self.proc];
            ep.rel_rx.borrow_mut()[msg.src].reply_cache.insert(
                msg.req,
                CachedReply {
                    args: reply.args,
                    payload: reply.payload.clone(),
                    mark: msg.mark,
                },
            );
        }
        self.send_reply(&msg, reply.args, reply.payload, msg.mark)
            .await;
    }

    /// Charges send overhead and injects a reply to `req` — the reply's
    /// `ack` carries this processor's own watermark on the reverse link,
    /// so acks flow even when only one side originates requests.
    async fn send_reply(&self, req: &Msg, args: [u64; 4], payload: Payload, mark: Mark) {
        let o_send = self
            .inner
            .cfg
            .node_faults
            .scale(self.proc, self.inner.cfg.eff_o_send());
        let start = self.inner.sim.now();
        self.inner.sim.delay(o_send).await;
        self.note_overhead(
            ProcState::OSend,
            self.inner.cfg.machine.o_send,
            o_send,
            start,
        );
        {
            let ep = &self.inner.procs[self.proc];
            let mut c = ep.counters.borrow_mut();
            c.o_time += o_send;
            if ep.in_wait.get() {
                c.o_time_in_wait += o_send;
            }
        }
        let ack = if self.inner.cfg.reliability_active() {
            self.inner.ack_watermark(self.proc, req.src)
        } else {
            0
        };
        // Hoist the id draw so the request→reply pairing edge can name the
        // reply before injection; the draw order (and so the id sequence)
        // is identical whether or not tracing is installed.
        let trace = self.inner.next_trace();
        if let Some(sink) = self.inner.trace.get() {
            sink.record(&TraceEvent::Pair {
                request: req.trace,
                reply: trace,
                at: self.inner.sim.now(),
            });
        }
        self.inner.inject(Msg {
            src: self.proc,
            dst: req.src,
            dir: Dir::Reply,
            req: req.req,
            ack,
            seq: 0,
            handler: 0,
            args,
            payload,
            mark,
            trace,
        });
    }

    /// Services the network until `cond()` holds.
    ///
    /// All blocking conditions in this layer (reply arrival, credit
    /// availability, quiescence, barrier release) are satisfied by incoming
    /// messages. The condition is re-checked after **every** serviced
    /// message — a steady inbound stream must not starve the waiter, or
    /// pipelines through intermediate processors serialize.
    pub async fn wait_until(&self, cond: impl Fn() -> bool) {
        self.wait_until_kind(cond, WaitKind::Rx).await
    }

    /// [`AmPort::wait_until`] with an explicit stall classification for
    /// the metrics timeline: credit acquisition waits are back-pressure
    /// ([`WaitKind::Tx`]), everything else is a receive stall.
    async fn wait_until_kind(&self, cond: impl Fn() -> bool, kind: WaitKind) {
        let ep_flag = || &self.inner.procs[self.proc];
        let was_waiting = ep_flag().in_wait.replace(true);
        let t_enter = self.inner.sim.now();
        if !was_waiting {
            if let Some(m) = self.inner.metrics.get() {
                m.wait_enter(self.proc, kind, t_enter);
            }
        }
        loop {
            self.crash_gate().await;
            if cond() {
                break;
            }
            let msg = self.inner.procs[self.proc].rx.borrow_mut().pop_front();
            match msg {
                Some(m) => self.process_incoming(m).await,
                None => {
                    let ep = &self.inner.procs[self.proc];
                    ep.rx_notify.notified().await;
                }
            }
        }
        let ep = ep_flag();
        ep.in_wait.set(was_waiting);
        if !was_waiting {
            ep.counters.borrow_mut().blocked_time += self.inner.sim.now().since(t_enter);
            if let Some(m) = self.inner.metrics.get() {
                m.wait_exit(self.proc, self.inner.sim.now());
            }
        }
    }

    /// Services the network until virtual time `deadline` — the processor
    /// is *idle* (e.g. waiting on a disk), so incoming messages are handled
    /// as they arrive, and the wait overlaps their overhead.
    pub async fn idle_until(&self, deadline: SimTime) {
        let was_waiting = self.inner.procs[self.proc].in_wait.replace(true);
        let t_enter = self.inner.sim.now();
        if !was_waiting {
            if let Some(m) = self.inner.metrics.get() {
                m.wait_enter(self.proc, WaitKind::Rx, t_enter);
            }
        }
        loop {
            self.crash_gate().await;
            if self.inner.sim.now() >= deadline {
                break;
            }
            let msg = self.inner.procs[self.proc].rx.borrow_mut().pop_front();
            match msg {
                Some(m) => self.process_incoming(m).await,
                None => {
                    let ep = &self.inner.procs[self.proc];
                    let _ = nowlab_sim::race(
                        ep.rx_notify.notified(),
                        self.inner.sim.sleep_until(deadline),
                    )
                    .await;
                }
            }
        }
        let ep = &self.inner.procs[self.proc];
        ep.in_wait.set(was_waiting);
        if !was_waiting {
            ep.counters.borrow_mut().blocked_time += self.inner.sim.now().since(t_enter);
            if let Some(m) = self.inner.metrics.get() {
                m.wait_exit(self.proc, self.inner.sim.now());
            }
        }
        if let Some(sink) = self.inner.trace.get() {
            sink.record(&TraceEvent::Idle {
                proc: self.proc,
                enter: t_enter,
                deadline,
                exit: self.inner.sim.now(),
            });
        }
    }

    async fn acquire_credit(&self) {
        let ep = || &self.inner.procs[self.proc];
        self.wait_until_kind(|| ep().credits.get() > 0, WaitKind::Tx)
            .await;
        let e = ep();
        e.credits.set(e.credits.get() - 1);
    }

    async fn charge_send(&self) {
        let o_send = self
            .inner
            .cfg
            .node_faults
            .scale(self.proc, self.inner.cfg.eff_o_send());
        let start = self.inner.sim.now();
        self.inner.sim.delay(o_send).await;
        self.note_overhead(
            ProcState::OSend,
            self.inner.cfg.machine.o_send,
            o_send,
            start,
        );
        self.inner.procs[self.proc].counters.borrow_mut().o_time += o_send;
    }

    fn next_req(&self) -> ReqId {
        let ep = &self.inner.procs[self.proc];
        let id = ep.next_req.get();
        ep.next_req.set(id + 1);
        id
    }

    /// Sends a request and waits for its reply, servicing the network
    /// meanwhile. Returns the reply's argument words and payload.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub async fn request(
        &self,
        dst: ProcId,
        handler: HandlerId,
        args: [u64; 4],
        payload: Payload,
        mark: Mark,
    ) -> ([u64; 4], Payload) {
        assert!(dst < self.num_procs(), "no such processor {dst}");
        self.crash_gate().await;
        if self.peer_dead(dst) {
            // Fail fast: the detector already confirmed the peer dead, so
            // the request completes locally with the protocol's default
            // reply instead of burning 16 retransmissions re-learning it.
            return ([0; 4], Payload::None);
        }
        self.poll_n(4).await;
        self.acquire_credit().await;
        let req = self.next_req();
        let slot = Rc::new(ReplySlot {
            filled: std::cell::Cell::new(false),
            args: std::cell::Cell::new([0; 4]),
            payload: RefCell::new(Payload::None),
        });
        self.inner.procs[self.proc]
            .pending_replies
            .borrow_mut()
            .insert(req, Rc::clone(&slot));
        self.charge_send().await;
        self.send_request(Msg {
            src: self.proc,
            dst,
            dir: Dir::Request,
            req,
            ack: 0,
            seq: 0,
            handler,
            args,
            payload,
            mark,
            trace: self.inner.next_trace(),
        });
        self.wait_until(|| slot.filled.get()).await;
        let payload = std::mem::take(&mut *slot.payload.borrow_mut());
        (slot.args.get(), payload)
    }

    /// Sends a request *without* waiting for its acknowledgement (a
    /// pipelined store / one-way active message). The ack is accounted
    /// against [`AmPort::quiesce`].
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub async fn post(
        &self,
        dst: ProcId,
        handler: HandlerId,
        args: [u64; 4],
        payload: Payload,
        mark: Mark,
    ) {
        assert!(dst < self.num_procs(), "no such processor {dst}");
        self.crash_gate().await;
        if self.peer_dead(dst) {
            return; // fail fast: confirmed-dead destination, see `request`
        }
        self.poll_n(4).await;
        self.acquire_credit().await;
        let req = self.next_req();
        let ep = &self.inner.procs[self.proc];
        ep.pending_posts.set(ep.pending_posts.get() + 1);
        self.charge_send().await;
        self.send_request(Msg {
            src: self.proc,
            dst,
            dir: Dir::Request,
            req,
            ack: 0,
            seq: 0,
            handler,
            args,
            payload,
            mark,
            trace: self.inner.next_trace(),
        });
    }

    /// Injects a fresh request. Under the reliability protocol the message
    /// additionally carries the current ack watermark, is retained for
    /// retransmission until its reply arrives, and gets a timeout armed.
    fn send_request(&self, mut msg: Msg) {
        if self.inner.cfg.reliability_active() {
            let (dst, req) = (msg.dst, msg.req);
            let ep = &self.inner.procs[self.proc];
            {
                // Stamp the per-link FIFO position; retransmissions reuse
                // the stored message and so keep the original stamp.
                let mut seqs = ep.tx_seq.borrow_mut();
                msg.seq = seqs[dst];
                seqs[dst] += 1;
            }
            ep.rel_tx.borrow_mut()[dst].insert(
                req,
                TxEntry {
                    msg: msg.clone(),
                    attempts: 1,
                },
            );
            msg.ack = self.inner.ack_watermark(self.proc, dst);
            self.inner.arm_retransmit(self.proc, dst, req, 1);
        }
        self.inner.inject(msg);
    }

    /// Waits until every [`AmPort::post`] issued by this processor has been
    /// acknowledged (Split-C's `sync()`).
    pub async fn quiesce(&self) {
        let ep = || &self.inner.procs[self.proc];
        self.wait_until(|| ep().pending_posts.get() == 0).await;
    }

    /// Outstanding unacknowledged posts (diagnostic).
    pub fn pending_posts(&self) -> u64 {
        self.inner.procs[self.proc].pending_posts.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::AmCluster;
    use crate::message::ReplyData;
    use nowlab_sim::Sim;

    fn two_proc() -> (Sim, AmCluster, HandlerId) {
        let sim = Sim::new();
        let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 2);
        cluster.set_state(0, Box::new(Vec::<u64>::new()));
        cluster.set_state(1, Box::new(Vec::<u64>::new()));
        let h = cluster.register_handler(|ctx| {
            let v = ctx.state.downcast_mut::<Vec<u64>>().unwrap();
            v.push(ctx.msg.args[0]);
            ReplyData::word(v.len() as u64)
        });
        (sim, cluster, h)
    }

    #[test]
    fn request_round_trip_time_matches_loggp() {
        let (sim, cluster, h) = two_proc();
        let port0 = cluster.port(0);
        let port1 = cluster.port(1);
        // Processor 1 must be polling to serve the request.
        sim.spawn(async move {
            port1.wait_until(|| false).await;
        });
        let done = sim.spawn(async move {
            let (args, _) = port0
                .request(1, h, [42, 0, 0, 0], Payload::None, Mark::Read)
                .await;
            (args[0], port0.now())
        });
        sim.run();
        let (count, t) = done.try_take().unwrap();
        assert_eq!(count, 1);
        // RTT = 2L + 2(o_send + o_recv) = 10 + 2*5.8 = 21.6 µs
        // (paper §2: request-response takes 2L + 4o with o the mean).
        assert!(
            (t.as_micros_f64() - 21.6).abs() < 0.01,
            "RTT was {} µs",
            t.as_micros_f64()
        );
    }

    #[test]
    fn posts_pipeline_and_quiesce_waits_for_acks() {
        let (sim, cluster, h) = two_proc();
        let port0 = cluster.port(0);
        let port1 = cluster.port(1);
        sim.spawn(async move { port1.wait_until(|| false).await });
        let done = sim.spawn(async move {
            for i in 0..4 {
                port0
                    .post(1, h, [i, 0, 0, 0], Payload::None, Mark::Write)
                    .await;
            }
            let after_posts = port0.now();
            port0.quiesce().await;
            (after_posts, port0.now(), port0.pending_posts())
        });
        sim.run();
        let (after_posts, after_sync, pending) = done.try_take().unwrap();
        assert_eq!(pending, 0);
        // Posting 4 messages costs ~4·o_send of processor time — far less
        // than 4 round trips.
        assert!(after_posts.as_micros_f64() < 4.0 * 5.8);
        assert!(after_sync > after_posts);
        // All four args were delivered in order.
        let delivered = cluster.port(1).with_state(|v: &mut Vec<u64>| v.clone());
        assert_eq!(delivered, vec![0, 1, 2, 3]);
    }

    #[test]
    fn window_limits_outstanding_requests() {
        let (sim, cluster, h) = two_proc();
        let cfgw = cluster.config().window as u64;
        let port0 = cluster.port(0);
        let port1 = cluster.port(1);
        sim.spawn(async move { port1.wait_until(|| false).await });
        let probe = sim.spawn(async move {
            let mut max_outstanding = 0u64;
            for i in 0..(cfgw * 3) {
                port0
                    .post(1, h, [i, 0, 0, 0], Payload::None, Mark::Write)
                    .await;
                max_outstanding = max_outstanding.max(port0.pending_posts());
            }
            port0.quiesce().await;
            max_outstanding
        });
        sim.run();
        let max_outstanding = probe.try_take().unwrap();
        assert!(
            max_outstanding <= cfgw,
            "outstanding {max_outstanding} exceeded window {cfgw}"
        );
    }

    #[test]
    fn handlers_run_while_blocked_in_a_request() {
        // Processor 0 blocks reading from 1; processor 2's writes to 0 are
        // still served (GAM services the network while waiting).
        let sim = Sim::new();
        let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), 3);
        for p in 0..3 {
            cluster.set_state(p, Box::new(Vec::<u64>::new()));
        }
        let h = cluster.register_handler(|ctx| {
            let v = ctx.state.downcast_mut::<Vec<u64>>().unwrap();
            v.push(ctx.msg.args[0]);
            ReplyData::word(0)
        });
        let p0 = cluster.port(0);
        let p1 = cluster.port(1);
        let p2 = cluster.port(2);
        sim.spawn(async move { p1.wait_until(|| false).await });
        sim.spawn(async move {
            // Slow responder: p0 will be blocked for a while.
            p0.request(1, h, [0, 0, 0, 0], Payload::None, Mark::Read)
                .await;
            p0.wait_until(|| false).await;
        });
        let writer = sim.spawn(async move {
            for i in 0..5 {
                p2.post(0, h, [i + 100, 0, 0, 0], Payload::None, Mark::Write)
                    .await;
            }
            p2.quiesce().await;
            true
        });
        sim.run();
        assert_eq!(writer.try_take(), Some(true));
        let seen = cluster.port(0).with_state(|v: &mut Vec<u64>| v.clone());
        assert_eq!(seen, vec![100, 101, 102, 103, 104]);
    }

    #[test]
    fn added_overhead_charges_both_sides() {
        let sim = Sim::new();
        let d_o = SimDelta::from_micros(50.0);
        let cfg = NetConfig::berkeley_now().with_knobs(crate::Knobs::with_overhead(d_o));
        let cluster = AmCluster::new(sim.clone(), cfg, 2);
        let h = cluster.register_handler(|_| ReplyData::ack());
        let p0 = cluster.port(0);
        let p1 = cluster.port(1);
        sim.spawn(async move { p1.wait_until(|| false).await });
        let done = sim.spawn(async move {
            p0.request(1, h, [0; 4], Payload::None, Mark::Read).await;
            p0.now()
        });
        sim.run();
        let rtt = done.try_take().unwrap().as_micros_f64();
        // RTT = 2L + 2(o_send+Δ + o_recv+Δ) = 10 + 2(51.8 + 54.0) = 221.6.
        assert!((rtt - 221.6).abs() < 0.01, "rtt={rtt}");
    }
}
