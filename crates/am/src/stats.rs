//! Communication instrumentation.
//!
//! The paper instruments its communication layer to record, per processor,
//! message counts, the sender→receiver traffic matrix (Figure 4), bulk and
//! read percentages, and bandwidths (Table 4). This module is the equivalent
//! hook: every injected message updates a [`ProcCounters`]; a
//! [`CommStats`] snapshot aggregates them into the paper's summary columns.

use nowlab_sim::{ordered_sum_by, SimDelta};

/// The collective-operation families the upper layers count through
/// [`crate::AmPort::note_coll`] (mirroring the `barriers` counter): one
/// tick per completed collective call per participating processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CollKind {
    /// One-to-all data distribution.
    Broadcast,
    /// All-to-one (or all-to-all) combining of one value per processor.
    Reduce,
    /// All-to-all concatenation of per-processor blocks.
    Allgather,
    /// Personalized all-to-all exchange.
    AllToAll,
}

/// Per-processor communication counters, updated by the transport.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcCounters {
    /// Messages sent (requests *and* replies, as in the paper's `m`).
    pub sends: u64,
    /// Messages received and drained.
    pub recvs: u64,
    /// Sent messages that used the bulk-transfer mechanism.
    pub sends_bulk: u64,
    /// Sent messages that are read requests or read replies.
    pub sends_read: u64,
    /// Sent messages that are replies (subset of `sends`).
    pub replies_sent: u64,
    /// Wire bytes of short messages sent.
    pub bytes_short: u64,
    /// Payload bytes of bulk messages sent.
    pub bytes_bulk: u64,
    /// Messages sent to each destination (the Figure 4 matrix row).
    pub per_dst: Vec<u64>,
    /// Barriers this processor completed.
    pub barriers: u64,
    /// Collective broadcasts this processor participated in.
    pub coll_bcasts: u64,
    /// Collective reductions this processor participated in.
    pub coll_reduces: u64,
    /// Collective allgathers this processor participated in.
    pub coll_allgathers: u64,
    /// Collective all-to-all exchanges this processor participated in.
    pub coll_alltoalls: u64,
    /// Processor time spent in send/receive overhead.
    pub o_time: SimDelta,
    /// Processor time spent in explicit computation.
    pub compute_time: SimDelta,
    /// Time spent blocked in communication waits (includes the overhead of
    /// messages serviced while waiting; see `o_time_in_wait`).
    pub blocked_time: SimDelta,
    /// The portion of `o_time` charged while inside a wait (so
    /// `blocked_time - o_time_in_wait` is pure network/stall wait).
    pub o_time_in_wait: SimDelta,
    /// Messages this processor sent that the faulty wire dropped
    /// (including outage losses; bulk messages count once however many
    /// fragments were lost).
    pub drops: u64,
    /// Duplicate deliveries the faulty wire created for this processor's
    /// sends.
    pub dups: u64,
    /// Duplicate messages this processor received and suppressed (the
    /// reliability protocol's exactly-once filter).
    pub dup_suppressed: u64,
    /// Messages this processor re-sent: timed-out requests plus cached
    /// replies re-sent in answer to duplicate requests.
    pub retransmits: u64,
    /// Retransmission timeouts that fired while their request was still
    /// unacknowledged.
    pub timeouts: u64,
    /// Largest retransmission backoff armed by this processor (diagnoses
    /// how deep the exponential backoff went).
    pub max_retry_backoff: SimDelta,
    /// Heartbeat rounds this processor emitted (one per control-plane
    /// tick it was alive for; zero when the node-fault plan is inert).
    pub heartbeats: u64,
    /// Peers this processor's failure detector moved to *suspect*.
    pub suspicions: u64,
    /// Suspicions later retracted because the peer's heartbeat resumed
    /// (crash-recovery faults and detector over-eagerness both land
    /// here).
    pub false_suspicions: u64,
    /// Peers this processor's failure detector confirmed dead (silence
    /// beyond the confirm threshold, or retransmit-attempt exhaustion).
    pub peer_deaths: u64,
    /// Largest detection latency: confirmation instant minus the peer's
    /// actual crash instant (zero if no death was confirmed).
    pub max_detect_latency: SimDelta,
}

impl ProcCounters {
    /// Creates counters for a cluster of `p` processors.
    pub fn new(p: usize) -> Self {
        ProcCounters {
            per_dst: vec![0; p],
            ..Self::default()
        }
    }
}

/// Immutable snapshot of a finished run's communication behavior.
///
/// `PartialEq`/`Eq` compare every counter exactly — this is what the CLI's
/// `--verify-determinism` double-run mode diffs, so any nondeterminism in
/// the communication schedule shows up as an inequality here.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Per-processor counters (index = processor id).
    pub per_proc: Vec<ProcCounters>,
    /// Virtual run time the counters cover.
    pub elapsed: SimDelta,
}

impl CommStats {
    /// Number of processors covered.
    pub fn procs(&self) -> usize {
        self.per_proc.len()
    }

    /// Average messages sent per processor.
    pub fn avg_msgs_per_proc(&self) -> f64 {
        if self.per_proc.is_empty() {
            return 0.0;
        }
        self.total_sends() as f64 / self.per_proc.len() as f64
    }

    /// Maximum messages sent by any processor (the paper's imbalance
    /// indicator and the `m` of its analytic models).
    pub fn max_msgs_per_proc(&self) -> u64 {
        self.per_proc.iter().map(|c| c.sends).max().unwrap_or(0)
    }

    /// Total messages sent by all processors.
    pub fn total_sends(&self) -> u64 {
        self.per_proc.iter().map(|c| c.sends).sum()
    }

    /// Communication balance: max messages per processor ÷ average (1.0 is
    /// perfectly balanced).
    pub fn balance(&self) -> f64 {
        let avg = self.avg_msgs_per_proc();
        if avg == 0.0 {
            1.0
        } else {
            self.max_msgs_per_proc() as f64 / avg
        }
    }

    /// Message frequency: average messages per processor per millisecond.
    pub fn msgs_per_proc_per_ms(&self) -> f64 {
        let ms = self.elapsed.as_millis_f64();
        if ms == 0.0 {
            0.0
        } else {
            self.avg_msgs_per_proc() / ms
        }
    }

    /// Average interval between message sends, in microseconds.
    pub fn msg_interval_us(&self) -> f64 {
        let avg = self.avg_msgs_per_proc();
        if avg == 0.0 {
            f64::INFINITY
        } else {
            self.elapsed.as_micros_f64() / avg
        }
    }

    /// Average interval between barriers, in milliseconds (∞ if no
    /// barriers).
    pub fn barrier_interval_ms(&self) -> f64 {
        let barriers = self.per_proc.iter().map(|c| c.barriers).max().unwrap_or(0);
        if barriers == 0 {
            f64::INFINITY
        } else {
            self.elapsed.as_millis_f64() / barriers as f64
        }
    }

    /// Percentage of sent messages using the bulk mechanism.
    pub fn pct_bulk(&self) -> f64 {
        let total = self.total_sends();
        if total == 0 {
            return 0.0;
        }
        let bulk: u64 = self.per_proc.iter().map(|c| c.sends_bulk).sum();
        100.0 * bulk as f64 / total as f64
    }

    /// Percentage of sent messages that are read requests or replies.
    pub fn pct_reads(&self) -> f64 {
        let total = self.total_sends();
        if total == 0 {
            return 0.0;
        }
        let reads: u64 = self.per_proc.iter().map(|c| c.sends_read).sum();
        100.0 * reads as f64 / total as f64
    }

    /// Average per-processor bulk bandwidth in KB/s (bytes through the
    /// communication layer, as in Table 4).
    pub fn bulk_kb_per_s(&self) -> f64 {
        self.kb_per_s(self.per_proc.iter().map(|c| c.bytes_bulk).sum())
    }

    /// Average per-processor short-message bandwidth in KB/s.
    pub fn small_kb_per_s(&self) -> f64 {
        self.kb_per_s(self.per_proc.iter().map(|c| c.bytes_short).sum())
    }

    fn kb_per_s(&self, total_bytes: u64) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 || self.per_proc.is_empty() {
            return 0.0;
        }
        total_bytes as f64 / 1_000.0 / secs / self.per_proc.len() as f64
    }

    /// Average time-breakdown fractions across processors:
    /// `(compute, overhead, pure_wait, other)`, each in [0, 1] of the
    /// elapsed measured time. "Other" is the residual (local memory ops,
    /// scheduling slack); overhead charged while waiting counts as
    /// overhead, not wait.
    pub fn time_breakdown(&self) -> (f64, f64, f64, f64) {
        let elapsed = self.elapsed.as_secs_f64();
        if elapsed == 0.0 || self.per_proc.is_empty() {
            return (0.0, 0.0, 0.0, 1.0);
        }
        let p = self.per_proc.len() as f64;
        // Summed with `ordered_sum_by` (strict left-to-right over the
        // rank-ordered Vec) so the float reduction order is pinned by
        // construction, not by iterator internals (FLT001).
        let compute =
            ordered_sum_by(&self.per_proc, |c| c.compute_time.as_secs_f64()) / p / elapsed;
        let overhead = ordered_sum_by(&self.per_proc, |c| c.o_time.as_secs_f64()) / p / elapsed;
        let pure_wait = ordered_sum_by(&self.per_proc, |c| {
            (c.blocked_time.saturating_sub(c.o_time_in_wait)).as_secs_f64()
        }) / p
            / elapsed;
        let raw = 1.0 - compute - overhead - pure_wait;
        // A negative residual means the components over-count elapsed time
        // (double-charged spans). The clamp below keeps release-mode output
        // sane, but over-counting is an accounting bug, so fail loudly in
        // debug builds instead of silently hiding it.
        debug_assert!(
            raw >= -1e-6,
            "time_breakdown over-counts: compute {compute} + overhead {overhead} \
             + pure_wait {pure_wait} exceeds elapsed by {}",
            -raw
        );
        let other = raw.max(0.0);
        (compute, overhead, pure_wait, other)
    }

    /// Total messages the faulty wire dropped.
    pub fn total_drops(&self) -> u64 {
        self.per_proc.iter().map(|c| c.drops).sum()
    }

    /// Total duplicate deliveries the faulty wire created.
    pub fn total_dups(&self) -> u64 {
        self.per_proc.iter().map(|c| c.dups).sum()
    }

    /// Total duplicates suppressed by receivers (exactly-once filter).
    pub fn total_dup_suppressed(&self) -> u64 {
        self.per_proc.iter().map(|c| c.dup_suppressed).sum()
    }

    /// Total retransmissions (timed-out requests + replayed replies).
    pub fn total_retransmits(&self) -> u64 {
        self.per_proc.iter().map(|c| c.retransmits).sum()
    }

    /// Total retransmission timeouts that fired.
    pub fn total_timeouts(&self) -> u64 {
        self.per_proc.iter().map(|c| c.timeouts).sum()
    }

    /// Largest retransmission backoff armed anywhere in the cluster.
    pub fn max_retry_backoff(&self) -> SimDelta {
        self.per_proc
            .iter()
            .map(|c| c.max_retry_backoff)
            .max()
            .unwrap_or(SimDelta::ZERO)
    }

    /// Total heartbeat rounds emitted by all processors.
    pub fn total_heartbeats(&self) -> u64 {
        self.per_proc.iter().map(|c| c.heartbeats).sum()
    }

    /// Total suspicions raised by all failure detectors.
    pub fn total_suspicions(&self) -> u64 {
        self.per_proc.iter().map(|c| c.suspicions).sum()
    }

    /// Total suspicions retracted after the peer's heartbeat resumed.
    pub fn total_false_suspicions(&self) -> u64 {
        self.per_proc.iter().map(|c| c.false_suspicions).sum()
    }

    /// Total peer-death confirmations across all failure detectors.
    pub fn total_peer_deaths(&self) -> u64 {
        self.per_proc.iter().map(|c| c.peer_deaths).sum()
    }

    /// Largest crash-to-confirmation latency observed anywhere.
    pub fn max_detect_latency(&self) -> SimDelta {
        self.per_proc
            .iter()
            .map(|c| c.max_detect_latency)
            .max()
            .unwrap_or(SimDelta::ZERO)
    }

    /// Total collective broadcasts (summed over participants).
    pub fn total_coll_bcasts(&self) -> u64 {
        self.per_proc.iter().map(|c| c.coll_bcasts).sum()
    }

    /// Total collective reductions (summed over participants).
    pub fn total_coll_reduces(&self) -> u64 {
        self.per_proc.iter().map(|c| c.coll_reduces).sum()
    }

    /// Total collective allgathers (summed over participants).
    pub fn total_coll_allgathers(&self) -> u64 {
        self.per_proc.iter().map(|c| c.coll_allgathers).sum()
    }

    /// Total collective all-to-all exchanges (summed over participants).
    pub fn total_coll_alltoalls(&self) -> u64 {
        self.per_proc.iter().map(|c| c.coll_alltoalls).sum()
    }

    /// Total collective operations of any kind (summed over participants).
    pub fn total_coll_ops(&self) -> u64 {
        self.total_coll_bcasts()
            + self.total_coll_reduces()
            + self.total_coll_allgathers()
            + self.total_coll_alltoalls()
    }

    /// The sender→receiver message-count matrix (Figure 4): entry `[i][j]`
    /// is the number of messages processor `i` sent to processor `j`.
    pub fn balance_matrix(&self) -> Vec<Vec<u64>> {
        self.per_proc.iter().map(|c| c.per_dst.clone()).collect()
    }

    /// Largest single source→destination message count (Figure 4's black
    /// level).
    pub fn matrix_max(&self) -> u64 {
        self.per_proc
            .iter()
            .flat_map(|c| c.per_dst.iter().copied())
            .max()
            .unwrap_or(0)
    }
}

/// Renders the Figure 4 communication-balance matrix as ASCII art, one
/// character per (sender, receiver) cell, scaled from `' '` (zero) to `'@'`
/// (the matrix maximum).
pub fn render_balance_matrix(stats: &CommStats) -> String {
    nowlab_trace::render_shade_matrix(&stats.balance_matrix())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CommStats {
        let mut a = ProcCounters::new(2);
        a.sends = 100;
        a.sends_bulk = 25;
        a.sends_read = 50;
        a.bytes_short = 2_800;
        a.bytes_bulk = 10_000;
        a.per_dst = vec![0, 100];
        a.barriers = 4;
        let mut b = ProcCounters::new(2);
        b.sends = 300;
        b.per_dst = vec![300, 0];
        b.barriers = 4;
        CommStats {
            per_proc: vec![a, b],
            elapsed: SimDelta::from_millis(2.0),
        }
    }

    #[test]
    fn aggregates_match_hand_computation() {
        let s = sample();
        assert_eq!(s.total_sends(), 400);
        assert_eq!(s.avg_msgs_per_proc(), 200.0);
        assert_eq!(s.max_msgs_per_proc(), 300);
        assert!((s.balance() - 1.5).abs() < 1e-12);
        assert!((s.msgs_per_proc_per_ms() - 100.0).abs() < 1e-12);
        assert!((s.msg_interval_us() - 10.0).abs() < 1e-12);
        assert!((s.barrier_interval_ms() - 0.5).abs() < 1e-12);
        assert!((s.pct_bulk() - 6.25).abs() < 1e-12);
        assert!((s.pct_reads() - 12.5).abs() < 1e-12);
    }

    #[test]
    fn bandwidths_are_per_processor_averages() {
        let s = sample();
        // 10_000 bulk bytes over 2ms across 2 procs = 2_500 KB/s.
        assert!((s.bulk_kb_per_s() - 2_500.0).abs() < 1e-9);
        assert!((s.small_kb_per_s() - 700.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = CommStats::default();
        assert_eq!(s.avg_msgs_per_proc(), 0.0);
        assert_eq!(s.balance(), 1.0);
        assert_eq!(s.pct_bulk(), 0.0);
        assert!(s.barrier_interval_ms().is_infinite());
        assert!(s.msg_interval_us().is_infinite());
        assert_eq!(s.matrix_max(), 0);
        assert_eq!(s.total_drops(), 0);
        assert_eq!(s.max_retry_backoff(), SimDelta::ZERO);
    }

    #[test]
    fn fault_aggregates_sum_across_procs() {
        let mut a = ProcCounters::new(2);
        a.drops = 3;
        a.dups = 1;
        a.retransmits = 4;
        a.timeouts = 4;
        a.max_retry_backoff = SimDelta::from_micros(100.0);
        let mut b = ProcCounters::new(2);
        b.drops = 2;
        b.dup_suppressed = 5;
        b.max_retry_backoff = SimDelta::from_micros(400.0);
        let s = CommStats {
            per_proc: vec![a, b],
            elapsed: SimDelta::from_millis(1.0),
        };
        assert_eq!(s.total_drops(), 5);
        assert_eq!(s.total_dups(), 1);
        assert_eq!(s.total_dup_suppressed(), 5);
        assert_eq!(s.total_retransmits(), 4);
        assert_eq!(s.total_timeouts(), 4);
        assert_eq!(s.max_retry_backoff(), SimDelta::from_micros(400.0));
    }

    #[test]
    fn coll_aggregates_sum_across_procs() {
        let mut a = ProcCounters::new(2);
        a.coll_bcasts = 3;
        a.coll_reduces = 2;
        let mut b = ProcCounters::new(2);
        b.coll_bcasts = 3;
        b.coll_allgathers = 1;
        b.coll_alltoalls = 4;
        let s = CommStats {
            per_proc: vec![a, b],
            elapsed: SimDelta::from_millis(1.0),
        };
        assert_eq!(s.total_coll_bcasts(), 6);
        assert_eq!(s.total_coll_reduces(), 2);
        assert_eq!(s.total_coll_allgathers(), 1);
        assert_eq!(s.total_coll_alltoalls(), 4);
        assert_eq!(s.total_coll_ops(), 13);
    }

    #[test]
    fn time_breakdown_components_partition_elapsed() {
        let mut a = ProcCounters::new(1);
        a.compute_time = SimDelta::from_millis(1.0);
        a.o_time = SimDelta::from_micros(400.0);
        a.blocked_time = SimDelta::from_micros(500.0);
        a.o_time_in_wait = SimDelta::from_micros(100.0);
        let s = CommStats {
            per_proc: vec![a],
            elapsed: SimDelta::from_millis(2.0),
        };
        let (compute, overhead, pure_wait, other) = s.time_breakdown();
        assert!((compute - 0.5).abs() < 1e-9);
        assert!((overhead - 0.2).abs() < 1e-9);
        assert!((pure_wait - 0.2).abs() < 1e-9);
        assert!((other - 0.1).abs() < 1e-9);
        assert!((compute + overhead + pure_wait + other - 1.0).abs() < 1e-9);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time_breakdown over-counts")]
    fn time_breakdown_rejects_over_counted_components() {
        // Components exceed elapsed: the old code clamped this to
        // other = 0 and hid the bug; it must now trip the debug assert.
        let mut a = ProcCounters::new(1);
        a.compute_time = SimDelta::from_millis(2.0);
        a.o_time = SimDelta::from_millis(1.0);
        let s = CommStats {
            per_proc: vec![a],
            elapsed: SimDelta::from_millis(2.0),
        };
        let _ = s.time_breakdown();
    }

    #[test]
    fn matrix_render_shape() {
        let s = sample();
        let art = render_balance_matrix(&s);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 2);
        // Hottest cell renders as '@', zero as ' '.
        assert_eq!(&art[0..1], " ");
        assert!(lines[1].starts_with('@'));
    }
}
