//! Shared helpers for the transport's randomized integration tests:
//! seeded traffic-pattern generation and a harness that runs a pattern on
//! a fresh cluster, counting handler executions per processor.

use std::cell::RefCell;
use std::rc::Rc;

use nowlab_am::{AmCluster, CommStats, Mark, NetConfig, Payload, ReplyData};
use nowlab_rng::{Rng, SmallRng};
use nowlab_sim::{Sim, SimTime, StopReason};

/// One traffic operation: a request from `src` to `dst`.
#[derive(Clone, Copy, Debug)]
pub struct Op {
    pub src: usize,
    pub dst: usize,
    pub bulk: bool,
    pub waited: bool,
}

/// Draws a random traffic pattern: processor count plus a flat op list.
pub fn draw_case(rng: &mut SmallRng) -> (usize, Vec<Op>) {
    let procs = rng.gen_range(2..6usize);
    let n = rng.gen_range(1..120usize);
    let ops: Vec<Op> = (0..n)
        .map(|i| {
            let d = rng.gen_range(0..64usize);
            let src = (d + i) % procs;
            let dst = (d * 7 + i * 3 + 1) % procs;
            let dst = if dst == src { (dst + 1) % procs } else { dst };
            Op {
                src,
                dst,
                bulk: rng.gen::<bool>(),
                waited: rng.gen::<bool>(),
            }
        })
        .filter(|op| op.src != op.dst)
        .collect();
    (procs, ops)
}

/// Everything a traffic run yields for the properties to inspect.
///
/// Shared by several test binaries; not every binary reads every field.
#[allow(dead_code)]
pub struct TrafficOutcome {
    /// Frozen communication counters.
    pub stats: CommStats,
    /// Handler executions observed at each processor (exactly-once check).
    pub handler_runs: Vec<u64>,
    /// True for each processor whose ops all completed (quiesce returned).
    pub senders_done: Vec<bool>,
    /// Virtual time at which the run stopped.
    pub final_time: SimTime,
    /// How the simulation ended (Idle = quiesced naturally).
    pub stop: StopReason,
}

/// Runs the pattern on a fresh cluster over `net` and reports the outcome.
///
/// Each processor performs its ops in order, quiesces, flags itself done,
/// then keeps serving. An event budget bounds runs on faulty networks: a
/// plan that can never deliver ends with `StopReason::EventLimit` instead
/// of hanging.
pub fn run_traffic(procs: usize, ops: &[Op], net: NetConfig) -> TrafficOutcome {
    let sim = Sim::new();
    sim.set_event_limit(Some(20_000_000));
    let cluster = AmCluster::new(sim.clone(), net, procs);
    for p in 0..procs {
        cluster.set_state(p, Box::new(0u64));
    }
    let h = cluster.register_handler(|ctx| {
        *ctx.state.downcast_mut::<u64>().unwrap() += 1;
        ReplyData::ack()
    });

    let done: Rc<RefCell<Vec<bool>>> = Rc::new(RefCell::new(vec![false; procs]));
    for me in 0..procs {
        let my_ops: Vec<Op> = ops.iter().copied().filter(|o| o.src == me).collect();
        let port = cluster.port(me);
        let done = Rc::clone(&done);
        sim.spawn(async move {
            for op in my_ops {
                let payload = if op.bulk {
                    Payload::Synthetic(512)
                } else {
                    Payload::None
                };
                if op.waited {
                    port.request(op.dst, h, [0; 4], payload, Mark::Read).await;
                } else {
                    port.post(op.dst, h, [0; 4], payload, Mark::Write).await;
                }
            }
            port.quiesce().await;
            done.borrow_mut()[me] = true;
            port.wait_until(|| false).await; // keep serving
        });
    }
    let report = sim.run();
    let handler_runs = (0..procs)
        .map(|p| cluster.port(p).with_state(|v: &mut u64| *v))
        .collect();
    let senders_done = done.borrow().clone();
    TrafficOutcome {
        stats: cluster.stats(),
        handler_runs,
        senders_done,
        final_time: report.final_time,
        stop: report.stop_reason,
    }
}
