//! Properties of the node-level failure model (ISSUE: crash/recovery
//! faults, heartbeat failure detection; DESIGN.md §11).
//!
//! The headline properties:
//!
//! 1. an inert [`NodeFaultPlan`] leaves runs bit-identical to the healthy
//!    transport, even with customized detector timing (zero-cost default);
//! 2. a crash-stop node is confirmed dead by every survivor's detector,
//!    and every requester blocked on it unblocks with the protocol's
//!    default reply — bounded events, never a hang;
//! 3. a crash-recovery downtime shorter than the confirm threshold is a
//!    retracted (false) suspicion, not a death, and the frozen task
//!    resumes exactly where it paused;
//! 4. a straggler's host charges scale by its multiplier while the wire
//!    itself stays at full speed;
//! 5. the same plan reproduces the identical run.

mod util;

use nowlab_am::{AmCluster, Mark, NetConfig, NodeFault, NodeFaultPlan, Payload, ReplyData};
use nowlab_rng::{SeedableRng, SmallRng};
use nowlab_sim::{Sim, SimDelta, SimTime, StopReason};

fn at(us: f64) -> SimTime {
    SimTime::ZERO + SimDelta::from_micros(us)
}

#[test]
fn inert_node_plan_is_bit_identical_to_default() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_FA17);
    let mut ran = 0;
    while ran < 8 {
        let (procs, ops) = util::draw_case(&mut rng);
        if ops.is_empty() {
            continue;
        }
        ran += 1;
        let base = util::run_traffic(procs, &ops, NetConfig::berkeley_now());
        // A seeded, re-timed, but fault-free node plan must not change a
        // single event: no heartbeats, no detector, no reliability.
        let inert = NodeFaultPlan::none().with_seed(0xBEEF).with_detector(
            SimDelta::from_micros(10.0),
            SimDelta::from_micros(40.0),
            SimDelta::from_micros(120.0),
        );
        let cfg = NetConfig::berkeley_now().with_node_faults(inert);
        let out = util::run_traffic(procs, &ops, cfg);
        assert_eq!(base.final_time, out.final_time);
        assert_eq!(base.stats.per_proc, out.stats.per_proc);
        assert_eq!(base.stats.elapsed, out.stats.elapsed);
        assert_eq!(out.stats.total_heartbeats(), 0);
        assert_eq!(out.stats.total_peer_deaths(), 0);
    }
}

#[test]
fn crash_stop_peer_is_confirmed_dead_and_requester_unblocks() {
    let sim = Sim::new();
    let plan = NodeFaultPlan::none().with_fault(NodeFault::crash(1, SimTime::ZERO));
    let cluster = AmCluster::new(
        sim.clone(),
        NetConfig::berkeley_now().with_node_faults(plan),
        2,
    );
    let h = cluster.register_handler(|_| ReplyData::word(7));
    let server = cluster.port(1);
    sim.spawn(async move { server.wait_until(|| false).await });
    let port = cluster.port(0);
    let done = sim.spawn(async move {
        let (args, _) = port.request(1, h, [0; 4], Payload::None, Mark::Read).await;
        (args[0], port.peer_dead(1), port.alive_count(), port.now())
    });
    let report = sim.run();
    assert_eq!(report.stop_reason, StopReason::Idle);
    let (word, dead, alive, when) = done.try_take().expect("requester never unblocked");
    // The handler never ran (the node froze before polling): the request
    // completed with the default reply once the detector confirmed death.
    assert_eq!(word, 0);
    assert!(dead);
    assert_eq!(alive, 1);
    // Confirmation happens at the first heartbeat tick past the confirm
    // threshold — well before retransmission exhaustion (~175 ms).
    assert!(
        when > at(1200.0) && when < at(2000.0),
        "unblocked at {when}"
    );
    let stats = cluster.stats();
    assert_eq!(stats.total_peer_deaths(), 1);
    assert!(stats.per_proc[0].suspicions >= 1);
    assert_eq!(stats.total_false_suspicions(), 0);
    // Detection latency = confirmation minus the actual crash instant.
    assert_eq!(stats.max_detect_latency(), when.since(SimTime::ZERO));
    // The frozen node emitted no heartbeats; the survivor kept beating.
    assert_eq!(stats.per_proc[1].heartbeats, 0);
    assert!(stats.per_proc[0].heartbeats > 0);
}

#[test]
fn short_downtime_is_a_false_suspicion_not_a_death() {
    let sim = Sim::new();
    // Frozen for [150 µs, 750 µs): silence crosses the 400 µs suspect
    // threshold but recovery beats resume before the 1.2 ms confirm.
    let plan = NodeFaultPlan::none().with_fault(NodeFault::crash_recovery(
        1,
        at(150.0),
        SimDelta::from_micros(600.0),
    ));
    let cluster = AmCluster::new(
        sim.clone(),
        NetConfig::berkeley_now().with_node_faults(plan),
        2,
    );
    cluster.register_handler(|_| ReplyData::ack());
    for p in 0..2 {
        let port = cluster.port(p);
        sim.spawn(async move { port.idle_until(at(3000.0)).await });
    }
    let report = sim.run();
    assert_eq!(report.stop_reason, StopReason::Idle);
    let stats = cluster.stats();
    assert_eq!(stats.per_proc[0].suspicions, 1);
    assert_eq!(stats.per_proc[0].false_suspicions, 1);
    assert_eq!(stats.total_peer_deaths(), 0);
    assert_eq!(stats.max_detect_latency(), SimDelta::ZERO);
}

#[test]
fn crash_recovery_resumes_the_frozen_server() {
    let sim = Sim::new();
    // The server freezes at 50 µs and thaws at 350 µs — spanning the
    // second request, which must be served *after* recovery with the
    // real handler reply (fail-pause: memory and protocol state survive).
    let plan = NodeFaultPlan::none().with_fault(NodeFault::crash_recovery(
        1,
        at(50.0),
        SimDelta::from_micros(300.0),
    ));
    let cluster = AmCluster::new(
        sim.clone(),
        NetConfig::berkeley_now().with_node_faults(plan),
        2,
    );
    cluster.set_state(1, Box::new(0u64));
    let h = cluster.register_handler(|ctx| {
        let served = ctx.state.downcast_mut::<u64>().unwrap();
        *served += 1;
        ReplyData::word(*served)
    });
    let server = cluster.port(1);
    sim.spawn(async move { server.wait_until(|| false).await });
    let port = cluster.port(0);
    let done = sim.spawn(async move {
        let (a, _) = port.request(1, h, [0; 4], Payload::None, Mark::Read).await;
        let first_rtt_end = port.now();
        port.compute(SimDelta::from_micros(80.0)).await;
        let (b, _) = port.request(1, h, [0; 4], Payload::None, Mark::Read).await;
        (a[0], b[0], first_rtt_end, port.now())
    });
    let report = sim.run();
    assert_eq!(report.stop_reason, StopReason::Idle);
    let (first, second, t1, t2) = done.try_take().expect("requester never finished");
    assert_eq!(
        (first, second),
        (1, 2),
        "handler lost state across the freeze"
    );
    assert!(t1 < at(50.0), "first request should precede the crash");
    assert!(
        t2 > at(350.0),
        "second reply cannot precede recovery, got {t2}"
    );
    let stats = cluster.stats();
    assert_eq!(stats.total_peer_deaths(), 0);
    // Exactly-once held across the freeze even if the RTO retransmitted
    // into the down window.
    assert_eq!(cluster.port(1).with_state(|v: &mut u64| *v), 2);
}

#[test]
fn straggler_scales_host_charges_only() {
    let rtt_with = |plan: NodeFaultPlan| {
        let sim = Sim::new();
        let cfg = NetConfig::berkeley_now().with_node_faults(plan);
        let cluster = AmCluster::new(sim.clone(), cfg, 2);
        let h = cluster.register_handler(|_| ReplyData::ack());
        let server = cluster.port(1);
        sim.spawn(async move { server.wait_until(|| false).await });
        let port = cluster.port(0);
        let done = sim.spawn(async move {
            port.request(1, h, [0; 4], Payload::None, Mark::Read).await;
            port.now()
        });
        sim.run();
        done.try_take().expect("request did not finish")
    };
    // Healthy RTT = 2L + o_send0 + o_recv1 + o_send1 + o_recv0 = 21.6 µs.
    // Doubling node 0's host charges adds o_send0 + o_recv0 = 5.8 µs;
    // L and g are wire properties and must not move.
    let slow = rtt_with(NodeFaultPlan::none().with_fault(NodeFault::straggler(0, 2.0)));
    assert!(
        (slow.as_micros_f64() - 27.4).abs() < 0.01,
        "straggler RTT was {} µs",
        slow.as_micros_f64()
    );
}

#[test]
fn same_node_plan_reproduces_the_run() {
    let crash_case = || {
        let mut rng = SmallRng::seed_from_u64(0x5EED_CA5E);
        let (procs, ops) = loop {
            let (p, o) = util::draw_case(&mut rng);
            if p >= 3 && o.len() >= 30 {
                break (p, o);
            }
        };
        let plan = NodeFaultPlan::none()
            .with_fault(NodeFault::crash_recovery(
                0,
                at(40.0),
                SimDelta::from_micros(500.0),
            ))
            .with_fault(NodeFault::straggler(1, 1.5));
        util::run_traffic(
            procs,
            &ops,
            NetConfig::berkeley_now().with_node_faults(plan),
        )
    };
    let a = crash_case();
    let b = crash_case();
    assert_eq!(a.final_time, b.final_time);
    assert_eq!(a.stats.per_proc, b.stats.per_proc);
    assert_eq!(a.stop, b.stop);
}
