//! Properties of the reliable-delivery protocol under the deterministic
//! fault model (ISSUE: fault injection + reliability; DESIGN.md §3).
//!
//! The three headline properties:
//!
//! 1. an inert [`FaultPlan`] leaves virtual times bit-identical to the
//!    lossless transport (zero-cost default);
//! 2. under any drop/duplication/jitter plan short of total loss, every
//!    request's handler runs exactly once and every sender quiesces;
//! 3. the same fault seed reproduces the identical run, a different seed
//!    a different fault pattern.

mod util;

use nowlab_am::{AmCluster, FaultPlan, Mark, NetConfig, Outage, Payload, Reliability, ReplyData};
use nowlab_rng::{Rng, RngCore, SeedableRng, SmallRng};
use nowlab_sim::{Sim, SimDelta, SimTime, StopReason};

/// A moderately nasty plan: drops both classes, duplicates, jitters.
fn nasty_plan(rng: &mut SmallRng) -> FaultPlan {
    FaultPlan::none()
        .with_seed(rng.next_u64())
        .with_drops(
            rng.gen_range(1..300_000u64) as f64 / 1e6,
            rng.gen_range(1..300_000u64) as f64 / 1e6,
        )
        .with_dup(rng.gen_range(0..100_000u64) as f64 / 1e6)
        .with_jitter(SimDelta::from_nanos(rng.gen_range(0..50_000u64)))
}

#[test]
fn inert_plan_is_bit_identical_to_default() {
    let mut rng = SmallRng::seed_from_u64(0x0FF_FA17);
    let mut ran = 0;
    while ran < 8 {
        let (procs, ops) = util::draw_case(&mut rng);
        if ops.is_empty() {
            continue;
        }
        ran += 1;
        let base = util::run_traffic(procs, &ops, NetConfig::berkeley_now());
        // An explicit inert plan (even a seeded one) must not change a
        // single event: the protocol is disengaged, no timers exist.
        let cfg = NetConfig::berkeley_now()
            .with_faults(FaultPlan::none().with_seed(0xDEAD))
            .with_reliability(Reliability::baseline());
        let inert = util::run_traffic(procs, &ops, cfg);
        assert_eq!(base.final_time, inert.final_time);
        assert_eq!(base.stats.per_proc, inert.stats.per_proc);
        assert_eq!(base.stats.elapsed, inert.stats.elapsed);
    }
}

#[test]
fn protocol_is_quiet_on_a_healthy_network() {
    // Forcing the protocol on with zero faults: sequence/ack bookkeeping
    // runs, but replies beat the 250 µs RTO by an order of magnitude, so
    // no timer ever matures into a retransmission.
    let mut rng = SmallRng::seed_from_u64(0x9_EA17);
    let (procs, ops) = util::draw_case(&mut rng);
    let cfg =
        NetConfig::berkeley_now().with_reliability(Reliability::baseline().with_always_on(true));
    let out = util::run_traffic(procs, &ops, cfg);
    assert!(out.senders_done.iter().all(|&d| d));
    assert_eq!(out.stats.total_retransmits(), 0);
    assert_eq!(out.stats.total_timeouts(), 0);
    assert_eq!(out.stats.total_dup_suppressed(), 0);
    let runs: u64 = out.handler_runs.iter().sum();
    assert_eq!(runs, ops.len() as u64);
    // Message counts match the lossless run exactly.
    let base = util::run_traffic(procs, &ops, NetConfig::berkeley_now());
    assert_eq!(out.stats.total_sends(), base.stats.total_sends());
}

#[test]
fn handlers_run_exactly_once_under_random_faults() {
    let mut rng = SmallRng::seed_from_u64(0xE1AC71);
    let mut ran = 0;
    while ran < 12 {
        let (procs, ops) = util::draw_case(&mut rng);
        let plan = nasty_plan(&mut rng);
        if ops.is_empty() {
            continue;
        }
        ran += 1;
        let out = util::run_traffic(procs, &ops, NetConfig::berkeley_now().with_faults(plan));
        assert_eq!(out.stop, StopReason::Idle, "plan {plan} did not quiesce");
        assert!(
            out.senders_done.iter().all(|&d| d),
            "plan {plan}: a sender never finished"
        );
        // Exactly-once: dropped requests were retransmitted, duplicated
        // ones suppressed — each op's handler ran precisely once.
        let runs: u64 = out.handler_runs.iter().sum();
        assert_eq!(runs, ops.len() as u64, "plan {plan}");
        // The wire really misbehaved in most cases; when it did, the
        // protocol left a visible trace.
        if out.stats.total_drops() > 0 {
            assert!(
                out.stats.total_timeouts() > 0,
                "plan {plan}: drops but no timeouts"
            );
        }
        if out.stats.total_dups() > 0 {
            assert!(
                out.stats.total_dup_suppressed() > 0,
                "plan {plan}: wire dups but none suppressed"
            );
        }
    }
}

#[test]
fn same_fault_seed_reproduces_the_run() {
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let mut ran = 0;
    while ran < 6 {
        let (procs, ops) = util::draw_case(&mut rng);
        let plan = nasty_plan(&mut rng);
        if ops.len() < 20 {
            continue;
        }
        ran += 1;
        let cfg = NetConfig::berkeley_now().with_faults(plan);
        let a = util::run_traffic(procs, &ops, cfg);
        let b = util::run_traffic(procs, &ops, cfg);
        assert_eq!(a.final_time, b.final_time);
        assert_eq!(a.stats.per_proc, b.stats.per_proc);
    }
}

#[test]
fn different_fault_seed_changes_the_pattern() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    let (procs, ops) = loop {
        let (p, o) = util::draw_case(&mut rng);
        if o.len() >= 60 {
            break (p, o);
        }
    };
    let plan = FaultPlan::with_drop_rate(0.15, 1).with_jitter(SimDelta::from_micros(3.0));
    let a = util::run_traffic(procs, &ops, NetConfig::berkeley_now().with_faults(plan));
    let b = util::run_traffic(
        procs,
        &ops,
        NetConfig::berkeley_now().with_faults(plan.with_seed(2)),
    );
    assert!(
        a.final_time != b.final_time || a.stats.total_drops() != b.stats.total_drops(),
        "two seeds produced identical runs"
    );
}

/// Runs `n` ordered posts from proc 0 to proc 1 under `plan` and returns
/// the order in which the receiver's handler saw them.
fn delivery_order(n: u64, plan: FaultPlan) -> Vec<u64> {
    let sim = Sim::new();
    let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now().with_faults(plan), 2);
    cluster.set_state(1, Box::new(Vec::<u64>::new()));
    let h = cluster.register_handler(|ctx| {
        ctx.state
            .downcast_mut::<Vec<u64>>()
            .unwrap()
            .push(ctx.msg.args[0]);
        ReplyData::ack()
    });
    let server = cluster.port(1);
    sim.spawn(async move { server.wait_until(|| false).await });
    let port = cluster.port(0);
    sim.spawn(async move {
        for i in 0..n {
            port.post(1, h, [i, 0, 0, 0], Payload::None, Mark::Write)
                .await;
        }
        port.quiesce().await;
    });
    let report = sim.run();
    assert_eq!(report.stop_reason, StopReason::Idle);
    cluster.port(1).with_state(|v: &mut Vec<u64>| v.clone())
}

#[test]
fn retransmission_preserves_per_link_fifo() {
    // The 1 ns outage swallows exactly the first post (it hits the wire at
    // t=0); its successors escape and arrive ~250 µs before the retransmit
    // matures. The lossless wire delivers per-source FIFO and the upper
    // layers rely on it, so the receiver must hold the early arrivals back
    // and run all handlers in send order.
    let plan = FaultPlan::none().with_outage(Outage::window(SimTime::ZERO, SimTime::from_nanos(1)));
    assert_eq!(delivery_order(6, plan), vec![0, 1, 2, 3, 4, 5]);
}

#[test]
fn heavy_loss_still_preserves_per_link_fifo() {
    for seed in 1..=20 {
        let order = delivery_order(50, FaultPlan::with_drop_rate(0.25, seed));
        assert_eq!(
            order,
            (0..50).collect::<Vec<u64>>(),
            "seed {seed}: handlers ran out of order"
        );
    }
}

#[test]
fn permanent_outage_escalates_to_peer_death_not_a_hang() {
    let sim = Sim::new();
    let plan = FaultPlan::none().with_outage(Outage::permanent(SimTime::ZERO));
    let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now().with_faults(plan), 2);
    let h = cluster.register_handler(|_| ReplyData::ack());
    let server = cluster.port(1);
    sim.spawn(async move { server.wait_until(|| false).await });
    let port = cluster.port(0);
    let done = sim.spawn(async move {
        let (args, _) = port.request(1, h, [0; 4], Payload::None, Mark::Read).await;
        (args, port.peer_dead(1), port.peers_alive())
    });
    let report = sim.run();
    // The reply can never arrive. After `max_attempts` injections the
    // sender writes the peer off: the request completes locally with the
    // protocol's default reply and the event queue drains to Idle —
    // bounded retransmissions, no spin into the livelock guard.
    assert_eq!(report.stop_reason, StopReason::Idle);
    let (args, dead, alive) = done.try_take().expect("requester never unblocked");
    assert_eq!(args, [0; 4]);
    assert!(dead, "detector did not mark the peer dead");
    assert_eq!(alive, vec![true, false]);
    let stats = cluster.stats();
    let max = u64::from(NetConfig::berkeley_now().reliability.max_attempts);
    // Every injection was swallowed by the outage; each but the last
    // retransmission was driven by a timeout; the final timer escalated.
    assert_eq!(stats.per_proc[0].sends, max);
    assert_eq!(stats.per_proc[0].drops, max);
    assert_eq!(stats.per_proc[0].timeouts, max - 1);
    assert_eq!(stats.per_proc[0].peer_deaths, 1);
    // The backoff visibly escalated beyond the initial RTO.
    assert!(stats.max_retry_backoff() > NetConfig::berkeley_now().reliability.rto);
    let note = cluster.death_note().expect("no death note recorded");
    assert_eq!((note.observer, note.peer), (0, 1));
}

#[test]
fn time_limit_also_guards_the_outage() {
    let sim = Sim::new();
    sim.set_time_limit(Some(SimTime::ZERO + SimDelta::from_millis(50.0)));
    let plan = FaultPlan::none().with_outage(Outage::permanent(SimTime::ZERO));
    let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now().with_faults(plan), 2);
    let h = cluster.register_handler(|_| ReplyData::ack());
    let server = cluster.port(1);
    sim.spawn(async move { server.wait_until(|| false).await });
    let port = cluster.port(0);
    sim.spawn(async move {
        port.request(1, h, [0; 4], Payload::None, Mark::Read).await;
    });
    let report = sim.run();
    assert_eq!(report.stop_reason, StopReason::TimeLimit);
    assert!(cluster.stats().per_proc[0].timeouts > 0);
}

#[test]
fn transient_outage_is_survived() {
    // The wire is dead for the first 2 ms; retransmissions push every
    // message through once it heals.
    let mut rng = SmallRng::seed_from_u64(0x0A7A6E);
    let (procs, ops) = loop {
        let (p, o) = util::draw_case(&mut rng);
        if !o.is_empty() {
            break (p, o);
        }
    };
    let plan = FaultPlan::none().with_outage(Outage::window(
        SimTime::ZERO,
        SimTime::ZERO + SimDelta::from_millis(2.0),
    ));
    let out = util::run_traffic(procs, &ops, NetConfig::berkeley_now().with_faults(plan));
    assert_eq!(out.stop, StopReason::Idle);
    assert!(out.senders_done.iter().all(|&d| d));
    let runs: u64 = out.handler_runs.iter().sum();
    assert_eq!(runs, ops.len() as u64);
    assert!(out.final_time >= SimTime::ZERO + SimDelta::from_millis(2.0));
}
