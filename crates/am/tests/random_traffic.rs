//! Property test: arbitrary traffic patterns leave the transport's
//! accounting consistent — every request is eventually received and
//! acknowledged, and the per-destination matrix sums match the totals.

use nowlab_am::{AmCluster, Mark, NetConfig, Payload, ReplyData};
use nowlab_sim::Sim;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
struct Op {
    src: usize,
    dst: usize,
    bulk: bool,
    waited: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn accounting_is_consistent_under_random_traffic(
        procs in 2usize..6,
        ops in prop::collection::vec((0usize..64, any::<bool>(), any::<bool>()), 1..120),
    ) {
        // Materialize ops against the drawn processor count.
        let ops: Vec<Op> = ops
            .into_iter()
            .enumerate()
            .map(|(i, (d, bulk, waited))| {
                let src = (d + i) % procs;
                let dst = (d * 7 + i * 3 + 1) % procs;
                let dst = if dst == src { (dst + 1) % procs } else { dst };
                Op { src, dst, bulk, waited }
            })
            .filter(|op| op.src != op.dst)
            .collect();
        prop_assume!(!ops.is_empty());

        let sim = Sim::new();
        let cluster = AmCluster::new(sim.clone(), NetConfig::berkeley_now(), procs);
        let h = cluster.register_handler(|_| ReplyData::ack());

        // One task per processor: perform its ops in order, then serve.
        for me in 0..procs {
            let my_ops: Vec<Op> = ops.iter().copied().filter(|o| o.src == me).collect();
            let port = cluster.port(me);
            sim.spawn(async move {
                for op in my_ops {
                    let payload = if op.bulk {
                        Payload::Synthetic(512)
                    } else {
                        Payload::None
                    };
                    if op.waited {
                        port.request(op.dst, h, [0; 4], payload, Mark::Read).await;
                    } else {
                        port.post(op.dst, h, [0; 4], payload, Mark::Write).await;
                    }
                }
                port.quiesce().await;
                port.wait_until(|| false).await; // keep serving
            });
        }
        sim.run();

        let stats = cluster.stats();
        let requests = ops.len() as u64;
        // Every request got a reply: total sends = 2 × requests.
        prop_assert_eq!(stats.total_sends(), 2 * requests);
        // Everything sent was received.
        let recvs: u64 = stats.per_proc.iter().map(|c| c.recvs).sum();
        prop_assert_eq!(recvs, stats.total_sends());
        // The matrix is exact: row sums equal per-processor send counts.
        for (i, c) in stats.per_proc.iter().enumerate() {
            let row: u64 = c.per_dst.iter().sum();
            prop_assert_eq!(row, c.sends, "row {} mismatch", i);
            prop_assert_eq!(c.per_dst[i], 0, "self-message at {}", i);
        }
        // Read accounting: every waited request and its reply are marked.
        let waited = ops.iter().filter(|o| o.waited).count() as u64;
        let reads: u64 = stats.per_proc.iter().map(|c| c.sends_read).sum();
        prop_assert_eq!(reads, 2 * waited);
    }
}
