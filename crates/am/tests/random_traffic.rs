//! Randomized test: arbitrary traffic patterns leave the transport's
//! accounting consistent — every request is eventually received and
//! acknowledged, and the per-destination matrix sums match the totals.
//!
//! Cases are drawn from a seeded [`nowlab_rng::SmallRng`] stream, so the
//! suite is deterministic while still sweeping many traffic shapes.

mod util;

use nowlab_am::NetConfig;
use nowlab_rng::{SeedableRng, SmallRng};

#[test]
fn accounting_is_consistent_under_random_traffic() {
    let mut rng = SmallRng::seed_from_u64(0x7247FF1C);
    let mut ran = 0;
    while ran < 24 {
        let (procs, ops) = util::draw_case(&mut rng);
        if ops.is_empty() {
            continue;
        }
        ran += 1;

        let out = util::run_traffic(procs, &ops, NetConfig::berkeley_now());
        let stats = &out.stats;
        let requests = ops.len() as u64;
        // Every sender finished its ops and quiesced.
        assert!(out.senders_done.iter().all(|&d| d));
        // Every request ran its handler exactly once.
        let runs: u64 = out.handler_runs.iter().sum();
        assert_eq!(runs, requests);
        // Every request got a reply: total sends = 2 × requests.
        assert_eq!(stats.total_sends(), 2 * requests);
        // Everything sent was received.
        let recvs: u64 = stats.per_proc.iter().map(|c| c.recvs).sum();
        assert_eq!(recvs, stats.total_sends());
        // The matrix is exact: row sums equal per-processor send counts.
        for (i, c) in stats.per_proc.iter().enumerate() {
            let row: u64 = c.per_dst.iter().sum();
            assert_eq!(row, c.sends, "row {i} mismatch");
            assert_eq!(c.per_dst[i], 0, "self-message at {i}");
        }
        // Read accounting: every waited request and its reply are marked.
        let waited = ops.iter().filter(|o| o.waited).count() as u64;
        let reads: u64 = stats.per_proc.iter().map(|c| c.sends_read).sum();
        assert_eq!(reads, 2 * waited);
    }
}
