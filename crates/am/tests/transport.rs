//! Black-box tests of the Active Message transport through its public API:
//! timing algebra, flow control, knob independence, instrumentation.

use nowlab_am::{AmCluster, Knobs, Mark, NetConfig, Payload, ReplyData};
use nowlab_sim::{Sim, SimDelta, SimTime};

fn cluster(cfg: NetConfig, p: usize) -> (Sim, AmCluster) {
    let sim = Sim::new();
    let c = AmCluster::new(sim.clone(), cfg, p);
    (sim, c)
}

/// Spawns a server that polls forever on `proc`.
fn serve(sim: &Sim, c: &AmCluster, proc: usize) {
    let port = c.port(proc);
    sim.spawn(async move { port.wait_until(|| false).await });
}

#[test]
fn pipelined_posts_beat_sequential_requests() {
    let cfg = NetConfig::berkeley_now();
    let run = |pipelined: bool| {
        let (sim, c) = cluster(cfg, 2);
        let h = c.register_handler(|_| ReplyData::ack());
        serve(&sim, &c, 1);
        let port = c.port(0);
        let done = sim.spawn(async move {
            for i in 0..50u64 {
                if pipelined {
                    port.post(1, h, [i, 0, 0, 0], Payload::None, Mark::Write)
                        .await;
                } else {
                    port.request(1, h, [i, 0, 0, 0], Payload::None, Mark::Write)
                        .await;
                }
            }
            port.quiesce().await;
            port.now()
        });
        sim.run();
        done.try_take().unwrap()
    };
    let t_pipe = run(true);
    let t_sync = run(false);
    assert!(
        t_sync.as_nanos() > 2 * t_pipe.as_nanos(),
        "pipelining must overlap round trips: {t_pipe} vs {t_sync}"
    );
}

#[test]
fn window_of_one_serializes_round_trips() {
    let cfg = NetConfig::berkeley_now().with_window(1);
    let (sim, c) = cluster(cfg, 2);
    let h = c.register_handler(|_| ReplyData::ack());
    serve(&sim, &c, 1);
    let port = c.port(0);
    let done = sim.spawn(async move {
        for i in 0..10u64 {
            port.post(1, h, [i, 0, 0, 0], Payload::None, Mark::Write)
                .await;
        }
        port.quiesce().await;
        port.now()
    });
    sim.run();
    let t = done.try_take().unwrap();
    // With one credit, every post waits the previous ack: >= 10 RTTs.
    assert!(
        t.as_micros_f64() >= 10.0 * 21.6 - 1.0,
        "window=1 should serialize: {t}"
    );
}

#[test]
fn bulk_reply_carries_payload_through_fragments() {
    let (sim, c) = cluster(NetConfig::berkeley_now(), 2);
    // Handler replies with a 6000-word (48KB) payload -> 12 fragments.
    let h = c
        .register_handler(|_| ReplyData::bulk([0; 4], Payload::from_words((0..6000u64).collect())));
    serve(&sim, &c, 1);
    let port = c.port(0);
    let done = sim.spawn(async move {
        let (_, payload) = port.request(1, h, [0; 4], Payload::None, Mark::Read).await;
        let words = payload.as_words().unwrap().to_vec();
        (words.len(), words[5999], port.now())
    });
    sim.run();
    let (len, last, t) = done.try_take().unwrap();
    assert_eq!(len, 6000);
    assert_eq!(last, 5999);
    // The reply's DMA time alone is 48KB / 38MB/s ≈ 1.26 ms.
    assert!(t.as_micros_f64() > 1_200.0, "bulk reply too fast: {t}");
}

#[test]
fn latency_knob_does_not_change_message_counts() {
    let run = |knobs: Knobs| {
        let (sim, c) = cluster(NetConfig::berkeley_now().with_knobs(knobs), 2);
        let h = c.register_handler(|_| ReplyData::ack());
        serve(&sim, &c, 1);
        let port = c.port(0);
        sim.spawn(async move {
            for i in 0..20u64 {
                port.request(1, h, [i, 0, 0, 0], Payload::None, Mark::Read)
                    .await;
            }
        });
        sim.run();
        c.stats().total_sends()
    };
    let base = run(Knobs::baseline());
    let slow = run(Knobs::with_latency(SimDelta::from_micros(100.0)));
    assert_eq!(base, slow, "latency must not change traffic volume");
}

#[test]
fn per_destination_matrix_is_exact() {
    let (sim, c) = cluster(NetConfig::berkeley_now(), 4);
    let h = c.register_handler(|_| ReplyData::ack());
    for p in 1..4 {
        serve(&sim, &c, p);
    }
    let port = c.port(0);
    sim.spawn(async move {
        for dst in 1..4usize {
            for i in 0..(dst as u64 * 3) {
                port.post(dst, h, [i, 0, 0, 0], Payload::None, Mark::Write)
                    .await;
            }
        }
        port.quiesce().await;
    });
    sim.run();
    let m = c.stats().balance_matrix();
    assert_eq!(m[0][1], 3);
    assert_eq!(m[0][2], 6);
    assert_eq!(m[0][3], 9);
    // Each destination acked every request.
    assert_eq!(m[1][0], 3);
    assert_eq!(m[2][0], 6);
    assert_eq!(m[3][0], 9);
}

#[test]
fn idle_until_services_while_waiting() {
    let (sim, c) = cluster(NetConfig::berkeley_now(), 2);
    c.set_state(1, Box::new(0u64));
    let bump = c.register_handler(|ctx| {
        *ctx.state.downcast_mut::<u64>().unwrap() += 1;
        ReplyData::ack()
    });
    // Processor 1 idles for 1ms; processor 0 sends it 5 messages meanwhile.
    let idler = c.port(1);
    let served = sim.spawn(async move {
        idler
            .idle_until(SimTime::ZERO + SimDelta::from_millis(1.0))
            .await;
        (idler.with_state(|v: &mut u64| *v), idler.now())
    });
    let port = c.port(0);
    sim.spawn(async move {
        for i in 0..5u64 {
            port.post(1, bump, [i, 0, 0, 0], Payload::None, Mark::User)
                .await;
            port.compute(SimDelta::from_micros(50.0)).await;
        }
        port.quiesce().await;
    });
    sim.run();
    let (count, t) = served.try_take().unwrap();
    assert_eq!(count, 5, "all messages served during the idle window");
    assert!(
        (t.as_micros_f64() - 1_000.0).abs() < 20.0,
        "idle ends at the deadline: {t}"
    );
}

#[test]
fn freeze_stats_excludes_later_traffic() {
    let (sim, c) = cluster(NetConfig::berkeley_now(), 2);
    let h = c.register_handler(|_| ReplyData::ack());
    serve(&sim, &c, 1);
    let port = c.port(0);
    let c2 = c.clone();
    sim.spawn(async move {
        for i in 0..10u64 {
            port.request(1, h, [i, 0, 0, 0], Payload::None, Mark::Write)
                .await;
        }
        c2.freeze_stats();
        for i in 0..10u64 {
            port.request(1, h, [i, 0, 0, 0], Payload::None, Mark::Write)
                .await;
        }
    });
    sim.run();
    assert_eq!(c.stats().total_sends(), 20, "10 requests + 10 replies");
}

#[test]
fn overhead_knob_scales_o_time_accounting() {
    let run = |d_o: f64| {
        let cfg =
            NetConfig::berkeley_now().with_knobs(Knobs::with_overhead(SimDelta::from_micros(d_o)));
        let (sim, c) = cluster(cfg, 2);
        let h = c.register_handler(|_| ReplyData::ack());
        serve(&sim, &c, 1);
        let port = c.port(0);
        sim.spawn(async move {
            for i in 0..10u64 {
                port.request(1, h, [i, 0, 0, 0], Payload::None, Mark::Write)
                    .await;
            }
        });
        sim.run();
        c.stats().per_proc[0].o_time
    };
    let base = run(0.0);
    let slow = run(10.0);
    // 10 requests: each send + each reply receive gains 10us => +200us.
    let added = (slow - base).as_micros_f64();
    assert!((added - 200.0).abs() < 1.0, "added o_time = {added}");
}

#[test]
fn zero_byte_bulk_behaves_like_short() {
    let (sim, c) = cluster(NetConfig::berkeley_now(), 2);
    let h = c.register_handler(|_| ReplyData::ack());
    serve(&sim, &c, 1);
    let port = c.port(0);
    let done = sim.spawn(async move {
        port.request(1, h, [0; 4], Payload::Synthetic(0), Mark::Bulk)
            .await;
        port.now()
    });
    sim.run();
    let t = done.try_take().unwrap();
    assert!((t.as_micros_f64() - 21.6).abs() < 0.1, "rtt {t}");
}

#[test]
fn slow_rx_path_mode_inflates_gap_delay_queue_does_not() {
    use nowlab_am::LatencyMode;
    let d_lat = SimDelta::from_micros(40.0);
    let time_for = |mode: LatencyMode| {
        let cfg = NetConfig::berkeley_now()
            .with_knobs(Knobs::with_latency(d_lat))
            .with_latency_mode(mode);
        let (sim, c) = cluster(cfg, 2);
        let h = c.register_handler(|_| ReplyData::ack());
        serve(&sim, &c, 1);
        let port = c.port(0);
        let done = sim.spawn(async move {
            for i in 0..40u64 {
                port.post(1, h, [i, 0, 0, 0], Payload::None, Mark::Write)
                    .await;
            }
            port.quiesce().await;
            port.now()
        });
        sim.run();
        done.try_take().unwrap()
    };
    let dq = time_for(LatencyMode::DelayQueue);
    let srx = time_for(LatencyMode::SlowRxPath);
    // Under the slow receive path every message eats ΔL of receive-context
    // time; under the delay queue the stream still flows at the NIC rate
    // (window permitting).
    assert!(
        srx.as_nanos() > dq.as_nanos() + 30 * d_lat.as_nanos(),
        "slow rx {srx} vs delay queue {dq}"
    );
}
