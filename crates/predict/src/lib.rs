//! # nowlab-predict — latency-tolerance analytics from one traced run
//!
//! This crate turns a single fully-traced baseline run into a predictor
//! for the whole LogGP sensitivity sweep, without re-simulating:
//!
//! 1. The happens-before events the trace layer records (message
//!    lifecycles, compute segments, deadline-bounded idles, region marks)
//!    are assembled into an acyclic **message DAG** whose edge weights are
//!    the seven-component cost attribution plus idle time.
//! 2. Baseline evaluation of the DAG is **validated exactly**: every
//!    node's longest-path time must equal the recorded timestamp to the
//!    nanosecond, and the weighted critical path of the measured region
//!    must equal the measured runtime.
//! 3. Each edge is then **re-priced symbolically** in `(L, o, g, G)` and
//!    the DAG re-evaluated per grid point, predicting the application's
//!    slowdown curve and its latency-tolerance threshold — the knee where
//!    a parameter starts costing wall-clock time.
//!
//! The one modelling approximation is that serialization *order* (NIC
//! transmit pickup, receive visibility, program order) is frozen at the
//! baseline; predictions diverge where a parameter change would reorder
//! contention (see DESIGN.md §13). Runs with active fault injection are
//! refused outright — retransmission schedules do not survive re-pricing.

#![forbid(unsafe_code)]

mod cost;
mod dag;

use std::fmt;

pub use cost::{Bucket, BUCKETS};
pub use dag::{PathBreakdown, PhaseRow};

use nowlab_am::NetConfig;
use nowlab_sim::SimDelta;
use nowlab_trace::TraceReport;

/// Why a trace could not be turned into a predictor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PredictError {
    /// The trace carries no per-message records (Summary or Off mode).
    NoRecords {
        /// True when the summary saw pairing edges, i.e. the run *was*
        /// traced but only in Summary mode — re-run with full tracing.
        summary_only: bool,
    },
    /// The run had active fault injection or protocol anomalies; the
    /// frozen-order DAG cannot re-price retransmission schedules.
    FaultyRun(String),
    /// The happens-before graph has a cycle (corrupt trace).
    Cyclic(String),
    /// Baseline evaluation did not reproduce the recorded run exactly.
    Mismatch(String),
    /// The trace references state outside the run's declared shape.
    Unsupported(String),
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::NoRecords { summary_only: true } => write!(
                f,
                "trace has no per-message records but pairing was observed: \
                 the run was traced in Summary mode; re-run with full tracing"
            ),
            PredictError::NoRecords {
                summary_only: false,
            } => write!(
                f,
                "trace has no per-message records; prediction needs a run \
                 traced in full mode"
            ),
            PredictError::FaultyRun(why) => write!(
                f,
                "run is not predictable under frozen baseline order: {why}"
            ),
            PredictError::Cyclic(why) => write!(f, "{why}"),
            PredictError::Mismatch(why) => write!(f, "{why}"),
            PredictError::Unsupported(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for PredictError {}

/// A validated, re-priceable model of one traced run. Plain data
/// (`Send + Sync`): grid points can be evaluated from worker threads.
pub struct Analysis {
    dag: dag::Dag,
    baseline_cfg: NetConfig,
    baseline_runtime: SimDelta,
    warnings: Vec<String>,
}

/// Builds the message DAG from a fully-traced run, verifies it is acyclic,
/// and verifies baseline evaluation reproduces the measured run exactly —
/// both every recorded instant and the measured-region runtime.
pub fn analyze(
    report: &TraceReport,
    cfg: &NetConfig,
    procs: usize,
    measured_runtime: SimDelta,
) -> Result<Analysis, PredictError> {
    if report.records.is_empty() {
        return Err(PredictError::NoRecords {
            summary_only: report.summary.pairs > 0 || report.summary.msgs > 0,
        });
    }
    let s = &report.summary;
    let anomalies: &[(&str, u64)] = &[
        ("wire drops", s.drops),
        ("retransmissions", s.retransmits),
        ("duplicate deliveries", s.dup_deliveries),
        ("extra deliveries", s.extra_deliveries),
        ("tangled records", s.tangled),
        ("late send attempts", s.late_attempts),
        ("orphan events", s.orphan_events),
    ];
    if let Some((what, n)) = anomalies.iter().find(|(_, n)| *n > 0) {
        return Err(PredictError::FaultyRun(format!("{n} {what} in the trace")));
    }
    if cfg.faults.is_active() || cfg.node_faults.is_active() {
        return Err(PredictError::FaultyRun(
            "the run's configuration has an active fault plan".to_string(),
        ));
    }

    let mut warnings = Vec::new();
    if s.pairs == 0 {
        warnings.push(
            "no request→reply pairing edges in the trace; dependency chains \
             rely on program order alone"
                .to_string(),
        );
    }
    let graph = dag::build(report, cfg, procs, &mut warnings)?;
    let times = graph.times(cfg);
    graph.validate(&times)?;
    let span = graph.span(&times);
    if span != measured_runtime {
        return Err(PredictError::Mismatch(format!(
            "critical path of the measured region is {} ns but the run \
             measured {} ns",
            span.as_nanos(),
            measured_runtime.as_nanos()
        )));
    }
    Ok(Analysis {
        dag: graph,
        baseline_cfg: *cfg,
        baseline_runtime: measured_runtime,
        warnings,
    })
}

impl fmt::Debug for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Analysis")
            .field("nodes", &self.dag.node_count())
            .field("edges", &self.dag.edge_count())
            .field("baseline_runtime", &self.baseline_runtime)
            .field("warnings", &self.warnings)
            .finish_non_exhaustive()
    }
}

impl Analysis {
    /// The measured (and exactly reproduced) baseline runtime.
    pub fn baseline_runtime(&self) -> SimDelta {
        self.baseline_runtime
    }

    /// The configuration of the recorded run.
    pub fn baseline_cfg(&self) -> &NetConfig {
        &self.baseline_cfg
    }

    /// Non-fatal observations from DAG assembly.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Nodes in the message DAG.
    pub fn node_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Edges in the message DAG.
    pub fn edge_count(&self) -> usize {
        self.dag.edge_count()
    }

    /// Predicted measured-region runtime under `cfg`, by re-pricing every
    /// edge and re-evaluating the longest path — no simulation.
    pub fn predict_runtime(&self, cfg: &NetConfig) -> SimDelta {
        let times = self.dag.times(cfg);
        self.dag.span(&times)
    }

    /// Predicted runtime plus critical-path attribution under `cfg`.
    pub fn breakdown(&self, cfg: &NetConfig) -> PathBreakdown {
        let times = self.dag.times(cfg);
        self.dag.breakdown(cfg, &times)
    }
}

/// The λ-style tolerance threshold: the parameter value at which the
/// predicted slowdown curve first crosses `1 + tolerance`, linearly
/// interpolated between grid points. `points` are `(parameter, slowdown)`
/// in increasing parameter order; returns `None` if the curve never
/// crosses (the application tolerates the whole sweep).
pub fn tolerance_threshold(points: &[(f64, f64)], tolerance: f64) -> Option<f64> {
    let target = 1.0 + tolerance;
    let mut prev: Option<(f64, f64)> = None;
    for &(x, y) in points {
        if y >= target {
            return Some(match prev {
                Some((px, py)) if y > py => px + (x - px) * (target - py) / (y - py),
                _ => x,
            });
        }
        prev = Some((x, y));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_interpolates_between_grid_points() {
        let pts = [(5.0, 1.0), (10.0, 1.0), (20.0, 1.2)];
        let t = tolerance_threshold(&pts, 0.05).unwrap();
        // Crosses 1.05 a quarter of the way from 10 to 20.
        assert!((t - 12.5).abs() < 1e-9, "{t}");
    }

    #[test]
    fn threshold_is_none_when_flat() {
        let pts = [(5.0, 1.0), (105.0, 1.01)];
        assert_eq!(tolerance_threshold(&pts, 0.05), None);
    }

    #[test]
    fn threshold_at_first_point_returns_it() {
        let pts = [(5.0, 1.2), (10.0, 1.4)];
        assert_eq!(tolerance_threshold(&pts, 0.05), Some(5.0));
    }
}
