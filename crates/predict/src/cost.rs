//! Symbolic edge costs: every DAG edge knows how to re-price itself under
//! an arbitrary `(L, o, g, G)` configuration.
//!
//! The costs come in two families:
//!
//! * **Host spans** (`o_send`, `o_recv`, compute, idle) are carried as the
//!   *measured* baseline span plus the model delta `f(θ) − f(θ_base)`.
//!   At the baseline configuration the delta is zero by construction, so
//!   baseline evaluation reproduces the measured timestamps exactly even
//!   if a span carries state the model does not capture.
//! * **NIC spans** (transmit occupancy, wire transit, receive
//!   serialization) are recomputed from the same integer arithmetic the
//!   transport uses ([`tx_spans`] mirrors the fragment loop in the AM
//!   layer's `inject_with`), so they track `g` and `G` exactly instead of
//!   replaying frozen baseline waits.

use nowlab_am::{LatencyMode, NetConfig};
use nowlab_sim::SimDelta;

/// Critical-path attribution bucket. The first seven mirror the trace
/// layer's component attribution; `Idle` covers deadline-bounded waits
/// (disk model, backoff) that are not communication at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bucket {
    /// Send overhead on the source host.
    OSend,
    /// Receive overhead on the destination host.
    ORecv,
    /// Application compute segments.
    Compute,
    /// Deadline-bounded idle waits.
    Idle,
    /// Wait for the source NIC transmit context (`g`-serialization).
    TxGap,
    /// DMA occupancy of bulk fragment trains (`G`).
    Dma,
    /// Wire transit (`L`).
    Wire,
    /// Receive-NIC serialization before visibility (`g` at the sink).
    RxGap,
}

/// Number of buckets (for fixed-size accumulation arrays).
pub const BUCKETS: usize = 8;

impl Bucket {
    /// Dense index for accumulation arrays.
    pub fn index(self) -> usize {
        match self {
            Bucket::OSend => 0,
            Bucket::ORecv => 1,
            Bucket::Compute => 2,
            Bucket::Idle => 3,
            Bucket::TxGap => 4,
            Bucket::Dma => 5,
            Bucket::Wire => 6,
            Bucket::RxGap => 7,
        }
    }

    /// Stable snake_case name (report keys).
    pub fn as_str(self) -> &'static str {
        match self {
            Bucket::OSend => "o_send",
            Bucket::ORecv => "o_recv",
            Bucket::Compute => "compute",
            Bucket::Idle => "idle",
            Bucket::TxGap => "tx_gap",
            Bucket::Dma => "dma",
            Bucket::Wire => "wire",
            Bucket::RxGap => "rx_gap",
        }
    }

    /// All buckets in index order.
    pub fn all() -> [Bucket; BUCKETS] {
        [
            Bucket::OSend,
            Bucket::ORecv,
            Bucket::Compute,
            Bucket::Idle,
            Bucket::TxGap,
            Bucket::Dma,
            Bucket::Wire,
            Bucket::RxGap,
        ]
    }
}

/// Symbolic cost of one DAG edge.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Cost {
    /// Ordering only (program order, injection, visibility→pop).
    Zero,
    /// Application compute: invariant under the network parameters.
    Compute(SimDelta),
    /// Send overhead; measured baseline span, repriced by `Δ(o_send+Δo)`.
    OSend(SimDelta),
    /// Receive overhead; measured baseline span, repriced by `Δ(o_recv+Δo)`.
    ORecv(SimDelta),
    /// Idle lower bound: `deadline − enter`, invariant (deadlines shift
    /// with their enter points; see DESIGN.md §13).
    Idle(SimDelta),
    /// Source NIC serialization: the span the *previous* message (of
    /// `bytes` payload bytes) holds the transmit context.
    TxFree { bytes: u32 },
    /// Transmit occupancy plus wire transit of this message.
    Transit { bytes: u32 },
    /// Receive-context serialization behind the previous visible message.
    RxChain,
}

/// Transmit-context spans for a message of `bytes` payload bytes under
/// `cfg`: `(wire_done − tx_start, tx_free − tx_start)`.
///
/// Mirrors the transport's injection arithmetic exactly: a short message
/// leaves instantly and stalls the loop for the effective gap; a bulk
/// message is cut into fragments that each occupy the DMA engine for
/// `(G+ΔG)·size` (at least the per-message gap), with the added-gap knob
/// stalling between fragments.
pub(crate) fn tx_spans(cfg: &NetConfig, bytes: u32) -> (SimDelta, SimDelta) {
    if bytes == 0 {
        return (SimDelta::ZERO, cfg.eff_gap());
    }
    let mut t = SimDelta::ZERO;
    let mut remaining = bytes;
    let mut last_done = SimDelta::ZERO;
    while remaining > 0 {
        let frag = remaining.min(cfg.frag_bytes);
        remaining -= frag;
        let dma = cfg.eff_gap_per_byte() * u64::from(frag);
        let busy = dma.max(cfg.machine.gap);
        last_done = t + busy;
        t = last_done + cfg.knobs.d_g;
    }
    (last_done, t)
}

/// Wire transit span under `cfg` (how long after `wire_done` the message
/// reaches the head of the destination's delivery chain).
pub(crate) fn wire_span(cfg: &NetConfig) -> SimDelta {
    match cfg.latency_mode {
        LatencyMode::DelayQueue => cfg.eff_latency(),
        // The naive mechanism applies the base latency on the wire and ΔL
        // in the receive context after the serialization max — which
        // distributes over the max, so it folds into both chain edges.
        LatencyMode::SlowRxPath => cfg.machine.latency + cfg.knobs.d_lat,
    }
}

/// Receive-context serialization span between consecutive visibilities at
/// one destination.
pub(crate) fn rx_chain_span(cfg: &NetConfig) -> SimDelta {
    match cfg.latency_mode {
        LatencyMode::DelayQueue => cfg.eff_gap(),
        LatencyMode::SlowRxPath => cfg.eff_gap() + cfg.knobs.d_lat,
    }
}

/// `measured + (now − base)`, saturating at zero.
fn reprice(measured: SimDelta, now: SimDelta, base: SimDelta) -> SimDelta {
    (measured + now).saturating_sub(base)
}

impl Cost {
    /// The edge weight under `cfg`, with `base` the configuration of the
    /// recorded run.
    pub(crate) fn price(self, cfg: &NetConfig, base: &NetConfig) -> SimDelta {
        match self {
            Cost::Zero => SimDelta::ZERO,
            Cost::Compute(d) | Cost::Idle(d) => d,
            Cost::OSend(m) => reprice(m, cfg.eff_o_send(), base.eff_o_send()),
            Cost::ORecv(m) => reprice(m, cfg.eff_o_recv(), base.eff_o_recv()),
            Cost::TxFree { bytes } => tx_spans(cfg, bytes).1,
            Cost::Transit { bytes } => {
                let (dma, _) = tx_spans(cfg, bytes);
                dma + wire_span(cfg)
            }
            Cost::RxChain => rx_chain_span(cfg),
        }
    }

    /// The edge weight split into attribution buckets (sums to
    /// [`Cost::price`]). At most two parts (a bulk transit edge splits
    /// into DMA occupancy and wire transit).
    pub(crate) fn parts(self, cfg: &NetConfig, base: &NetConfig) -> [(Bucket, SimDelta); 2] {
        let zero = (Bucket::Compute, SimDelta::ZERO);
        match self {
            Cost::Zero => [zero, zero],
            Cost::Compute(d) => [(Bucket::Compute, d), zero],
            Cost::Idle(d) => [(Bucket::Idle, d), zero],
            Cost::OSend(_) => [(Bucket::OSend, self.price(cfg, base)), zero],
            Cost::ORecv(_) => [(Bucket::ORecv, self.price(cfg, base)), zero],
            Cost::TxFree { .. } => [(Bucket::TxGap, self.price(cfg, base)), zero],
            Cost::Transit { bytes } => {
                let (dma, _) = tx_spans(cfg, bytes);
                [(Bucket::Dma, dma), (Bucket::Wire, wire_span(cfg))]
            }
            Cost::RxChain => [(Bucket::RxGap, self.price(cfg, base)), zero],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nowlab_am::Knobs;

    #[test]
    fn short_message_spans_match_the_transport() {
        let cfg = NetConfig::berkeley_now();
        let (done, free) = tx_spans(&cfg, 0);
        assert_eq!(done, SimDelta::ZERO);
        assert_eq!(free, cfg.machine.gap);
    }

    #[test]
    fn bulk_fragment_train_matches_the_transport_loop() {
        let mut cfg = NetConfig::berkeley_now();
        cfg.knobs = Knobs {
            d_g: SimDelta::from_nanos(100),
            ..Knobs::baseline()
        };
        let bytes = cfg.frag_bytes * 2 + 100;
        let (done, free) = tx_spans(&cfg, bytes);
        // Replay the transport's loop by hand.
        let full = (cfg.eff_gap_per_byte() * u64::from(cfg.frag_bytes)).max(cfg.machine.gap);
        let tail = (cfg.eff_gap_per_byte() * 100).max(cfg.machine.gap);
        let expect_done = full + cfg.knobs.d_g + full + cfg.knobs.d_g + tail;
        assert_eq!(done, expect_done);
        assert_eq!(free, expect_done + cfg.knobs.d_g);
    }

    #[test]
    fn baseline_reprice_is_identity() {
        let base = NetConfig::berkeley_now();
        let m = SimDelta::from_nanos(1_800);
        assert_eq!(Cost::OSend(m).price(&base, &base), m);
        assert_eq!(Cost::ORecv(m).price(&base, &base), m);
    }

    #[test]
    fn overhead_reprice_adds_the_delta() {
        let base = NetConfig::berkeley_now();
        let mut theta = base;
        theta.knobs = Knobs::with_overhead(SimDelta::from_micros(10.0));
        let m = base.machine.o_send;
        assert_eq!(
            Cost::OSend(m).price(&theta, &base),
            m + SimDelta::from_micros(10.0)
        );
    }
}
