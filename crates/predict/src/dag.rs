//! Assembly and evaluation of the happens-before message DAG.
//!
//! Nodes are *instants*: the start and end of every busy activity (send
//! overhead, receive overhead, compute segment), the transmit-context
//! pickup and receive-queue visibility of every message, and the exit of
//! every deadline-bounded idle wait. Edges carry the symbolic costs of
//! [`crate::cost`]; evaluating the DAG under a configuration `θ` computes
//! each instant's predicted time as the longest weighted path from the
//! virtual source — exactly the discrete-event semantics, with the one
//! deliberate approximation that NIC serialization *order* is frozen at
//! the baseline order (see DESIGN.md §13).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use nowlab_am::NetConfig;
use nowlab_sim::SimDelta;
use nowlab_trace::TraceReport;

use crate::cost::{Cost, BUCKETS};
use crate::PredictError;

const NO_PROC: u16 = u16::MAX;
const NO_MSG: u32 = u32::MAX;

/// What instant a node stands for. The payloads are read only through
/// `Debug` formatting in validation errors.
#[allow(dead_code)]
#[derive(Clone, Copy, Debug)]
enum NodeKind {
    /// Virtual time-zero root.
    Source,
    /// Virtual end-of-run join.
    Sink,
    /// Message `i` picked up by the source transmit context.
    TxStart(u32),
    /// Message `i` visible in the destination receive queue.
    Visible(u32),
    /// A busy activity began.
    ActStart,
    /// A busy activity ended.
    ActEnd,
    /// A deadline-bounded idle wait exited.
    IdleExit,
}

#[derive(Clone, Copy, Debug)]
struct Node {
    /// Measured baseline timestamp, ns.
    measured: u64,
    /// Owning processor (`NO_PROC` for source/sink).
    proc: u16,
    kind: NodeKind,
}

#[derive(Clone, Copy, Debug)]
struct Edge {
    head: u32,
    tail: u32,
    cost: Cost,
    /// Record index of the message this edge belongs to (`NO_MSG` if none).
    msg: u32,
}

/// Critical-path attribution for one configuration.
#[derive(Clone, Debug)]
pub struct PathBreakdown {
    /// Predicted measured-region span (the buckets sum to this exactly).
    pub total: SimDelta,
    /// Per-bucket time on the critical path, indexed by [`Bucket::index`].
    pub buckets: [SimDelta; BUCKETS],
    /// Per-application-phase rows, labels in lexicographic order.
    pub phases: Vec<PhaseRow>,
    /// Trace ids of the messages whose edges lie on the critical path.
    pub critical_msgs: Vec<u64>,
    /// Edges walked (diagnostic).
    pub edges_on_path: usize,
}

/// One application phase's share of the critical path.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Phase label (`"(startup)"` before the first mark).
    pub label: String,
    /// Per-bucket time, indexed by [`Bucket::index`].
    pub buckets: [SimDelta; BUCKETS],
    /// Row total.
    pub total: SimDelta,
}

pub(crate) struct Dag {
    nodes: Vec<Node>,
    /// Edges sorted by head (CSR); `head_start[n]..head_start[n+1]` are
    /// node `n`'s in-edges, in deterministic insertion order.
    edges: Vec<Edge>,
    head_start: Vec<u32>,
    topo: Vec<u32>,
    begin_anchor: u32,
    end_anchor: u32,
    base: NetConfig,
    /// Per-processor `(at_ns, label)` phase marks, sorted by time.
    phases: Vec<Vec<(u64, String)>>,
    /// Record index → trace id (for critical-message reporting).
    msg_ids: Vec<u64>,
}

#[derive(Clone, Copy)]
struct ActItem {
    start: u64,
    end: u64,
    /// Record index for overhead activities, `NO_MSG` for compute.
    msg: u32,
    /// For receive overheads: the baseline popped the message the instant
    /// it became visible, i.e. the processor was demonstrably *waiting*
    /// for it. Only those receives take a visibility→pop dependency edge;
    /// a backlogged receive (`pop > visible`) was serviced when the
    /// processor got around to it, so it is ordered by occupancy (program
    /// order) alone and does not pull wire latency onto the host chain.
    blocking: bool,
    cost: ActCost,
}

#[derive(Clone, Copy)]
enum ActCost {
    OSend,
    ORecv,
    Compute,
}

pub(crate) fn build(
    report: &TraceReport,
    cfg: &NetConfig,
    procs: usize,
    warnings: &mut Vec<String>,
) -> Result<Dag, PredictError> {
    assert!(procs < usize::from(NO_PROC), "processor count out of range");
    let records = &report.records;
    let n_rec = records.len();

    let mut nodes: Vec<Node> = Vec::with_capacity(2 + 2 * n_rec + 2 * report.computes.len());
    let mut edges: Vec<Edge> = Vec::with_capacity(6 * n_rec);
    nodes.push(Node {
        measured: 0,
        proc: NO_PROC,
        kind: NodeKind::Source,
    });

    // NIC nodes get fixed ids so the activity chains can reference them.
    let tx_node = |i: usize| (1 + 2 * i) as u32;
    let vis_node = |i: usize| (2 + 2 * i) as u32;
    let mut incomplete = 0u64;
    for (i, r) in records.iter().enumerate() {
        if r.src >= procs || r.dst >= procs {
            return Err(PredictError::Unsupported(format!(
                "record {} references processor {}/{} outside 0..{}",
                r.id, r.src, r.dst, procs
            )));
        }
        nodes.push(Node {
            measured: r.tx_start.as_nanos(),
            proc: r.src as u16,
            kind: NodeKind::TxStart(i as u32),
        });
        nodes.push(Node {
            measured: r.visible.as_nanos(),
            proc: r.dst as u16,
            kind: NodeKind::Visible(i as u32),
        });
        if !r.completed {
            incomplete += 1;
        }
    }
    if incomplete > 0 {
        warnings.push(format!(
            "{incomplete} message(s) never completed; their receive side is \
             excluded from the DAG"
        ));
    }
    // A message reached the destination's delivery chain iff its
    // visibility was recorded (always, unless the run was cut short).
    let has_vis = |i: usize| records[i].completed || records[i].visible.as_nanos() > 0;

    // Busy activities per processor: send overhead, receive overhead,
    // compute segments. Processors are single-threaded, so per-proc
    // activities never overlap; the stable sort by (start, end) recovers
    // program order.
    let mut acts: Vec<Vec<ActItem>> = vec![Vec::new(); procs];
    for (i, r) in records.iter().enumerate() {
        acts[r.src].push(ActItem {
            start: r.send_begin.as_nanos(),
            end: r.inject.as_nanos(),
            msg: i as u32,
            blocking: false,
            cost: ActCost::OSend,
        });
        if r.completed {
            acts[r.dst].push(ActItem {
                start: r.pop.as_nanos(),
                end: r.done.as_nanos(),
                msg: i as u32,
                blocking: r.pop == r.visible,
                cost: ActCost::ORecv,
            });
        }
    }
    for c in &report.computes {
        if c.proc >= procs {
            continue;
        }
        acts[c.proc].push(ActItem {
            start: c.start.as_nanos(),
            end: (c.start + c.dur).as_nanos(),
            msg: NO_MSG,
            blocking: false,
            cost: ActCost::Compute,
        });
    }
    for list in &mut acts {
        list.sort_by_key(|a| (a.start, a.end));
    }
    let mut idles: Vec<Vec<&nowlab_trace::IdleSeg>> = vec![Vec::new(); procs];
    for seg in &report.idles {
        if seg.proc < procs {
            idles[seg.proc].push(seg);
        }
    }
    for list in &mut idles {
        list.sort_by_key(|s| s.enter.as_nanos());
    }

    // Program-order chains. `osend_end[i]` is the node at which message
    // i's send overhead completed (= its injection instant);
    // `osend_start[i]` the node at which it began (credit already held).
    let mut osend_end: Vec<u32> = vec![0; n_rec];
    let mut osend_start: Vec<u32> = vec![0; n_rec];
    let mut anchors: Vec<Vec<(u64, u32)>> = vec![Vec::new(); procs];
    let mut chain_tail: Vec<u32> = Vec::with_capacity(procs);
    for p in 0..procs {
        let mut cursor = 0u32; // source
        let mut ai = 0usize;
        let chain_act = |ai: usize,
                         cursor: &mut u32,
                         nodes: &mut Vec<Node>,
                         edges: &mut Vec<Edge>,
                         anchors: &mut Vec<(u64, u32)>,
                         osend_start: &mut Vec<u32>,
                         osend_end: &mut Vec<u32>| {
            let a = acts[p][ai];
            let s = nodes.len() as u32;
            nodes.push(Node {
                measured: a.start,
                proc: p as u16,
                kind: NodeKind::ActStart,
            });
            edges.push(Edge {
                head: s,
                tail: *cursor,
                cost: Cost::Zero,
                msg: NO_MSG,
            });
            if a.blocking {
                // The baseline waited for this message: its pop depends on
                // visibility, so wire latency reaches the host chain here.
                edges.push(Edge {
                    head: s,
                    tail: vis_node(a.msg as usize),
                    cost: Cost::Zero,
                    msg: a.msg,
                });
            }
            let e = nodes.len() as u32;
            nodes.push(Node {
                measured: a.end,
                proc: p as u16,
                kind: NodeKind::ActEnd,
            });
            let dur = SimDelta::from_nanos(a.end - a.start);
            let cost = match a.cost {
                ActCost::OSend => Cost::OSend(dur),
                ActCost::ORecv => Cost::ORecv(dur),
                ActCost::Compute => Cost::Compute(dur),
            };
            edges.push(Edge {
                head: e,
                tail: s,
                cost,
                msg: a.msg,
            });
            if let ActCost::OSend = a.cost {
                osend_start[a.msg as usize] = s;
                osend_end[a.msg as usize] = e;
            }
            anchors.push((a.start, s));
            anchors.push((a.end, e));
            *cursor = e;
        };
        for seg in &idles[p] {
            let enter = seg.enter.as_nanos();
            let exit = seg.exit.as_nanos();
            while ai < acts[p].len() && acts[p][ai].start < enter {
                chain_act(
                    ai,
                    &mut cursor,
                    &mut nodes,
                    &mut edges,
                    &mut anchors[p],
                    &mut osend_start,
                    &mut osend_end,
                );
                ai += 1;
            }
            // The wait's lower bound hangs off the processor's position at
            // entry; receive overheads serviced inside the wait chain
            // through `cursor` as usual.
            let idle_base = cursor;
            while ai < acts[p].len() && acts[p][ai].start < exit {
                chain_act(
                    ai,
                    &mut cursor,
                    &mut nodes,
                    &mut edges,
                    &mut anchors[p],
                    &mut osend_start,
                    &mut osend_end,
                );
                ai += 1;
            }
            let ex = nodes.len() as u32;
            nodes.push(Node {
                measured: exit,
                proc: p as u16,
                kind: NodeKind::IdleExit,
            });
            edges.push(Edge {
                head: ex,
                tail: idle_base,
                cost: Cost::Idle(seg.deadline.saturating_since(seg.enter)),
                msg: NO_MSG,
            });
            edges.push(Edge {
                head: ex,
                tail: cursor,
                cost: Cost::Zero,
                msg: NO_MSG,
            });
            anchors[p].push((exit, ex));
            cursor = ex;
        }
        while ai < acts[p].len() {
            chain_act(
                ai,
                &mut cursor,
                &mut nodes,
                &mut edges,
                &mut anchors[p],
                &mut osend_start,
                &mut osend_end,
            );
            ai += 1;
        }
        chain_tail.push(cursor);
    }

    // NIC-side edges. Injection hands the message to the transmit
    // context; per-source and per-destination serialization chains follow
    // the baseline pickup/visibility order.
    for (i, r) in records.iter().enumerate() {
        edges.push(Edge {
            head: tx_node(i),
            tail: osend_end[i],
            cost: Cost::Zero,
            msg: i as u32,
        });
        if has_vis(i) {
            edges.push(Edge {
                head: vis_node(i),
                tail: tx_node(i),
                cost: Cost::Transit { bytes: r.bytes },
                msg: i as u32,
            });
        }
    }
    let mut last_nic: Vec<u32> = Vec::new();
    for p in 0..procs {
        let mut by_tx: Vec<usize> = (0..n_rec).filter(|&i| records[i].src == p).collect();
        by_tx.sort_by_key(|&i| {
            (
                records[i].tx_start.as_nanos(),
                records[i].inject.as_nanos(),
                i,
            )
        });
        for w in by_tx.windows(2) {
            let (prev, cur) = (w[0], w[1]);
            edges.push(Edge {
                head: tx_node(cur),
                tail: tx_node(prev),
                cost: Cost::TxFree {
                    bytes: records[prev].bytes,
                },
                msg: cur as u32,
            });
        }
        if let Some(&last) = by_tx.last() {
            last_nic.push(tx_node(last));
        }
        let mut by_vis: Vec<usize> = (0..n_rec)
            .filter(|&i| records[i].dst == p && has_vis(i))
            .collect();
        by_vis.sort_by_key(|&i| (records[i].visible.as_nanos(), i));
        for w in by_vis.windows(2) {
            let (prev, cur) = (w[0], w[1]);
            edges.push(Edge {
                head: vis_node(cur),
                tail: vis_node(prev),
                cost: Cost::RxChain,
                msg: cur as u32,
            });
        }
        if let Some(&last) = by_vis.last() {
            last_nic.push(vis_node(last));
        }
    }

    // Flow-control window: a processor's n-th request send (0-based) must
    // hold a credit, so it cannot begin before the (n−W+1)-th credit has
    // returned — a reply to one of its own requests fully processed. The
    // *order* credits return is frozen at the baseline's reply-processing
    // order; the edge runs from that reply's visibility and carries its
    // receive-overhead span (the pop+process that precedes the credit
    // increment). Always consistent at the baseline because
    // `visible + (done − pop) ≤ done ≤ send_begin` held in the real run.
    let window = cfg.window as usize;
    for p in 0..procs {
        let mut sends: Vec<usize> = (0..n_rec)
            .filter(|&i| records[i].src == p && !records[i].reply)
            .collect();
        sends.sort_by_key(|&i| (records[i].send_begin.as_nanos(), i));
        let mut returns: Vec<usize> = (0..n_rec)
            .filter(|&i| records[i].dst == p && records[i].reply && records[i].completed)
            .collect();
        returns.sort_by_key(|&i| (records[i].done.as_nanos(), i));
        for (n, &si) in sends.iter().enumerate().skip(window) {
            let Some(&ri) = returns.get(n - window) else {
                break; // truncated run: fewer returns than the window needs
            };
            let r = &records[ri];
            edges.push(Edge {
                head: osend_start[si],
                tail: vis_node(ri),
                cost: Cost::ORecv(r.done.saturating_since(r.pop)),
                msg: ri as u32,
            });
        }
    }

    // Virtual sink joining every chain (full-run makespan).
    let sink = nodes.len() as u32;
    let sink_measured = chain_tail
        .iter()
        .chain(last_nic.iter())
        .map(|&n| nodes[n as usize].measured)
        .max()
        .unwrap_or(0);
    nodes.push(Node {
        measured: sink_measured,
        proc: NO_PROC,
        kind: NodeKind::Sink,
    });
    for &t in chain_tail.iter().chain(last_nic.iter()) {
        edges.push(Edge {
            head: sink,
            tail: t,
            cost: Cost::Zero,
            msg: NO_MSG,
        });
    }

    // Measured-region anchors: the program-order node a processor sat at
    // when the region mark was taken.
    let anchor = |p: usize, t: u64| -> u32 {
        let list = &anchors[p];
        let idx = list.partition_point(|&(at, _)| at <= t);
        if idx == 0 {
            0
        } else {
            list[idx - 1].1
        }
    };
    let begin = report.regions.iter().find(|r| r.begin);
    let end = report.regions.iter().rev().find(|r| !r.begin);
    let (begin_anchor, end_anchor) = match (begin, end) {
        (Some(b), Some(e)) if b.proc < procs && e.proc < procs => {
            let ba = anchor(b.proc, b.at.as_nanos());
            let ea = anchor(e.proc, e.at.as_nanos());
            if nodes[ba as usize].measured != b.at.as_nanos()
                || nodes[ea as usize].measured != e.at.as_nanos()
            {
                warnings.push(
                    "region marks do not coincide with activity boundaries; \
                     span prediction is anchored to the nearest preceding \
                     instant"
                        .to_string(),
                );
            }
            (ba, ea)
        }
        _ => {
            warnings.push(
                "no measured-region marks in the trace; predicting the \
                 whole-run makespan"
                    .to_string(),
            );
            (0, sink)
        }
    };

    // CSR by head, preserving insertion order within each head.
    let n = nodes.len();
    let mut head_count = vec![0u32; n + 1];
    for e in &edges {
        head_count[e.head as usize + 1] += 1;
    }
    for i in 0..n {
        head_count[i + 1] += head_count[i];
    }
    let mut sorted = vec![
        Edge {
            head: 0,
            tail: 0,
            cost: Cost::Zero,
            msg: NO_MSG
        };
        edges.len()
    ];
    let mut fill = head_count.clone();
    for e in &edges {
        let at = fill[e.head as usize];
        sorted[at as usize] = *e;
        fill[e.head as usize] += 1;
    }
    let head_start = head_count;
    let edges = sorted;

    // Kahn topological order (smallest-id-first for determinism); doubles
    // as the acyclicity proof.
    let mut out_count = vec![0u32; n + 1];
    for e in &edges {
        out_count[e.tail as usize + 1] += 1;
    }
    for i in 0..n {
        out_count[i + 1] += out_count[i];
    }
    let mut out_edges = vec![0u32; edges.len()];
    let mut fill = out_count.clone();
    for (idx, e) in edges.iter().enumerate() {
        out_edges[fill[e.tail as usize] as usize] = idx as u32;
        fill[e.tail as usize] += 1;
    }
    let mut indeg: Vec<u32> = (0..n).map(|i| head_start[i + 1] - head_start[i]).collect();
    let mut heap: BinaryHeap<Reverse<u32>> = (0..n as u32)
        .filter(|&i| indeg[i as usize] == 0)
        .map(Reverse)
        .collect();
    let mut topo = Vec::with_capacity(n);
    while let Some(Reverse(nid)) = heap.pop() {
        topo.push(nid);
        let (s, e) = (out_count[nid as usize], out_count[nid as usize + 1]);
        for &ei in &out_edges[s as usize..e as usize] {
            let h = edges[ei as usize].head;
            indeg[h as usize] -= 1;
            if indeg[h as usize] == 0 {
                heap.push(Reverse(h));
            }
        }
    }
    if topo.len() != n {
        let stuck = (0..n).find(|&i| indeg[i] > 0).unwrap_or(0);
        return Err(PredictError::Cyclic(format!(
            "happens-before graph has a cycle through node {} ({:?} at {} ns)",
            stuck, nodes[stuck].kind, nodes[stuck].measured
        )));
    }

    // Phase marks, per proc, time-sorted.
    let mut phases: Vec<Vec<(u64, String)>> = vec![Vec::new(); procs];
    for m in &report.phases {
        if m.proc < procs {
            phases[m.proc].push((m.at.as_nanos(), m.label.as_str().to_string()));
        }
    }
    for list in &mut phases {
        list.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    }

    Ok(Dag {
        msg_ids: records.iter().map(|r| r.id).collect(),
        nodes,
        edges,
        head_start,
        topo,
        begin_anchor,
        end_anchor,
        base: *cfg,
        phases,
    })
}

impl Dag {
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub(crate) fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Longest-path time of every node under `cfg`, ns, indexed by node.
    pub(crate) fn times(&self, cfg: &NetConfig) -> Vec<u64> {
        let mut t = vec![0u64; self.nodes.len()];
        for &nid in &self.topo {
            let (s, e) = (
                self.head_start[nid as usize] as usize,
                self.head_start[nid as usize + 1] as usize,
            );
            let mut best = 0u64;
            for edge in &self.edges[s..e] {
                let v = t[edge.tail as usize] + edge.cost.price(cfg, &self.base).as_nanos();
                best = best.max(v);
            }
            t[nid as usize] = best;
        }
        t
    }

    /// Predicted measured-region span under `cfg` given precomputed times.
    pub(crate) fn span(&self, times: &[u64]) -> SimDelta {
        SimDelta::from_nanos(
            times[self.end_anchor as usize].saturating_sub(times[self.begin_anchor as usize]),
        )
    }

    /// Checks that baseline evaluation reproduces every measured instant
    /// exactly (integer nanoseconds).
    pub(crate) fn validate(&self, times: &[u64]) -> Result<(), PredictError> {
        let mut bad = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if times[i] != node.measured {
                bad.push(format!(
                    "node {} {:?} proc {}: computed {} ns, measured {} ns",
                    i, node.kind, node.proc, times[i], node.measured
                ));
                if bad.len() >= 5 {
                    break;
                }
            }
        }
        if bad.is_empty() {
            Ok(())
        } else {
            Err(PredictError::Mismatch(format!(
                "baseline DAG evaluation diverged from the recorded run: {}",
                bad.join("; ")
            )))
        }
    }

    fn phase_of(&self, proc: u16, at: u64) -> &str {
        if proc == NO_PROC {
            return "(startup)";
        }
        let list = &self.phases[proc as usize];
        let idx = list.partition_point(|&(t, _)| t <= at);
        if idx == 0 {
            "(startup)"
        } else {
            &list[idx - 1].1
        }
    }

    /// Walks the critical path backwards from the region end anchor,
    /// clipping at the region span so the buckets telescope to it exactly.
    pub(crate) fn breakdown(&self, cfg: &NetConfig, times: &[u64]) -> PathBreakdown {
        let span = self.span(times);
        let mut remaining = span.as_nanos();
        let mut buckets = [0u64; BUCKETS];
        let mut per_phase: BTreeMap<String, [u64; BUCKETS]> = BTreeMap::new();
        let mut msgs: BTreeSet<u64> = BTreeSet::new();
        let mut edges_on_path = 0usize;
        let mut node = self.end_anchor;
        while node != 0 && remaining > 0 {
            let (s, e) = (
                self.head_start[node as usize] as usize,
                self.head_start[node as usize + 1] as usize,
            );
            let t = times[node as usize];
            // At least one in-edge is tight (t is the max over them);
            // take the first in insertion order for determinism.
            let Some(edge) = self.edges[s..e].iter().find(|ed| {
                times[ed.tail as usize] + ed.cost.price(cfg, &self.base).as_nanos() == t
            }) else {
                break; // no in-edges: a root inside the region window
            };
            edges_on_path += 1;
            let head_node = &self.nodes[node as usize];
            let phase = self
                .phase_of(head_node.proc, head_node.measured)
                .to_string();
            let mut took_any = false;
            for (bucket, part) in edge.cost.parts(cfg, &self.base) {
                let take = part.as_nanos().min(remaining);
                if take > 0 {
                    buckets[bucket.index()] += take;
                    per_phase.entry(phase.clone()).or_default()[bucket.index()] += take;
                    remaining -= take;
                    took_any = true;
                }
            }
            if edge.msg != NO_MSG && took_any {
                msgs.insert(self.msg_ids[edge.msg as usize]);
            }
            node = edge.tail;
        }
        let phases = per_phase
            .into_iter()
            .map(|(label, b)| PhaseRow {
                label,
                buckets: b.map(SimDelta::from_nanos),
                total: SimDelta::from_nanos(b.iter().sum()),
            })
            .collect();
        PathBreakdown {
            total: span,
            buckets: buckets.map(SimDelta::from_nanos),
            phases,
            critical_msgs: msgs.into_iter().collect(),
            edges_on_path,
        }
    }
}

/// Sanity: bucket labels stay in sync with the accumulation arrays.
#[cfg(test)]
mod tests {
    use crate::cost::Bucket;

    #[test]
    fn bucket_indices_are_dense_and_stable() {
        for (i, b) in Bucket::all().iter().enumerate() {
            assert_eq!(b.index(), i);
        }
        let names: Vec<&str> = Bucket::all().iter().map(|b| b.as_str()).collect();
        assert_eq!(
            names,
            ["o_send", "o_recv", "compute", "idle", "tx_gap", "dma", "wire", "rx_gap"]
        );
    }
}
