//! Communication-signature conformance: each application must exhibit the
//! paper's Table 4 class characteristics (read/write orientation, bulk
//! usage, balance) even at test scale.

use nowlab_apps::{suite_scaled, SuiteScale};
use nowlab_core::RunSpec;
use std::collections::HashMap;

fn run_all(procs: usize) -> HashMap<String, nowlab_core::RunOutcome> {
    suite_scaled(SuiteScale::Test)
        .iter()
        .map(|app| {
            let out = app.run(&RunSpec::new(procs));
            assert!(out.completed, "{} failed", app.name());
            (app.name().to_string(), out)
        })
        .collect()
}

#[test]
fn read_write_orientation_matches_table4() {
    let outs = run_all(8);
    // Read-dominated programs (paper: 97.1%, 96.5%, 67.4%, 20.6%).
    for name in ["EM3D(read)", "P-Ray", "Connect"] {
        assert!(
            outs[name].stats.pct_reads() > 50.0,
            "{name} should be read-dominated: {}",
            outs[name].stats.pct_reads()
        );
    }
    // Write-based programs (paper: 0.0%).
    for name in [
        "Radix",
        "EM3D(write)",
        "Sample",
        "Murphi",
        "NOW-sort",
        "Radb",
    ] {
        assert!(
            outs[name].stats.pct_reads() < 10.0,
            "{name} should be write-based: {}",
            outs[name].stats.pct_reads()
        );
    }
}

#[test]
fn bulk_usage_matches_table4() {
    let outs = run_all(8);
    // Bulk-transfer users (paper: 23-50%).
    for name in ["Murphi", "NOW-sort", "P-Ray"] {
        let b = outs[name].stats.pct_bulk();
        assert!((15.0..70.0).contains(&b), "{name} bulk% = {b}");
    }
    // Short-message-only programs (paper: ≤0.01%).
    for name in ["Radix", "EM3D(write)", "EM3D(read)", "Sample", "Connect"] {
        let b = outs[name].stats.pct_bulk();
        assert!(b < 2.0, "{name} bulk% = {b}");
    }
}

#[test]
fn balance_classes_match_figure4() {
    let outs = run_all(8);
    // NOW-sort's all-to-all streaming and Radix's key scatter are tightly
    // balanced; Sample's receiver imbalance shows up in the matrix, not in
    // send counts.
    for name in ["NOW-sort", "Radix", "EM3D(write)"] {
        assert!(
            outs[name].stats.balance() < 1.5,
            "{name} balance = {}",
            outs[name].stats.balance()
        );
    }
    // Every program's matrix diagonal is empty (nobody messages itself).
    for (name, out) in &outs {
        for (i, row) in out.stats.balance_matrix().iter().enumerate() {
            assert_eq!(row[i], 0, "{name}: proc {i} messaged itself");
        }
    }
}

#[test]
fn frequency_spread_spans_the_suite() {
    let outs = run_all(8);
    let interval = |n: &str| outs[n].stats.msg_interval_us();
    // The frequent four vs the infrequent tail: at least an order of
    // magnitude apart (the paper has two orders at full scale).
    let frequent = ["Radix", "EM3D(write)", "Sample"]
        .iter()
        .map(|n| interval(n))
        .fold(0.0f64, f64::max);
    let infrequent = ["NOW-sort", "Murphi"]
        .iter()
        .map(|n| interval(n))
        .fold(f64::MAX, f64::min);
    assert!(
        infrequent > 4.0 * frequent,
        "spread too small: frequent ≤ {frequent:.1}us, infrequent ≥ {infrequent:.1}us"
    );
}

#[test]
fn barriers_are_used_by_the_bulk_synchronous_apps() {
    let outs = run_all(8);
    for name in ["EM3D(write)", "Radix", "Barnes"] {
        assert!(
            outs[name].stats.per_proc.iter().all(|c| c.barriers >= 2),
            "{name} should synchronize with barriers"
        );
    }
}
