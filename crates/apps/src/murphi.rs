//! Parallel Murphi — distributed explicit-state protocol verification
//! (paper §4.1, Table 3 row 7; Stern & Dill's parallel Murphi).
//!
//! The exponential space of reachable protocol states is explored in
//! parallel: a hash function assigns each state an owning processor; newly
//! discovered states are sent to their owner as one-way Active Messages
//! carrying the state vector (bulk payload — Table 4 shows Murphi at
//! 50.0% bulk). Each processor keeps a work queue and a hash table of
//! seen states, and validates an invariant on every expansion.
//!
//! The verified model is a directory-based MSI cache-coherence protocol
//! with `C` caches (the paper verified an SCI protocol configuration):
//! caches spontaneously issue GetS/GetM requests, the directory serves one
//! pending request at a time (the interleaving is the nondeterminism), and
//! shared lines may be silently evicted. The checked invariant is
//! coherence: at most one cache in M, and never M alongside a non-I peer.

use std::collections::{BTreeSet, VecDeque};

use nowlab_core::{RunOutcome, RunSpec, SweepableApp};
use nowlab_splitc::Payload;
use nowlab_splitc::{SimDelta, SimTime};

use crate::common::{end_measured_region, execute, mix64, start_measured_region, DegradePolicy};

/// CPU cost of expanding a state (hashing + rule evaluation).
const C_EXPAND: SimDelta = SimDelta::from_nanos(500_000);
/// CPU cost per generated successor.
const C_SUCC: SimDelta = SimDelta::from_nanos(25_000);
/// Wire size of a Murphi state vector (bytes).
const STATE_BYTES: u32 = 40;

/// Cache states.
const I: u32 = 0;
const S: u32 = 1;
const M: u32 = 2;
/// Pending-request kinds.
const NONE: u32 = 0;
const GETS: u32 = 1;
const GETM: u32 = 2;

/// Parameters of the verification run.
#[derive(Clone, Copy, Debug)]
pub struct MurphiParams {
    /// Number of caches in the MSI model (state space grows
    /// exponentially: 3 caches ≈ 10² states, 6 caches ≈ 10⁴·⁵).
    pub caches: u32,
}

impl MurphiParams {
    /// Default benchmark size.
    pub fn benchmark() -> Self {
        MurphiParams { caches: 6 }
    }

    /// A reduced size for tests.
    pub fn small() -> Self {
        MurphiParams { caches: 3 }
    }
}

/// A protocol state: 4 bits per cache (2 state + 2 pending).
fn cache_state(s: u32, i: u32) -> u32 {
    (s >> (4 * i)) & 0x3
}
fn cache_pending(s: u32, i: u32) -> u32 {
    (s >> (4 * i + 2)) & 0x3
}
fn with_cache(s: u32, i: u32, st: u32, pend: u32) -> u32 {
    (s & !(0xF << (4 * i))) | ((st | (pend << 2)) << (4 * i))
}

/// The coherence invariant: at most one M, and M implies all others I.
pub fn invariant_holds(s: u32, caches: u32) -> bool {
    let m_count = (0..caches).filter(|&i| cache_state(s, i) == M).count();
    if m_count > 1 {
        return false;
    }
    if m_count == 1 {
        return (0..caches).all(|i| cache_state(s, i) == M || cache_state(s, i) == I);
    }
    true
}

/// All successor states of `s` under the protocol rules.
pub fn successors(s: u32, caches: u32) -> Vec<u32> {
    let mut out = Vec::new();
    for i in 0..caches {
        let st = cache_state(s, i);
        let pend = cache_pending(s, i);
        // Rule 1: issue GetS from I.
        if pend == NONE && st == I {
            out.push(with_cache(s, i, st, GETS));
        }
        // Rule 2: issue GetM unless already M.
        if pend == NONE && st != M {
            out.push(with_cache(s, i, st, GETM));
        }
        // Rule 3: directory serves GetS — downgrade any M holder.
        if pend == GETS {
            let mut t = s;
            for j in 0..caches {
                if cache_state(t, j) == M {
                    t = with_cache(t, j, S, cache_pending(t, j));
                }
            }
            out.push(with_cache(t, i, S, NONE));
        }
        // Rule 4: directory serves GetM — invalidate all others.
        if pend == GETM {
            let mut t = s;
            for j in 0..caches {
                if j != i {
                    t = with_cache(t, j, I, cache_pending(t, j));
                }
            }
            out.push(with_cache(t, i, M, NONE));
        }
        // Rule 5: silent eviction of a shared line.
        if pend == NONE && st == S {
            out.push(with_cache(s, i, I, NONE));
        }
    }
    out
}

/// A pluggable protocol model for the verifier.
///
/// The paper verified an SCI coherence protocol; the default here is the
/// directory [MSI model](Model::Msi). [`Model::Filter`] is Peterson's
/// N-process filter lock — a second classic Murphi target exercising the
/// same exploration machinery with a different state shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Model {
    /// Directory-based MSI coherence with `caches` caches.
    Msi {
        /// Number of caches (state space grows exponentially).
        caches: u32,
    },
    /// Peterson's filter mutual-exclusion lock with `procs` processes.
    Filter {
        /// Number of competing processes (2..=7).
        procs: u32,
    },
}

impl Model {
    /// The initial state.
    pub fn initial(self) -> u64 {
        0
    }

    /// Short model name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Model::Msi { .. } => "msi",
            Model::Filter { .. } => "filter",
        }
    }

    /// All successor states of `s`.
    pub fn successors(self, s: u64) -> Vec<u64> {
        match self {
            Model::Msi { caches } => successors(s as u32, caches)
                .into_iter()
                .map(u64::from)
                .collect(),
            Model::Filter { procs } => filter_successors(s, procs),
        }
    }

    /// The model's safety invariant.
    pub fn invariant(self, s: u64) -> bool {
        match self {
            Model::Msi { caches } => invariant_holds(s as u32, caches),
            Model::Filter { procs } => filter_invariant(s, procs),
        }
    }
}

// ---- Peterson's filter lock ------------------------------------------
//
// Encoding: process i's level (0 = non-critical, 1..N-1 = filter levels,
// N = critical section) in bits [3i, 3i+3); `last[l]` for l in 1..N-1 in
// bits [3N + 3(l-1), ..). Each Murphi rule is one atomic step.

fn f_level(s: u64, i: u32) -> u64 {
    (s >> (3 * i)) & 0x7
}

fn f_with_level(s: u64, i: u32, v: u64) -> u64 {
    (s & !(0x7 << (3 * i))) | (v << (3 * i))
}

fn f_last(s: u64, n: u32, l: u64) -> u64 {
    (s >> (3 * n + 3 * (l as u32 - 1))) & 0x7
}

fn f_with_last(s: u64, n: u32, l: u64, who: u64) -> u64 {
    let shift = 3 * n + 3 * (l as u32 - 1);
    (s & !(0x7 << shift)) | (who << shift)
}

/// May process `i`, waiting at level `l`, proceed past it?
fn f_may_pass(s: u64, n: u32, i: u32, l: u64) -> bool {
    f_last(s, n, l) != i as u64 || (0..n).all(|k| k == i || f_level(s, k) < l)
}

fn filter_successors(s: u64, n: u32) -> Vec<u64> {
    let cs = n as u64; // level value meaning "in the critical section"
    let mut out = Vec::new();
    for i in 0..n {
        let li = f_level(s, i);
        if li == 0 {
            // Enter the filter at level 1.
            out.push(f_with_last(f_with_level(s, i, 1), n, 1, i as u64));
        } else if li < cs {
            if f_may_pass(s, n, i, li) {
                if li == cs - 1 {
                    // Past the last filter level: enter the CS.
                    out.push(f_with_level(s, i, cs));
                } else {
                    let next = li + 1;
                    out.push(f_with_last(f_with_level(s, i, next), n, next, i as u64));
                }
            }
        } else {
            // Leave the critical section.
            out.push(f_with_level(s, i, 0));
        }
    }
    out
}

/// Mutual exclusion: at most one process in the critical section.
fn filter_invariant(s: u64, n: u32) -> bool {
    (0..n).filter(|&i| f_level(s, i) == n as u64).count() <= 1
}

/// Sequential reference: full BFS; returns (state count, hash sum).
pub fn sequential_explore(params: &MurphiParams) -> (u64, u64) {
    sequential_explore_model(Model::Msi {
        caches: params.caches,
    })
}

/// Sequential BFS over any [`Model`]; returns (state count, hash sum).
pub fn sequential_explore_model(model: Model) -> (u64, u64) {
    let mut visited = BTreeSet::new();
    let mut queue = VecDeque::from([model.initial()]);
    let mut hash_sum = 0u64;
    while let Some(s) = queue.pop_front() {
        if !visited.insert(s) {
            continue;
        }
        assert!(model.invariant(s), "protocol bug at {s:016x}");
        hash_sum = hash_sum.wrapping_add(mix64(s));
        for t in model.successors(s) {
            if !visited.contains(&t) {
                queue.push_back(t);
            }
        }
    }
    (visited.len() as u64, hash_sum)
}

/// The parallel Murphi application.
#[derive(Clone, Debug)]
pub struct Murphi {
    model: Model,
}

impl Murphi {
    /// Creates the verifier over the default MSI model.
    pub fn new(params: MurphiParams) -> Self {
        Murphi {
            model: Model::Msi {
                caches: params.caches,
            },
        }
    }

    /// Creates the verifier over an arbitrary [`Model`].
    pub fn with_model(model: Model) -> Self {
        Murphi { model }
    }
}

impl SweepableApp for Murphi {
    fn name(&self) -> &str {
        "Murphi"
    }

    fn run(&self, spec: &RunSpec) -> RunOutcome {
        let model = self.model;
        execute(
            spec,
            DegradePolicy::Abort,
            |_| {},
            move |ctx| murphi_body(ctx, model),
        )
    }
}

async fn murphi_body(ctx: nowlab_splitc::Ctx, model: Model) -> u64 {
    let p = ctx.procs();
    let me = ctx.me();
    let owner = |s: u64| (mix64(s) % p as u64) as usize;

    let mb = ctx.alloc_mailbox();
    ctx.barrier().await;
    start_measured_region(&ctx).await;

    let mut visited: BTreeSet<u64> = BTreeSet::new();
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut hash_sum = 0u64;
    let mut sent = 0u64;
    let mut received = 0u64;
    if owner(model.initial()) == me {
        queue.push_back(model.initial());
    }

    loop {
        // Work until locally idle.
        loop {
            while let Some(mail) = ctx.try_recv_mail(mb) {
                received += 1;
                queue.push_back(mail.args[0]);
            }
            let Some(s) = queue.pop_front() else { break };
            if !visited.insert(s) {
                continue;
            }
            ctx.compute(C_EXPAND).await;
            assert!(model.invariant(s), "protocol bug at {s:016x}");
            hash_sum = hash_sum.wrapping_add(mix64(s));
            for t in model.successors(s) {
                ctx.compute(C_SUCC).await;
                let o = owner(t);
                if o == me {
                    queue.push_back(t);
                } else {
                    sent += 1;
                    ctx.send_mail(o, mb, [t, 0, 0], Payload::Synthetic(STATE_BYTES))
                        .await;
                }
            }
        }
        // Distributed termination: globally, everything sent has been
        // received, twice in a row, with an empty mailbox.
        let gs = ctx.allreduce_sum(sent).await;
        let gr = ctx.allreduce_sum(received).await;
        if gs == gr {
            let gs2 = ctx.allreduce_sum(sent).await;
            let gr2 = ctx.allreduce_sum(received).await;
            if gs2 == gs && gr2 == gr && ctx.mail_len(mb) == 0 {
                break;
            }
        } else {
            // Let in-flight states land before re-checking.
            let deadline: SimTime = ctx.now() + SimDelta::from_micros(100.0);
            ctx.idle_until(deadline).await;
        }
    }

    end_measured_region(&ctx).await;

    // Contribution: local hash sum + state count in the high bits' flavor
    // (summed commutatively across processors by the harness).
    hash_sum.wrapping_add(visited.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_model_has_a_nontrivial_state_space() {
        let (n3, _) = sequential_explore(&MurphiParams { caches: 3 });
        let (n4, _) = sequential_explore(&MurphiParams { caches: 4 });
        assert!(n3 > 50, "3 caches: {n3}");
        assert!(n4 > 4 * n3, "state space must grow exponentially: {n4}");
    }

    #[test]
    fn parallel_exploration_matches_sequential() {
        let params = MurphiParams::small();
        let (count, hash_sum) = sequential_explore(&params);
        let out = Murphi::new(params).run(&RunSpec::new(4));
        assert!(out.completed);
        assert_eq!(out.check, hash_sum.wrapping_add(count));
    }

    #[test]
    fn parallel_matches_on_odd_procs_too() {
        let params = MurphiParams::small();
        let (count, hash_sum) = sequential_explore(&params);
        let out = Murphi::new(params).run(&RunSpec::new(3));
        assert_eq!(out.check, hash_sum.wrapping_add(count));
    }

    #[test]
    fn state_sends_are_bulk() {
        let out = Murphi::new(MurphiParams::small()).run(&RunSpec::new(4));
        assert!(
            out.stats.pct_bulk() > 20.0,
            "murphi state sends are bulk: {}",
            out.stats.pct_bulk()
        );
        assert!(out.stats.pct_reads() < 5.0);
    }

    #[test]
    fn successors_preserve_the_invariant_from_reachable_states() {
        // BFS over the reachable space: every successor of a reachable
        // state satisfies the invariant (soundness of the protocol), and
        // no successor equals its parent (no stutter rules).
        let caches = 4;
        let mut seen = std::collections::HashSet::new();
        let mut q = std::collections::VecDeque::from([0u32]);
        while let Some(s) = q.pop_front() {
            if !seen.insert(s) {
                continue;
            }
            for t in successors(s, caches) {
                assert_ne!(t, s, "stutter transition at {s:08x}");
                assert!(invariant_holds(t, caches), "bug reachable from {s:08x}");
                q.push_back(t);
            }
        }
        assert!(
            seen.len() > 300,
            "reachable space too small: {}",
            seen.len()
        );
    }

    #[test]
    fn state_encoding_round_trips() {
        let mut s = 0u32;
        s = with_cache(s, 0, M, NONE);
        s = with_cache(s, 2, S, GETM);
        assert_eq!(cache_state(s, 0), M);
        assert_eq!(cache_pending(s, 0), NONE);
        assert_eq!(cache_state(s, 2), S);
        assert_eq!(cache_pending(s, 2), GETM);
        assert_eq!(cache_state(s, 1), I);
        // Overwriting a cache does not disturb its neighbors.
        s = with_cache(s, 1, S, GETS);
        assert_eq!(cache_state(s, 0), M);
        assert_eq!(cache_state(s, 2), S);
    }

    #[test]
    fn filter_lock_guarantees_mutual_exclusion() {
        // BFS of Peterson's filter lock: the invariant holds everywhere,
        // the space is nontrivial, and the CS is actually reachable.
        for n in [2u32, 3, 4] {
            let model = Model::Filter { procs: n };
            let (count, _) = sequential_explore_model(model);
            assert!(count > 4, "n={n}: only {count} states");
            // Reachability of the critical section.
            let mut seen = std::collections::HashSet::new();
            let mut q = std::collections::VecDeque::from([model.initial()]);
            let mut cs_reached = false;
            while let Some(s) = q.pop_front() {
                if !seen.insert(s) {
                    continue;
                }
                if (0..n).any(|i| f_level(s, i) == n as u64) {
                    cs_reached = true;
                }
                for t in model.successors(s) {
                    q.push_back(t);
                }
            }
            assert!(cs_reached, "n={n}: nobody ever entered the CS");
        }
    }

    #[test]
    fn filter_model_runs_in_parallel_and_matches_sequential() {
        let model = Model::Filter { procs: 3 };
        let (count, hash_sum) = sequential_explore_model(model);
        let out = Murphi::with_model(model).run(&RunSpec::new(4));
        assert!(out.completed);
        assert_eq!(out.check, hash_sum.wrapping_add(count));
    }

    #[test]
    fn filter_invariant_rejects_two_in_cs() {
        let n = 3;
        let mut s = 0u64;
        s = f_with_level(s, 0, n as u64);
        s = f_with_level(s, 1, n as u64);
        assert!(!filter_invariant(s, n));
        assert!(filter_invariant(f_with_level(0, 0, n as u64), n));
    }

    #[test]
    fn invariant_catches_an_injected_bug() {
        // Two caches in M simultaneously must be flagged.
        let bad = with_cache(with_cache(0, 0, M, NONE), 1, M, NONE);
        assert!(!invariant_holds(bad, 3));
        // M alongside S is also incoherent.
        let bad2 = with_cache(with_cache(0, 0, M, NONE), 1, S, NONE);
        assert!(!invariant_holds(bad2, 3));
        assert!(invariant_holds(with_cache(0, 0, M, NONE), 3));
    }
}
