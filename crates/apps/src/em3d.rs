//! EM3D — electromagnetic wave propagation on an irregular bipartite graph
//! (paper §4.1, Table 3 rows 2–3).
//!
//! The graph alternates E-field and H-field nodes; each time step updates
//! every E node from its H neighbors and vice versa. Two complementary
//! versions expose the read/write axis of the study:
//!
//! * **write-based** — owners *push* values needed remotely into ghost
//!   slots on consumer processors (one pipelined write per *boundary node*
//!   per consumer, deduplicated), then a barrier; the classic
//!   bulk-synchronous pattern.
//! * **read-based** — consumers *pull* every remote neighbor value with a
//!   blocking read per edge (no deduplication): the paper's worst-case
//!   latency application, and the only one its simple latency model fits.
//!
//! Node values are 64-bit words updated with wrapping-integer mixing, so
//! the final checksum is exactly reproducible (and verified against a
//! sequential reference in the tests).
//!
//! Each full step ends with a convergence reduce over the collectives
//! layer ([`nowlab_coll`] via `Ctx::coll_allreduce_sum`): the processors
//! sum how many node values changed and stop early if the field has
//! globally fixed. The wrapping update never literally fixes at these
//! sizes, so the step count (and the sequential reference) is unchanged —
//! the reduce contributes the per-step global synchronization cost the
//! paper's bulk-synchronous loop pays.

use std::collections::BTreeMap;
use std::rc::Rc;

use nowlab_core::{RunOutcome, RunSpec, SweepableApp};
use nowlab_splitc::SimDelta;
use nowlab_splitc::{Ctx, GlobalPtr};

use crate::common::{
    block_owner, block_range, end_measured_region, execute, mix64, start_measured_region,
    DegradePolicy,
};

/// Per-edge compute cost of the field update.
const C_UPDATE: SimDelta = SimDelta::from_nanos(120);

/// Parameters of the EM3D kernel.
#[derive(Clone, Copy, Debug)]
pub struct Em3dParams {
    /// Total nodes (half E, half H).
    pub nodes: usize,
    /// Out-degree of every node.
    pub degree: usize,
    /// Percentage (0-100) of edges whose target is remote.
    pub pct_remote: u32,
    /// Time steps.
    pub steps: usize,
}

impl Em3dParams {
    /// Default benchmark size (paper: 80K nodes, degree 20, 40% remote,
    /// 100 steps; scaled per DESIGN.md).
    pub fn benchmark() -> Self {
        Em3dParams {
            nodes: 8_192,
            degree: 6,
            pct_remote: 40,
            steps: 8,
        }
    }

    /// A reduced size for tests.
    pub fn small() -> Self {
        Em3dParams {
            nodes: 512,
            degree: 4,
            pct_remote: 40,
            steps: 3,
        }
    }

    /// Scales node count by `f`.
    pub fn scaled(mut self, f: f64) -> Self {
        self.nodes = ((self.nodes as f64 * f) as usize).max(256);
        self
    }
}

/// The deterministic edge function: edge `j` of node `g` (within its side's
/// node space of `half` nodes, `p` processors) targets this node of the
/// opposite side.
///
/// Remote targets land on a neighboring processor (the paper's Figure 4b/4c
/// locality swath).
fn edge_target(seed: u64, g: usize, j: usize, half: usize, p: usize, pct_remote: u32) -> usize {
    let h = mix64(seed ^ ((g as u64) << 20) ^ j as u64);
    let my_proc = block_owner(half, p, g);
    let remote = (h % 100) < pct_remote as u64 && p > 1;
    let target_proc = if remote {
        // ±1 neighbor, wrapping.
        if (h >> 8) & 1 == 0 {
            (my_proc + 1) % p
        } else {
            (my_proc + p - 1) % p
        }
    } else {
        my_proc
    };
    let block = block_range(half, p, target_proc);
    block.start + (mix64(h) as usize % block.len())
}

/// The wrapping-integer "field" update: deterministic and associative
/// enough that any arrival order yields the same result.
fn update_value(old: u64, neighbor_sum: u64) -> u64 {
    old ^ neighbor_sum
        .rotate_left(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Sequential reference implementation (tests compare checksums).
pub fn sequential_checksum(params: &Em3dParams, seed: u64, p: usize) -> u64 {
    let half = params.nodes / 2;
    let mut e: Vec<u64> = (0..half).map(|g| mix64(seed ^ g as u64)).collect();
    let mut h: Vec<u64> = (0..half)
        .map(|g| mix64(seed ^ (g as u64 + half as u64)))
        .collect();
    for _ in 0..params.steps {
        let new_e: Vec<u64> = (0..half)
            .map(|g| {
                let sum = (0..params.degree)
                    .map(|j| h[edge_target(seed, g, j, half, p, params.pct_remote)])
                    .fold(0u64, u64::wrapping_add);
                update_value(e[g], sum)
            })
            .collect();
        e = new_e;
        let new_h: Vec<u64> = (0..half)
            .map(|g| {
                let sum = (0..params.degree)
                    .map(|j| e[edge_target(seed, g, j + params.degree, half, p, params.pct_remote)])
                    .fold(0u64, u64::wrapping_add);
                update_value(h[g], sum)
            })
            .collect();
        h = new_h;
    }
    e.iter()
        .chain(h.iter())
        .fold(0u64, |a, &v| a.wrapping_add(v))
}

async fn em3d_body(ctx: Ctx, params: Em3dParams, seed: u64, read_based: bool) -> u64 {
    let p = ctx.procs();
    let me = ctx.me();
    let half = params.nodes / 2;
    let my_block = block_range(half, p, me);
    let n_local = my_block.len();
    let deg = params.degree;

    // Regions: current values of my E and H nodes, plus ghost slots for
    // the write-based version.
    let e_vals = ctx.alloc_region(n_local.max(1));
    let h_vals = ctx.alloc_region(n_local.max(1));

    // Edge lists of my nodes. Edge j of E node g targets an H node; edge
    // j+degree of H node g targets an E node (disjoint hash streams).
    let my_e_edges: Vec<Vec<usize>> = my_block
        .clone()
        .map(|g| {
            (0..deg)
                .map(|j| edge_target(seed, g, j, half, p, params.pct_remote))
                .collect()
        })
        .collect();
    let my_h_edges: Vec<Vec<usize>> = my_block
        .clone()
        .map(|g| {
            (0..deg)
                .map(|j| edge_target(seed, g, j + deg, half, p, params.pct_remote))
                .collect()
        })
        .collect();

    // Boundary sets for the write-based version. As the edge function is
    // shared knowledge, producer and consumer independently compute the
    // same sorted boundary list, so ghost slot indices agree without
    // negotiation. `incoming[q]` = sorted remote node ids (owned by q)
    // that *my* nodes reference; `outgoing[c]` = sorted node ids of mine
    // that processor c references.
    #[allow(unused_assignments)]
    let mut ghost_e = 0;
    #[allow(unused_assignments)]
    let mut ghost_h = 0;
    let (e_ghost_region, h_ghost_region, in_h, in_e, out_h, out_e) = {
        // Remote H nodes my E edges read.
        let mut in_h: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for edges in &my_e_edges {
            for &t in edges {
                let owner = block_owner(half, p, t);
                if owner != me {
                    in_h.entry(owner).or_default().push(t);
                }
            }
        }
        let mut in_e: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for edges in &my_h_edges {
            for &t in edges {
                let owner = block_owner(half, p, t);
                if owner != me {
                    in_e.entry(owner).or_default().push(t);
                }
            }
        }
        for v in in_h.values_mut().chain(in_e.values_mut()) {
            v.sort_unstable();
            v.dedup();
        }
        // Which of my H nodes does consumer c reference? Recompute c's E
        // edges (hash-deterministic) and filter to my block.
        let mut out_h: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut out_e: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        if p > 1 {
            for c in [(me + 1) % p, (me + p - 1) % p] {
                if c == me {
                    continue;
                }
                let mut hs = Vec::new();
                let mut es = Vec::new();
                for g in block_range(half, p, c) {
                    for j in 0..deg {
                        let t = edge_target(seed, g, j, half, p, params.pct_remote);
                        if block_owner(half, p, t) == me {
                            hs.push(t);
                        }
                        let t = edge_target(seed, g, j + deg, half, p, params.pct_remote);
                        if block_owner(half, p, t) == me {
                            es.push(t);
                        }
                    }
                }
                hs.sort_unstable();
                hs.dedup();
                es.sort_unstable();
                es.dedup();
                if !hs.is_empty() {
                    out_h.insert(c, hs);
                }
                if !es.is_empty() {
                    out_e.insert(c, es);
                }
            }
        }
        ghost_h = in_h.values().map(Vec::len).sum::<usize>();
        ghost_e = in_e.values().map(Vec::len).sum::<usize>();
        let hg = ctx.alloc_region(ghost_h.max(1));
        let eg = ctx.alloc_region(ghost_e.max(1));
        (eg, hg, in_h, in_e, out_h, out_e)
    };
    let _ = (ghost_e, ghost_h);

    // Ghost index maps: node id -> slot in my ghost region (sorted order,
    // concatenated per source processor in ascending processor order).
    let ghost_index = |sets: &BTreeMap<usize, Vec<usize>>| -> BTreeMap<usize, usize> {
        let mut map = BTreeMap::new();
        let mut next = 0;
        for ids in sets.values() {
            for &id in ids {
                map.insert(id, next);
                next += 1;
            }
        }
        map
    };
    let h_ghost_idx = ghost_index(&in_h);
    let e_ghost_idx = ghost_index(&in_e);
    // The producer needs the consumer's slot numbering: recompute the
    // consumer's full incoming map the same way — once per consumer, not
    // once per pushed node (the per-node form made push-plan setup
    // quadratic in the boundary size and dominated sweep setup time).
    let consumer_slots = |consumer: usize, for_h: bool| -> BTreeMap<usize, usize> {
        let consumer_block = block_range(half, p, consumer);
        // Rebuild consumer's incoming sets in ascending source-proc order.
        let mut sets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for g in consumer_block {
            for j in 0..deg {
                let jj = if for_h { j } else { j + deg };
                let t = edge_target(seed, g, jj, half, p, params.pct_remote);
                let owner = block_owner(half, p, t);
                if owner != consumer {
                    sets.entry(owner).or_default().push(t);
                }
            }
        }
        for v in sets.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        let mut slots = BTreeMap::new();
        let mut next = 0;
        for ids in sets.values() {
            for &id in ids {
                slots.insert(id, next);
                next += 1;
            }
        }
        slots
    };
    // Precompute producer-side push plans: (consumer, my local node index,
    // consumer ghost slot).
    let mut push_h: Vec<(usize, usize, usize)> = Vec::new();
    for (&c, ids) in &out_h {
        let slots = consumer_slots(c, true);
        for &id in ids {
            push_h.push((c, id - my_block.start, slots[&id]));
        }
    }
    let mut push_e: Vec<(usize, usize, usize)> = Vec::new();
    for (&c, ids) in &out_e {
        let slots = consumer_slots(c, false);
        for &id in ids {
            push_e.push((c, id - my_block.start, slots[&id]));
        }
    }

    // Resolve every edge endpoint once: the step loops below run many
    // times over the same graph, and per-edge owner arithmetic plus
    // ghost-map lookups were the hottest lines of the whole sweep under
    // the profiler. Resolution is pure host-side memoization — the loads
    // and reads it produces are exactly the ones the unresolved loops
    // performed.
    let resolve_write = |edges: &[Vec<usize>],
                         src_region: usize,
                         ghost_region: usize,
                         ghost_idx: &BTreeMap<usize, usize>|
     -> Vec<Vec<(usize, usize)>> {
        edges
            .iter()
            .map(|node_edges| {
                node_edges
                    .iter()
                    .map(|&t| {
                        if block_owner(half, p, t) == me {
                            (src_region, t - my_block.start)
                        } else {
                            (ghost_region, ghost_idx[&t])
                        }
                    })
                    .collect()
            })
            .collect()
    };
    let resolve_read = |edges: &[Vec<usize>], src_region: usize| -> Vec<Vec<ReadSrc>> {
        edges
            .iter()
            .map(|node_edges| {
                node_edges
                    .iter()
                    .map(|&t| {
                        let owner = block_owner(half, p, t);
                        let off = t - block_range(half, p, owner).start;
                        if owner == me {
                            ReadSrc::Local(src_region, off)
                        } else {
                            ReadSrc::Remote(GlobalPtr::new(owner, src_region, off))
                        }
                    })
                    .collect()
            })
            .collect()
    };
    let (res_e_write, res_h_write) = if read_based {
        (Vec::new(), Vec::new())
    } else {
        (
            resolve_write(&my_e_edges, h_vals, h_ghost_region, &h_ghost_idx),
            resolve_write(&my_h_edges, e_vals, e_ghost_region, &e_ghost_idx),
        )
    };
    let (res_e_read, res_h_read) = if read_based {
        (
            resolve_read(&my_e_edges, h_vals),
            resolve_read(&my_h_edges, e_vals),
        )
    } else {
        (Vec::new(), Vec::new())
    };

    // Initial values.
    ctx.with_mem(|m| {
        for (i, g) in my_block.clone().enumerate() {
            m.store(e_vals, i, mix64(seed ^ g as u64));
            m.store(h_vals, i, mix64(seed ^ (g as u64 + half as u64)));
        }
    });

    start_measured_region(&ctx).await;

    for _step in 0..params.steps {
        // ---- Half-step 1: update E from H.
        ctx.phase("e-step");
        let changed_e = if read_based {
            em3d_update_read(&ctx, &res_e_read, e_vals).await
        } else {
            // Producers push current H values into consumers' ghost slots.
            for &(c, local, slot) in &push_h {
                let v = ctx.load_local(h_vals, local);
                ctx.write(GlobalPtr::new(c, h_ghost_region, slot), v).await;
            }
            ctx.sync().await;
            ctx.barrier().await;
            em3d_update_write(&ctx, &res_e_write, e_vals).await
        };
        ctx.barrier().await;

        // ---- Half-step 2: update H from E.
        ctx.phase("h-step");
        let changed_h = if read_based {
            em3d_update_read(&ctx, &res_h_read, h_vals).await
        } else {
            for &(c, local, slot) in &push_e {
                let v = ctx.load_local(e_vals, local);
                ctx.write(GlobalPtr::new(c, e_ghost_region, slot), v).await;
            }
            ctx.sync().await;
            ctx.barrier().await;
            em3d_update_write(&ctx, &res_h_write, h_vals).await
        };
        ctx.barrier().await;

        // ---- Convergence reduce (collectives layer): stop once no node
        // anywhere changed this step. Deterministic — the count is a pure
        // function of the field values, never of message timing.
        if ctx
            .coll_allreduce_sum(changed_e.wrapping_add(changed_h))
            .await
            == 0
        {
            break;
        }
    }

    end_measured_region(&ctx).await;

    let local_sum = ctx.with_mem(|m| {
        let mut s = 0u64;
        for i in 0..n_local {
            s = s
                .wrapping_add(m.load(e_vals, i))
                .wrapping_add(m.load(h_vals, i));
        }
        s
    });
    ctx.barrier().await;
    local_sum
}

/// One edge endpoint of the read-based variant, resolved at setup time.
#[derive(Clone, Copy)]
enum ReadSrc {
    /// `(region, offset)` in my own memory.
    Local(usize, usize),
    /// A remote value fetched with a blocking read.
    Remote(GlobalPtr),
}

/// Read-based half-step: pull every remote neighbor value with a blocking
/// read, then update. Edge endpoints were resolved to concrete addresses
/// once at setup — the step loop issues exactly the same reads in the
/// same order, without per-edge owner arithmetic. Returns how many node
/// values changed (the convergence reduce's local contribution).
async fn em3d_update_read(ctx: &Ctx, resolved: &[Vec<ReadSrc>], dst_region: usize) -> u64 {
    let mut new_vals = Vec::with_capacity(resolved.len());
    for (i, node_edges) in resolved.iter().enumerate() {
        let mut sum = 0u64;
        for &src in node_edges {
            let v = match src {
                ReadSrc::Local(region, off) => ctx.load_local(region, off),
                ReadSrc::Remote(ptr) => ctx.read(ptr).await,
            };
            sum = sum.wrapping_add(v);
        }
        ctx.compute(C_UPDATE * node_edges.len() as u64).await;
        new_vals.push(update_value(ctx.load_local(dst_region, i), sum));
    }
    ctx.with_mem(|m| {
        let mut changed = 0u64;
        for (i, v) in new_vals.into_iter().enumerate() {
            changed += u64::from(m.load(dst_region, i) != v);
            m.store(dst_region, i, v);
        }
        changed
    })
}

/// Write-based half-step: all remote values are already in the ghost
/// region; purely local update. Each edge was resolved at setup to the
/// `(region, offset)` it loads from (own block or ghost slot), replacing
/// the per-edge ghost-map lookup that dominated the app body under the
/// profiler. Returns how many node values changed.
async fn em3d_update_write(ctx: &Ctx, resolved: &[Vec<(usize, usize)>], dst_region: usize) -> u64 {
    let mut new_vals = Vec::with_capacity(resolved.len());
    for (i, node_edges) in resolved.iter().enumerate() {
        let sum = ctx.with_mem(|m| {
            node_edges.iter().fold(0u64, |a, &(region, off)| {
                a.wrapping_add(m.load(region, off))
            })
        });
        ctx.compute(C_UPDATE * node_edges.len() as u64).await;
        new_vals.push(update_value(ctx.load_local(dst_region, i), sum));
    }
    ctx.with_mem(|m| {
        let mut changed = 0u64;
        for (i, v) in new_vals.into_iter().enumerate() {
            changed += u64::from(m.load(dst_region, i) != v);
            m.store(dst_region, i, v);
        }
        changed
    })
}

/// EM3D, write-based variant.
#[derive(Clone, Debug)]
pub struct Em3dWrite {
    params: Em3dParams,
}

impl Em3dWrite {
    /// Creates the app with the given parameters.
    pub fn new(params: Em3dParams) -> Self {
        Em3dWrite { params }
    }
}

impl SweepableApp for Em3dWrite {
    fn name(&self) -> &str {
        "EM3D(write)"
    }

    fn run(&self, spec: &RunSpec) -> RunOutcome {
        let params = self.params;
        let seed = spec.seed;
        execute(
            spec,
            DegradePolicy::Abort,
            |_| {},
            move |ctx| em3d_body(ctx, params, seed, false),
        )
    }
}

/// EM3D, read-based variant.
#[derive(Clone, Debug)]
pub struct Em3dRead {
    params: Em3dParams,
}

impl Em3dRead {
    /// Creates the app with the given parameters.
    pub fn new(params: Em3dParams) -> Self {
        Em3dRead { params }
    }
}

impl SweepableApp for Em3dRead {
    fn name(&self) -> &str {
        "EM3D(read)"
    }

    fn run(&self, spec: &RunSpec) -> RunOutcome {
        let params = self.params;
        let seed = spec.seed;
        execute(
            spec,
            DegradePolicy::Abort,
            |_| {},
            move |ctx| em3d_body(ctx, params, seed, true),
        )
    }
}

/// Keeps `Rc` available for app parameter sharing in callers.
#[allow(dead_code)]
type _Marker = Rc<()>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_targets_stay_in_range_and_local_or_adjacent() {
        let half = 4096;
        for p in [1usize, 3, 8, 32] {
            for g in (0..half).step_by(97) {
                for j in 0..6 {
                    let t = edge_target(11, g, j, half, p, 40);
                    assert!(t < half, "target out of range");
                    let src = crate::common::block_owner(half, p, g);
                    let dst = crate::common::block_owner(half, p, t);
                    let adjacent = dst == src || dst == (src + 1) % p || dst == (src + p - 1) % p;
                    assert!(adjacent, "edge crosses more than one block: {src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn zero_and_full_remote_fractions_are_honored() {
        let half = 2048;
        let p = 8;
        // 0%: all targets local.
        for g in (0..half).step_by(61) {
            let t = edge_target(5, g, 0, half, p, 0);
            assert_eq!(
                crate::common::block_owner(half, p, t),
                crate::common::block_owner(half, p, g)
            );
        }
        // 100%: all targets remote (for p > 1).
        let mut any_remote = 0;
        for g in (0..half).step_by(61) {
            let t = edge_target(5, g, 0, half, p, 100);
            if crate::common::block_owner(half, p, t) != crate::common::block_owner(half, p, g) {
                any_remote += 1;
            }
        }
        assert_eq!(any_remote, (0..half).step_by(61).count());
    }

    #[test]
    fn both_variants_match_the_sequential_reference() {
        let params = Em3dParams::small();
        let p = 4;
        let expect = sequential_checksum(&params, 9, p);
        let w = Em3dWrite::new(params).run(&RunSpec::new(p).with_seed(9));
        let r = Em3dRead::new(params).run(&RunSpec::new(p).with_seed(9));
        assert!(w.completed && r.completed);
        assert_eq!(w.check, expect, "write variant checksum");
        assert_eq!(r.check, expect, "read variant checksum");
    }

    #[test]
    fn read_variant_is_read_dominated_and_write_variant_is_not() {
        let params = Em3dParams::small();
        let w = Em3dWrite::new(params).run(&RunSpec::new(4));
        let r = Em3dRead::new(params).run(&RunSpec::new(4));
        assert!(r.stats.pct_reads() > 80.0, "read: {}", r.stats.pct_reads());
        assert!(w.stats.pct_reads() < 5.0, "write: {}", w.stats.pct_reads());
        // The read version sends more messages (no boundary deduplication).
        assert!(r.stats.total_sends() > w.stats.total_sends());
    }

    #[test]
    fn read_variant_is_latency_sensitive_write_variant_is_not() {
        use nowlab_core::{Axis, NetConfig};
        let params = Em3dParams::small();
        let knobs = Axis::Latency
            .knobs_for(&NetConfig::berkeley_now().machine, 55.0)
            .unwrap();
        let slow = NetConfig::berkeley_now().with_knobs(knobs);
        let w0 = Em3dWrite::new(params).run(&RunSpec::new(4));
        let w1 = Em3dWrite::new(params).run(&RunSpec::new(4).with_net(slow));
        let r0 = Em3dRead::new(params).run(&RunSpec::new(4));
        let r1 = Em3dRead::new(params).run(&RunSpec::new(4).with_net(slow));
        let w_slow = w1.runtime.as_secs_f64() / w0.runtime.as_secs_f64();
        let r_slow = r1.runtime.as_secs_f64() / r0.runtime.as_secs_f64();
        assert!(
            r_slow > 2.0 * w_slow,
            "read ({r_slow}) must be far more latency-sensitive than write ({w_slow})"
        );
    }

    #[test]
    fn single_processor_runs_without_communication() {
        let params = Em3dParams::small();
        let out = Em3dWrite::new(params).run(&RunSpec::new(1));
        assert!(out.completed);
        assert_eq!(out.check, sequential_checksum(&params, 1, 1));
    }
}
