//! Barnes — hierarchical N-body force calculation (paper §4.1, Table 3
//! row 5).
//!
//! A SPLASH-style Barnes-Hut step over a software-replicated spatial
//! oct-tree: cells are hashed over the processors; tree construction
//! accumulates each processor's mass moments into shared cells under
//! **blocking locks** (acquire, four remote read-modify-writes, release),
//! and the force phase walks the tree pulling remote cell moments through
//! a fixed-size software cache (bulk reads).
//!
//! The locks are the paper's key behavior: as overhead grows, lock hold
//! times grow with it, failed acquisitions skyrocket, and the program
//! livelocks — the paper reports Barnes never completes beyond `o≈13 µs`
//! on 16 nodes (Table 5's N/A entries). Runs here are guarded by the
//! sweep driver's event limit and reported the same way.
//!
//! All arithmetic is fixed-point, so cell moments are wrapping-integer
//! sums (commutative — checksums are independent of lock acquisition
//! order) and results are bit-identical at every LogGP setting and
//! processor count.

use std::collections::{BTreeMap, VecDeque};

use nowlab_core::{RunOutcome, RunSpec, SweepableApp};
use nowlab_splitc::SimDelta;
use nowlab_splitc::{Ctx, GlobalPtr};

use crate::common::{
    block_range, end_measured_region, execute, mix64, start_measured_region, DegradePolicy, FX_ONE,
};

/// Fixed-point bits (positions live in [0, 2^20)).
const FX_BITS: u32 = 20;
/// Softening term added to squared distances.
const EPS2: i128 = (FX_ONE as i128 * FX_ONE as i128) / 400;
/// Integration step (fixed-point fraction of FX_ONE).
const DT: i64 = FX_ONE / 64;
/// Opening criterion θ ≈ 0.7 as a ratio NUM/DEN.
const THETA_NUM: i128 = 7;
const THETA_DEN: i128 = 10;

/// Per-(body, level) cost of moment aggregation.
const C_AGG: SimDelta = SimDelta::from_nanos(800);
/// Per-interaction cost in the force walk.
const C_FORCE: SimDelta = SimDelta::from_nanos(1_800);
/// Per-body integration cost.
const C_BODY: SimDelta = SimDelta::from_nanos(3_000);
/// Initial retry backoff of the cell-lock spin (doubles per failure).
const LOCK_BACKOFF_INITIAL: SimDelta = SimDelta::from_micros_int(2);
/// Backoff ceiling of the cell-lock spin.
const LOCK_BACKOFF_MAX: SimDelta = SimDelta::from_micros_int(64);

/// Parameters of the Barnes-Hut benchmark.
#[derive(Clone, Copy, Debug)]
pub struct BarnesParams {
    /// Total bodies.
    pub bodies: usize,
    /// Time steps.
    pub steps: usize,
    /// Oct-tree depth (levels 0..=depth; cells = (8^(depth+1)-1)/7).
    pub depth: u32,
    /// Software cell-cache capacity per processor.
    pub cache_capacity: usize,
}

impl BarnesParams {
    /// Default benchmark size (paper: 1M bodies; scaled per DESIGN.md).
    pub fn benchmark() -> Self {
        BarnesParams {
            bodies: 2_048,
            steps: 2,
            depth: 3,
            cache_capacity: 96,
        }
    }

    /// A reduced size for tests.
    pub fn small() -> Self {
        BarnesParams {
            bodies: 192,
            steps: 1,
            depth: 2,
            cache_capacity: 24,
        }
    }

    /// Scales the body count by `f`.
    pub fn scaled(mut self, f: f64) -> Self {
        self.bodies = ((self.bodies as f64 * f) as usize).max(128);
        self
    }

    /// Total tree cells over all levels.
    pub fn total_cells(&self) -> usize {
        ((8usize.pow(self.depth + 1)) - 1) / 7
    }
}

/// First cell id of level `l`.
fn level_base(l: u32) -> usize {
    ((8usize.pow(l)) - 1) / 7
}

/// Cell id containing position (x,y,z) at level `l`.
fn cell_at(x: i64, y: i64, z: i64, l: u32) -> usize {
    if l == 0 {
        return 0;
    }
    let shift = FX_BITS - l;
    let side = 1usize << l;
    let (ix, iy, iz) = (
        (x >> shift) as usize,
        (y >> shift) as usize,
        (z >> shift) as usize,
    );
    level_base(l) + ix + iy * side + iz * side * side
}

/// The eight children of cell `c` at level `l`.
fn children(c: usize, l: u32) -> [usize; 8] {
    let side = 1usize << l;
    let local = c - level_base(l);
    let ix = local % side;
    let iy = (local / side) % side;
    let iz = local / (side * side);
    let cside = side * 2;
    let mut out = [0usize; 8];
    let mut k = 0;
    for dz in 0..2 {
        for dy in 0..2 {
            for dx in 0..2 {
                out[k] = level_base(l + 1)
                    + (2 * ix + dx)
                    + (2 * iy + dy) * cside
                    + (2 * iz + dz) * cside * cside;
                k += 1;
            }
        }
    }
    out
}

/// Geometric center of cell `c` at level `l` (fixed point).
fn cell_center(c: usize, l: u32) -> (i64, i64, i64) {
    let side = 1usize << l;
    let local = c - level_base(l);
    let ix = (local % side) as i64;
    let iy = ((local / side) % side) as i64;
    let iz = (local / (side * side)) as i64;
    let s = FX_ONE / side as i64;
    (ix * s + s / 2, iy * s + s / 2, iz * s + s / 2)
}

#[derive(Clone, Copy, Debug, Default)]
struct Body {
    x: i64,
    y: i64,
    z: i64,
    vx: i64,
    vy: i64,
    vz: i64,
}

fn initial_bodies(seed: u64, n: usize) -> Vec<Body> {
    (0..n)
        .map(|i| {
            let h1 = mix64(seed ^ (i as u64) << 1);
            let h2 = mix64(h1 ^ 0x5151);
            Body {
                x: (h1 % FX_ONE as u64) as i64,
                y: ((h1 >> 32) % FX_ONE as u64) as i64,
                z: (h2 % FX_ONE as u64) as i64,
                vx: 0,
                vy: 0,
                vz: 0,
            }
        })
        .collect()
}

/// One force evaluation against an accepted cell/mass point. All i128,
/// fully deterministic.
fn accumulate_force(b: &Body, mass: i64, mx: i64, my: i64, mz: i64, acc: &mut (i64, i64, i64)) {
    if mass == 0 {
        return;
    }
    // Center of mass (deterministic integer division).
    let cx = mx / mass;
    let cy = my / mass;
    let cz = mz / mass;
    let dx = (cx - b.x) as i128;
    let dy = (cy - b.y) as i128;
    let dz = (cz - b.z) as i128;
    let d2 = dx * dx + dy * dy + dz * dz + EPS2;
    let f = |d: i128| ((mass as i128 * d * FX_ONE as i128) / d2) as i64;
    acc.0 = acc.0.wrapping_add(f(dx));
    acc.1 = acc.1.wrapping_add(f(dy));
    acc.2 = acc.2.wrapping_add(f(dz));
}

/// Should the walk open (descend into) this cell? `s/d < θ` accepts.
fn must_open(b: &Body, level: u32, center: (i64, i64, i64)) -> bool {
    let s = (FX_ONE >> level) as i128;
    let dx = (center.0 - b.x) as i128;
    let dy = (center.1 - b.y) as i128;
    let dz = (center.2 - b.z) as i128;
    let d2 = dx * dx + dy * dy + dz * dz + 1;
    // open iff s/d > θ  ⇔  s²·DEN² > d²·NUM².
    s * s * THETA_DEN * THETA_DEN > d2 * THETA_NUM * THETA_NUM
}

/// The Barnes-Hut application.
#[derive(Clone, Debug)]
pub struct Barnes {
    params: BarnesParams,
}

impl Barnes {
    /// Creates the app with the given parameters.
    pub fn new(params: BarnesParams) -> Self {
        Barnes { params }
    }
}

impl SweepableApp for Barnes {
    fn name(&self) -> &str {
        "Barnes"
    }

    fn run(&self, spec: &RunSpec) -> RunOutcome {
        let params = self.params;
        let seed = spec.seed;
        execute(
            spec,
            DegradePolicy::Abort,
            |_| {},
            move |ctx| barnes_body(ctx, params, seed),
        )
    }
}

/// Words per cell record: [lock, mass, mx, my, mz].
const CELL_WORDS: usize = 5;

async fn barnes_body(ctx: Ctx, params: BarnesParams, seed: u64) -> u64 {
    let p = ctx.procs();
    let me = ctx.me();
    let total_cells = params.total_cells();
    let depth = params.depth;

    // Deterministic cell placement: owner + dense slot per owner.
    let cell_owner = |c: usize| (mix64(0xCE11 ^ c as u64) % p as u64) as usize;
    let mut slot_of = vec![0usize; total_cells];
    let mut owned = vec![0usize; p];
    for (c, slot) in slot_of.iter_mut().enumerate() {
        let o = cell_owner(c);
        *slot = owned[o];
        owned[o] += 1;
    }
    let cells = ctx.alloc_region((owned[me] * CELL_WORDS).max(1));
    ctx.barrier().await;

    // My bodies.
    let n = params.bodies;
    let my_range = block_range(n, p, me);
    let all = initial_bodies(seed, n);
    let mut bodies: Vec<Body> = my_range.clone().map(|i| all[i]).collect();
    drop(all);

    start_measured_region(&ctx).await;

    let mut total_lock_attempts = 0u64;
    for _step in 0..params.steps {
        // ---- Zero my cells (local) and synchronize.
        ctx.with_mem(|m| {
            let r = m.region_mut(cells);
            for w in r.iter_mut() {
                *w = 0;
            }
        });
        ctx.barrier().await;

        // ---- Tree build: insert bodies one at a time, updating every
        // ancestor cell's moments under its blocking lock — the SPLASH
        // discipline the paper describes. Root and top-level cells are
        // touched by every insertion, so lock contention concentrates
        // there and grows with overhead (the paper's livelock driver).
        for b in &bodies {
            for l in 0..=depth {
                let c = cell_at(b.x, b.y, b.z, l);
                let add = [FX_ONE, b.x, b.y, b.z];
                let o = cell_owner(c);
                let base = slot_of[c] * CELL_WORDS;
                ctx.compute(C_AGG).await;
                if o == me {
                    ctx.with_mem(|m| {
                        for (k, &v) in add.iter().enumerate() {
                            let w = m.load(cells, base + 1 + k);
                            m.store(cells, base + 1 + k, w.wrapping_add(v as u64));
                        }
                    });
                    continue;
                }
                let lock_gp = GlobalPtr::new(o, cells, base);
                total_lock_attempts += ctx
                    .lock_with_backoff(lock_gp, LOCK_BACKOFF_INITIAL, LOCK_BACKOFF_MAX)
                    .await;
                for (k, &v) in add.iter().enumerate() {
                    ctx.fetch_add(GlobalPtr::new(o, cells, base + 1 + k), v as u64)
                        .await;
                }
                ctx.unlock(lock_gp).await;
            }
        }
        ctx.sync().await;
        ctx.barrier().await;

        // ---- Force walk with a software cell cache.
        let mut cache: BTreeMap<usize, [i64; 4]> = BTreeMap::new();
        let mut cache_order: VecDeque<usize> = VecDeque::new();
        let mut new_bodies = Vec::with_capacity(bodies.len());
        for b in &bodies {
            let mut acc = (0i64, 0i64, 0i64);
            let mut stack: Vec<(usize, u32)> = vec![(0, 0)];
            while let Some((c, l)) = stack.pop() {
                // Fetch moments (cache, local, or remote bulk read).
                let rec = if let Some(r) = cache.get(&c) {
                    *r
                } else {
                    let o = cell_owner(c);
                    let base = slot_of[c] * CELL_WORDS;
                    let words: Vec<u64> = if o == me {
                        ctx.with_mem(|m| (1..CELL_WORDS).map(|k| m.load(cells, base + k)).collect())
                    } else {
                        ctx.bulk_get(GlobalPtr::new(o, cells, base + 1), 4).await
                    };
                    let rec = [
                        words[0] as i64,
                        words[1] as i64,
                        words[2] as i64,
                        words[3] as i64,
                    ];
                    if cache.len() >= params.cache_capacity {
                        if let Some(victim) = cache_order.pop_front() {
                            cache.remove(&victim);
                        }
                    }
                    cache.insert(c, rec);
                    cache_order.push_back(c);
                    rec
                };
                if rec[0] == 0 {
                    continue; // empty cell
                }
                ctx.compute(C_FORCE).await;
                if l < depth && must_open(b, l, cell_center(c, l)) {
                    for ch in children(c, l) {
                        stack.push((ch, l + 1));
                    }
                } else {
                    accumulate_force(b, rec[0], rec[1], rec[2], rec[3], &mut acc);
                }
            }
            // Integrate.
            ctx.compute(C_BODY).await;
            let mut nb = *b;
            nb.vx = nb
                .vx
                .wrapping_add(((acc.0 as i128 * DT as i128) / FX_ONE as i128) as i64);
            nb.vy = nb
                .vy
                .wrapping_add(((acc.1 as i128 * DT as i128) / FX_ONE as i128) as i64);
            nb.vz = nb
                .vz
                .wrapping_add(((acc.2 as i128 * DT as i128) / FX_ONE as i128) as i64);
            let wrap = |v: i64| v.rem_euclid(FX_ONE);
            nb.x = wrap(nb.x.wrapping_add(((nb.vx as i128 * DT as i128) / FX_ONE as i128) as i64));
            nb.y = wrap(nb.y.wrapping_add(((nb.vy as i128 * DT as i128) / FX_ONE as i128) as i64));
            nb.z = wrap(nb.z.wrapping_add(((nb.vz as i128 * DT as i128) / FX_ONE as i128) as i64));
            new_bodies.push(nb);
        }
        bodies = new_bodies;
        ctx.barrier().await;
    }

    end_measured_region(&ctx).await;

    // Checksum: wrapping sum of final body coordinates (timing-invariant
    // because every shared accumulation is a wrapping add). Lock attempts
    // are reported via stats, not the check.
    let _ = total_lock_attempts;
    bodies.iter().fold(0u64, |a, b| {
        a.wrapping_add(b.x as u64)
            .wrapping_add((b.y as u64).rotate_left(16))
            .wrapping_add((b.z as u64).rotate_left(32))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_indexing_is_consistent() {
        // Every position maps to a child of its parent cell.
        for l in 0..3 {
            for &(x, y, z) in &[(1i64, 2i64, 3i64), (FX_ONE - 1, FX_ONE / 2, 7)] {
                let c = cell_at(x, y, z, l);
                let cc = cell_at(x, y, z, l + 1);
                assert!(children(c, l).contains(&cc), "level {l}");
            }
        }
        assert_eq!(cell_at(0, 0, 0, 0), 0);
        assert_eq!(level_base(1), 1);
        assert_eq!(level_base(2), 9);
    }

    #[test]
    fn children_and_centers_stay_in_bounds() {
        let params = BarnesParams::benchmark();
        let total = params.total_cells();
        for l in 0..params.depth {
            let (lo, hi) = (level_base(l), level_base(l + 1));
            for c in lo..hi {
                for ch in children(c, l) {
                    assert!(ch < total, "child {ch} of {c} out of range");
                    assert!(ch >= level_base(l + 1));
                }
                let (x, y, z) = cell_center(c, l);
                for v in [x, y, z] {
                    assert!((0..FX_ONE).contains(&v), "center out of cube");
                }
            }
        }
    }

    #[test]
    fn every_position_maps_to_a_valid_leaf() {
        let params = BarnesParams::benchmark();
        for b in initial_bodies(42, 256) {
            for l in 0..=params.depth {
                let c = cell_at(b.x, b.y, b.z, l);
                assert!(c < params.total_cells());
                assert!(c >= level_base(l));
                if l < params.depth {
                    assert!(children(c, l).contains(&cell_at(b.x, b.y, b.z, l + 1)));
                }
            }
        }
    }

    #[test]
    fn opening_criterion_is_monotone_in_distance() {
        // A cell must not be opened from far away if it is not opened from
        // close... i.e. the criterion opens close bodies, accepts far ones.
        let center = (FX_ONE / 2, FX_ONE / 2, FX_ONE / 2);
        let near = Body {
            x: center.0 + FX_ONE / 64,
            y: center.1,
            z: center.2,
            ..Body::default()
        };
        let far = Body {
            x: FX_ONE - 1,
            y: FX_ONE - 1,
            z: FX_ONE - 1,
            ..Body::default()
        };
        assert!(must_open(&near, 1, center), "near body must descend");
        assert!(!must_open(&far, 3, center), "far body accepts a small cell");
    }

    #[test]
    fn parallel_matches_single_processor() {
        let params = BarnesParams::small();
        let solo = Barnes::new(params).run(&RunSpec::new(1));
        let quad = Barnes::new(params).run(&RunSpec::new(4));
        assert!(solo.completed && quad.completed);
        assert_eq!(solo.check, quad.check, "fixed-point physics must agree");
    }

    #[test]
    fn check_is_invariant_across_knobs() {
        use nowlab_core::{Axis, NetConfig};
        let params = BarnesParams::small();
        let app = Barnes::new(params);
        let base = app.run(&RunSpec::new(4));
        let knobs = Axis::Overhead
            .knobs_for(&NetConfig::berkeley_now().machine, 7.9)
            .unwrap();
        let slowed =
            app.run(&RunSpec::new(4).with_net(NetConfig::berkeley_now().with_knobs(knobs)));
        assert_eq!(base.check, slowed.check);
        assert!(slowed.runtime > base.runtime);
    }

    #[test]
    fn uses_locks_rmw_and_bulk_reads() {
        let out = Barnes::new(BarnesParams::small()).run(&RunSpec::new(4));
        assert!(out.stats.pct_bulk() > 5.0, "bulk: {}", out.stats.pct_bulk());
        assert!(
            out.stats.pct_reads() > 5.0,
            "reads: {}",
            out.stats.pct_reads()
        );
        assert!(out.stats.total_sends() > 100);
    }
}
