//! Radb — the bulk-message radix sort (paper §4.1, last row of Table 3).
//!
//! Identical to [`crate::radix`] except for the distribution phase: "after
//! the global histogram phase, all keys are sent to their destination
//! processor in one bulk message". Communication drops from one short
//! message per key to one bulk message per destination, making Radb nearly
//! insensitive to overhead and gap but (mildly) sensitive to bulk
//! bandwidth — exactly the contrast the paper draws.

use nowlab_core::{RunOutcome, RunSpec, SweepableApp};

use crate::common::{execute, DegradePolicy};
use crate::radix::{radix_body, RadixParams};

/// The bulk radix sort application.
#[derive(Clone, Debug)]
pub struct Radb {
    params: RadixParams,
}

impl Radb {
    /// Creates the app with the given parameters.
    pub fn new(params: RadixParams) -> Self {
        Radb { params }
    }
}

impl SweepableApp for Radb {
    fn name(&self) -> &str {
        "Radb"
    }

    fn run(&self, spec: &RunSpec) -> RunOutcome {
        let params = self.params;
        let seed = spec.seed;
        execute(
            spec,
            DegradePolicy::Abort,
            |_| {},
            move |ctx| radix_body(ctx, params, seed, true),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_correctly_and_uses_bulk() {
        // Large enough that key payload outweighs the fixed histogram
        // chatter.
        let app = Radb::new(RadixParams {
            total_keys: 16 * 1024,
            key_bits: 16,
            digit_bits: 8,
        });
        let out = app.run(&RunSpec::new(4));
        assert!(out.completed);
        // The keys move as bulk payload: bulk bytes dwarf short-message
        // bytes even though the histogram chain sends many short messages.
        assert!(
            out.stats.bulk_kb_per_s() > out.stats.small_kb_per_s(),
            "bulk {} KB/s vs small {} KB/s",
            out.stats.bulk_kb_per_s(),
            out.stats.small_kb_per_s()
        );
    }

    #[test]
    fn radb_sends_far_fewer_messages_than_radix() {
        let params = RadixParams::small();
        let radb = Radb::new(params).run(&RunSpec::new(4));
        let radix = crate::radix::Radix::new(params).run(&RunSpec::new(4));
        assert!(radb.completed && radix.completed);
        assert!(
            radix.stats.total_sends() > 4 * radb.stats.total_sends(),
            "radix {} vs radb {}",
            radix.stats.total_sends(),
            radb.stats.total_sends()
        );
        // Both sorts produce the same keys.
        assert_eq!(radb.check, radix.check);
    }

    #[test]
    fn radb_is_faster_than_radix_at_high_overhead() {
        use nowlab_core::{Axis, NetConfig};
        let params = RadixParams::small();
        let knobs = Axis::Overhead
            .knobs_for(&NetConfig::berkeley_now().machine, 53.0)
            .unwrap();
        let spec = RunSpec::new(4).with_net(NetConfig::berkeley_now().with_knobs(knobs));
        let radb = Radb::new(params).run(&spec);
        let radix = crate::radix::Radix::new(params).run(&spec);
        assert!(
            radb.runtime < radix.runtime / 2,
            "radb {} vs radix {}",
            radb.runtime,
            radix.runtime
        );
    }
}
