//! NOW-sort — disk-to-disk parallel sort (paper §4.1, Table 3 row 9).
//!
//! The 1997 MinuteSort record holder: each node streams records off one
//! disk, scatters them to their key-range owners with **one-way bulk
//! Active Messages at the rate the disk delivers**, while the second disk
//! absorbs incoming records; a second, purely local pass sorts each
//! partition. The CPU is idle-polling during disk transfers, so
//! communication overhead overlaps I/O — the paper's explanation for
//! NOW-sort's overhead tolerance, and its bulk-bandwidth knee sits exactly
//! at the single-disk rate (5.5 MB/s, Figure 8).
//!
//! Records are synthetic (100 B of wire time each); the per-destination
//! record counts are drawn deterministically, so conservation is checked
//! exactly.

use nowlab_core::{RunOutcome, RunSpec, SweepableApp};
use nowlab_rng::Rng;
use nowlab_splitc::Payload;
use nowlab_splitc::{SimDelta, SimTime};

use crate::common::{end_measured_region, execute, proc_rng, start_measured_region, DegradePolicy};

/// Per-record CPU cost of the partitioning/merge logic.
const C_RECORD: SimDelta = SimDelta::from_nanos(150);

/// A streaming disk: tracks when sequential transfers complete.
#[derive(Clone, Copy, Debug)]
pub struct Disk {
    /// Bandwidth in MB/s.
    pub mb_per_s: f64,
    free_at: SimTime,
}

impl Disk {
    /// A disk idle from time zero.
    pub fn new(mb_per_s: f64) -> Self {
        Disk {
            mb_per_s,
            free_at: SimTime::ZERO,
        }
    }

    /// Queues a sequential transfer of `bytes` starting no earlier than
    /// `now`; returns its completion time.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = self.free_at.max(now);
        let dur = SimDelta::from_secs(bytes as f64 / (self.mb_per_s * 1e6));
        self.free_at = start + dur;
        self.free_at
    }
}

/// Parameters of NOW-sort.
#[derive(Clone, Copy, Debug)]
pub struct NowSortParams {
    /// Total records.
    pub records: usize,
    /// Bytes per record (the paper's 100-byte MinuteSort records).
    pub record_bytes: u32,
    /// Records per disk batch.
    pub batch_records: usize,
    /// Per-disk bandwidth in MB/s (the paper's disks: 5.5).
    pub disk_mb_per_s: f64,
}

impl NowSortParams {
    /// Default benchmark size (paper: 32M records; scaled per DESIGN.md).
    pub fn benchmark() -> Self {
        NowSortParams {
            records: 96 * 1024,
            record_bytes: 100,
            batch_records: 512,
            disk_mb_per_s: 5.5,
        }
    }

    /// A reduced size for tests.
    pub fn small() -> Self {
        NowSortParams {
            records: 8 * 1024,
            record_bytes: 100,
            batch_records: 256,
            disk_mb_per_s: 5.5,
        }
    }

    /// Scales the record count by `f`.
    pub fn scaled(mut self, f: f64) -> Self {
        self.records = ((self.records as f64 * f) as usize).max(4_096);
        self
    }
}

/// The NOW-sort application.
#[derive(Clone, Debug)]
pub struct NowSort {
    params: NowSortParams,
}

impl NowSort {
    /// Creates the app with the given parameters.
    pub fn new(params: NowSortParams) -> Self {
        NowSort { params }
    }
}

impl SweepableApp for NowSort {
    fn name(&self) -> &str {
        "NOW-sort"
    }

    fn run(&self, spec: &RunSpec) -> RunOutcome {
        let params = self.params;
        let seed = spec.seed;
        execute(
            spec,
            DegradePolicy::Abort,
            |_| {},
            move |ctx| nowsort_body(ctx, params, seed),
        )
    }
}

/// Splits `batch` records among `p` destinations deterministically (a
/// multinomial draw both sender and verifier can recompute).
fn batch_split(rng: &mut impl Rng, batch: usize, p: usize) -> Vec<u64> {
    let mut counts = vec![0u64; p];
    // Draw per-record destinations in bulk (cheap, and exactly uniform).
    for _ in 0..batch {
        counts[rng.gen_range(0..p)] += 1;
    }
    counts
}

async fn nowsort_body(ctx: nowlab_splitc::Ctx, params: NowSortParams, seed: u64) -> u64 {
    let p = ctx.procs();
    let me = ctx.me();
    let n_local = params.records / p;
    let rec = params.record_bytes as u64;

    let mb = ctx.alloc_mailbox();
    ctx.barrier().await;

    start_measured_region(&ctx).await;

    // ---- Phase 1: read from disk A, scatter one-way bulk messages at
    // disk rate; disk B absorbs arrivals.
    let mut disk_read = Disk::new(params.disk_mb_per_s);
    let mut disk_write = Disk::new(params.disk_mb_per_s);
    let mut rng = proc_rng(seed, me, 0);
    let mut sent_away = 0u64;
    let mut kept = 0u64;
    let mut received = 0u64;
    let mut remaining = n_local;
    while remaining > 0 {
        let batch = remaining.min(params.batch_records);
        remaining -= batch;
        // The batch is available once the disk has streamed it; the CPU
        // idles (servicing the network) until then.
        let ready = disk_read.transfer(ctx.now(), batch as u64 * rec);
        ctx.idle_until(ready).await;
        // Drain any records that arrived while we waited.
        while let Some(mail) = ctx.try_recv_mail(mb) {
            received += mail.args[0];
            disk_write.transfer(ctx.now(), mail.args[0] * rec);
        }
        // Partition and send.
        ctx.compute(C_RECORD * batch as u64).await;
        let counts = batch_split(&mut rng, batch, p);
        for (dest, &cnt) in counts.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            if dest == me {
                kept += cnt;
                disk_write.transfer(ctx.now(), cnt * rec);
                continue;
            }
            sent_away += cnt;
            ctx.send_mail(
                dest,
                mb,
                [cnt, 0, 0],
                Payload::Synthetic((cnt * rec) as u32),
            )
            .await;
        }
    }
    ctx.sync().await;
    // Total records this processor must receive: every other processor's
    // deterministic draws are recomputable.
    let mut expected_in = 0u64;
    for src in 0..p {
        if src == me {
            continue;
        }
        let mut r = proc_rng(seed, src, 0);
        let mut rem = params.records / p;
        while rem > 0 {
            let batch = rem.min(params.batch_records);
            rem -= batch;
            expected_in += batch_split(&mut r, batch, p)[me];
        }
    }
    // Keep servicing the network (and spooling to disk B) until everything
    // has arrived.
    ctx.wait_until(|| ctx.mail_len(mb) > 0 || received >= expected_in)
        .await;
    while received < expected_in {
        while let Some(mail) = ctx.try_recv_mail(mb) {
            received += mail.args[0];
            disk_write.transfer(ctx.now(), mail.args[0] * rec);
        }
        if received >= expected_in {
            break;
        }
        ctx.wait_until(|| ctx.mail_len(mb) > 0).await;
    }
    // Wait for disk B to finish spooling.
    let spooled = disk_write.free_at.max(ctx.now());
    ctx.idle_until(spooled).await;
    ctx.barrier().await;

    // ---- Phase 2: local disk-to-disk merge sort (no communication).
    let my_total = kept + received;
    ctx.compute(C_RECORD * my_total).await;
    let mut disk_a = Disk::new(params.disk_mb_per_s);
    let done = disk_a.transfer(ctx.now(), my_total * rec);
    ctx.idle_until(done).await;
    ctx.barrier().await;

    end_measured_region(&ctx).await;

    // ---- Verification: global record conservation.
    let total = ctx.allreduce_sum(my_total).await;
    assert_eq!(
        total as usize,
        (params.records / p) * p,
        "nowsort: records lost or duplicated"
    );
    let _ = sent_away;
    my_total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_streams_sequentially() {
        let mut d = Disk::new(10.0); // 10 MB/s = 10 B/us
        let t1 = d.transfer(SimTime::ZERO, 1_000);
        assert_eq!(t1.as_micros_f64().round() as u64, 100);
        // Second transfer queues behind the first.
        let t2 = d.transfer(SimTime::ZERO, 500);
        assert_eq!(t2.as_micros_f64().round() as u64, 150);
        // A transfer requested after the disk went idle starts fresh.
        let t3 = d.transfer(SimTime::ZERO + SimDelta::from_micros(400.0), 100);
        assert_eq!(t3.as_micros_f64().round() as u64, 410);
    }

    #[test]
    fn batch_split_is_exact_and_deterministic() {
        let mut r1 = crate::common::proc_rng(3, 1, 0);
        let mut r2 = crate::common::proc_rng(3, 1, 0);
        let a = batch_split(&mut r1, 1_000, 7);
        let b = batch_split(&mut r2, 1_000, 7);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<u64>(), 1_000);
        assert!(a.iter().all(|&c| c > 0), "1000 draws cover 7 bins: {a:?}");
    }

    #[test]
    fn conserves_records_on_4_procs() {
        let out = NowSort::new(NowSortParams::small()).run(&RunSpec::new(4));
        assert!(out.completed);
        assert_eq!(out.check, 8 * 1024);
    }

    #[test]
    fn is_bulk_heavy_and_balanced() {
        let out = NowSort::new(NowSortParams::small()).run(&RunSpec::new(4));
        // Roughly half the messages are the bulk record batches, the other
        // half their transport acks (Table 4 shows 49.8% bulk).
        assert!(
            (out.stats.pct_bulk() - 50.0).abs() < 15.0,
            "bulk: {}",
            out.stats.pct_bulk()
        );
        assert!(out.stats.balance() < 1.2);
    }

    #[test]
    fn runtime_is_disk_limited_at_baseline() {
        // Phase 1 (read 200KB/proc at 5.5MB/s) + phase 2 ≈ 2·36ms ≈ 73ms;
        // the network adds almost nothing at 38 MB/s.
        let out = NowSort::new(NowSortParams::small()).run(&RunSpec::new(4));
        let expect = 2.0 * (2_048.0 * 100.0) / 5.5e6;
        let got = out.runtime.as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 0.25,
            "runtime {got} vs disk bound {expect}"
        );
    }

    #[test]
    fn insensitive_to_bandwidth_until_the_disk_rate() {
        use nowlab_core::{Axis, NetConfig};
        let app = NowSort::new(NowSortParams::small());
        let base = app.run(&RunSpec::new(4));
        let at = |mbps: f64| {
            let knobs = Axis::BulkBandwidth
                .knobs_for(&NetConfig::berkeley_now().machine, mbps)
                .unwrap();
            app.run(&RunSpec::new(4).with_net(NetConfig::berkeley_now().with_knobs(knobs)))
                .runtime
                .as_secs_f64()
        };
        let b = base.runtime.as_secs_f64();
        assert!(at(10.0) / b < 1.15, "flat above the disk rate");
        assert!(
            at(1.0) / b > 1.8,
            "slows once network < disk rate: {}",
            at(1.0) / b
        );
    }
}
