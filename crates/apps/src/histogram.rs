//! The global histogram shared by Radix and Radb.
//!
//! Two implementations coexist:
//!
//! * [`global_histogram`] — the paper's hand-rolled *pipelined cyclic
//!   shift* (the dark off-diagonal line of Figure 4a), with a serial
//!   dependence chain proportional to `radix × P` — the cause of Radix's
//!   super-linear overhead sensitivity (§5.1's *serialization effect*).
//!   Chain 1 (rank accumulation) runs `0 → 1 → … → P−1`: processor `i`
//!   receives the running per-bucket sums of processors `< i` (its
//!   *prefix*), adds its own counts, and forwards. Chain 2 (offset
//!   broadcast) runs `P−1 → 0 → 1 → … → P−2`, carrying the exclusive
//!   prefix sums over buckets. Counts travel two buckets per short
//!   message.
//! * [`global_histogram_coll`] — the same phase over the model-driven
//!   collectives layer ([`nowlab_coll`] via [`Ctx::coll_allgather`]):
//!   every processor gathers everyone's counts and derives its prefix
//!   and the bucket offsets locally. This is what the sorts run; the
//!   chain stays as the differential-test baseline.

use nowlab_splitc::SimDelta;
use nowlab_splitc::{Ctx, MailboxId, Payload};

/// Result of the global histogram phase for one processor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalHistogram {
    /// For each bucket: how many keys of that bucket live on processors
    /// with a lower id (this processor's rank base within the bucket).
    pub my_prefix: Vec<u64>,
    /// For each bucket: the global start position of the bucket.
    pub offsets: Vec<u64>,
}

/// Per-bucket compute cost of scanning/merging histogram state.
const C_SCAN: SimDelta = SimDelta::from_nanos(60);

/// Runs the two pipelined chains. `counts[b]` are this processor's local
/// bucket counts; `mb` is a dedicated mailbox (allocate one per sort).
///
/// With `bulk = false` (Radix) the counts travel two buckets per *short*
/// message — the paper's fine-grained chain. With `bulk = true` (Radb,
/// "the bulk version of radix sort") each hop carries the whole running
/// histogram in a single bulk message.
///
/// Deterministic and timing-independent: the returned values depend only
/// on the counts.
pub async fn global_histogram(
    ctx: &Ctx,
    mb: MailboxId,
    counts: &[u64],
    bulk: bool,
) -> GlobalHistogram {
    let p = ctx.procs();
    let me = ctx.me();
    let buckets = counts.len();
    assert!(
        buckets.is_multiple_of(2),
        "bucket count must be even (2 per message)"
    );

    let mut my_prefix = vec![0u64; buckets];
    let mut totals = vec![0u64; buckets];

    if p == 1 {
        totals.copy_from_slice(counts);
    } else {
        // ---- Chain 1: accumulate running sums 0 -> 1 -> ... -> P-1.
        if me == 0 {
            send_counts(ctx, 1, mb, counts, bulk).await;
        } else {
            recv_counts(ctx, mb, bulk, me - 1, &mut my_prefix).await;
            ctx.compute(C_SCAN * buckets as u64).await;
            if me + 1 < p {
                let running: Vec<u64> = my_prefix.iter().zip(counts).map(|(a, b)| a + b).collect();
                send_counts(ctx, me + 1, mb, &running, bulk).await;
            }
        }
        if me == p - 1 {
            for b in 0..buckets {
                totals[b] = my_prefix[b] + counts[b];
            }
        }

        // ---- Chain 2: broadcast bucket offsets P-1 -> 0 -> 1 -> ... -> P-2.
        let offsets = if me == p - 1 {
            let mut offsets = vec![0u64; buckets];
            let mut acc = 0u64;
            for b in 0..buckets {
                offsets[b] = acc;
                acc += totals[b];
            }
            ctx.compute(C_SCAN * buckets as u64).await;
            send_counts(ctx, 0, mb, &offsets, bulk).await;
            offsets
        } else {
            let pred = if me == 0 { p - 1 } else { me - 1 };
            let mut offsets = vec![0u64; buckets];
            recv_counts(ctx, mb, bulk, pred, &mut offsets).await;
            if me + 1 < p - 1 {
                send_counts(ctx, me + 1, mb, &offsets, bulk).await;
            }
            offsets
        };
        ctx.sync().await;
        return GlobalHistogram { my_prefix, offsets };
    }

    // Single processor: offsets are the exclusive prefix sums.
    let mut offsets = vec![0u64; buckets];
    let mut acc = 0u64;
    for b in 0..buckets {
        offsets[b] = acc;
        acc += totals[b];
    }
    GlobalHistogram { my_prefix, offsets }
}

/// The global histogram over the collectives layer: an allgather of every
/// processor's local counts, then a purely local scan for this processor's
/// per-bucket prefix and the global bucket offsets.
///
/// Computes exactly what [`global_histogram`] computes (the differential
/// test pins this), but the communication is one model-selected allgather
/// instead of two serial chains. Under `DegradePolicy::Continue` a
/// confirmed-dead member's block arrives empty and contributes zero counts
/// — the survivors' histogram is the chain's degraded result too.
pub async fn global_histogram_coll(ctx: &Ctx, counts: &[u64]) -> GlobalHistogram {
    let me = ctx.me();
    let buckets = counts.len();
    let all = ctx.coll_allgather(counts).await;
    ctx.compute(C_SCAN * buckets as u64).await;
    let mut my_prefix = vec![0u64; buckets];
    let mut totals = vec![0u64; buckets];
    for (j, their) in all.iter().enumerate() {
        for b in 0..buckets {
            let v = their.get(b).copied().unwrap_or(0);
            if j < me {
                my_prefix[b] += v;
            }
            totals[b] += v;
        }
    }
    let mut offsets = vec![0u64; buckets];
    let mut acc = 0u64;
    for b in 0..buckets {
        offsets[b] = acc;
        acc += totals[b];
    }
    GlobalHistogram { my_prefix, offsets }
}

/// Sends a full bucket vector to `dst`: one bulk message, or `buckets/2`
/// short messages of two counts each.
async fn send_counts(ctx: &Ctx, dst: usize, mb: MailboxId, values: &[u64], bulk: bool) {
    if bulk {
        ctx.send_mail(dst, mb, [0, 0, 0], Payload::from_words(values.to_vec()))
            .await;
        return;
    }
    for c in 0..values.len() / 2 {
        ctx.send_mail(
            dst,
            mb,
            [c as u64, values[2 * c], values[2 * c + 1]],
            Payload::None,
        )
        .await;
    }
}

/// Receives a full bucket vector from chain predecessor `from` into `out`
/// (counterpart of [`send_counts`]).
///
/// If the failure detector confirms `from` dead mid-wait, the receive
/// degrades: whatever chunks never arrive stay zero (the chain continues
/// over the survivors with a partial running histogram).
async fn recv_counts(ctx: &Ctx, mb: MailboxId, bulk: bool, from: usize, out: &mut [u64]) {
    if bulk {
        ctx.wait_until(|| ctx.mail_len(mb) > 0 || ctx.peer_dead(from))
            .await;
        if let Some(mail) = ctx.try_recv_mail(mb) {
            out.copy_from_slice(mail.payload.as_words().expect("bulk histogram payload"));
        }
        return;
    }
    let chunks = out.len() / 2;
    let mut received = 0usize;
    while received < chunks {
        ctx.wait_until(|| ctx.mail_len(mb) > 0 || ctx.peer_dead(from))
            .await;
        let Some(mail) = ctx.try_recv_mail(mb) else {
            return;
        };
        let c = mail.args[0] as usize;
        out[2 * c] = mail.args[1];
        out[2 * c + 1] = mail.args[2];
        received += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nowlab_core::RunSpec;
    use nowlab_splitc::{run_spmd, SpmdConfig};

    fn check_histogram(procs: usize, buckets: usize) {
        let spec = RunSpec::new(procs);
        let cfg = SpmdConfig::new(spec.procs).with_net(spec.net);
        let outcome = run_spmd(&cfg, move |ctx| async move {
            let mb = ctx.alloc_mailbox();
            ctx.barrier().await;
            // Deterministic counts: proc i has (i + b) keys in bucket b.
            let counts: Vec<u64> = (0..buckets).map(|b| (ctx.me() + b) as u64).collect();
            let h = global_histogram(&ctx, mb, &counts, procs.is_multiple_of(2)).await;
            ctx.barrier().await;
            // Verify against a straightforward sequential recomputation.
            let p = ctx.procs();
            for b in 0..buckets {
                let expect_prefix: u64 = (0..ctx.me()).map(|j| (j + b) as u64).sum();
                assert_eq!(h.my_prefix[b], expect_prefix, "prefix b={b}");
                let expect_offset: u64 = (0..b)
                    .map(|b2| (0..p).map(|j| (j + b2) as u64).sum::<u64>())
                    .sum();
                assert_eq!(h.offsets[b], expect_offset, "offset b={b}");
            }
            1
        });
        assert!(outcome.completed);
    }

    #[test]
    fn histogram_matches_sequential_on_4_procs() {
        check_histogram(4, 8);
    }

    #[test]
    fn histogram_matches_sequential_on_7_procs() {
        check_histogram(7, 16);
    }

    #[test]
    fn histogram_single_proc() {
        check_histogram(1, 8);
    }

    #[test]
    fn bulk_and_short_chains_compute_identical_results() {
        for bulk in [false, true] {
            let cfg = SpmdConfig::new(5);
            let outcome = run_spmd(&cfg, move |ctx| async move {
                let mb = ctx.alloc_mailbox();
                ctx.barrier().await;
                let counts: Vec<u64> = (0..16).map(|b| (ctx.me() * 3 + b * 7) as u64).collect();
                let h = global_histogram(&ctx, mb, &counts, bulk).await;
                ctx.barrier().await;
                h.offsets.iter().chain(h.my_prefix.iter()).sum::<u64>()
            });
            let outs = outcome.expect_outputs();
            // Same checksum per proc regardless of transport.
            let expect = run_spmd(&SpmdConfig::new(5), move |ctx| async move {
                let mb = ctx.alloc_mailbox();
                ctx.barrier().await;
                let counts: Vec<u64> = (0..16).map(|b| (ctx.me() * 3 + b * 7) as u64).collect();
                let h = global_histogram(&ctx, mb, &counts, !bulk).await;
                ctx.barrier().await;
                h.offsets.iter().chain(h.my_prefix.iter()).sum::<u64>()
            })
            .expect_outputs();
            assert_eq!(outs, expect, "bulk={bulk}");
        }
    }

    #[test]
    fn coll_histogram_matches_the_hand_rolled_chain() {
        // The collectives-layer port computes the exact prefix/offset
        // vectors of the pipelined chain, on even and odd processor
        // counts (different allgather block shapes).
        for procs in [1usize, 4, 7] {
            let run_coll = run_spmd(&SpmdConfig::new(procs), move |ctx| async move {
                ctx.barrier().await;
                let counts: Vec<u64> = (0..16).map(|b| (ctx.me() * 5 + b * 3) as u64).collect();
                let h = global_histogram_coll(&ctx, &counts).await;
                ctx.barrier().await;
                h.offsets
                    .iter()
                    .chain(h.my_prefix.iter())
                    .fold(0u64, |a, &v| a.wrapping_add(v))
            });
            let run_chain = run_spmd(&SpmdConfig::new(procs), move |ctx| async move {
                let mb = ctx.alloc_mailbox();
                ctx.barrier().await;
                let counts: Vec<u64> = (0..16).map(|b| (ctx.me() * 5 + b * 3) as u64).collect();
                let h = global_histogram(&ctx, mb, &counts, false).await;
                ctx.barrier().await;
                h.offsets
                    .iter()
                    .chain(h.my_prefix.iter())
                    .fold(0u64, |a, &v| a.wrapping_add(v))
            });
            assert_eq!(
                run_coll.expect_outputs(),
                run_chain.expect_outputs(),
                "procs={procs}"
            );
        }
    }

    #[test]
    fn bulk_chain_sends_far_fewer_messages() {
        let run = |bulk: bool| {
            let outcome = run_spmd(&SpmdConfig::new(6), move |ctx| async move {
                let mb = ctx.alloc_mailbox();
                ctx.barrier().await;
                let counts = vec![1u64; 128];
                let _ = global_histogram(&ctx, mb, &counts, bulk).await;
                ctx.barrier().await;
                0u64
            });
            outcome.stats.total_sends()
        };
        let short = run(false);
        let bulk = run(true);
        assert!(short > 10 * bulk, "short {short} vs bulk {bulk}");
    }
}
