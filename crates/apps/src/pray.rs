//! P-Ray — scene-passing parallel ray tracer (paper §4.1, Table 3 row 6).
//!
//! A read-only scene of spheres is distributed over the processors; the
//! spatial acceleration structure (a coarse screen-space grid standing in
//! for the paper's replicated octree) is replicated, but the object
//! *data* lives only on its owner and is pulled through a fixed-size
//! software-managed cache with blocking bulk reads. Communication is
//! therefore almost entirely read traffic (Table 4: 96.5% reads, 47.9%
//! bulk), with hot objects visible from many pixels producing the dark
//! spots of Figure 4f.
//!
//! All geometry is fixed-point, so shading is bit-exact and checksums are
//! invariant across LogGP settings (verified against a sequential
//! renderer).

use std::collections::{BTreeMap, VecDeque};

use nowlab_core::{RunOutcome, RunSpec, SweepableApp};
use nowlab_splitc::SimDelta;
use nowlab_splitc::{Ctx, GlobalPtr};

use crate::common::{
    block_range, end_measured_region, execute, mix64, start_measured_region, DegradePolicy, FX_ONE,
};

/// Per-candidate cost of a sphere intersection test.
const C_ISECT: SimDelta = SimDelta::from_nanos(3_000);
/// Per-pixel fixed cost (ray set-up + shading).
const C_PIXEL: SimDelta = SimDelta::from_nanos(4_000);

/// Parameters of the ray tracer.
#[derive(Clone, Copy, Debug)]
pub struct PrayParams {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Spheres in the scene.
    pub objects: usize,
    /// Software object-cache capacity (objects).
    pub cache_capacity: usize,
    /// Acceleration-grid resolution (cells per axis).
    pub grid: usize,
}

impl PrayParams {
    /// Default benchmark size (paper: 1M pixels, 16390 objects; scaled).
    pub fn benchmark() -> Self {
        PrayParams {
            width: 96,
            height: 96,
            objects: 512,
            cache_capacity: 96,
            grid: 8,
        }
    }

    /// A reduced size for tests.
    pub fn small() -> Self {
        PrayParams {
            width: 24,
            height: 24,
            objects: 96,
            cache_capacity: 24,
            grid: 4,
        }
    }

    /// Scales the pixel count by ~`f`.
    pub fn scaled(mut self, f: f64) -> Self {
        let s = f.sqrt();
        self.width = ((self.width as f64 * s) as usize).max(16);
        self.height = ((self.height as f64 * s) as usize).max(16);
        self
    }
}

/// A sphere in fixed point: center (x, y, z ∈ [0,1)) and radius.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Sphere {
    cx: i64,
    cy: i64,
    cz: i64,
    r: i64,
}

/// The authoritative (owner-side) geometry of object `id` — derived from
/// the seed, as the scene generator would have written it to the owner.
fn make_sphere(seed: u64, id: usize) -> Sphere {
    let h1 = mix64(seed ^ (id as u64) << 1);
    let h2 = mix64(h1 ^ 0xABCD);
    Sphere {
        cx: (h1 % FX_ONE as u64) as i64,
        cy: ((h1 >> 32) % FX_ONE as u64) as i64,
        cz: (h2 % FX_ONE as u64) as i64,
        // Radius in [0.02, 0.10): a few large, hot spheres.
        r: FX_ONE / 50 + ((h2 >> 32) % (FX_ONE as u64 / 12)) as i64,
    }
}

fn sphere_words(s: &Sphere) -> [u64; 4] {
    [s.cx as u64, s.cy as u64, s.cz as u64, s.r as u64]
}

fn sphere_from_words(w: &[u64]) -> Sphere {
    Sphere {
        cx: w[0] as i64,
        cy: w[1] as i64,
        cz: w[2] as i64,
        r: w[3] as i64,
    }
}

/// The replicated acceleration structure: for each grid cell, the ids of
/// objects whose screen-space circle overlaps it.
fn build_grid(seed: u64, params: &PrayParams) -> Vec<Vec<u32>> {
    let g = params.grid;
    let cell = FX_ONE / g as i64;
    let mut cells = vec![Vec::new(); g * g];
    for id in 0..params.objects {
        let s = make_sphere(seed, id);
        let x0 = ((s.cx - s.r).max(0) / cell) as usize;
        let x1 = (((s.cx + s.r).min(FX_ONE - 1)) / cell) as usize;
        let y0 = ((s.cy - s.r).max(0) / cell) as usize;
        let y1 = (((s.cy + s.r).min(FX_ONE - 1)) / cell) as usize;
        for y in y0..=y1.min(g - 1) {
            for x in x0..=x1.min(g - 1) {
                cells[y * g + x].push(id as u32);
            }
        }
    }
    cells
}

/// Orthographic ray through pixel (px, py): hits the sphere if the 2-D
/// distance to the center is within the radius; depth is `cz - dz` where
/// `dz² = r² - d²`. Returns the quantized hit depth, or `None`.
fn intersect(s: &Sphere, px: i64, py: i64) -> Option<i64> {
    let dx = s.cx - px;
    let dy = s.cy - py;
    let d2 = dx * dx + dy * dy;
    let r2 = s.r * s.r;
    if d2 > r2 {
        return None;
    }
    let dz = isqrt((r2 - d2) as u64) as i64;
    Some(s.cz - dz)
}

/// Integer square root.
fn isqrt(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    let mut x = (v as f64).sqrt() as u64;
    // Newton correction to exactness (floats may be off by one).
    while x.saturating_mul(x) > v {
        x -= 1;
    }
    while (x + 1).saturating_mul(x + 1) <= v {
        x += 1;
    }
    x
}

/// Shades one pixel given the nearest hit.
fn shade(hit: Option<(u32, i64)>) -> u64 {
    match hit {
        None => 0x1F,
        Some((id, depth)) => mix64(((id as u64) << 24) ^ (depth as u64 >> 8)),
    }
}

/// Sequential reference renderer: checksum over the whole image.
pub fn sequential_checksum(params: &PrayParams, seed: u64) -> u64 {
    let grid = build_grid(seed, params);
    let g = params.grid;
    let cell = FX_ONE / g as i64;
    let mut sum = 0u64;
    for py in 0..params.height {
        for px in 0..params.width {
            let fx = (px as i64 * FX_ONE) / params.width as i64;
            let fy = (py as i64 * FX_ONE) / params.height as i64;
            let cidx = ((fy / cell) as usize).min(g - 1) * g + ((fx / cell) as usize).min(g - 1);
            let mut best: Option<(u32, i64)> = None;
            for &id in &grid[cidx] {
                let s = make_sphere(seed, id as usize);
                if let Some(t) = intersect(&s, fx, fy) {
                    if best.is_none_or(|(bid, bt)| t < bt || (t == bt && id < bid)) {
                        best = Some((id, t));
                    }
                }
            }
            sum = sum.wrapping_add(shade(best));
        }
    }
    sum
}

/// A fixed-capacity FIFO object cache (deterministic eviction).
struct ObjectCache {
    map: BTreeMap<u32, Sphere>,
    order: VecDeque<u32>,
    capacity: usize,
    pub misses: u64,
    pub hits: u64,
}

impl ObjectCache {
    fn new(capacity: usize) -> Self {
        ObjectCache {
            map: BTreeMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            misses: 0,
            hits: 0,
        }
    }

    fn get(&mut self, id: u32) -> Option<Sphere> {
        let hit = self.map.get(&id).copied();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    fn insert(&mut self, id: u32, s: Sphere) {
        self.misses += 1;
        if self.map.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
        if self.map.insert(id, s).is_none() {
            self.order.push_back(id);
        }
    }
}

/// The P-Ray application.
#[derive(Clone, Debug)]
pub struct Pray {
    params: PrayParams,
}

impl Pray {
    /// Creates the app with the given parameters.
    pub fn new(params: PrayParams) -> Self {
        Pray { params }
    }
}

impl SweepableApp for Pray {
    fn name(&self) -> &str {
        "P-Ray"
    }

    fn run(&self, spec: &RunSpec) -> RunOutcome {
        let params = self.params;
        let seed = spec.seed;
        execute(
            spec,
            DegradePolicy::Abort,
            |_| {},
            move |ctx| pray_body(ctx, params, seed),
        )
    }
}

async fn pray_body(ctx: Ctx, params: PrayParams, seed: u64) -> u64 {
    let p = ctx.procs();
    let me = ctx.me();

    // Object store: object id -> owner (id % P), slot (id / P), 4 words.
    let slots = params.objects.div_ceil(p);
    let objs = ctx.alloc_region((slots * 4).max(1));
    // Owners materialize their objects (scene "loading", unmeasured).
    for id in (0..params.objects).filter(|id| id % p == me) {
        let w = sphere_words(&make_sphere(seed, id));
        ctx.with_mem(|m| {
            for (k, &v) in w.iter().enumerate() {
                m.store(objs, (id / p) * 4 + k, v);
            }
        });
    }
    let grid = build_grid(seed, &params);
    let g = params.grid;
    let cell = FX_ONE / g as i64;
    let my_rows = block_range(params.height, p, me);

    start_measured_region(&ctx).await;

    let mut cache = ObjectCache::new(params.cache_capacity);
    let mut sum = 0u64;
    for py in my_rows {
        for px in 0..params.width {
            ctx.compute(C_PIXEL).await;
            let fx = (px as i64 * FX_ONE) / params.width as i64;
            let fy = (py as i64 * FX_ONE) / params.height as i64;
            let cidx = ((fy / cell) as usize).min(g - 1) * g + ((fx / cell) as usize).min(g - 1);
            let mut best: Option<(u32, i64)> = None;
            for &id in &grid[cidx] {
                let sphere = match cache.get(id) {
                    Some(s) => s,
                    None => {
                        let owner = id as usize % p;
                        let s = if owner == me {
                            let base = (id as usize / p) * 4;
                            ctx.with_mem(|m| {
                                sphere_from_words(&[
                                    m.load(objs, base),
                                    m.load(objs, base + 1),
                                    m.load(objs, base + 2),
                                    m.load(objs, base + 3),
                                ])
                            })
                        } else {
                            let words = ctx
                                .bulk_get(GlobalPtr::new(owner, objs, (id as usize / p) * 4), 4)
                                .await;
                            sphere_from_words(&words)
                        };
                        cache.insert(id, s);
                        s
                    }
                };
                ctx.compute(C_ISECT).await;
                if let Some(t) = intersect(&sphere, fx, fy) {
                    if best.is_none_or(|(bid, bt)| t < bt || (t == bt && id < bid)) {
                        best = Some((id, t));
                    }
                }
            }
            sum = sum.wrapping_add(shade(best));
        }
    }
    ctx.barrier().await;
    end_measured_region(&ctx).await;
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_renderer() {
        let params = PrayParams::small();
        let expect = sequential_checksum(&params, 3);
        let out = Pray::new(params).run(&RunSpec::new(4).with_seed(3));
        assert!(out.completed);
        assert_eq!(out.check, expect);
    }

    #[test]
    fn communication_is_reads_of_bulk_objects() {
        let out = Pray::new(PrayParams::small()).run(&RunSpec::new(4));
        assert!(
            out.stats.pct_reads() > 80.0,
            "reads: {}",
            out.stats.pct_reads()
        );
        // Bulk replies carry the object data: roughly half the read
        // traffic (Table 4: 47.9% bulk).
        assert!(
            out.stats.pct_bulk() > 25.0,
            "bulk: {}",
            out.stats.pct_bulk()
        );
    }

    #[test]
    fn small_cache_forces_more_traffic_than_big_cache() {
        let mut big = PrayParams::small();
        big.cache_capacity = big.objects; // everything fits
        let mut tiny = PrayParams::small();
        tiny.cache_capacity = 4;
        let t = Pray::new(tiny).run(&RunSpec::new(4));
        let b = Pray::new(big).run(&RunSpec::new(4));
        assert!(t.stats.total_sends() > b.stats.total_sends());
        assert_eq!(t.check, b.check, "cache size must not change the image");
    }

    #[test]
    fn isqrt_is_exact() {
        for v in [0u64, 1, 2, 3, 4, 15, 16, 17, 1 << 40, u32::MAX as u64] {
            let r = isqrt(v);
            assert!(r * r <= v);
            assert!((r + 1) * (r + 1) > v);
        }
    }
}
