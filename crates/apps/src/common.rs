//! Shared machinery for the benchmark suite: the measured-region protocol,
//! deterministic workload RNG, partitioning helpers, and fixed-point
//! arithmetic.

use std::future::Future;
use std::rc::Rc;

use nowlab_core::{RunOutcome, RunSpec, TraceMode};
use nowlab_metrics::{MetricsMode, MetricsRecorder, DEFAULT_WINDOW};
use nowlab_rng::{SeedableRng, SmallRng};
use nowlab_splitc::{Ctx, SplitC, SpmdConfig};

pub use nowlab_splitc::DegradePolicy;
use nowlab_trace::TraceRecorder;

/// Builds the Split-C machine for `spec`, lets `setup` register custom
/// handlers, runs `body` on every processor, and packages the result.
///
/// Every app declares its `policy` toward confirmed node deaths:
/// [`DegradePolicy::Abort`] for programs whose result is meaningless with
/// a member missing, [`DegradePolicy::Continue`] for embarrassingly
/// parallel phases that can report a partial result over the survivors.
/// The policy is inert unless the spec's network carries node faults.
///
/// `body` returns this processor's contribution to the run's correctness
/// checksum; contributions are combined commutatively (wrapping add) so the
/// check is independent of completion order.
pub fn execute<S, F, Fut>(spec: &RunSpec, policy: DegradePolicy, setup: S, body: F) -> RunOutcome
where
    S: FnOnce(&SplitC),
    F: Fn(Ctx) -> Fut,
    Fut: Future<Output = u64> + 'static,
{
    let mut cfg = SpmdConfig::new(spec.procs)
        .with_net(spec.net)
        .with_degrade(policy)
        .with_coll(spec.coll);
    if let Some(e) = spec.event_limit {
        cfg = cfg.with_event_limit(e);
    }
    if let Some(t) = spec.time_limit {
        cfg = cfg.with_time_limit(t);
    }
    let sc = SplitC::new(&cfg);
    let recorder = match spec.trace {
        TraceMode::Off => None,
        TraceMode::Summary => Some(Rc::new(TraceRecorder::new(false))),
        TraceMode::Full => Some(Rc::new(TraceRecorder::new(true))),
    };
    if let Some(r) = &recorder {
        sc.set_trace_sink(Rc::clone(r) as Rc<dyn nowlab_trace::TraceSink>);
    }
    let meter = match spec.metrics {
        MetricsMode::Off => None,
        MetricsMode::On => Some(Rc::new(MetricsRecorder::new(spec.procs, DEFAULT_WINDOW))),
    };
    if let Some(m) = &meter {
        sc.set_metrics_sink(Rc::clone(m) as Rc<dyn nowlab_metrics::MetricsSink>);
        sc.sim().enable_event_sampling(DEFAULT_WINDOW);
    }
    setup(&sc);
    let outcome = sc.run(body);
    let check = outcome
        .outputs
        .iter()
        .fold(0u64, |acc, o| acc.wrapping_add(o.unwrap_or(0)));
    let metrics = meter.map(|m| {
        let mut report = m.finish(outcome.report.final_time);
        // Heartbeats never touch the LogGP pipeline, so the recorder
        // cannot observe them; stamp the detector counters from the
        // cluster statistics instead (all zero when the plan is inert).
        report.summary.detector = nowlab_metrics::DetectorSummary {
            heartbeats: outcome.stats.total_heartbeats(),
            suspicions: outcome.stats.total_suspicions(),
            false_suspicions: outcome.stats.total_false_suspicions(),
            peer_deaths: outcome.stats.total_peer_deaths(),
            max_detect_latency_ns: outcome.stats.max_detect_latency().as_nanos(),
        };
        // Same story for collectives: the recorder sees only the
        // constituent messages, so the per-op counts come from the
        // cluster statistics.
        report.summary.coll = nowlab_metrics::CollSummary {
            bcasts: outcome.stats.total_coll_bcasts(),
            reduces: outcome.stats.total_coll_reduces(),
            allgathers: outcome.stats.total_coll_allgathers(),
            alltoalls: outcome.stats.total_coll_alltoalls(),
        };
        // The executor hands back only *completed* windows; events in the
        // final partial window are the residual against the run total.
        let mut counts = sc.sim().take_event_samples();
        let residual = outcome
            .report
            .events_fired
            .saturating_sub(counts.iter().sum::<u64>());
        counts.push(residual);
        let windows = report.end_ns.div_ceil(report.window_ns).max(1) as usize;
        counts.resize(windows, 0);
        report.events_per_window = counts;
        report
    });
    RunOutcome {
        runtime: outcome.stats.elapsed,
        stats: outcome.stats,
        completed: outcome.completed,
        completers: outcome.outputs.iter().filter(|o| o.is_some()).count(),
        abort: outcome.abort,
        check,
        events: outcome.report.events_fired,
        trace: recorder.map(|r| r.finish()),
        metrics,
    }
}

/// Marks the start of the measured region: input generation and setup
/// before this call are excluded from runtime and message statistics.
///
/// Call from **every** processor (it contains barriers).
pub async fn start_measured_region(ctx: &Ctx) {
    ctx.barrier().await;
    if ctx.me() == 0 {
        ctx.reset_measurement();
    }
    ctx.barrier().await;
}

/// Marks the end of the measured region: runtime and message statistics
/// are frozen so result verification afterwards is not counted.
///
/// Call from **every** processor.
pub async fn end_measured_region(ctx: &Ctx) {
    ctx.barrier().await;
    if ctx.me() == 0 {
        ctx.freeze_measurement();
    }
}

/// Deterministic per-processor workload RNG: a function of the run seed,
/// the processor id, and a stream tag (so different phases draw
/// independent, reproducible streams).
pub fn proc_rng(seed: u64, proc: usize, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (proc as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
            ^ stream.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7),
    )
}

/// The contiguous block of `n` items owned by processor `i` of `p`
/// (balanced block partition).
pub fn block_range(n: usize, p: usize, i: usize) -> std::ops::Range<usize> {
    let base = n / p;
    let extra = n % p;
    let start = i * base + i.min(extra);
    let len = base + usize::from(i < extra);
    start..start + len
}

/// The owner of item `idx` under [`block_range`] partitioning.
pub fn block_owner(n: usize, p: usize, idx: usize) -> usize {
    debug_assert!(idx < n);
    let base = n / p;
    let extra = n % p;
    let boundary = extra * (base + 1);
    if idx < boundary {
        idx / (base + 1)
    } else {
        extra + (idx - boundary) / base
    }
}

/// 64-bit splittable hash (used for state ownership, edge coin flips, …).
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// Fixed-point scale: 1.0 == `FX_ONE`. Fixed point keeps physics
/// accumulations associative, so checksums are identical across LogGP
/// settings regardless of message arrival order.
pub const FX_ONE: i64 = 1 << 20;

/// Converts a float to fixed point.
pub fn to_fx(v: f64) -> i64 {
    (v * FX_ONE as f64).round() as i64
}

/// Converts fixed point back to a float.
pub fn from_fx(v: i64) -> f64 {
    v as f64 / FX_ONE as f64
}

/// Reinterprets a fixed-point value as a region word.
pub fn fx_to_word(v: i64) -> u64 {
    v as u64
}

/// Reinterprets a region word as a fixed-point value.
pub fn word_to_fx(w: u64) -> i64 {
    w as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nowlab_rng::RngCore;

    #[test]
    fn block_partition_is_exact_and_balanced() {
        for (n, p) in [(10, 3), (32, 32), (100, 7), (5, 8), (0, 4)] {
            let mut covered = 0;
            for i in 0..p {
                let r = block_range(n, p, i);
                covered += r.len();
                for idx in r {
                    assert_eq!(block_owner(n, p, idx), i, "n={n} p={p} idx={idx}");
                }
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn rng_streams_are_independent_and_reproducible() {
        let mut a1 = proc_rng(7, 3, 0);
        let mut a2 = proc_rng(7, 3, 0);
        let mut b = proc_rng(7, 3, 1);
        let mut c = proc_rng(7, 4, 0);
        let x1 = a1.next_u64();
        assert_eq!(x1, a2.next_u64());
        assert_ne!(x1, b.next_u64());
        assert_ne!(x1, c.next_u64());
    }

    #[test]
    fn fixed_point_round_trip() {
        for v in [-2.5, 0.0, 0.25, 123.456] {
            assert!((from_fx(to_fx(v)) - v).abs() < 1e-5);
        }
        let fx = to_fx(-1.5);
        assert_eq!(word_to_fx(fx_to_word(fx)), fx);
    }

    #[test]
    fn mix64_spreads_bits() {
        // Adjacent inputs land far apart and never collide in a small set.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }
}
