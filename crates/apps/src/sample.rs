//! Sample sort (paper §4.1, Table 3 row 4).
//!
//! A probabilistic sort: choose `P−1` splitters from a random sample,
//! broadcast them, have every processor scatter each key to the processor
//! owning its splitter interval (all-to-all of *short* writes — the
//! potential receiver imbalance gives Figure 4d its vertical bars), then
//! sort locally.

use nowlab_core::{RunOutcome, RunSpec, SweepableApp};
use nowlab_rng::Rng;
use nowlab_splitc::GlobalPtr;
use nowlab_splitc::SimDelta;

use crate::common::{end_measured_region, execute, proc_rng, start_measured_region, DegradePolicy};

/// Per-key cost of the splitter binary search.
const C_BSEARCH: SimDelta = SimDelta::from_nanos(100);
/// Per-key cost of the final local sort.
const C_LOCAL_SORT: SimDelta = SimDelta::from_nanos(200);

/// Parameters of the sample sort.
#[derive(Clone, Copy, Debug)]
pub struct SampleParams {
    /// Total keys across all processors.
    pub total_keys: usize,
    /// Samples per processor used to choose splitters.
    pub oversample: usize,
}

impl SampleParams {
    /// Default benchmark size (paper: 32M keys; scaled per DESIGN.md).
    pub fn benchmark() -> Self {
        SampleParams {
            total_keys: 128 * 1024,
            oversample: 8,
        }
    }

    /// A reduced size for tests.
    pub fn small() -> Self {
        SampleParams {
            total_keys: 4 * 1024,
            oversample: 8,
        }
    }

    /// Scales the key count by `f`.
    pub fn scaled(mut self, f: f64) -> Self {
        self.total_keys = ((self.total_keys as f64 * f) as usize).max(2_048);
        self
    }
}

/// The sample sort application.
#[derive(Clone, Debug)]
pub struct Sample {
    params: SampleParams,
}

impl Sample {
    /// Creates the app with the given parameters.
    pub fn new(params: SampleParams) -> Self {
        Sample { params }
    }
}

impl SweepableApp for Sample {
    fn name(&self) -> &str {
        "Sample"
    }

    fn run(&self, spec: &RunSpec) -> RunOutcome {
        let params = self.params;
        let seed = spec.seed;
        execute(
            spec,
            DegradePolicy::Continue,
            |_| {},
            move |ctx| async move {
                let p = ctx.procs();
                let me = ctx.me();
                let n_local = params.total_keys / p;
                let s = params.oversample;

                // Regions: gathered samples at proc 0, receive buffer (with
                // slack for imbalance) and its fill counter.
                let samples = ctx.alloc_region((p * s).max(1));
                let recv_cap = n_local * 3 + 64;
                let recv = ctx.alloc_region(recv_cap);
                let recv_count = ctx.alloc_region(1);
                ctx.barrier().await;

                let mut rng = proc_rng(seed, me, 0);
                let keys: Vec<u64> = (0..n_local).map(|_| rng.gen::<u32>() as u64).collect();
                let input_sum = keys.iter().fold(0u64, |a, &k| a.wrapping_add(k));
                let global_input_sum = ctx.allreduce_sum(input_sum).await;

                start_measured_region(&ctx).await;

                // ---- Phase 0: sample, gather at 0, broadcast splitters.
                for (i, &k) in keys.iter().take(s).enumerate() {
                    ctx.write(GlobalPtr::new(0, samples, me * s + i), k).await;
                }
                ctx.sync().await;
                ctx.barrier().await;
                let chosen = if me == 0 {
                    let mut all: Vec<u64> = ctx.with_mem(|m| m.region(samples)[..p * s].to_vec());
                    all.sort_unstable();
                    ctx.compute(C_LOCAL_SORT * (p * s) as u64).await;
                    (1..p).map(|i| all[i * s - 1]).collect()
                } else {
                    Vec::new()
                };
                // Broadcast of the splitters (the paper: "broadcasting
                // them to all processors") over the collectives layer;
                // the LogGP selector picks the variant from the P−1-word
                // payload. Every processor names the same size, so the
                // choice is symmetric even though only the root holds
                // the data.
                let splits = ctx.coll_broadcast(0, chosen, p - 1).await;
                ctx.barrier().await;
                let splits = &splits[..];

                // ---- Phase 1: distribute keys with short writes.
                // First reserve space per destination (one fetch-add each),
                // then scatter.
                ctx.compute(C_BSEARCH * n_local as u64).await;
                let dest_of = |k: u64| splits.partition_point(|&sp| sp < k);
                let mut counts = vec![0u64; p];
                for &k in &keys {
                    counts[dest_of(k)] += 1;
                }
                let mut base = vec![0u64; p];
                for dest in 0..p {
                    if counts[dest] == 0 {
                        continue;
                    }
                    base[dest] = ctx
                        .fetch_add(GlobalPtr::new(dest, recv_count, 0), counts[dest])
                        .await;
                    assert!(
                        (base[dest] + counts[dest]) as usize <= recv_cap,
                        "sample: receive buffer overflow (pathological skew)"
                    );
                }
                let mut cursor = vec![0u64; p];
                for &k in &keys {
                    let d = dest_of(k);
                    let off = (base[d] + cursor[d]) as usize;
                    cursor[d] += 1;
                    ctx.write(GlobalPtr::new(d, recv, off), k).await;
                }
                ctx.sync().await;
                ctx.barrier().await;

                // ---- Phase 2: local sort of received keys.
                let n_recv = ctx.load_local(recv_count, 0) as usize;
                let mut received: Vec<u64> = ctx.with_mem(|m| m.region(recv)[..n_recv].to_vec());
                received.sort_unstable();
                ctx.compute(C_LOCAL_SORT * n_recv as u64).await;
                ctx.with_mem(|m| {
                    for (i, &k) in received.iter().enumerate() {
                        m.store(recv, i, k);
                    }
                });

                end_measured_region(&ctx).await;

                // ---- Verification.
                let sorted = received.windows(2).all(|w| w[0] <= w[1]);
                // Keys on me are all ≤ keys on me+1 (splitter property): check
                // the boundary against the next non-empty processor.
                let mut boundary_ok = true;
                if me > 0 && n_recv > 0 {
                    // Find the previous processor's max (its count then last).
                    let prev_count = ctx.read(GlobalPtr::new(me - 1, recv_count, 0)).await as usize;
                    if prev_count > 0 {
                        let prev_last =
                            ctx.read(GlobalPtr::new(me - 1, recv, prev_count - 1)).await;
                        boundary_ok = prev_last <= received[0];
                    }
                }
                let all_ok = ctx.allreduce_sum((sorted && boundary_ok) as u64).await == p as u64;
                let local_sum = received.iter().fold(0u64, |a, &k| a.wrapping_add(k));
                let out_sum = ctx.allreduce_sum(local_sum).await;
                let total_received = ctx.allreduce_sum(n_recv as u64).await;
                // Under DegradePolicy::Continue a confirmed-dead member
                // takes its keys (and reduction contributions) with it;
                // survivors report their partial sort instead of asserting
                // global invariants that a missing member cannot satisfy.
                if ctx.alive_count() == p {
                    assert!(all_ok, "sample: output not globally sorted");
                    assert_eq!(out_sum, global_input_sum, "sample: key sum mismatch");
                    assert_eq!(
                        total_received as usize,
                        n_local * p,
                        "sample: keys lost or duplicated"
                    );
                }
                local_sum
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_correctly_on_4_procs() {
        let out = Sample::new(SampleParams::small()).run(&RunSpec::new(4));
        assert!(out.completed);
    }

    #[test]
    fn sorts_correctly_on_7_procs() {
        // Odd processor counts stress the splitter logic.
        let out = Sample::new(SampleParams::small()).run(&RunSpec::new(7));
        assert!(out.completed);
    }

    #[test]
    fn communication_is_short_write_all_to_all() {
        let out = Sample::new(SampleParams::small()).run(&RunSpec::new(8));
        assert!(out.stats.pct_bulk() < 1.0);
        assert!(out.stats.pct_reads() < 10.0);
        // All-to-all: every off-diagonal cell sees traffic.
        let m = out.stats.balance_matrix();
        for (i, row) in m.iter().enumerate() {
            for (j, &cell) in row.iter().enumerate() {
                if i != j {
                    assert!(cell > 0, "no traffic {i}->{j}");
                }
            }
        }
    }

    #[test]
    fn check_is_invariant_across_knobs() {
        use nowlab_core::{Axis, NetConfig};
        let app = Sample::new(SampleParams::small());
        let base = app.run(&RunSpec::new(4));
        let knobs = Axis::Gap
            .knobs_for(&NetConfig::berkeley_now().machine, 55.0)
            .unwrap();
        let slowed =
            app.run(&RunSpec::new(4).with_net(NetConfig::berkeley_now().with_knobs(knobs)));
        assert_eq!(base.check, slowed.check);
        assert!(slowed.runtime > base.runtime);
    }
}
