//! The assembled benchmark suite (paper Table 3's program list).

use nowlab_core::SweepableApp;

use crate::barnes::{Barnes, BarnesParams};
use crate::connect::{Connect, ConnectParams};
use crate::em3d::{Em3dParams, Em3dRead, Em3dWrite};
use crate::murphi::{Murphi, MurphiParams};
use crate::nowsort::{NowSort, NowSortParams};
use crate::pray::{Pray, PrayParams};
use crate::radb::Radb;
use crate::radix::{Radix, RadixParams};
use crate::sample::{Sample, SampleParams};

/// Input-size presets for the whole suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuiteScale {
    /// Tiny inputs for CI tests (seconds of wall time for a full sweep).
    Test,
    /// The default benchmark inputs (DESIGN.md §4's scaled sizes).
    Benchmark,
}

/// The ten applications at benchmark scale, in the paper's Table 3 order.
pub fn benchmark_suite() -> Vec<Box<dyn SweepableApp>> {
    suite_scaled(SuiteScale::Benchmark)
}

/// The ten applications at the chosen scale, in the paper's Table 3 order.
pub fn suite_scaled(scale: SuiteScale) -> Vec<Box<dyn SweepableApp>> {
    match scale {
        SuiteScale::Benchmark => vec![
            Box::new(Radix::new(RadixParams::benchmark())),
            Box::new(Em3dWrite::new(Em3dParams::benchmark())),
            Box::new(Em3dRead::new(Em3dParams::benchmark())),
            Box::new(Sample::new(SampleParams::benchmark())),
            Box::new(Barnes::new(BarnesParams::benchmark())),
            Box::new(Pray::new(PrayParams::benchmark())),
            Box::new(Murphi::new(MurphiParams::benchmark())),
            Box::new(Connect::new(ConnectParams::benchmark())),
            Box::new(NowSort::new(NowSortParams::benchmark())),
            // Radb keeps the paper's "same keys as Radix" structure but at 8x
            // the key count: its serial histogram chain is P-dependent, so a
            // larger local share restores the paper's compute/comm ratio
            // (DESIGN.md §6).
            Box::new(Radb::new(RadixParams::benchmark().scaled(8.0))),
        ],
        SuiteScale::Test => vec![
            Box::new(Radix::new(RadixParams::small())),
            Box::new(Em3dWrite::new(Em3dParams::small())),
            Box::new(Em3dRead::new(Em3dParams::small())),
            Box::new(Sample::new(SampleParams::small())),
            Box::new(Barnes::new(BarnesParams::small())),
            Box::new(Pray::new(PrayParams::small())),
            Box::new(Murphi::new(MurphiParams::small())),
            Box::new(Connect::new(ConnectParams::small())),
            Box::new(NowSort::new(NowSortParams::small())),
            Box::new(Radb::new(RadixParams::small())),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nowlab_core::RunSpec;

    #[test]
    fn suite_has_ten_distinct_programs() {
        let suite = suite_scaled(SuiteScale::Test);
        assert_eq!(suite.len(), 10);
        let mut names: Vec<&str> = suite.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "duplicate program names");
    }

    #[test]
    fn every_program_completes_at_baseline_on_4_procs() {
        for app in suite_scaled(SuiteScale::Test) {
            let out = app.run(&RunSpec::new(4));
            assert!(out.completed, "{} did not complete", app.name());
            assert!(
                out.stats.total_sends() > 0,
                "{} sent no messages",
                app.name()
            );
        }
    }
}
