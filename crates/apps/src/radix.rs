//! Radix sort (paper §4.1, Table 3 row 1).
//!
//! Sorts a large collection of keys spread over the processors. Each pass:
//! (1) local per-digit histogram, (2) global histogram over the
//! collectives layer (a model-selected allgather of bucket counts — see
//! [`crate::histogram`], which also keeps the paper's hand-rolled
//! pipelined cyclic shift as the differential baseline), (3) distribution
//! — every key is sent to its globally ranked position with an individual
//! short remote write. Frequent, write-based, balanced communication: the
//! paper's most overhead- and gap-sensitive application.

use nowlab_core::{RunOutcome, RunSpec, SweepableApp};
use nowlab_rng::Rng;
use nowlab_splitc::GlobalPtr;
use nowlab_splitc::SimDelta;

use crate::common::{
    block_owner, block_range, end_measured_region, execute, proc_rng, start_measured_region,
    DegradePolicy,
};
use crate::histogram::global_histogram_coll;

/// Per-key cost of histogramming (digit extraction + counter bump).
const C_HIST: SimDelta = SimDelta::from_nanos(40);
/// Per-key cost of computing the destination address in the distribution.
const C_DIST: SimDelta = SimDelta::from_nanos(80);

/// Parameters of the radix sort.
#[derive(Clone, Copy, Debug)]
pub struct RadixParams {
    /// Total keys across all processors.
    pub total_keys: usize,
    /// Significant bits per key.
    pub key_bits: u32,
    /// Bits sorted per pass.
    pub digit_bits: u32,
}

impl RadixParams {
    /// Default benchmark size (the paper used 16M 32-bit keys; we scale to
    /// simulator-friendly 128K 16-bit keys — see DESIGN.md §4/§6).
    pub fn benchmark() -> Self {
        RadixParams {
            total_keys: 128 * 1024,
            key_bits: 16,
            digit_bits: 8,
        }
    }

    /// A reduced size for tests.
    pub fn small() -> Self {
        RadixParams {
            total_keys: 4 * 1024,
            key_bits: 16,
            digit_bits: 8,
        }
    }

    /// Scales the key count by `f` (≥ 1/64 of the benchmark is kept).
    pub fn scaled(mut self, f: f64) -> Self {
        self.total_keys = ((self.total_keys as f64 * f) as usize).max(2_048);
        self
    }

    /// Number of passes (`key_bits / digit_bits`).
    pub fn passes(&self) -> u32 {
        self.key_bits.div_ceil(self.digit_bits)
    }

    /// Buckets per pass.
    pub fn buckets(&self) -> usize {
        1 << self.digit_bits
    }
}

/// The radix sort application.
#[derive(Clone, Debug)]
pub struct Radix {
    params: RadixParams,
}

impl Radix {
    /// Creates the app with the given parameters.
    pub fn new(params: RadixParams) -> Self {
        Radix { params }
    }
}

impl SweepableApp for Radix {
    fn name(&self) -> &str {
        "Radix"
    }

    fn run(&self, spec: &RunSpec) -> RunOutcome {
        let params = self.params;
        let seed = spec.seed;
        execute(
            spec,
            DegradePolicy::Abort,
            |_| {},
            move |ctx| radix_body(ctx, params, seed, false),
        )
    }
}

/// Shared body for Radix and Radb (`bulk` selects the distribution
/// mechanism).
pub(crate) async fn radix_body(
    ctx: nowlab_splitc::Ctx,
    params: RadixParams,
    seed: u64,
    bulk: bool,
) -> u64 {
    let p = ctx.procs();
    let me = ctx.me();
    let n = params.total_keys;
    let buckets = params.buckets();
    let my_block = block_range(n, p, me);
    let n_local = my_block.len();

    let recv = ctx.alloc_region(n_local.max(1));
    ctx.barrier().await;

    // Input generation (outside the measured region, like loading a file).
    let mask = (1u64 << params.key_bits) - 1;
    let mut rng = proc_rng(seed, me, 0);
    let mut keys: Vec<u64> = (0..n_local).map(|_| rng.gen::<u64>() & mask).collect();
    let input_sum: u64 = keys.iter().fold(0u64, |a, &k| a.wrapping_add(k));
    let global_input_sum = ctx.allreduce_sum(input_sum).await;

    start_measured_region(&ctx).await;

    for pass in 0..params.passes() {
        let shift = pass * params.digit_bits;
        let digit = |k: u64| ((k >> shift) as usize) & (buckets - 1);

        // Phase 1: local histogram.
        ctx.phase("histogram");
        ctx.compute(C_HIST * n_local as u64).await;
        let mut counts = vec![0u64; buckets];
        for &k in &keys {
            counts[digit(k)] += 1;
        }

        // Phase 2: global histogram over the collectives layer.
        ctx.phase("global-hist");
        let hist = global_histogram_coll(&ctx, &counts).await;

        // Phase 3: distribution to globally ranked positions.
        ctx.phase("distribute");
        let mut rank = vec![0u64; buckets];
        if bulk {
            // Radb: group keys per destination processor, one bulk message
            // per destination.
            let mut per_dest: Vec<Vec<(usize, u64)>> = vec![Vec::new(); p];
            ctx.compute(C_DIST * n_local as u64).await;
            for &k in &keys {
                let b = digit(k);
                let pos = (hist.offsets[b] + hist.my_prefix[b] + rank[b]) as usize;
                rank[b] += 1;
                let owner = block_owner(n, p, pos);
                let local_off = pos - block_range(n, p, owner).start;
                per_dest[owner].push((local_off, k));
            }
            for (dest, items) in per_dest.into_iter().enumerate() {
                if items.is_empty() {
                    continue;
                }
                if dest == me {
                    ctx.with_mem(|m| {
                        let region = m.region_mut(recv);
                        for &(off, k) in &items {
                            region[off] = k;
                        }
                    });
                    continue;
                }
                // Destination offsets within a block are dense per bucket
                // but not contiguous overall; ship (offset, key) pairs and
                // scatter with a custom-packed bulk put: encode offset in
                // the high bits (key_bits ≤ 32 guaranteed).
                let packed: Vec<u64> = items
                    .iter()
                    .map(|&(off, k)| ((off as u64) << 32) | k)
                    .collect();
                ctx.bulk_put_scatter(dest, recv, packed).await;
            }
            ctx.sync().await;
        } else {
            // Radix: one short remote write per key.
            for &k in &keys {
                let b = digit(k);
                let pos = (hist.offsets[b] + hist.my_prefix[b] + rank[b]) as usize;
                rank[b] += 1;
                let owner = block_owner(n, p, pos);
                let local_off = pos - block_range(n, p, owner).start;
                ctx.compute(C_DIST).await;
                ctx.write(GlobalPtr::new(owner, recv, local_off), k).await;
            }
            ctx.sync().await;
        }
        ctx.barrier().await;
        keys = ctx.with_mem(|m| m.region(recv)[..n_local].to_vec());
    }

    end_measured_region(&ctx).await;

    // ---- Verification (outside the measured region).
    let sorted_locally = keys.windows(2).all(|w| w[0] <= w[1]);
    let mut boundary_ok = true;
    if me > 0 && n_local > 0 {
        let prev_block = block_range(n, p, me - 1);
        if !prev_block.is_empty() {
            let prev_last = ctx
                .read(GlobalPtr::new(me - 1, recv, prev_block.len() - 1))
                .await;
            boundary_ok = prev_last <= keys[0];
        }
    }
    let ok = sorted_locally && boundary_ok;
    let all_ok = ctx.allreduce_sum(ok as u64).await == p as u64;
    let local_sum = keys.iter().fold(0u64, |a, &k| a.wrapping_add(k));
    let final_sum = ctx.allreduce_sum(local_sum).await;
    assert!(all_ok, "radix: output not globally sorted");
    assert_eq!(
        final_sum, global_input_sum,
        "radix: keys lost or duplicated"
    );
    // Per-proc contribution; the harness sums them. Identical across LogGP
    // settings by construction.
    local_sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use nowlab_core::SweepableApp;

    #[test]
    fn sorts_correctly_on_4_procs() {
        let app = Radix::new(RadixParams::small());
        let out = app.run(&RunSpec::new(4));
        assert!(out.completed);
        assert!(out.stats.total_sends() > 0);
    }

    #[test]
    fn check_is_invariant_across_knobs() {
        use nowlab_core::{Axis, NetConfig};
        let app = Radix::new(RadixParams {
            total_keys: 2_048,
            key_bits: 16,
            digit_bits: 8,
        });
        let base = app.run(&RunSpec::new(4));
        let knobs = Axis::Overhead
            .knobs_for(&NetConfig::berkeley_now().machine, 23.0)
            .unwrap();
        let slowed =
            app.run(&RunSpec::new(4).with_net(NetConfig::berkeley_now().with_knobs(knobs)));
        assert_eq!(base.check, slowed.check);
        assert!(slowed.runtime > base.runtime);
    }

    #[test]
    fn four_bit_digits_need_four_passes_and_still_sort() {
        let app = Radix::new(RadixParams {
            total_keys: 2_048,
            key_bits: 16,
            digit_bits: 4,
        });
        assert_eq!(app.params.passes(), 4);
        assert_eq!(app.params.buckets(), 16);
        let out = app.run(&RunSpec::new(4));
        assert!(out.completed);
    }

    #[test]
    fn single_proc_degenerates_to_local_sort() {
        let app = Radix::new(RadixParams {
            total_keys: 1_024,
            key_bits: 16,
            digit_bits: 8,
        });
        let out = app.run(&RunSpec::new(1));
        assert!(out.completed);
    }

    #[test]
    fn communication_is_write_based_and_balanced() {
        let app = Radix::new(RadixParams::small());
        let out = app.run(&RunSpec::new(8));
        assert!(out.stats.pct_reads() < 1.0, "radix is write based");
        // Distribution stays one short write per key; the only bulk
        // traffic is the histogram allgather (a handful of block
        // messages per pass).
        assert!(out.stats.pct_bulk() < 5.0, "radix distribution is short");
        assert!(out.stats.balance() < 1.3, "radix is balanced");
    }
}
