//! # nowlab-apps — the ISCA'97 benchmark suite
//!
//! Reimplementations of the ten applications of Martin et al. (Table 3),
//! written against the [`nowlab_splitc`] global-address-space layer so that
//! every remote operation pays the configured LogGP costs. Inputs are
//! scaled for simulation (DESIGN.md §4/§6) but each program preserves its
//! paper communication signature: message frequency ordering, read/write
//! mix, bulk usage, synchronization style, and balance.
//!
//! | module | program | paper's communication character |
//! |---|---|---|
//! | [`radix`] | Radix sort | frequent short writes, collective histogram |
//! | [`em3d`] | EM3D (write & read) | per-edge pushes vs blocking reads, bulk-synchronous |
//! | [`sample`] | Sample sort | all-to-all short writes, receiver imbalance |
//! | [`barnes`] | Barnes-Hut | lock-based tree build (livelocks at high `o`), cached reads |
//! | [`pray`] | P-Ray | read-only object cache, hot spots |
//! | [`murphi`] | Parallel Murphi | hashed state ownership, one-way bulk sends |
//! | [`connect`] | Connected components | local union-find + read-mostly merges |
//! | [`nowsort`] | NOW-sort | disk-rate-limited one-way bulk streaming |
//! | [`radb`] | Bulk radix sort | one bulk message per destination |
//!
//! All programs are deterministic: for a given seed the correctness
//! checksum ([`nowlab_core::RunOutcome::check`]) is identical at every
//! LogGP setting, which the test suite exploits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barnes;
pub mod common;
pub mod connect;
pub mod em3d;
pub mod histogram;
pub mod murphi;
pub mod nowsort;
pub mod pray;
pub mod radb;
pub mod radix;
pub mod sample;
pub mod suite;

pub use suite::{benchmark_suite, suite_scaled, SuiteScale};
